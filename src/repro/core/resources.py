"""Resource, power and energy models (Section VI-C).

Lane counts come from the cost model's parallelism allocation; converting
lanes to FPGA primitives and watts uses calibration constants anchored to
the paper's published numbers for the XCVU9P build (documented inline).
Everything else — which functions light up which stages, how resources grow
with robot size or shrink with SAP optimizations — is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel, SubmoduleKind
from repro.core.saps import SAPOrganization

# --- XCVU9P device totals (Xilinx data sheet) -------------------------------
XCVU9P_DSP = 6840
XCVU9P_FF = 2_364_480
XCVU9P_LUT = 1_182_240

# --- Calibration (Section VI-C anchors) -------------------------------------
# The paper's multifunction iiwa build uses 62% DSP / 17% FF / 54% LUT.  Our
# iiwa allocation yields 1118 multiply lanes; these per-lane factors map
# lanes to primitives so the shipped design point lands exactly on the
# paper's utilization.  A fixed-point MAC of this width is ~4 DSP48s,
# consistent with the 36-bit format.
DSP_PER_LANE = 3.609
FF_PER_LANE = 291.9
LUT_PER_LANE = 478.0
#: Per-physical-stage fixed overhead (stage controller, FIFO buffers,
#: parameter ROMs).  This is what time-division multiplexing of symmetric
#: branches saves: two legs on one array halve the *instance* count even
#: though the shared instance needs proportionally more lanes.
STAGE_DSP = 2.0
STAGE_FF = 1_200.0
STAGE_LUT = 2_000.0
#: Extra buffering per backward stage when the forward pass must transfer
#: the 6x6 transform instead of letting the backward submodule recompute it
#: (the IV-A2 ablation): 30 extra 36-bit words of FIFO per stream.
WIDE_PAYLOAD_FF = 2_200.0
WIDE_PAYLOAD_LUT = 1_400.0
#: Fixed infrastructure (decode/encode/trig/stream/state machine).
BASE_DSP = 120.0
BASE_FF = 24_000.0
BASE_LUT = 18_000.0

#: Power: P = static + per-lane dynamic * active lanes.  Fit to the paper's
#: iiwa anchors: lightest function 6.2 W, dFD (everything active) 36.8 W,
#: diFD 31.2 W; the last pins the activity of *borrowed* BF-module lanes
#: (idle datapath, clocked for the final matmul) at ~0.25.
POWER_STATIC_W = 2.79
POWER_PER_LANE_W = 0.0304
BORROWED_ACTIVITY = 0.25


@dataclass
class ResourceReport:
    """Totals for one configured accelerator."""

    lanes_by_stage: dict[str, int] = field(default_factory=dict)
    dsp: float = 0.0
    ff: float = 0.0
    lut: float = 0.0

    @property
    def total_lanes(self) -> int:
        return sum(self.lanes_by_stage.values())

    @property
    def stage_count(self) -> int:
        return len(self.lanes_by_stage)

    @property
    def dsp_utilization(self) -> float:
        return self.dsp / XCVU9P_DSP

    @property
    def ff_utilization(self) -> float:
        return self.ff / XCVU9P_FF

    @property
    def lut_utilization(self) -> float:
        return self.lut / XCVU9P_LUT

    def fits(self) -> bool:
        return (
            self.dsp <= XCVU9P_DSP
            and self.ff <= XCVU9P_FF
            and self.lut <= XCVU9P_LUT
        )


class ResourceModel:
    """Lane/primitive/power accounting for one SAP organization.

    ``replicas`` scales the whole build (Section VI-A: "we can instantiate
    multiple SAPs"): primitives multiply; per-function power multiplies
    because every replica is active when the batch is striped across them.
    """

    def __init__(
        self, org: SAPOrganization, cost: CostModel, replicas: int = 1
    ) -> None:
        self.org = org
        self.cost = cost
        self.replicas = max(1, replicas)
        self._lanes_by_stage = self._allocate()

    def _allocate(self) -> dict[str, int]:
        lanes: dict[str, int] = {}
        model = self.org.timing_model
        for link in range(model.nb):
            for kind in SubmoduleKind:
                stage = self.org.stage_key(kind, link)
                budget = self.cost.budget(
                    kind, link, multiplex=self.org.multiplex(link)
                )
                # Shared stages (multiplexed branches) are sized once for
                # the heaviest link mapped to them.
                lanes[stage] = max(lanes.get(stage, 0), budget.parallelism)
        lanes["schedule"] = self.org.config.schedule_parallelism
        return lanes

    def report(self) -> ResourceReport:
        total = sum(self._lanes_by_stage.values()) * self.replicas
        stages = len(self._lanes_by_stage) * self.replicas
        ff = BASE_FF + STAGE_FF * stages + FF_PER_LANE * total
        lut = BASE_LUT + STAGE_LUT * stages + LUT_PER_LANE * total
        if not self.org.config.reupdate_transforms:
            backward = sum(
                1 for name in self._lanes_by_stage
                if name.startswith(("Rb", "Db"))
            ) * self.replicas
            ff += WIDE_PAYLOAD_FF * backward
            lut += WIDE_PAYLOAD_LUT * backward
        return ResourceReport(
            lanes_by_stage=dict(self._lanes_by_stage),
            dsp=BASE_DSP + STAGE_DSP * stages + DSP_PER_LANE * total,
            ff=ff,
            lut=lut,
        )

    def module_lanes(self, prefixes: tuple[str, ...]) -> int:
        """Total lanes across stages whose names start with any prefix."""
        return sum(
            lanes for stage, lanes in self._lanes_by_stage.items()
            if stage.startswith(prefixes)
        )

    def active_lanes(self, stage_names: set[str]) -> float:
        """Effective lanes powered by a function visiting ``stage_names``.

        Schedule-stage names in dataflow graphs are prefixed "schedule:";
        the big Schedule-Module matrix products borrow the Backward-Forward
        Module's multipliers (Fig 9c), so those lanes are partially active
        (factor ``BORROWED_ACTIVITY``) even when the function (diFD)
        streams Minv in instead of computing it.
        """
        total = 0.0
        uses_schedule = any(s.startswith("schedule:") for s in stage_names)
        uses_matmul = "schedule:matmul" in stage_names
        for stage, lanes in self._lanes_by_stage.items():
            if stage in stage_names:
                total += lanes
            elif stage == "schedule" and uses_schedule:
                total += lanes
            elif (
                uses_matmul
                and stage.startswith(("Mb", "Mf"))
                and stage not in stage_names
            ):
                total += BORROWED_ACTIVITY * lanes
        return total

    def power_w(self, stage_names: set[str]) -> float:
        """Run-time power for a function activating ``stage_names``."""
        return POWER_STATIC_W + (
            POWER_PER_LANE_W * self.active_lanes(stage_names) * self.replicas
        )

    def energy_per_task_j(
        self, stage_names: set[str], task_seconds: float
    ) -> float:
        return self.power_w(stage_names) * task_seconds
