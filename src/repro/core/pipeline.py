"""Round-Trip Pipeline builders.

Each function here adds one RTP *pass* to a dataflow graph: per-link nodes
wired with the paper's transfer pattern (Fig 6-8) —

* RNEA:    ``Rf_i -> Rf_child`` (ftr), ``Rf_i -> Rb_i`` (dtr),
           ``Rb_child -> Rb_i`` (btr, the reduce at branch points);
* dRNEA:   the Dynamics Array (Fig 9b): Df/Db interleaved with Rf/Rb,
           ``Rb_i -> Db_i`` supplying the accumulated force;
* MMinvGen: the reversed dataflow (Fig 8): Mb sweeps leaves -> root, Mf
           sweeps root -> leaves.

Because nodes map onto the physical stages chosen by the SAP organization,
time-division multiplexing of symmetric branches is automatic: two legs'
nodes land on the same stage and queue behind each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel, SubmoduleKind
from repro.core.saps import SAPOrganization
from repro.core.sim import DataflowGraph


@dataclass
class PassNodes:
    """Node ids created by one RTP pass, keyed by timing-model link."""

    forward: dict[int, int] = field(default_factory=dict)
    backward: dict[int, int] = field(default_factory=dict)
    deriv_forward: dict[int, int] = field(default_factory=dict)
    deriv_backward: dict[int, int] = field(default_factory=dict)
    exit_node: int = -1
    exit_nodes: list[int] = field(default_factory=list)


def _ensure_submodule_stage(
    graph: DataflowGraph,
    org: SAPOrganization,
    cost: CostModel,
    kind: SubmoduleKind,
    link: int,
) -> str:
    name = org.stage_key(kind, link)
    budget = cost.budget(kind, link, multiplex=org.multiplex(link))
    graph.ensure_stage(name, budget.service_cycles)
    return name


def add_rnea_pass(
    graph: DataflowGraph,
    org: SAPOrganization,
    cost: CostModel,
    entry: int,
    *,
    with_derivatives: bool,
    tag: str = "",
) -> PassNodes:
    """Add one Forward-Backward Module traversal (RNEA or Dynamics Array)."""
    model = org.timing_model
    nodes = PassNodes()

    for link in range(model.nb):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.RF, link)
        parent = model.parent(link)
        preds = [entry] if parent < 0 else [nodes.forward[parent]]
        nodes.forward[link] = graph.add_node(stage, preds, label=f"Rf{link}{tag}")

    for link in range(model.nb - 1, -1, -1):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.RB, link)
        preds = [nodes.forward[link]]
        preds += [nodes.backward[c] for c in model.children(link)]
        nodes.backward[link] = graph.add_node(stage, preds, label=f"Rb{link}{tag}")

    if not with_derivatives:
        nodes.exit_node = nodes.backward[0]
        nodes.exit_nodes = [nodes.exit_node]
        return nodes

    for link in range(model.nb):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.DF, link)
        parent = model.parent(link)
        preds = [nodes.forward[link]]
        preds += [entry] if parent < 0 else [nodes.deriv_forward[parent]]
        nodes.deriv_forward[link] = graph.add_node(
            stage, preds, label=f"Df{link}{tag}"
        )

    for link in range(model.nb - 1, -1, -1):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.DB, link)
        preds = [nodes.deriv_forward[link], nodes.backward[link]]
        preds += [nodes.deriv_backward[c] for c in model.children(link)]
        nodes.deriv_backward[link] = graph.add_node(
            stage, preds, label=f"Db{link}{tag}"
        )

    nodes.exit_node = nodes.deriv_backward[0]
    nodes.exit_nodes = [nodes.exit_node]
    return nodes


def add_mminv_pass(
    graph: DataflowGraph,
    org: SAPOrganization,
    cost: CostModel,
    entry: int,
    *,
    with_forward: bool,
    out_minv: bool = True,
    tag: str = "",
) -> PassNodes:
    """Add one Backward-Forward Module traversal (MMinvGen, Fig 8)."""
    model = org.timing_model
    nodes = PassNodes()

    for link in range(model.nb - 1, -1, -1):
        name = org.stage_key(SubmoduleKind.MB, link)
        budget = cost.budget(
            SubmoduleKind.MB, link, multiplex=org.multiplex(link)
        )
        graph.ensure_stage(name, budget.service_cycles)
        preds = [entry]
        preds += [nodes.backward[c] for c in model.children(link)]
        override = None
        if not out_minv:
            # Same hardware; M-only passes skip the articulated update and
            # the F correction, so the visit is shorter.
            ops_m = cost.ops(SubmoduleKind.MB, link, out_minv=False)
            override = max(
                1.0, budget.service_cycles * ops_m / max(budget.ops, 1.0)
            )
        nodes.backward[link] = graph.add_node(
            name, preds, service_override=override, label=f"Mb{link}{tag}"
        )

    if not with_forward:
        nodes.exit_node = nodes.backward[0]
        nodes.exit_nodes = [nodes.exit_node]
        return nodes

    for link in range(model.nb):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.MF, link)
        parent = model.parent(link)
        preds = [nodes.backward[link]]
        if parent >= 0:
            preds.append(nodes.forward[parent])
        nodes.forward[link] = graph.add_node(stage, preds, label=f"Mf{link}{tag}")

    nodes.exit_nodes = [nodes.forward[leaf] for leaf in model.leaves()]
    nodes.exit_node = nodes.exit_nodes[-1]
    return nodes


def add_aba_pass(
    graph: DataflowGraph,
    org: SAPOrganization,
    cost: CostModel,
    entry: int,
    tag: str = "",
) -> PassNodes:
    """One ABA traversal mapped onto existing hardware (Section V-B4).

    Pass 1 (velocities + bias forces) rides the Forward-Backward Module's
    Rf stages; pass 2 (articulated inertias, backward) and pass 3
    (accelerations, forward) ride the Backward-Forward Module's Mb/Mf
    stages with ABA-specific service overrides.  The stages must have been
    sized with ``config.enable_aba_fd`` so the overrides fit.
    """
    model = org.timing_model
    nodes = PassNodes()

    velocity: dict[int, int] = {}
    for link in range(model.nb):
        stage = _ensure_submodule_stage(graph, org, cost, SubmoduleKind.RF, link)
        parent = model.parent(link)
        preds = [entry] if parent < 0 else [velocity[parent]]
        velocity[link] = graph.add_node(stage, preds, label=f"Av{link}{tag}")
    nodes.forward = velocity

    for link in range(model.nb - 1, -1, -1):
        name = org.stage_key(SubmoduleKind.MB, link)
        budget = cost.budget(SubmoduleKind.MB, link, multiplex=org.multiplex(link))
        graph.ensure_stage(name, budget.service_cycles)
        override = max(
            1.0,
            budget.service_cycles * cost.aba_backward_ops(link)
            / max(budget.ops, 1.0),
        )
        preds = [velocity[link]]
        preds += [nodes.backward[c] for c in model.children(link)]
        nodes.backward[link] = graph.add_node(
            name, preds, service_override=override, label=f"Ab{link}{tag}"
        )

    for link in range(model.nb):
        name = org.stage_key(SubmoduleKind.MF, link)
        budget = cost.budget(SubmoduleKind.MF, link, multiplex=org.multiplex(link))
        graph.ensure_stage(name, budget.service_cycles)
        override = max(
            1.0,
            budget.service_cycles * cost.aba_forward_ops(link)
            / max(budget.ops, 1.0),
        )
        parent = model.parent(link)
        preds = [nodes.backward[link]]
        if parent >= 0:
            preds.append(nodes.deriv_forward[parent])
        nodes.deriv_forward[link] = graph.add_node(
            name, preds, service_override=override, label=f"Af{link}{tag}"
        )

    nodes.exit_nodes = [nodes.deriv_forward[leaf] for leaf in model.leaves()]
    nodes.exit_node = nodes.exit_nodes[-1]
    return nodes
