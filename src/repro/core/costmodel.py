"""Submodule cost model: operations -> parallelism -> service cycles.

Implements the paper's resource-allocation strategy (Section IV-A4): every
submodule gets just enough multiply lanes that its service time fits the
pipeline's initiation-interval budget — including the extra visits from
time-division multiplexing of symmetric branches — while submodules with
internal dependency chains cannot go below a latency floor no matter how
many lanes they get.  Deep dRNEA submodules therefore cost the most
(Fig 7c) and shallow ones aggressively reuse lanes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.core.config import AcceleratorConfig
from repro.dynamics import opcount
from repro.dynamics.opcount import OpCountParams
from repro.model.robot import RobotModel


class SubmoduleKind(Enum):
    """The six RTP submodule types plus the shared service modules."""

    RF = "Rf"      # RNEA forward
    RB = "Rb"      # RNEA backward
    DF = "Df"      # dRNEA forward
    DB = "Db"      # dRNEA backward
    MB = "Mb"      # MMinvGen backward
    MF = "Mf"      # MMinvGen forward


#: Minimum service cycles per kind: the internal serial dependency chain
#: (X update -> v -> a -> f etc.) that extra lanes cannot shorten.
SERVICE_FLOORS: dict[SubmoduleKind, int] = {
    SubmoduleKind.RF: 3,
    SubmoduleKind.RB: 2,
    SubmoduleKind.DF: 4,
    SubmoduleKind.DB: 3,
    SubmoduleKind.MB: 4,
    SubmoduleKind.MF: 3,
}

#: Stage kinds sized against the heavy II budget (their column widths grow
#: with robot size; everything else stays on the light budget).
HEAVY_KINDS = frozenset(
    {SubmoduleKind.DF, SubmoduleKind.DB, SubmoduleKind.MB, SubmoduleKind.MF}
)


@dataclass(frozen=True)
class SubmoduleBudget:
    """Sizing of one physical submodule."""

    kind: SubmoduleKind
    link: int
    ops: float
    multiplex: int            # visits per task (SAP branch sharing)
    parallelism: int          # multiply lanes allocated
    service_cycles: int

    @property
    def load_cycles(self) -> int:
        """Stage-time consumed per task in steady state."""
        return self.service_cycles * self.multiplex


class CostModel:
    """Computes op counts and sizes submodules for one robot + config."""

    def __init__(
        self,
        timing_model: RobotModel,
        config: AcceleratorConfig,
        op_params: OpCountParams | None = None,
    ) -> None:
        self.model = timing_model
        self.config = config
        if op_params is None:
            op_params = OpCountParams(sparse_x=config.sparse_datapath)
        self.op_params = op_params
        #: MAC lanes usable by the Schedule Module's matrix products.  The
        #: hardware reuses the (then idle) array multipliers for steps (3)
        #: and (6) of Fig 9a (Fig 9c); DaduRBD raises this once the
        #: Backward-Forward Module's lane count is known.
        self.schedule_lanes = config.schedule_parallelism

    # ------------------------------------------------------------------
    # Raw operation counts per submodule
    # ------------------------------------------------------------------

    def ops(self, kind: SubmoduleKind, link: int, *, out_minv: bool = True) -> float:
        model, params = self.model, self.op_params
        if kind is SubmoduleKind.RF:
            return opcount.ops_rf(model, link, params)
        if kind is SubmoduleKind.RB:
            ops = opcount.ops_rb(model, link, params)
            if not self.config.reupdate_transforms:
                # X arrives over the FIFO instead of being recomputed.
                ops -= model.joint(link).cost_profile().x_mults
            return max(ops, 1.0)
        if kind is SubmoduleKind.DF:
            ops = opcount.ops_df(model, link, params)
            if not self.config.incremental_columns:
                # Without incremental columns every submodule carries the
                # full 2*nv columns (ablation).
                cols = opcount.derivative_columns(model, link)
                ops *= (2 * model.nv) / max(cols, 1)
            return ops
        if kind is SubmoduleKind.DB:
            ops = opcount.ops_db(model, link, params)
            if not self.config.incremental_columns:
                cols = opcount.derivative_columns(model, link)
                ops *= (2 * model.nv) / max(cols, 1)
            return ops
        if kind is SubmoduleKind.MB:
            ops = opcount.ops_mb(model, link, params, out_minv=out_minv)
            if not self.config.sap.branch_induced_sparsity:
                # Keep full-width F matrices instead of subtree columns.
                cols = opcount.subtree_columns(model, link)
                ops *= model.nv / max(cols, 1)
            if self.config.enable_aba_fd:
                # The stage must also host the ABA articulated-inertia
                # update (Section V-B4's option): size for the bigger job.
                ops = max(ops, self.aba_backward_ops(link))
            return ops
        if kind is SubmoduleKind.MF:
            ops = opcount.ops_mf(model, link, params)
            if self.config.enable_aba_fd:
                ops = max(ops, self.aba_forward_ops(link))
            return ops
        raise ValueError(f"unknown submodule kind {kind!r}")

    def aba_backward_ops(self, link: int) -> float:
        """ABA articulated-inertia sweep ops (runs on the Mb stage)."""
        return opcount.ops_aba_backward(self.model, link, self.op_params)

    def aba_forward_ops(self, link: int) -> float:
        """ABA acceleration sweep ops (runs on the Mf stage)."""
        return opcount.ops_aba_forward(self.model, link, self.op_params)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def budget(
        self, kind: SubmoduleKind, link: int, multiplex: int = 1
    ) -> SubmoduleBudget:
        """Allocate lanes so ``multiplex`` visits fit the II budget."""
        ops = self.ops(kind, link)
        floor = SERVICE_FLOORS[kind]
        budget_cycles = (
            self.config.heavy_ii_cycles
            if kind in HEAVY_KINDS
            else self.config.ii_target_cycles
        )
        target = max(budget_cycles / max(multiplex, 1), 1.0)
        lanes_for_target = math.ceil(ops / target)
        lanes_for_floor = math.ceil(ops / floor)
        parallelism = max(1, min(lanes_for_target, lanes_for_floor))
        if not self.config.lazy_update and kind in (
            SubmoduleKind.RB, SubmoduleKind.DB, SubmoduleKind.MB
        ):
            # Without lazy updates the read-modify-write loopback serializes
            # with the neighbour: model as a 2x stall on backward stages.
            service = max(floor, 2 * math.ceil(ops / parallelism))
        else:
            service = max(floor, math.ceil(ops / parallelism))
        return SubmoduleBudget(kind, link, ops, multiplex, parallelism, service)

    def schedule_matvec_cycles(self) -> int:
        """Schedule Module: qdd = Minv (tau - C) (Fig 9c unified matmul)."""
        nv = self.model.nv
        ops = opcount.ops_matmul(nv, nv, 1) / 2.0 + nv   # symmetric A + sub
        return max(2, math.ceil(ops / self.schedule_lanes))

    def schedule_matmul_cycles(self) -> int:
        """Schedule Module: d_u qdd = -Minv d_u tau (nv x nv x 2nv)."""
        nv = self.model.nv
        ops = opcount.ops_matmul(nv, nv, 2 * nv) / 2.0
        return max(2, math.ceil(ops / self.schedule_lanes))
