"""Task, request and micro-instruction types for the accelerator.

The host writes a :class:`TaskRequest` (the paper's ``type`` + operands)
into the input stream; the scheduling system translates it into a sequence
of :class:`MicroInstruction` passes that steer the dataflow (Section V-B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.dynamics.functions import RBDFunction


class DataflowPass(Enum):
    """One traversal of a hardware module (the ``inst`` granularity)."""

    RNEA = "rnea"                  # FB module, R-stages only
    RNEA_WITH_DERIV = "rnea+d"     # FB module, Dynamics Array (R + D stages)
    MMINV_BACKWARD = "mm_bwd"      # BF module, Mb chain
    MMINV_FORWARD = "mm_fwd"       # BF module, Mf chain
    SCHEDULE_MATVEC = "sched_mv"   # Schedule Module: Minv @ (tau - C)
    SCHEDULE_MATMUL = "sched_mm"   # Schedule Module: -Minv @ dtau
    FEEDBACK = "feedback"          # Feedback Module write-back


@dataclass(frozen=True)
class MicroInstruction:
    """One step of a function's dataflow program."""

    dataflow_pass: DataflowPass
    #: Indices (into the program) of steps that must complete first.
    depends_on: tuple[int, ...] = ()


#: The per-function micro-instruction programs (Fig 14).  Step numbering
#: follows the paper's Fig 9a; FD and dFD route through the Feedback Module
#: because they reuse the FB module for a later pass.
DATAFLOW_PROGRAMS: dict[RBDFunction, tuple[MicroInstruction, ...]] = {
    RBDFunction.ID: (
        MicroInstruction(DataflowPass.RNEA),
    ),
    RBDFunction.M: (
        MicroInstruction(DataflowPass.MMINV_BACKWARD),
    ),
    RBDFunction.MINV: (
        MicroInstruction(DataflowPass.MMINV_BACKWARD),
        MicroInstruction(DataflowPass.MMINV_FORWARD, depends_on=(0,)),
    ),
    RBDFunction.FD: (
        MicroInstruction(DataflowPass.RNEA),                       # C
        MicroInstruction(DataflowPass.MMINV_BACKWARD),             # Minv
        MicroInstruction(DataflowPass.MMINV_FORWARD, depends_on=(1,)),
        MicroInstruction(DataflowPass.SCHEDULE_MATVEC, depends_on=(0, 2)),
    ),
    RBDFunction.DID: (
        MicroInstruction(DataflowPass.RNEA_WITH_DERIV),
    ),
    RBDFunction.DIFD: (
        MicroInstruction(DataflowPass.RNEA_WITH_DERIV),
        MicroInstruction(DataflowPass.SCHEDULE_MATMUL, depends_on=(0,)),
    ),
    RBDFunction.DFD: (
        MicroInstruction(DataflowPass.RNEA),                       # (1) C
        MicroInstruction(DataflowPass.MMINV_BACKWARD),             # (2) Minv
        MicroInstruction(DataflowPass.MMINV_FORWARD, depends_on=(1,)),
        MicroInstruction(DataflowPass.SCHEDULE_MATVEC, depends_on=(0, 2)),
        MicroInstruction(DataflowPass.FEEDBACK, depends_on=(3,)),  # qdd back
        MicroInstruction(DataflowPass.RNEA_WITH_DERIV, depends_on=(4,)),
        MicroInstruction(DataflowPass.SCHEDULE_MATMUL, depends_on=(2, 5)),
    ),
}


@dataclass
class TaskRequest:
    """One dynamics evaluation request (the accelerator's input record)."""

    function: RBDFunction
    q: np.ndarray
    qd: np.ndarray | None = None
    qdd_or_tau: np.ndarray | None = None
    f_ext: dict[int, np.ndarray] | None = None
    minv: np.ndarray | None = None          # for diFD
    #: Tasks with the same group and increasing sequence must run in order
    #: (e.g. the 4 stages of an RK4 step, Fig 13).
    group: int | None = None
    sequence: int = 0


@dataclass
class TaskResult:
    """Functional output plus the timing observed in the cycle simulation."""

    function: RBDFunction
    value: object
    issue_cycle: float = 0.0
    finish_cycle: float = 0.0

    @property
    def latency_cycles(self) -> float:
        return self.finish_cycle - self.issue_cycle


@dataclass
class BatchProfile:
    """Timing summary for a batch run through the pipeline simulator."""

    tasks: int
    makespan_cycles: float
    first_latency_cycles: float
    mean_latency_cycles: float
    initiation_interval_cycles: float
    stage_utilization: dict[str, float] = field(default_factory=dict)
    max_queue_depth: dict[str, int] = field(default_factory=dict)

    def throughput_tasks_per_s(self, clock_hz: float) -> float:
        if self.makespan_cycles <= 0:
            return float("inf")
        return self.tasks * clock_hz / self.makespan_cycles
