"""FIFO stream bookkeeping for the pipeline simulator.

The RTP submodules communicate exclusively through FIFO streams (Fig 6-8);
the simulator uses :class:`FifoStream` for each stage's input so it can
report the bypass-buffer depth a build would need (the paper sizes these
buffers to avoid pipeline stalls, Section IV-A).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(order=True)
class QueuedVisit:
    """One (job, node) visit waiting for its stage, ordered by readiness."""

    ready_time: float
    sequence: int
    job: int = field(compare=False)
    node: int = field(compare=False)


class FifoStream:
    """A priority-FIFO with occupancy statistics."""

    def __init__(self, name: str, capacity: int | None = None) -> None:
        self.name = name
        self.capacity = capacity
        self._heap: list[QueuedVisit] = []
        self._push_count = 0
        self.max_occupancy = 0
        self.overflowed = False

    def push(self, ready_time: float, job: int, node: int) -> None:
        self._push_count += 1
        heapq.heappush(
            self._heap, QueuedVisit(ready_time, self._push_count, job, node)
        )
        occupancy = len(self._heap)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        if self.capacity is not None and occupancy > self.capacity:
            self.overflowed = True

    def pop(self) -> QueuedVisit:
        return heapq.heappop(self._heap)

    def peek(self) -> QueuedVisit | None:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
