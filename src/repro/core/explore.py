"""Design-space exploration over the II budget (the paper's tuning loop).

Section VI: "After experimentation and tuning, Dadu-RBD is able to run at
125 MHz ... the performance and energy consumption reach a balance."  This
module sweeps the heavy-stage initiation-interval budget and reports, per
design point: resource fit, throughput, power and the energy-delay product,
so the balanced point the paper shipped can be located programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import DaduRBD
from repro.core.config import AcceleratorConfig, PAPER_CONFIG
from repro.dynamics.functions import RBDFunction
from repro.model.robot import RobotModel

#: Candidate heavy-II budgets swept by default.
DEFAULT_SWEEP = (8, 10, 12, 16, 20, 24, 32, 48, 64, 96, 128, 192, 256)


@dataclass
class DesignPoint:
    """One configuration in the sweep."""

    heavy_ii_cycles: int
    dsp_utilization: float
    fits: bool
    throughput_tasks_per_s: float
    power_w: float
    energy_per_task_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product per task (J * s)."""
        return self.energy_per_task_j / self.throughput_tasks_per_s


def sweep_design_space(
    model: RobotModel,
    function: RBDFunction = RBDFunction.DIFD,
    candidates: tuple[int, ...] = DEFAULT_SWEEP,
    config: AcceleratorConfig = PAPER_CONFIG,
) -> list[DesignPoint]:
    """Evaluate each heavy-II candidate (no auto-fit; infeasible points are
    reported with ``fits=False``)."""
    points = []
    for ii in candidates:
        trial = config.with_(
            ii_target_heavy_cycles=ii, auto_fit_ii=False
        )
        accelerator = DaduRBD(model, trial)
        report = accelerator.resources()
        points.append(
            DesignPoint(
                heavy_ii_cycles=ii,
                dsp_utilization=report.dsp_utilization,
                fits=report.dsp_utilization <= trial.dsp_budget,
                throughput_tasks_per_s=accelerator.throughput_tasks_per_s(
                    function, 256
                ),
                power_w=accelerator.power_w(function),
                energy_per_task_j=accelerator.energy_per_task_j(function),
            )
        )
    return points


def best_feasible_point(points: list[DesignPoint]) -> DesignPoint:
    """The feasible design point with the lowest energy-delay product."""
    feasible = [p for p in points if p.fits]
    if not feasible:
        raise ValueError("no design point fits the budget")
    return min(feasible, key=lambda p: p.edp)
