"""Pipeline scheduling for partially-serial task graphs (Section V-C3).

TO/MPC workloads mix independent batch tasks with serial chains — the
paper's example is 4th-order Runge-Kutta sensitivity analysis, whose four
sub-tasks per sampling point must run in order (Fig 13).  The scheduler
expresses such workloads as :class:`repro.core.sim.JobSpec` lists: jobs in
the same chain gate each other, everything else interleaves freely and
keeps the pipeline full.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sim import JobSpec


@dataclass(frozen=True)
class ChainedTask:
    """One sub-task in a workload: ``chain`` groups serial sub-tasks."""

    chain: int
    step: int


def independent_batch(n: int) -> list[JobSpec]:
    """n fully-independent tasks released together (the Fig 15/16/17 load)."""
    return [JobSpec() for _ in range(n)]


def serial_chains(n_chains: int, chain_length: int) -> list[JobSpec]:
    """``n_chains`` independent chains of ``chain_length`` serial sub-tasks.

    RK4 sensitivity over ``n_chains`` sampling points is
    ``serial_chains(points, 4)``: sub-task k of a point waits for sub-task
    k-1 of the same point, while different points interleave (Fig 13).
    """
    jobs: list[JobSpec] = []
    for chain in range(n_chains):
        for step in range(chain_length):
            if step == 0:
                jobs.append(JobSpec())
            else:
                jobs.append(JobSpec(after_jobs=(len(jobs) - 1,)))
    return jobs


def rk4_sensitivity_jobs(n_points: int) -> list[JobSpec]:
    """The paper's RK4 workload: 4 serial dynamics calls per point."""
    return serial_chains(n_points, 4)


def staggered_batch(n: int, interval_cycles: float) -> list[JobSpec]:
    """Tasks arriving at a fixed rate (models a host streaming requests)."""
    return [JobSpec(release_cycle=i * interval_cycles) for i in range(n)]
