"""The Dadu-RBD accelerator model.

:class:`DaduRBD` is the top-level facade a user configures once per robot
(like the FPGA bitstream) and then drives with :class:`TaskRequest`s.  It
provides:

* **functional execution** — bit-approximate results for all seven Table-I
  functions, with the Global Trigonometric Module's Taylor error and the
  fixed-point quantization of the Decode Module applied to the inputs;
* **cycle simulation** — single-task latency, batch throughput, stage
  utilization and FIFO occupancy from the discrete-event model of the
  RTP/SAP stage graph;
* **resource/power reports** — Section VI-C style accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AcceleratorConfig, PAPER_CONFIG
from repro.core.costmodel import CostModel
from repro.core.fixedpoint import FixedPointFormat
from repro.core.functions import BatchProfile, TaskRequest, TaskResult
from repro.core.modules import active_stage_names, build_dataflow
from repro.core.resources import ResourceModel, ResourceReport
from repro.core.saps import SAPOrganization, organize
from repro.core.sim import (
    DataflowGraph,
    JobSpec,
    analytic_batch_makespan,
    simulate,
)
from repro.core.trig import effective_angles
from repro.dynamics.functions import RBDFunction, evaluate
from repro.model.robot import RobotModel

#: Batches larger than this use the validated analytic makespan model.
_SIM_BATCH_LIMIT = 2048

#: Initiation-interval ladder searched by the auto-fit tuner.
_II_LADDER = (8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 64, 80, 96,
              128, 160, 192, 256, 320, 384, 512)


class DaduRBD:
    """One configured accelerator instance for a specific robot."""

    def __init__(
        self,
        model: RobotModel,
        config: AcceleratorConfig = PAPER_CONFIG,
    ) -> None:
        self.model = model
        self.config = self._fit_config(model, config)
        self.org: SAPOrganization = organize(model, self.config)
        self.cost = CostModel(self.org.timing_model, self.config)
        self.resources_model = ResourceModel(
            self.org, self.cost, replicas=self.config.sap_replicas
        )
        # The Schedule Module's matrix products reuse the Backward-Forward
        # Module's multipliers (Fig 9c).
        self.cost.schedule_lanes = max(
            self.config.schedule_parallelism,
            self.resources_model.module_lanes(("Mb", "Mf")),
        )
        self._graphs: dict[RBDFunction, DataflowGraph] = {}

    @staticmethod
    def _fit_config(
        model: RobotModel, config: AcceleratorConfig
    ) -> AcceleratorConfig:
        """Raise the *heavy* II budget until the build fits the DSP budget.

        This mirrors the paper's per-robot tuning: on larger robots the
        derivative and mass-matrix pipelines trade throughput for area so
        every robot ships on the same XCVU9P, while the cheap RNEA stages
        keep the base budget.
        """
        if not config.auto_fit_ii:
            return config
        base = config.heavy_ii_cycles
        candidates = [ii for ii in _II_LADDER if ii >= base] or [base]
        chosen = candidates[-1]
        for ii in candidates:
            trial = config.with_(ii_target_heavy_cycles=ii)
            org = organize(model, trial)
            cost = CostModel(org.timing_model, trial)
            report = ResourceModel(
                org, cost, replicas=trial.sap_replicas
            ).report()
            if report.dsp_utilization <= trial.dsp_budget:
                chosen = ii
                break
        return config.with_(ii_target_heavy_cycles=chosen)

    # ------------------------------------------------------------------
    # Dataflow graphs
    # ------------------------------------------------------------------

    def graph(self, function: RBDFunction) -> DataflowGraph:
        if function not in self._graphs:
            self._graphs[function] = build_dataflow(self.org, self.cost, function)
        return self._graphs[function]

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------

    def _hardware_inputs(self, request: TaskRequest) -> TaskRequest:
        """Apply Decode-Module quantization and trig-module error."""
        numerics = self.config.numerics
        q = np.asarray(request.q, dtype=float).copy()
        # Taylor-trig error: revolute-family joints consume sin/cos built by
        # the Global Trigonometric Module; building X from approximate
        # (sin, cos) equals using the effective angle atan2(sin~, cos~).
        for i in range(self.model.nb):
            joint = self.model.joint(i)
            if joint.nv == 1 and joint.cost_profile().trig_pairs > 0:
                sl = self.model.dof_slice(i)
                q[sl] = effective_angles(q[sl], numerics.taylor_order)
        if not numerics.fixed_point:
            return TaskRequest(
                request.function, q, request.qd, request.qdd_or_tau,
                request.f_ext, request.minv,
            )
        fmt = FixedPointFormat(numerics.integer_bits, numerics.fraction_bits)
        quant = fmt.quantize
        return TaskRequest(
            function=request.function,
            q=quant(q),
            qd=None if request.qd is None else quant(np.asarray(request.qd)),
            qdd_or_tau=(
                None if request.qdd_or_tau is None
                else quant(np.asarray(request.qdd_or_tau))
            ),
            f_ext=(
                None if request.f_ext is None
                else {k: quant(np.asarray(v)) for k, v in request.f_ext.items()}
            ),
            minv=None if request.minv is None else quant(np.asarray(request.minv)),
        )

    def compute(self, request: TaskRequest):
        """Functional result only (no timing)."""
        hw = self._hardware_inputs(request)
        if hw.function is RBDFunction.FD and self.config.enable_aba_fd:
            # Section V-B4 option: FD via the ABA sweep on the BF module.
            from repro.dynamics.aba import aba

            return aba(self.model, hw.q, hw.qd, hw.qdd_or_tau, hw.f_ext)
        return evaluate(
            self.model, hw.function, hw.q, hw.qd, hw.qdd_or_tau, hw.f_ext, hw.minv
        )

    def run(self, request: TaskRequest) -> TaskResult:
        """Execute one task: functional result plus simulated timing."""
        value = self.compute(request)
        graph = self.graph(request.function)
        sim = simulate(
            graph, [JobSpec()],
            transfer_cycles=self.config.transfer_cycles,
            fifo_capacity=self.config.fifo_capacity,
            startup_cycles=self.config.stream_startup_cycles,
        )
        return TaskResult(
            function=request.function,
            value=value,
            issue_cycle=sim.job_start[0],
            finish_cycle=sim.job_finish[0],
        )

    # ------------------------------------------------------------------
    # Timing profiles
    # ------------------------------------------------------------------

    def latency_cycles(self, function: RBDFunction) -> float:
        """Single-task pipeline latency (empty pipeline)."""
        graph = self.graph(function)
        sim = simulate(
            graph, [JobSpec()],
            transfer_cycles=self.config.transfer_cycles,
            startup_cycles=self.config.stream_startup_cycles,
        )
        return sim.latency(0)

    def latency_seconds(self, function: RBDFunction) -> float:
        return self.config.cycles_to_seconds(self.latency_cycles(function))

    def initiation_interval(self, function: RBDFunction) -> float:
        """Analytic steady-state cycles between completions."""
        return self.graph(function).initiation_interval()

    def profile_batch(
        self,
        function: RBDFunction,
        batch: int,
        jobs: list[JobSpec] | None = None,
    ) -> BatchProfile:
        """Makespan/throughput for a batch (simulated, or analytic when the
        batch exceeds the simulation limit and has no dependencies)."""
        graph = self.graph(function)
        if jobs is None:
            jobs = [JobSpec() for _ in range(batch)]
        has_deps = any(j.after_jobs for j in jobs)
        startup = self.config.stream_startup_cycles
        if len(jobs) > _SIM_BATCH_LIMIT and not has_deps:
            makespan = analytic_batch_makespan(
                graph, len(jobs), self.config.transfer_cycles, startup
            )
            latency = graph.critical_path_cycles(
                self.config.transfer_cycles, startup
            )
            return BatchProfile(
                tasks=len(jobs),
                makespan_cycles=makespan,
                first_latency_cycles=latency,
                mean_latency_cycles=latency,
                initiation_interval_cycles=graph.initiation_interval(),
            )
        sim = simulate(
            graph, jobs,
            transfer_cycles=self.config.transfer_cycles,
            fifo_capacity=self.config.fifo_capacity,
            startup_cycles=startup,
        )
        return BatchProfile(
            tasks=len(jobs),
            makespan_cycles=sim.makespan,
            first_latency_cycles=sim.latency(0),
            mean_latency_cycles=sim.mean_latency(),
            initiation_interval_cycles=sim.measured_interval(),
            stage_utilization={
                name: sim.utilization(name) for name in graph.stages
            },
            max_queue_depth=dict(sim.max_queue),
        )

    def throughput_tasks_per_s(
        self, function: RBDFunction, batch: int = 256
    ) -> float:
        return batch / self.batch_seconds(function, batch)

    def batch_seconds(
        self, function: RBDFunction, batch: int, *, warm: bool = True
    ) -> float:
        """Wall time for a batch, including the streamed I/O bound.

        ``warm=True`` models the paper's measurement protocol (batches
        repeated millions of times, pipeline never drains): the steady-state
        cost per batch is ``batch * II``.  ``warm=False`` gives the
        cold-start makespan (fill + drain) from the event simulation.
        """
        replicas = self.config.sap_replicas
        if warm:
            compute_cycles = (
                batch * self.graph(function).initiation_interval() / replicas
            )
            compute = self.config.cycles_to_seconds(compute_cycles)
        else:
            # Round-robin the batch over the replicated SAPs.
            share = -(-batch // replicas)
            profile = self.profile_batch(function, share)
            compute = self.config.cycles_to_seconds(profile.makespan_cycles)
        io = self._io_seconds(function, batch)
        # I/O is streamed concurrently with compute (Section VI): the run
        # time is the max of the two, not the sum.
        return max(compute, io)

    def _io_seconds(self, function: RBDFunction, batch: int) -> float:
        nv = self.model.nv
        words_in = 3 * nv + 4                       # q, qd, qdd/tau, header
        out_by_function = {
            RBDFunction.ID: nv,
            RBDFunction.FD: nv,
            RBDFunction.M: nv * (nv + 1) // 2,
            RBDFunction.MINV: nv * (nv + 1) // 2,
            RBDFunction.DID: 2 * nv * nv,
            RBDFunction.DFD: 2 * nv * nv,
            RBDFunction.DIFD: 2 * nv * nv,
        }
        if function is RBDFunction.DIFD:
            words_in += nv * (nv + 1) // 2          # Minv streamed in
        words = words_in + out_by_function[function]
        bytes_total = batch * words * self.config.word_bytes
        return bytes_total / self.config.io_bandwidth_bytes_per_s

    # ------------------------------------------------------------------
    # Resources and power
    # ------------------------------------------------------------------

    def resources(self) -> ResourceReport:
        return self.resources_model.report()

    def power_w(self, function: RBDFunction) -> float:
        return self.resources_model.power_w(
            active_stage_names(self.graph(function))
        )

    def energy_per_task_j(self, function: RBDFunction, batch: int = 256) -> float:
        seconds = self.batch_seconds(function, batch) / batch
        return self.power_w(function) * seconds

    def describe(self) -> str:
        report = self.resources()
        lines = [
            f"Dadu-RBD for {self.model.name} @ {self.config.clock_hz / 1e6:.0f} MHz",
            self.org.describe(),
            (
                f"  resources: {report.total_lanes} lanes, "
                f"DSP {report.dsp_utilization:.0%}, FF {report.ff_utilization:.0%}, "
                f"LUT {report.lut_utilization:.0%}"
            ),
        ]
        return "\n".join(lines)
