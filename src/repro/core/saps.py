"""Structure-Adaptive Pipelines: organizing submodules around the robot.

Given a robot and a configuration this module produces the hardware
organization of Section V-C / Fig 11:

* optionally **re-root** the tree at its center to balance depth (Atlas:
  11 -> 9) — re-rooting only moves where the virtual 6-DOF joint attaches;
* optionally **split the floating base** into translation + spherical root
  submodules;
* decompose into the root segment + branch segments;
* group structurally-symmetric leaf-tipped branches onto shared **branch
  arrays** with time-division multiplexing (Spot: 4 legs on 2 arrays).

The resulting :class:`SAPOrganization` maps every link of the (possibly
rewritten) *timing model* to a physical stage name and multiplex factor;
the dataflow builder and the resource model are both driven by it.

Note: tree rewriting changes generalized coordinates, so the accelerator's
*functional* path always evaluates on the user's original model; the
rewritten model shapes timing and resources only (the host-side coordinate
mapping the paper leaves implicit lives in ``repro.model.topology``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import AcceleratorConfig
from repro.core.costmodel import SERVICE_FLOORS, SubmoduleKind
from repro.model.joints import FloatingJoint
from repro.model.robot import RobotModel
from repro.model.topology import (
    Branch,
    decompose,
    reroot,
    split_floating_base,
    symmetric_branch_groups,
)


@dataclass
class BranchArray:
    """One physical array of submodules serving one or more branches."""

    array_id: int
    branches: list[Branch]
    is_root: bool = False

    @property
    def multiplex(self) -> int:
        return len(self.branches)

    @property
    def depth(self) -> int:
        return max(b.size for b in self.branches)


@dataclass
class SAPOrganization:
    """The complete hardware organization for one robot."""

    original_model: RobotModel
    timing_model: RobotModel
    config: AcceleratorConfig
    arrays: list[BranchArray] = field(default_factory=list)
    rerooted_at: str | None = None
    #: (depth before, depth after) of the re-rooting, pre-split.
    reroot_depths: tuple[int, int] | None = None
    floating_split: bool = False
    _stage_of_link: dict[int, tuple[int, int]] = field(default_factory=dict)
    _multiplex_of_link: dict[int, int] = field(default_factory=dict)

    def stage_key(self, kind: SubmoduleKind, link: int) -> str:
        """Physical stage name for a submodule of the timing model's link."""
        array_id, position = self._stage_of_link[link]
        return f"{kind.value}:A{array_id}[{position}]"

    def multiplex(self, link: int) -> int:
        """Visits per task at this link's stages (branch sharing factor)."""
        return self._multiplex_of_link[link]

    def physical_stage_count(self) -> int:
        """Distinct submodule positions across all arrays (one per kind)."""
        return len({self._stage_of_link[i] for i in self._stage_of_link})

    def describe(self) -> str:
        """Human-readable organization summary (Fig 11-style)."""
        model = self.timing_model
        lines = [f"SAP organization for {self.original_model.name}"]
        if self.rerooted_at and self.reroot_depths:
            before, after = self.reroot_depths
            lines.append(
                f"  re-rooted at {self.rerooted_at} "
                f"(depth {before} -> {after})"
            )
        if self.floating_split:
            lines.append("  floating base split into translation + spherical")
        for array in self.arrays:
            names = [
                "/".join(model.links[b.links[0]].name for b in array.branches)
            ]
            kind = "root" if array.is_root else "branch"
            lines.append(
                f"  array {array.array_id} ({kind}): {names[0]} "
                f"x{array.multiplex}, depth {array.depth}"
            )
        return "\n".join(lines)


def _center_candidates(model: RobotModel) -> list[int]:
    """Links minimizing tree eccentricity, restricted to those reachable
    from the current root through 1-DOF joints (reversible edges)."""
    nb = model.nb
    adjacency: list[list[int]] = [[] for _ in range(nb)]
    for i in range(nb):
        p = model.parent(i)
        if p >= 0:
            adjacency[i].append(p)
            adjacency[p].append(i)

    def eccentricity(start: int) -> int:
        seen = {start}
        frontier = [start]
        dist = 0
        while frontier:
            nxt = [m for n in frontier for m in adjacency[n] if m not in seen]
            if not nxt:
                break
            seen.update(nxt)
            frontier = nxt
            dist += 1
        return dist

    def reversible(link: int) -> bool:
        for j in model.ancestors(link):
            if j == 0:
                continue
            if model.joint(j).nv != 1:
                return False
        return model.joint(link).nv == 1 or link == 0

    eccs = {i: eccentricity(i) for i in range(nb) if i == 0 or reversible(i)}
    best = min(eccs.values())
    return [i for i, e in eccs.items() if e == best]


def _group_multiplex_cap(config: AcceleratorConfig) -> int:
    """How many symmetric branches one array can serve while its slowest
    stage still fits the II budget (the Fig 11b pairing rule)."""
    worst_floor = max(SERVICE_FLOORS.values())
    return max(1, config.ii_target_cycles // worst_floor)


def organize(model: RobotModel, config: AcceleratorConfig) -> SAPOrganization:
    """Build the SAP organization for ``model`` under ``config``."""
    timing_model = model
    rerooted_at: str | None = None
    reroot_depths: tuple[int, int] | None = None
    if config.sap.reroot_tree and isinstance(model.joint(0), FloatingJoint):
        candidates = _center_candidates(model)
        best = min(candidates)
        trial = reroot(model, best) if best != 0 else model
        if trial.max_depth() < model.max_depth():
            timing_model = trial
            rerooted_at = model.links[best].name
            reroot_depths = (model.max_depth(), trial.max_depth())
    floating_split = False
    if config.sap.split_floating_base and isinstance(
        timing_model.joint(0), FloatingJoint
    ):
        timing_model = split_floating_base(timing_model)
        floating_split = True

    org = SAPOrganization(
        original_model=model,
        timing_model=timing_model,
        config=config,
        rerooted_at=rerooted_at,
        reroot_depths=reroot_depths,
        floating_split=floating_split,
    )

    decomposition = decompose(timing_model)
    grouped: dict[int, list[Branch]] = {}
    assigned: set[int] = set()
    if config.sap.share_symmetric_branches:
        cap = _group_multiplex_cap(config)
        for group in symmetric_branch_groups(timing_model):
            leaf_tipped = [
                b for b in group
                if not timing_model.children(b.links[-1])
            ]
            if len(leaf_tipped) < 2 or cap < 2:
                continue
            # Partition into arrays of at most `cap` branches.
            for start in range(0, len(leaf_tipped), cap):
                chunk = leaf_tipped[start:start + cap]
                array_id = len(org.arrays) + len(grouped)
                grouped[array_id] = chunk
                assigned.update(b.index for b in chunk)

    # Root + ungrouped branches get dedicated arrays.
    next_id = 0
    for branch in decomposition.branches:
        if branch.index in assigned:
            continue
        org.arrays.append(
            BranchArray(next_id, [branch], is_root=branch.is_root)
        )
        next_id = max(next_id + 1, next_id + 1)
    for chunk in grouped.values():
        org.arrays.append(BranchArray(len(org.arrays), chunk))
    # Re-number arrays densely.
    for idx, array in enumerate(org.arrays):
        array.array_id = idx

    for array in org.arrays:
        for branch in array.branches:
            for position, link in enumerate(branch.links):
                org._stage_of_link[link] = (array.array_id, position)
                org._multiplex_of_link[link] = array.multiplex
    return org
