"""The eight architecture modules and per-function dataflow assembly.

``build_dataflow`` wires the paper's Fig 10 architecture for one function:

    Decode -> Global Trigonometric -> Input Stream ->
        { Forward-Backward Module | Backward-Forward Module } ->
    Schedule -> [Feedback -> Input Stream -> ...] -> Encode

following the per-function activation patterns of Fig 14.  dFD is the
interesting one: it traverses the Forward-Backward Module twice with the
Feedback Module closing the loop (stages are *shared* between the two
passes, which is why dFD's throughput is the lowest — exactly as in
Fig 15).
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.config import AcceleratorConfig
from repro.core.pipeline import add_aba_pass, add_mminv_pass, add_rnea_pass
from repro.core.saps import SAPOrganization
from repro.core.sim import DataflowGraph
from repro.dynamics.functions import RBDFunction
from repro.errors import DataflowError

#: Shared service-module stage names.
DECODE = "decode"
TRIG = "trig"
INPUT_STREAM = "istream"
SCHEDULE_MATVEC = "schedule:matvec"
SCHEDULE_MATMUL = "schedule:matmul"
FEEDBACK = "feedback"
ENCODE = "encode"


def _add_frontend(
    graph: DataflowGraph, config: AcceleratorConfig
) -> tuple[int, int]:
    """Decode -> Trig -> Input Stream; returns (source node, exit node)."""
    graph.ensure_stage(DECODE, config.frontend_cycles)
    graph.ensure_stage(TRIG, config.trig_cycles)
    graph.ensure_stage(INPUT_STREAM, config.frontend_cycles)
    decode = graph.add_node(DECODE, (), label="decode")
    trig = graph.add_node(TRIG, (decode,), label="trig")
    istream = graph.add_node(INPUT_STREAM, (trig,), label="istream")
    return decode, istream


def _add_encode(
    graph: DataflowGraph, config: AcceleratorConfig, preds: list[int]
) -> int:
    graph.ensure_stage(ENCODE, config.encode_cycles)
    return graph.add_node(ENCODE, tuple(preds), label="encode")


def build_dataflow(
    org: SAPOrganization,
    cost: CostModel,
    function: RBDFunction,
) -> DataflowGraph:
    """The complete stage/visit graph for one Table-I function."""
    config = org.config
    graph = DataflowGraph(name=f"{org.original_model.name}:{function.value}")
    _, entry = _add_frontend(graph, config)

    if function is RBDFunction.ID:
        rnea = add_rnea_pass(graph, org, cost, entry, with_derivatives=False)
        _add_encode(graph, config, [rnea.exit_node])
        return graph

    if function is RBDFunction.M:
        mm = add_mminv_pass(
            graph, org, cost, entry, with_forward=False, out_minv=False
        )
        _add_encode(graph, config, [mm.exit_node])
        return graph

    if function is RBDFunction.MINV:
        mm = add_mminv_pass(graph, org, cost, entry, with_forward=True)
        _add_encode(graph, config, mm.exit_nodes)
        return graph

    if function is RBDFunction.FD:
        if config.enable_aba_fd:
            # Section V-B4's option: single ABA round trip on the BF module.
            aba = add_aba_pass(graph, org, cost, entry)
            _add_encode(graph, config, aba.exit_nodes)
            return graph
        rnea = add_rnea_pass(graph, org, cost, entry, with_derivatives=False)
        mm = add_mminv_pass(graph, org, cost, entry, with_forward=True)
        graph.ensure_stage(SCHEDULE_MATVEC, cost.schedule_matvec_cycles())
        solve = graph.add_node(
            SCHEDULE_MATVEC,
            tuple([rnea.exit_node] + mm.exit_nodes),
            label="qdd=Minv(tau-C)",
        )
        _add_encode(graph, config, [solve])
        return graph

    if function is RBDFunction.DID:
        deriv = add_rnea_pass(graph, org, cost, entry, with_derivatives=True)
        _add_encode(graph, config, [deriv.exit_node])
        return graph

    if function is RBDFunction.DIFD:
        deriv = add_rnea_pass(graph, org, cost, entry, with_derivatives=True)
        graph.ensure_stage(SCHEDULE_MATMUL, cost.schedule_matmul_cycles())
        product = graph.add_node(
            SCHEDULE_MATMUL, (deriv.exit_node,), label="-Minv@dtau"
        )
        _add_encode(graph, config, [product])
        return graph

    if function is RBDFunction.DFD:
        # Stage (1): C = RNEA(q, qd, 0) and (2): Minv, concurrently.
        rnea1 = add_rnea_pass(
            graph, org, cost, entry, with_derivatives=False, tag=":p1"
        )
        mm = add_mminv_pass(graph, org, cost, entry, with_forward=True)
        # (3): qdd = Minv (tau - C).
        graph.ensure_stage(SCHEDULE_MATVEC, cost.schedule_matvec_cycles())
        solve = graph.add_node(
            SCHEDULE_MATVEC,
            tuple([rnea1.exit_node] + mm.exit_nodes),
            label="qdd=Minv(tau-C)",
        )
        # Feedback writes qdd back to the input stream for the second pass.
        graph.ensure_stage(FEEDBACK, config.frontend_cycles)
        feedback = graph.add_node(FEEDBACK, (solve,), label="feedback")
        istream2 = graph.add_node(INPUT_STREAM, (feedback,), label="istream:p2")
        # (4)+(5): RNEA at qdd fused with dRNEA (Dynamics Array), second
        # traversal of the same FB-module stages.
        deriv = add_rnea_pass(
            graph, org, cost, istream2, with_derivatives=True, tag=":p2"
        )
        # (6): d_u qdd = -Minv d_u tau.
        graph.ensure_stage(SCHEDULE_MATMUL, cost.schedule_matmul_cycles())
        product = graph.add_node(
            SCHEDULE_MATMUL, (deriv.exit_node,), label="-Minv@dtau"
        )
        _add_encode(graph, config, [product])
        return graph

    raise DataflowError(f"no dataflow program for {function!r}")


def active_stage_names(graph: DataflowGraph) -> set[str]:
    """Stages a function actually visits (drives the power model)."""
    return {node.stage for node in graph.nodes}
