"""Discrete-event simulator for medium-grained dataflow pipelines.

The model: a :class:`DataflowGraph` has *physical stages* (hardware
submodules with a fixed service time) and *nodes* (one visit of a task
through a stage).  Several nodes may map to the same stage — that is how
time-division multiplexing of symmetric branches (SAPs) and the double pass
of dFD through the Forward-Backward Module are expressed.  Stages are
non-preemptive and serve one visit at a time; visits wait in FIFO streams.

Everything the evaluation section measures falls out of this simulation:
pipeline latency, initiation interval / throughput, stage utilization,
FIFO occupancy, and the effect of inter-task dependencies (Fig 13).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.fifo import FifoStream
from repro.errors import SimulationError


@dataclass
class Stage:
    """One physical hardware submodule."""

    name: str
    service_cycles: float

    def __post_init__(self) -> None:
        if self.service_cycles < 0:
            raise SimulationError(f"stage {self.name}: negative service time")


@dataclass
class Node:
    """One visit of a task through a stage.

    ``preds`` are node indices whose outputs this visit consumes; data
    arrives ``transfer_cycles`` after the predecessor finishes.
    """

    index: int
    stage: str
    preds: tuple[int, ...] = ()
    service_override: float | None = None
    label: str = ""


class DataflowGraph:
    """A per-function stage/visit graph."""

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self.stages: dict[str, Stage] = {}
        self.nodes: list[Node] = []

    def add_stage(self, name: str, service_cycles: float) -> Stage:
        if name in self.stages:
            raise SimulationError(f"duplicate stage {name!r}")
        stage = Stage(name, service_cycles)
        self.stages[name] = stage
        return stage

    def ensure_stage(self, name: str, service_cycles: float) -> Stage:
        """Add the stage unless present; keep the larger service time."""
        if name in self.stages:
            stage = self.stages[name]
            stage.service_cycles = max(stage.service_cycles, service_cycles)
            return stage
        return self.add_stage(name, service_cycles)

    def add_node(
        self,
        stage: str,
        preds: tuple[int, ...] | list[int] = (),
        service_override: float | None = None,
        label: str = "",
    ) -> int:
        if stage not in self.stages:
            raise SimulationError(f"unknown stage {stage!r}")
        for p in preds:
            if not 0 <= p < len(self.nodes):
                raise SimulationError(f"bad predecessor index {p}")
        node = Node(len(self.nodes), stage, tuple(preds), service_override, label)
        self.nodes.append(node)
        return node.index

    def service_of(self, node: Node) -> float:
        if node.service_override is not None:
            return node.service_override
        return self.stages[node.stage].service_cycles

    def sources(self) -> list[int]:
        return [n.index for n in self.nodes if not n.preds]

    def sinks(self) -> list[int]:
        has_succ = set()
        for node in self.nodes:
            has_succ.update(node.preds)
        return [n.index for n in self.nodes if n.index not in has_succ]

    def initiation_interval(self) -> float:
        """Analytic steady-state II: the busiest stage's service per task."""
        per_stage: dict[str, float] = {}
        for node in self.nodes:
            per_stage[node.stage] = per_stage.get(node.stage, 0.0) + self.service_of(node)
        return max(per_stage.values()) if per_stage else 0.0

    def critical_path_cycles(
        self,
        transfer_cycles: float = 0.0,
        startup_cycles: float | None = None,
    ) -> float:
        """Longest path latency (a lower bound on task latency).

        With ``startup_cycles`` set, stages stream element-wise through
        their FIFOs (HLS dataflow): a successor starts once the first
        elements arrive, so the path cost per hop is the startup, and the
        full service only counts at the end of each chain.
        """
        n = len(self.nodes)
        first_out = [0.0] * n
        last_out = [0.0] * n
        for node in self.nodes:                 # nodes are topologically ordered
            service = self.service_of(node)
            startup = service if startup_cycles is None else min(
                startup_cycles, service
            )
            ready = max(
                (first_out[p] + transfer_cycles for p in node.preds), default=0.0
            )
            first_out[node.index] = ready + startup
            last_in = max(
                (last_out[p] + transfer_cycles for p in node.preds), default=0.0
            )
            last_out[node.index] = max(ready + service, last_in + startup)
        return max(last_out, default=0.0)


@dataclass
class JobSpec:
    """One task instance pushed through the graph."""

    release_cycle: float = 0.0
    #: Indices of jobs whose completion gates this job's start (Fig 13's
    #: serial sub-tasks, e.g. RK4 stages).
    after_jobs: tuple[int, ...] = ()


@dataclass
class SimulationResult:
    """Timing measurements of one simulation run."""

    job_start: list[float]
    job_finish: list[float]
    stage_busy: dict[str, float]
    max_queue: dict[str, int]
    makespan: float
    overflowed_fifos: list[str] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.job_finish)

    def latency(self, job: int = 0) -> float:
        return self.job_finish[job] - self.job_start[job]

    def mean_latency(self) -> float:
        total = sum(f - s for s, f in zip(self.job_start, self.job_finish))
        return total / max(len(self.job_finish), 1)

    def measured_interval(self) -> float:
        """Steady-state completion spacing (measured II)."""
        finishes = sorted(self.job_finish)
        if len(finishes) < 2:
            return 0.0
        # Skip the fill phase: use the second half of completions.
        half = len(finishes) // 2
        span = finishes[-1] - finishes[half]
        count = len(finishes) - 1 - half
        return span / max(count, 1)

    def utilization(self, stage: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stage_busy.get(stage, 0.0) / self.makespan


def simulate(
    graph: DataflowGraph,
    jobs: list[JobSpec],
    *,
    transfer_cycles: float = 1.0,
    fifo_capacity: int | None = None,
    startup_cycles: float | None = 2.0,
) -> SimulationResult:
    """Run the event-driven simulation.

    Stages serve visits in readiness order (FIFO).  With ``startup_cycles``
    set (the default), FIFO streams carry data element-wise — the HLS
    dataflow behaviour the paper's RTPs rely on: a successor becomes ready
    when its predecessors have produced their *first* elements
    (``startup_cycles`` after they start), while a task's results are only
    complete at its *last* output.  Stage occupancy is always the full
    service time, so throughput is unaffected by streaming; latency is.
    ``startup_cycles=None`` gives classic store-and-forward behaviour.
    """
    n_nodes = len(graph.nodes)
    n_jobs = len(jobs)
    if n_jobs == 0:
        return SimulationResult([], [], {}, {}, 0.0)

    sinks = set(graph.sinks())
    sources = graph.sources()
    job_children: dict[int, list[int]] = {}
    pending_jobs: list[int] = [0] * n_jobs
    for j, spec in enumerate(jobs):
        pending_jobs[j] = len(spec.after_jobs)
        for dep in spec.after_jobs:
            if not 0 <= dep < n_jobs:
                raise SimulationError(f"job {j}: bad dependency {dep}")
            job_children.setdefault(dep, []).append(j)

    succs: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    for node in graph.nodes:
        for p in node.preds:
            succs[p].append(node.index)

    remaining = [[len(graph.nodes[n].preds) for n in range(n_nodes)]
                 for _ in range(n_jobs)]
    remaining_sinks = [len(sinks)] * n_jobs
    # Per (job, node): time of the last output element (set at dispatch).
    last_out: list[dict[int, float]] = [dict() for _ in range(n_jobs)]
    queues = {name: FifoStream(name, fifo_capacity) for name in graph.stages}
    busy: dict[str, bool] = {name: False for name in graph.stages}
    stage_busy_time: dict[str, float] = {name: 0.0 for name in graph.stages}

    job_start = [float("nan")] * n_jobs
    job_finish = [0.0] * n_jobs

    # Event kinds: 0 = visit ready, 1 = first output (wake successors),
    # 2 = stage release, 3 = sink data complete.
    events: list[tuple[float, int, int, tuple]] = []
    counter = 0

    def push_event(time: float, kind: int, payload: tuple) -> None:
        nonlocal counter
        counter += 1
        heapq.heappush(events, (time, counter, kind, payload))

    def release_job(j: int, time: float) -> None:
        start = max(time, jobs[j].release_cycle)
        job_start[j] = start
        for src in sources:
            push_event(start, 0, (j, src))

    for j, spec in enumerate(jobs):
        if pending_jobs[j] == 0:
            release_job(j, spec.release_cycle)

    def dispatch(stage_name: str, now: float) -> None:
        queue = queues[stage_name]
        if busy[stage_name] or not queue:
            return
        visit = queue.pop()
        busy[stage_name] = True
        job, node_index = visit.job, visit.node
        node = graph.nodes[node_index]
        service = graph.service_of(node)
        startup = service if startup_cycles is None else min(
            startup_cycles, service
        )
        start = max(now, visit.ready_time)
        stage_busy_time[stage_name] += service
        first_out = start + startup
        if node.preds:
            last_in = max(
                last_out[job][p] + transfer_cycles for p in node.preds
            )
        else:
            last_in = start
        data_done = max(start + service, last_in + startup)
        last_out[job][node_index] = data_done
        push_event(first_out, 1, (job, node_index))
        push_event(start + service, 2, (job, node_index))
        if node_index in sinks:
            push_event(data_done, 3, (job, node_index))

    makespan = 0.0
    while events:
        time, _, kind, payload = heapq.heappop(events)
        job, node_index = payload
        node = graph.nodes[node_index]
        if kind == 0:                                   # visit ready
            queues[node.stage].push(time, job, node_index)
            dispatch(node.stage, time)
        elif kind == 1:                                 # first output
            for succ in succs[node_index]:
                remaining[job][succ] -= 1
                if remaining[job][succ] == 0:
                    push_event(time + transfer_cycles, 0, (job, succ))
        elif kind == 2:                                 # stage release
            busy[node.stage] = False
            makespan = max(makespan, time)
            dispatch(node.stage, time)
        else:                                           # sink data complete
            makespan = max(makespan, time)
            remaining_sinks[job] -= 1
            job_finish[job] = max(job_finish[job], time)
            if remaining_sinks[job] == 0:
                for child in job_children.get(job, []):
                    pending_jobs[child] -= 1
                    if pending_jobs[child] == 0:
                        release_job(child, job_finish[job])

    if any(pending_jobs[j] > 0 for j in range(n_jobs)):
        raise SimulationError("job dependency cycle: some jobs never released")

    overflowed = [q.name for q in queues.values() if q.overflowed]
    return SimulationResult(
        job_start=job_start,
        job_finish=job_finish,
        stage_busy=stage_busy_time,
        max_queue={name: q.max_occupancy for name, q in queues.items()},
        makespan=makespan,
        overflowed_fifos=overflowed,
    )


def analytic_batch_makespan(
    graph: DataflowGraph,
    n_jobs: int,
    transfer_cycles: float = 1.0,
    startup_cycles: float | None = 2.0,
) -> float:
    """Fast saturated-pipeline estimate: latency + (n-1) * II.

    Cross-validated against :func:`simulate` in the tests; used for very
    large batches (Fig 17's 8192) where event-by-event simulation is
    unnecessarily slow.
    """
    latency = graph.critical_path_cycles(transfer_cycles, startup_cycles)
    return latency + max(n_jobs - 1, 0) * graph.initiation_interval()
