"""ASCII visualization of pipeline activity.

Renders a stage-occupancy timeline from a simulation trace — handy for
seeing the Round-Trip Pipeline fill, the round trip itself (forward stages
go busy before backward stages), SAP branch multiplexing, and the Fig 13
dependency bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sim import DataflowGraph, JobSpec, simulate


@dataclass
class StageTrace:
    """Busy intervals of one stage: (start, end, job)."""

    stage: str
    intervals: list[tuple[float, float, int]]


def trace_stages(
    graph: DataflowGraph,
    jobs: list[JobSpec],
    *,
    transfer_cycles: float = 1.0,
    startup_cycles: float | None = 3.0,
) -> tuple[list[StageTrace], float]:
    """Simulate and record per-stage busy intervals.

    The simulator exposes stage busy totals but not intervals; rather than
    complicate it, we run it once for the ground-truth job timings and then
    replay the deterministic dispatch policy (readiness order per stage)
    to reconstruct each visit's busy window.
    """
    intervals: dict[str, list[tuple[float, float, int]]] = {
        name: [] for name in graph.stages
    }
    result = simulate(
        graph, jobs,
        transfer_cycles=transfer_cycles,
        startup_cycles=startup_cycles,
    )
    # Recompute per-visit schedules deterministically (same policy as the
    # simulator: readiness order per stage).
    import heapq

    n_jobs = len(jobs)
    succs: dict[int, list[int]] = {i: [] for i in range(len(graph.nodes))}
    for node in graph.nodes:
        for p in node.preds:
            succs[p].append(node.index)
    remaining = [[len(graph.nodes[k].preds) for k in range(len(graph.nodes))]
                 for _ in range(n_jobs)]
    stage_free: dict[str, float] = {name: 0.0 for name in graph.stages}
    events: list[tuple[float, int, int, int]] = []
    counter = 0
    for j in range(n_jobs):
        for src in graph.sources():
            counter += 1
            heapq.heappush(
                events, (result.job_start[j], counter, j, src)
            )
    waiting: dict[str, list] = {name: [] for name in graph.stages}
    # Simple greedy replay in event order; approximates the simulator's
    # schedule closely enough for visualization.
    while events:
        time, _, job, node_index = heapq.heappop(events)
        node = graph.nodes[node_index]
        service = graph.service_of(node)
        startup = service if startup_cycles is None else min(
            startup_cycles, service
        )
        start = max(time, stage_free[node.stage])
        stage_free[node.stage] = start + service
        intervals[node.stage].append((start, start + service, job))
        first_out = start + startup
        for succ in succs[node_index]:
            remaining[job][succ] -= 1
            if remaining[job][succ] == 0:
                counter += 1
                heapq.heappush(
                    events, (first_out + transfer_cycles, counter, job, succ)
                )
    traces = [StageTrace(name, sorted(iv)) for name, iv in intervals.items()]
    return traces, result.makespan


def render_timeline(
    traces: list[StageTrace],
    makespan: float,
    *,
    width: int = 72,
    max_stages: int = 40,
) -> str:
    """Render stage occupancy as ASCII art (one row per stage).

    Busy slots show the job id (mod 10); '.' is idle.
    """
    if makespan <= 0:
        return "(empty timeline)"
    scale = width / makespan
    lines = []
    name_width = max((len(t.stage) for t in traces[:max_stages]), default=8)
    for trace in traces[:max_stages]:
        row = ["."] * width
        for start, end, job in trace.intervals:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale)))
            for x in range(lo, hi):
                row[x] = str(job % 10)
        lines.append(f"{trace.stage.rjust(name_width)} |{''.join(row)}|")
    if len(traces) > max_stages:
        lines.append(f"... ({len(traces) - max_stages} more stages)")
    return "\n".join(lines)


def pipeline_timeline(
    graph: DataflowGraph,
    n_jobs: int = 4,
    *,
    transfer_cycles: float = 1.0,
    startup_cycles: float | None = 3.0,
    width: int = 72,
) -> str:
    """Convenience: simulate ``n_jobs`` and render the timeline."""
    jobs = [JobSpec() for _ in range(n_jobs)]
    traces, makespan = trace_stages(
        graph, jobs,
        transfer_cycles=transfer_cycles,
        startup_cycles=startup_cycles,
    )
    busy = [t for t in traces if t.intervals]
    busy.sort(key=lambda t: t.intervals[0][0])
    return render_timeline(busy, makespan, width=width)
