"""The Dadu-RBD accelerator model (the paper's primary contribution)."""

from repro.core.accelerator import DaduRBD
from repro.core.config import (
    PAPER_CONFIG,
    ROBOMORPHIC_CLOCK_HZ,
    AcceleratorConfig,
    NumericsConfig,
    SAPConfig,
)
from repro.core.costmodel import CostModel, SubmoduleKind
from repro.core.functions import (
    DATAFLOW_PROGRAMS,
    BatchProfile,
    DataflowPass,
    MicroInstruction,
    TaskRequest,
    TaskResult,
)
from repro.core.resources import ResourceModel, ResourceReport
from repro.core.saps import BranchArray, SAPOrganization, organize
from repro.core.scheduler import (
    independent_batch,
    rk4_sensitivity_jobs,
    serial_chains,
    staggered_batch,
)
from repro.core.explore import (
    DesignPoint,
    best_feasible_point,
    sweep_design_space,
)
from repro.core.visualize import pipeline_timeline, render_timeline, trace_stages
from repro.core.sim import (
    DataflowGraph,
    JobSpec,
    SimulationResult,
    analytic_batch_makespan,
    simulate,
)

__all__ = [
    "AcceleratorConfig",
    "BatchProfile",
    "BranchArray",
    "CostModel",
    "DATAFLOW_PROGRAMS",
    "DaduRBD",
    "DataflowGraph",
    "DataflowPass",
    "DesignPoint",
    "JobSpec",
    "MicroInstruction",
    "NumericsConfig",
    "PAPER_CONFIG",
    "ROBOMORPHIC_CLOCK_HZ",
    "ResourceModel",
    "ResourceReport",
    "SAPConfig",
    "SAPOrganization",
    "SimulationResult",
    "SubmoduleKind",
    "TaskRequest",
    "TaskResult",
    "analytic_batch_makespan",
    "best_feasible_point",
    "independent_batch",
    "organize",
    "pipeline_timeline",
    "render_timeline",
    "rk4_sensitivity_jobs",
    "serial_chains",
    "simulate",
    "staggered_batch",
    "sweep_design_space",
    "trace_stages",
]
