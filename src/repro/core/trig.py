"""Global Trigonometric Module (Section V-B2).

The hardware precomputes ``sin q`` / ``cos q`` for every joint with a
range-reduced Taylor expansion, fully pipelined.  This module reproduces
that arithmetic so the functional path sees the same approximation error
the FPGA would produce.
"""

from __future__ import annotations

import math

import numpy as np

_TWO_PI = 2.0 * math.pi
_HALF_PI = math.pi / 2.0


def _range_reduce(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reduce angles to [-pi/4, pi/4] plus a quadrant index 0..3."""
    x = np.asarray(x, dtype=float)
    x = np.mod(x + math.pi, _TWO_PI) - math.pi           # [-pi, pi)
    quadrant = np.round(x / _HALF_PI).astype(int)        # -2..2
    reduced = x - quadrant * _HALF_PI
    return reduced, np.mod(quadrant, 4)


def _taylor_sin(x: np.ndarray, order: int) -> np.ndarray:
    """sin via odd Taylor terms up to x**order (order >= 1)."""
    term = x.copy()
    total = term.copy()
    power = 1
    while power + 2 <= order:
        term = -term * x * x / ((power + 1) * (power + 2))
        total += term
        power += 2
    return total


def _taylor_cos(x: np.ndarray, order: int) -> np.ndarray:
    """cos via even Taylor terms up to x**order."""
    term = np.ones_like(x)
    total = term.copy()
    power = 0
    while power + 2 <= order:
        term = -term * x * x / ((power + 1) * (power + 2))
        total += term
        power += 2
    return total


def sincos(q: np.ndarray, order: int = 9) -> tuple[np.ndarray, np.ndarray]:
    """Approximate (sin q, cos q) with range reduction + Taylor series.

    Worst-case error on the reduced interval: ~3.5e-6 at order 7 and
    ~2.4e-8 at order 9 (the shipped default) — at or below the fixed-point
    quantization step, which is why the paper's module can use a short
    unrolled series.
    """
    reduced, quadrant = _range_reduce(q)
    s = _taylor_sin(reduced, order)
    c = _taylor_cos(reduced, order)
    sin_out = np.where(
        quadrant == 0, s,
        np.where(quadrant == 1, c, np.where(quadrant == 2, -s, -c)),
    )
    cos_out = np.where(
        quadrant == 0, c,
        np.where(quadrant == 1, -s, np.where(quadrant == 2, -c, s)),
    )
    return sin_out, cos_out


def max_error(order: int, samples: int = 10001) -> float:
    """Worst-case |sincos - exact| over a dense sweep (used in tests and to
    justify the module's Taylor order choice)."""
    q = np.linspace(-2.0 * _TWO_PI, 2.0 * _TWO_PI, samples)
    s, c = sincos(q, order)
    return float(
        max(np.abs(s - np.sin(q)).max(), np.abs(c - np.cos(q)).max())
    )


def effective_angles(q: np.ndarray, order: int = 9) -> np.ndarray:
    """The angles the hardware *effectively* computes with.

    Building a rotation from approximate (sin, cos) equals building it from
    the exact trig of ``atan2(sin~, cos~)`` up to a second-order radius
    error; the accelerator's functional path uses this to inject the trig
    module's error into full dynamics evaluations.
    """
    s, c = sincos(np.asarray(q, dtype=float), order)
    return np.arctan2(s, c)
