"""Accelerator configuration.

One :class:`AcceleratorConfig` fixes everything a Vitis build would fix:
clock frequency, pipeline targets, FIFO sizing, numerics, and which SAP
optimizations are enabled.  The defaults model the paper's shipped design
point (XCVU9P at 125 MHz, Section VI); the ablation benchmarks flip
individual switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NumericsConfig:
    """Datapath numerics (Section IV-B2).

    The datapath uses fixed-point add/sub/mul with the float-trick
    reciprocal; the Global Trigonometric Module evaluates Taylor series of
    the given order.
    """

    fixed_point: bool = True
    integer_bits: int = 16
    fraction_bits: int = 20
    taylor_order: int = 9          # highest power kept in sin/cos series
    reciprocal_refinements: int = 2

    def __post_init__(self) -> None:
        if self.integer_bits < 2 or self.fraction_bits < 4:
            raise ConfigurationError("fixed-point format too small")
        if self.taylor_order < 1:
            raise ConfigurationError("taylor_order must be >= 1")


@dataclass(frozen=True)
class SAPConfig:
    """Structure-Adaptive Pipeline switches (Section V-C)."""

    share_symmetric_branches: bool = True     # time-division multiplexing
    reroot_tree: bool = True                  # Fig 11c depth balancing
    split_floating_base: bool = True          # Section V-C5
    branch_induced_sparsity: bool = True      # Section V-C4


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full build configuration for one robot."""

    clock_hz: float = 125e6                   # paper: 125 MHz on XCVU9P
    ii_target_cycles: int = 10                # II budget: light stages (Rf/Rb)
    #: II budget for the area-hungry stages (Df/Db/Mb/Mf).  None means
    #: "same as ii_target_cycles"; the auto-fit tuner raises only this one,
    #: so cheap functions (ID) keep full throughput on big robots while
    #: derivative/mass-matrix pipelines trade throughput for area.
    ii_target_heavy_cycles: int | None = None
    transfer_cycles: int = 1                  # FIFO hop latency
    #: First-element latency of a streaming stage (HLS dataflow): successors
    #: wake up this many cycles after a producer starts, not after it ends.
    stream_startup_cycles: float = 3.0
    frontend_cycles: int = 2                  # decode / input-stream stages
    trig_cycles: int = 3                      # Global Trigonometric Module
    encode_cycles: int = 2
    fifo_capacity: int = 64                   # per-stream bypass buffer slots
    io_bandwidth_bytes_per_s: float = 32e9    # paper: capped at 32 GB/s
    word_bytes: int = 4
    schedule_parallelism: int = 32            # Schedule Module control lanes
    #: Auto-tune ii_target_cycles upward until the design fits dsp_budget
    #: (the paper tunes each robot's build the same way, Section VI).
    auto_fit_ii: bool = True
    dsp_budget: float = 0.66
    numerics: NumericsConfig = field(default_factory=NumericsConfig)
    sap: SAPConfig = field(default_factory=SAPConfig)
    #: Recompute X in the backward submodules instead of buffering and
    #: transferring it from the forward pass (Section IV-A2): a few extra
    #: multiplies per backward stage buy much smaller FIFO payloads.
    reupdate_transforms: bool = True
    lazy_update: bool = True                  # Section IV-A3
    incremental_columns: bool = True          # Section IV-A4
    sparse_datapath: bool = True              # Section IV-A1
    #: Implement FD with the ABA algorithm on the Backward-Forward Module
    #: (the paper's stated-but-unimplemented option, Section V-B4): lower
    #: FD latency, extra area on the Mb/Mf stages.
    enable_aba_fd: bool = False
    #: Instantiate the whole SAP this many times (Section VI-A: "If we want
    #: to further improve throughput, we can instantiate multiple SAPs").
    sap_replicas: int = 1

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if self.ii_target_cycles < 1:
            raise ConfigurationError("ii_target_cycles must be >= 1")
        if self.fifo_capacity < 2:
            raise ConfigurationError("fifo_capacity must be >= 2")
        if self.sap_replicas < 1:
            raise ConfigurationError("sap_replicas must be >= 1")

    @property
    def heavy_ii_cycles(self) -> int:
        if self.ii_target_heavy_cycles is None:
            return self.ii_target_cycles
        return self.ii_target_heavy_cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def with_(self, **changes) -> "AcceleratorConfig":
        """A modified copy (convenience for ablations)."""
        return replace(self, **changes)


#: The paper's shipped configuration.
PAPER_CONFIG = AcceleratorConfig()

#: Robomorphic ran the same FPGA at 56 MHz (Table II).
ROBOMORPHIC_CLOCK_HZ = 56e6
