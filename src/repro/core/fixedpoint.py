"""Fixed-point arithmetic substrate (Section IV-B2).

The datapath uses fixed-point add/sub/mul; the one awkward operation is the
reciprocal in MMinvGen (Algorithm 2, line 5), which the paper handles by
converting to floating point, seeding from the exponent, refining with
Newton-Raphson, and converting back (after Istoan & Pasca).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point Q(integer_bits).(fraction_bits) format."""

    integer_bits: int = 16
    fraction_bits: int = 20

    def __post_init__(self) -> None:
        if self.total_bits > 62:
            raise ConfigurationError("fixed-point format wider than 62 bits")

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.fraction_bits + 1   # + sign

    @property
    def scale(self) -> float:
        return float(2**self.fraction_bits)

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    @property
    def max_value(self) -> float:
        return (2 ** (self.integer_bits + self.fraction_bits) - 1) / self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.integer_bits + self.fraction_bits)) / self.scale

    def quantize(self, x: np.ndarray | float) -> np.ndarray | float:
        """Round to the representable grid, saturating at the range limits."""
        arr = np.asarray(x, dtype=float)
        q = np.clip(
            np.round(arr * self.scale) / self.scale,
            self.min_value,
            self.max_value,
        )
        if np.isscalar(x) or arr.ndim == 0:
            return float(q)
        return q

    def quantization_error_bound(self) -> float:
        """Half an LSB: the worst rounding error inside the range."""
        return 0.5 * self.resolution


def float_reciprocal_seed(x: float) -> float:
    """Initial reciprocal estimate from the floating-point exponent.

    Mirrors the hardware trick: interpret the float's exponent ``e`` and
    seed with ``2**-e`` scaled by a linear fit on the mantissa (accurate to
    ~2^-5, enough for two Newton refinements to reach single precision).
    """
    if x == 0.0:
        raise ZeroDivisionError("reciprocal of zero")
    mantissa, exponent = np.frexp(x)          # x = mantissa * 2**exponent
    # Linear approximation of 1/m on [0.5, 1): 1/m ~ 2.9142 - 2*m is the
    # classic minimax fit.
    seed_mantissa = 2.9142135623730951 - 2.0 * abs(mantissa)
    seed = seed_mantissa * 2.0 ** (-exponent)
    return seed if x > 0 else -seed


def fixed_reciprocal(
    x: float,
    fmt: FixedPointFormat,
    refinements: int = 2,
) -> float:
    """Reciprocal of a fixed-point value via the float-trick + Newton.

    Each Newton step ``r <- r (2 - x r)`` doubles the accurate bits; the
    result is re-quantized to the datapath format.
    """
    x_q = float(fmt.quantize(x))
    if x_q == 0.0:
        raise ZeroDivisionError("reciprocal of zero after quantization")
    r = float_reciprocal_seed(x_q)
    for _ in range(refinements):
        r = r * (2.0 - x_q * r)
    return float(fmt.quantize(r))


def quantize_request(
    fmt: FixedPointFormat,
    *arrays: np.ndarray | None,
) -> tuple[np.ndarray | None, ...]:
    """Quantize a tuple of optional input arrays (the Decode Module)."""
    return tuple(None if a is None else fmt.quantize(a) for a in arrays)
