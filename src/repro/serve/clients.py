"""Traffic generators that drive the service like real robot hosts.

Two client shapes bracket the paper's application space:

* :class:`OpenLoopClient` — Fig 15's methodology at the service level: a
  Poisson request stream at a target rate (independent MPC sampling
  points arriving from many robots), submitted without waiting for
  results.  Measures the latency distribution under a sustained load.
* :class:`ClosedLoopClient` — Fig 2's MPC loop: one robot submitting an
  FD request, waiting for the result, integrating its state forward and
  submitting again.  Round-trip latency bounds the achievable control
  frequency (Section VI-B).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.apps.workloads import poisson_arrival_times
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.serve.request import ServiceOverloaded
from repro.serve.service import DynamicsService


@dataclass
class ClientReport:
    """What one client run observed."""

    submitted: int
    rejected: int
    completed: int
    wall_latencies_s: list[float] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        if not self.wall_latencies_s:
            return 0.0
        return float(np.mean(self.wall_latencies_s))


class OpenLoopClient:
    """Poisson open-loop load: submit at arrival times, collect at the end."""

    def __init__(self, service: DynamicsService, robot: str,
                 function: RBDFunction = RBDFunction.FD,
                 rate_rps: float = 10_000.0, seed: int = 0) -> None:
        self.service = service
        self.robot = robot
        self.function = function
        self.rate_rps = rate_rps
        self.seed = seed

    def run(self, count: int, time_scale: float = 1.0) -> ClientReport:
        """Submit ``count`` requests; ``time_scale`` compresses the clock
        (0 disables inter-arrival sleeping entirely for max-pressure runs).
        """
        model = load_robot(self.robot)
        rng = np.random.default_rng(self.seed)
        arrivals = poisson_arrival_times(self.rate_rps, count, seed=self.seed)
        futures: list[Future] = []
        rejected = 0
        start = time.monotonic()
        for k in range(count):
            if time_scale > 0:
                delay = start + arrivals[k] * time_scale - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            q, qd = model.random_state(rng)
            try:
                futures.append(self.service.submit(
                    self.robot, self.function, q, qd,
                    rng.normal(size=model.nv),
                ))
            except ServiceOverloaded:
                rejected += 1
        self.service.flush()
        # submitted counts *accepted* submissions, matching
        # ClosedLoopClient; rejected requests are reported separately.
        report = ClientReport(submitted=len(futures), rejected=rejected,
                              completed=0)
        for f in futures:
            result = f.result(timeout=60.0)
            report.completed += 1
            report.wall_latencies_s.append(result.wall_latency_s)
        return report


class ClosedLoopClient:
    """One simulated robot: FD round trips with Euler integration between."""

    def __init__(self, service: DynamicsService, robot: str,
                 dt: float = 0.01, seed: int = 0) -> None:
        self.service = service
        self.robot = robot
        self.dt = dt
        self.seed = seed

    def run(self, steps: int) -> ClientReport:
        model = load_robot(self.robot)
        rng = np.random.default_rng(self.seed)
        q, qd = model.random_state(rng)
        report = ClientReport(submitted=0, rejected=0, completed=0)
        for _ in range(steps):
            tau = rng.normal(size=model.nv)
            try:
                future = self.service.submit(
                    self.robot, RBDFunction.FD, q, qd, tau
                )
                report.submitted += 1
            except ServiceOverloaded:
                report.rejected += 1
                continue
            result = future.result(timeout=60.0)
            report.completed += 1
            report.wall_latencies_s.append(result.wall_latency_s)
            qdd = result.value
            q = model.integrate(q, qd * self.dt)
            qd = qd + qdd * self.dt
        return report
