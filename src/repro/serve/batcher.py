"""Dynamic batching: coalesce single-state requests into accelerator loads.

The paper's throughput numbers (Fig 15-17) assume batches of ~256 tasks
keeping the pipelines full; a service facing independent clients has to
*manufacture* those batches.  The batcher groups pending requests by
``(robot, function)`` — only same-key requests can share a pipeline pass —
and flushes a group when it reaches ``max_batch`` (flush-on-full) or when
its oldest request has waited ``max_wait_s`` (flush-on-timeout), the
classic latency/throughput knob.

The batcher is a passive, explicitly-clocked data structure: callers pass
``now`` into :meth:`add` / :meth:`poll_expired`, which makes the flush
policies deterministic under test and leaves thread ownership to the
service runtime.  A bounded total queue provides backpressure: beyond
``max_pending`` requests, :meth:`add` raises
:class:`~repro.serve.request.ServiceOverloaded` and the rejection is
counted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.serve.request import ServeRequest, ServiceOverloaded


@dataclass(frozen=True)
class BatchPolicy:
    """The batcher's flush policy (the serve scheduler's configuration).

    With ``adaptive_wait`` enabled the effective flush timeout tracks
    recent occupancy (Clipper/TF-Serving style): every flush-on-full
    halves the wait (arrivals fill batches before the deadline, so
    waiting longer only adds latency) down to ``min_wait_s``, and every
    flush-on-timeout doubles it back up to ``max_wait_s`` (traffic is
    sparse again; trade latency for occupancy).
    """

    max_batch: int = 64
    max_wait_s: float = 2e-3
    max_pending: int = 4096
    #: Horizon-aware flush budget: a group also flushes when the summed
    #: *cost* of its requests (1 per plain request, the horizon ``T`` per
    #: rollout) reaches this bound, so long-horizon rollouts coalesce
    #: into proportionally narrower ``(n, T)`` slabs.  ``None`` disables
    #: the budget (count-only flushing).
    max_batch_cost: int | None = 8192
    #: Scheduler-config flag: adapt the effective wait to recent occupancy.
    adaptive_wait: bool = False
    #: Floor of the adaptive wait (only meaningful with ``adaptive_wait``).
    min_wait_s: float = 2.5e-4
    #: Ragged coalescing: when a queue flushes on timeout (or drain),
    #: fold in other pending *compatible* queues — plain requests for the
    #: same function on a different robot — up to ``max_batch``, so a
    #: heterogeneous-fleet load stops fragmenting into per-robot
    #: singleton batches.  The merged flush executes as one ragged batch
    #: (per-robot row segments; see
    #: :func:`repro.dynamics.batch.batch_evaluate_ragged`).
    coalesce: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.max_pending < self.max_batch:
            raise ValueError("max_pending must be >= max_batch")
        if self.max_batch_cost is not None and self.max_batch_cost < 1:
            raise ValueError("max_batch_cost must be >= 1 (or None)")
        if self.min_wait_s < 0:
            raise ValueError("min_wait_s must be >= 0")
        if self.adaptive_wait and self.min_wait_s > self.max_wait_s:
            raise ValueError("min_wait_s must be <= max_wait_s")


@dataclass
class BatcherStats:
    """Counters describing how batches were formed."""

    accepted: int = 0
    rejected: int = 0
    flushed_full: int = 0
    flushed_timeout: int = 0
    flushed_drain: int = 0
    #: Requests that bypassed the batcher via the urgent fast path.
    urgent: int = 0
    #: Flushes that merged >= 2 distinct (robot, function) queues into
    #: one ragged batch (``BatchPolicy.coalesce``).
    flushed_merged: int = 0
    #: Requests shed from the pending queues because their deadline
    #: passed before they flushed (:meth:`DynamicBatcher.shed_expired`).
    shed: int = 0
    #: Total distinct queues drained across all flushes (== flush count
    #: when nothing merges; the fragmentation telemetry divides this by
    #: the flush count to report mean queues folded per batch).
    queues_flushed: int = 0
    #: Batch-occupancy histogram: flushed size -> count.
    occupancy: dict[int, int] = field(default_factory=dict)

    @property
    def flushes(self) -> int:
        return self.flushed_full + self.flushed_timeout + self.flushed_drain

    def record_flush(self, size: int, reason: str, queues: int = 1) -> None:
        self.occupancy[size] = self.occupancy.get(size, 0) + 1
        self.queues_flushed += queues
        if queues > 1:
            self.flushed_merged += 1
        if reason == "full":
            self.flushed_full += 1
        elif reason == "timeout":
            self.flushed_timeout += 1
        else:
            self.flushed_drain += 1


class DynamicBatcher:
    """Coalesces :class:`ServeRequest`s keyed by ``(robot, function)``."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        #: Groups are keyed by each request's ``.key`` — ``(robot,
        #: function)`` for plain requests, the richer rollout identity
        #: (robot, scheme, dt, horizon, contacts) for rollouts; the
        #: batcher only requires the key to hash.
        self._pending: dict[tuple, list] = {}
        self._pending_total = 0
        #: Summed request ``cost`` per pending group (horizon-aware flush).
        self._cost_by_key: dict[tuple, int] = {}
        self._lock = threading.Lock()
        #: Count of pending requests carrying a deadline — lets the
        #: shed sweep and the flusher's tick tightening short-circuit
        #: when no queued request can expire (the common case).
        self._deadlines_pending = 0
        #: Per-key adaptive flush timeout (absent key == max_wait_s).  The
        #: wait adapts per (robot, function) stream: a hot key that fills
        #: batches early must not collapse the coalescing window of a
        #: sparse key sharing the batcher.
        self._wait_by_key: dict[tuple, float] = {}
        self.stats = BatcherStats()

    def _wait_for(self, key: tuple) -> float:
        return self._wait_by_key.get(key, self.policy.max_wait_s)

    @property
    def effective_wait_s(self) -> float:
        """The tightest flush timeout currently in force across keys
        (== ``max_wait_s`` unless ``adaptive_wait`` has shrunk one)."""
        with self._lock:
            if not self._wait_by_key:
                return self.policy.max_wait_s
            return min(self._wait_by_key.values())

    def __len__(self) -> int:
        with self._lock:
            return self._pending_total

    def add(self, request: ServeRequest, now: float,
            extra_pending: int = 0) -> list[ServeRequest] | None:
        """Queue a request; returns a flushed batch if its key filled up.

        Requests keep submission order within a key, so a returned batch's
        order matches the order in which its futures were handed out.
        ``extra_pending`` counts queued work held outside the batcher
        (the service's outstanding chains) against the same bound.
        """
        with self._lock:
            if self._pending_total + extra_pending >= self.policy.max_pending:
                self.stats.rejected += 1
                raise ServiceOverloaded(
                    f"request queue full ({self.policy.max_pending} pending)"
                )
            request.arrival_s = now
            key = request.key
            group = self._pending.setdefault(key, [])
            group.append(request)
            self._pending_total += 1
            cost = self._cost_by_key.get(key, 0) + getattr(request, "cost", 1)
            self._cost_by_key[key] = cost
            if getattr(request, "deadline_s", None) is not None:
                self._deadlines_pending += 1
            self.stats.accepted += 1
            budget = self.policy.max_batch_cost
            if len(group) >= self.policy.max_batch or (
                budget is not None and cost >= budget
            ):
                return self._flush_locked(key, "full")
            return None

    def poll_expired(self, now: float) -> list[list[ServeRequest]]:
        """Flush every key whose oldest request has waited the effective
        timeout (``max_wait_s``, or less under ``adaptive_wait``).

        With ``policy.coalesce`` each timeout flush also folds in other
        pending compatible queues (same function, different robot, plain
        requests) up to ``max_batch`` — those queues would otherwise sit
        until their own deadline and then fragment into separate small
        batches."""
        with self._lock:
            expired = [
                key for key, group in self._pending.items()
                if group and now - group[0].arrival_s >= self._wait_for(key)
            ]
            if not self.policy.coalesce:
                return [self._flush_locked(key, "timeout") for key in expired]
            flushes = []
            for key in expired:
                if self._pending.get(key):   # not absorbed by an earlier merge
                    flushes.append(self._flush_coalesced_locked(key, "timeout"))
            return flushes

    @property
    def has_deadlines(self) -> bool:
        """True iff any pending request carries a deadline (cheap guard
        for the flusher's shed sweep)."""
        with self._lock:
            return self._deadlines_pending > 0

    def shed_expired(self, now: float) -> list[ServeRequest]:
        """Remove deadline-expired requests from the pending queues.

        Returns the shed requests so the caller (the service flusher)
        can resolve their futures with
        :class:`~repro.serve.request.DeadlineExceededError`; emptied
        queues are dropped entirely so they stop driving the flush
        clock.
        """
        with self._lock:
            if not self._deadlines_pending:
                return []
            shed: list[ServeRequest] = []
            for key in list(self._pending):
                group = self._pending[key]
                keep = [r for r in group if not r.expired(now)]
                if len(keep) == len(group):
                    continue
                expired = [r for r in group if r.expired(now)]
                shed.extend(expired)
                self._pending_total -= len(expired)
                self._deadlines_pending -= sum(
                    1 for r in expired
                    if getattr(r, "deadline_s", None) is not None
                )
                if keep:
                    self._pending[key] = keep
                    self._cost_by_key[key] = sum(
                        getattr(r, "cost", 1) for r in keep
                    )
                else:
                    del self._pending[key]
                    self._cost_by_key.pop(key, None)
            self.stats.shed += len(shed)
            return shed

    def drain(self) -> list[list[ServeRequest]]:
        """Flush everything (service shutdown)."""
        with self._lock:
            if not self.policy.coalesce:
                keys = [k for k, g in self._pending.items() if g]
                return [self._flush_locked(key, "drain") for key in keys]
            flushes = []
            while True:
                keys = [k for k, g in self._pending.items() if g]
                if not keys:
                    return flushes
                flushes.append(self._flush_coalesced_locked(keys[0], "drain"))

    def active_queues(self) -> int:
        """Number of distinct (robot, function) queues currently pending."""
        with self._lock:
            return sum(1 for g in self._pending.values() if g)

    def fragmentation(self) -> dict:
        """Queue fragmentation view: distinct active (robot, function)
        queues against the flushed-batch record.

        ``queues_per_flush`` is the mean number of distinct queues folded
        into each executed batch — 1.0 under the fragmented (per-key)
        policy, > 1.0 once ``coalesce`` merges heterogeneous-fleet
        traffic into ragged batches.
        """
        with self._lock:
            active = sum(1 for g in self._pending.values() if g)
            s = self.stats
            flushes = s.flushes
            return {
                "active_queues": active,
                "flushed_batches": flushes,
                "queues_flushed": s.queues_flushed,
                "flushed_merged": s.flushed_merged,
                "queues_per_flush": (
                    s.queues_flushed / flushes if flushes else 0.0
                ),
            }

    def next_deadline(self) -> float | None:
        """Earliest ``arrival_s + per-key wait`` over all pending groups."""
        with self._lock:
            deadlines = [
                g[0].arrival_s + self._wait_for(key)
                for key, g in self._pending.items() if g
            ]
            if not deadlines:
                return None
            return min(deadlines)

    def _pop_queue_locked(self, key: tuple) -> list[ServeRequest]:
        batch = self._pending.pop(key)
        self._cost_by_key.pop(key, None)
        self._pending_total -= len(batch)
        if self._deadlines_pending:
            self._deadlines_pending -= sum(
                1 for r in batch if getattr(r, "deadline_s", None) is not None
            )
        return batch

    @staticmethod
    def _mergeable(key: tuple, other: tuple) -> bool:
        """Queues that may share one ragged batch: plain-request keys
        (``(robot, function)``) for the same function.  Rollout keys and
        any richer identities never merge — their operands don't stack
        across keys."""
        return (
            len(key) == 2 and len(other) == 2 and key[1] == other[1]
        )

    def _flush_coalesced_locked(self, key: tuple,
                                reason: str) -> list[ServeRequest]:
        """Flush ``key`` and fold in compatible queues up to
        ``max_batch``; the result is queue-grouped (one contiguous
        per-robot run of requests per source queue), which is exactly
        the segment order the ragged execute path expects."""
        batch = self._pop_queue_locked(key)
        queues = 1
        for other in list(self._pending):
            if other == key or not self._mergeable(key, other):
                continue
            group = self._pending.get(other)
            if not group or len(batch) + len(group) > self.policy.max_batch:
                continue
            batch.extend(self._pop_queue_locked(other))
            queues += 1
        self.stats.record_flush(len(batch), reason, queues=queues)
        self._adapt_wait_locked(key, reason)
        return batch

    def _flush_locked(self, key: tuple, reason: str) -> list[ServeRequest]:
        batch = self._pop_queue_locked(key)
        self.stats.record_flush(len(batch), reason)
        self._adapt_wait_locked(key, reason)
        return batch

    def _adapt_wait_locked(self, key: tuple, reason: str) -> None:
        if self.policy.adaptive_wait:
            # Multiplicative-decrease on full (arrivals beat the deadline:
            # stop paying for the wait), multiplicative-increase back on
            # timeout (traffic went sparse again).  Per key: each
            # (robot, function) stream adapts to its own arrival rate.
            wait = self._wait_for(key)
            if reason == "full":
                self._wait_by_key[key] = max(self.policy.min_wait_s,
                                             wait / 2.0)
            elif reason == "timeout":
                # The max() guard lets the wait recover even from a
                # min_wait_s of zero.
                self._wait_by_key[key] = min(self.policy.max_wait_s,
                                             max(wait, 1e-5) * 2.0)
