"""Dynamic batching: coalesce single-state requests into accelerator loads.

The paper's throughput numbers (Fig 15-17) assume batches of ~256 tasks
keeping the pipelines full; a service facing independent clients has to
*manufacture* those batches.  The batcher groups pending requests by
``(robot, function)`` — only same-key requests can share a pipeline pass —
and flushes a group when it reaches ``max_batch`` (flush-on-full) or when
its oldest request has waited ``max_wait_s`` (flush-on-timeout), the
classic latency/throughput knob.

The batcher is a passive, explicitly-clocked data structure: callers pass
``now`` into :meth:`add` / :meth:`poll_expired`, which makes the flush
policies deterministic under test and leaves thread ownership to the
service runtime.  A bounded total queue provides backpressure: beyond
``max_pending`` requests, :meth:`add` raises
:class:`~repro.serve.request.ServiceOverloaded` and the rejection is
counted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.serve.request import ServeRequest, ServiceOverloaded


@dataclass(frozen=True)
class BatchPolicy:
    """The batcher's flush policy (the serve scheduler's configuration).

    With ``adaptive_wait`` enabled the effective flush timeout tracks
    recent occupancy (Clipper/TF-Serving style): every flush-on-full
    halves the wait (arrivals fill batches before the deadline, so
    waiting longer only adds latency) down to ``min_wait_s``, and every
    flush-on-timeout doubles it back up to ``max_wait_s`` (traffic is
    sparse again; trade latency for occupancy).
    """

    max_batch: int = 64
    max_wait_s: float = 2e-3
    max_pending: int = 4096
    #: Horizon-aware flush budget: a group also flushes when the summed
    #: *cost* of its requests (1 per plain request, the horizon ``T`` per
    #: rollout) reaches this bound, so long-horizon rollouts coalesce
    #: into proportionally narrower ``(n, T)`` slabs.  ``None`` disables
    #: the budget (count-only flushing).
    max_batch_cost: int | None = 8192
    #: Scheduler-config flag: adapt the effective wait to recent occupancy.
    adaptive_wait: bool = False
    #: Floor of the adaptive wait (only meaningful with ``adaptive_wait``).
    min_wait_s: float = 2.5e-4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.max_pending < self.max_batch:
            raise ValueError("max_pending must be >= max_batch")
        if self.max_batch_cost is not None and self.max_batch_cost < 1:
            raise ValueError("max_batch_cost must be >= 1 (or None)")
        if self.min_wait_s < 0:
            raise ValueError("min_wait_s must be >= 0")
        if self.adaptive_wait and self.min_wait_s > self.max_wait_s:
            raise ValueError("min_wait_s must be <= max_wait_s")


@dataclass
class BatcherStats:
    """Counters describing how batches were formed."""

    accepted: int = 0
    rejected: int = 0
    flushed_full: int = 0
    flushed_timeout: int = 0
    flushed_drain: int = 0
    #: Requests that bypassed the batcher via the urgent fast path.
    urgent: int = 0
    #: Batch-occupancy histogram: flushed size -> count.
    occupancy: dict[int, int] = field(default_factory=dict)

    def record_flush(self, size: int, reason: str) -> None:
        self.occupancy[size] = self.occupancy.get(size, 0) + 1
        if reason == "full":
            self.flushed_full += 1
        elif reason == "timeout":
            self.flushed_timeout += 1
        else:
            self.flushed_drain += 1


class DynamicBatcher:
    """Coalesces :class:`ServeRequest`s keyed by ``(robot, function)``."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        #: Groups are keyed by each request's ``.key`` — ``(robot,
        #: function)`` for plain requests, the richer rollout identity
        #: (robot, scheme, dt, horizon, contacts) for rollouts; the
        #: batcher only requires the key to hash.
        self._pending: dict[tuple, list] = {}
        self._pending_total = 0
        #: Summed request ``cost`` per pending group (horizon-aware flush).
        self._cost_by_key: dict[tuple, int] = {}
        self._lock = threading.Lock()
        #: Per-key adaptive flush timeout (absent key == max_wait_s).  The
        #: wait adapts per (robot, function) stream: a hot key that fills
        #: batches early must not collapse the coalescing window of a
        #: sparse key sharing the batcher.
        self._wait_by_key: dict[tuple, float] = {}
        self.stats = BatcherStats()

    def _wait_for(self, key: tuple) -> float:
        return self._wait_by_key.get(key, self.policy.max_wait_s)

    @property
    def effective_wait_s(self) -> float:
        """The tightest flush timeout currently in force across keys
        (== ``max_wait_s`` unless ``adaptive_wait`` has shrunk one)."""
        with self._lock:
            if not self._wait_by_key:
                return self.policy.max_wait_s
            return min(self._wait_by_key.values())

    def __len__(self) -> int:
        with self._lock:
            return self._pending_total

    def add(self, request: ServeRequest, now: float,
            extra_pending: int = 0) -> list[ServeRequest] | None:
        """Queue a request; returns a flushed batch if its key filled up.

        Requests keep submission order within a key, so a returned batch's
        order matches the order in which its futures were handed out.
        ``extra_pending`` counts queued work held outside the batcher
        (the service's outstanding chains) against the same bound.
        """
        with self._lock:
            if self._pending_total + extra_pending >= self.policy.max_pending:
                self.stats.rejected += 1
                raise ServiceOverloaded(
                    f"request queue full ({self.policy.max_pending} pending)"
                )
            request.arrival_s = now
            key = request.key
            group = self._pending.setdefault(key, [])
            group.append(request)
            self._pending_total += 1
            cost = self._cost_by_key.get(key, 0) + getattr(request, "cost", 1)
            self._cost_by_key[key] = cost
            self.stats.accepted += 1
            budget = self.policy.max_batch_cost
            if len(group) >= self.policy.max_batch or (
                budget is not None and cost >= budget
            ):
                return self._flush_locked(key, "full")
            return None

    def poll_expired(self, now: float) -> list[list[ServeRequest]]:
        """Flush every key whose oldest request has waited the effective
        timeout (``max_wait_s``, or less under ``adaptive_wait``)."""
        with self._lock:
            expired = [
                key for key, group in self._pending.items()
                if group and now - group[0].arrival_s >= self._wait_for(key)
            ]
            return [self._flush_locked(key, "timeout") for key in expired]

    def drain(self) -> list[list[ServeRequest]]:
        """Flush everything (service shutdown)."""
        with self._lock:
            keys = [k for k, g in self._pending.items() if g]
            return [self._flush_locked(key, "drain") for key in keys]

    def next_deadline(self) -> float | None:
        """Earliest ``arrival_s + per-key wait`` over all pending groups."""
        with self._lock:
            deadlines = [
                g[0].arrival_s + self._wait_for(key)
                for key, g in self._pending.items() if g
            ]
            if not deadlines:
                return None
            return min(deadlines)

    def _flush_locked(self, key: tuple, reason: str) -> list[ServeRequest]:
        batch = self._pending.pop(key)
        self._cost_by_key.pop(key, None)
        self._pending_total -= len(batch)
        self.stats.record_flush(len(batch), reason)
        if self.policy.adaptive_wait:
            # Multiplicative-decrease on full (arrivals beat the deadline:
            # stop paying for the wait), multiplicative-increase back on
            # timeout (traffic went sparse again).  Per key: each
            # (robot, function) stream adapts to its own arrival rate.
            wait = self._wait_for(key)
            if reason == "full":
                self._wait_by_key[key] = max(self.policy.min_wait_s,
                                             wait / 2.0)
            elif reason == "timeout":
                # The max() guard lets the wait recover even from a
                # min_wait_s of zero.
                self._wait_by_key[key] = min(self.policy.max_wait_s,
                                             max(wait, 1e-5) * 2.0)
        return batch
