"""Per-robot artifact cache for the dynamics service.

Serving a robot requires a stack of derived state: the parsed
:class:`RobotModel`, the SAPS organization (branch grouping + timing
model), the configured :class:`DaduRBD` instance, the per-function
dataflow graphs, the mass-matrix sparsity structure and the host-side
execution plan (:class:`~repro.dynamics.plan.ExecutionPlan`, the level
schedule + workspace the ``"compiled"`` engine runs on).  All of it is a
pure function of the robot name, and all of it is expensive relative to
one dynamics call (the auto-fit II search alone dominates a single FD
evaluation by orders of magnitude).  The cache builds each robot's
artifacts once, under a lock, and hands out the shared read-only bundle
to every shard — the software analogue of programming one bitstream and
cloning it across FPGA cards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.accelerator import DaduRBD
from repro.core.config import AcceleratorConfig, PAPER_CONFIG
from repro.core.saps import SAPOrganization
from repro.core.sim import DataflowGraph
from repro.dynamics.functions import RBDFunction
from repro.dynamics.plan import ExecutionPlan, plan_for
from repro.model.library import load_robot
from repro.model.robot import RobotModel


def mass_matrix_sparsity(model: RobotModel) -> np.ndarray:
    """Boolean (nv, nv) mask of structurally nonzero mass-matrix entries.

    ``H[i, j]`` can be nonzero only when DOFs i and j lie on one
    root-to-leaf path (Featherstone's branch-induced sparsity) — the
    structure the paper's BF module exploits and a cheap cached artifact
    for host-side solvers that want to skip the zero blocks.
    """
    mask = np.zeros((model.nv, model.nv), dtype=bool)
    for i in range(model.nb):
        own = list(range(model.dof_slice(i).start, model.dof_slice(i).stop))
        support = model.supporting_dofs(i)
        mask[np.ix_(own, support)] = True
        mask[np.ix_(support, own)] = True
    return mask


@dataclass
class RobotArtifacts:
    """Everything the service derives from one robot name."""

    name: str
    model: RobotModel
    accelerator: DaduRBD
    organization: SAPOrganization
    mass_matrix_mask: np.ndarray
    #: Host-side execution plan the "compiled" engine runs on (shares the
    #: process-wide plan cache, so shard workers hit the same instance).
    plan: ExecutionPlan
    build_seconds: float
    graphs: dict[RBDFunction, DataflowGraph] = field(default_factory=dict)
    #: Execution plans keyed by array backend name; ``plans["numpy"]`` is
    #: :attr:`plan`.  Shards configured for a device backend resolve
    #: their plan here, so one robot compiles once per backend.
    plans: dict[str, ExecutionPlan] = field(default_factory=dict)
    #: Rollout plans keyed by (scheme, engine name, backend name) —
    #: trajectory workspaces and resolved engines for the rollout-as-a-
    #: service path (shares the process-wide ``rollout_plan_for`` memo).
    rollout_plans: dict[tuple, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.plans.setdefault(self.plan.backend.name, self.plan)

    def graph(self, function: RBDFunction) -> DataflowGraph:
        """The per-function pipeline config, memoized on first use."""
        if function not in self.graphs:
            self.graphs[function] = self.accelerator.graph(function)
        return self.graphs[function]

    def plan_on(self, backend: str | None) -> ExecutionPlan:
        """The execution plan on ``backend`` (built/memoized on first use;
        shares the process-wide ``plan_for`` memo)."""
        plan = plan_for(self.model, backend)
        self.plans.setdefault(plan.backend.name, plan)
        return plan

    def rollout_plan(self, scheme: str, engine=None, backend: str | None = None):
        """The rollout plan for this robot on (scheme, engine, backend).

        Built/memoized on first use; shares the process-wide
        :func:`repro.rollout.rollout_plan_for` memo so shard workers for
        one robot reuse one set of trajectory workspaces per thread.
        """
        from repro.rollout import rollout_plan_for

        plan = rollout_plan_for(self.model, scheme, engine, backend)
        key = (scheme, plan.engine.name, plan.backend_name)
        self.rollout_plans.setdefault(key, plan)
        return plan


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    build_seconds_total: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactCache:
    """Thread-safe, build-once cache of :class:`RobotArtifacts`."""

    def __init__(self, config: AcceleratorConfig = PAPER_CONFIG) -> None:
        self.config = config
        self._artifacts: dict[str, RobotArtifacts] = {}
        self._lock = threading.Lock()
        # One build lock per robot: a cold build (~100s of ms for the
        # auto-fit search) must not stall cache hits for other robots,
        # which only need the map lock.
        self._build_locks: dict[str, threading.Lock] = {}
        self.stats = CacheStats()

    def get(self, name: str,
            backend: str | None = None) -> RobotArtifacts:
        """The artifact bundle for ``name``, building it on first request.

        ``backend`` additionally ensures the robot's execution plan on
        that array backend is compiled into the bundle (plans are keyed
        by backend in :attr:`RobotArtifacts.plans`).
        """
        with self._lock:
            cached = self._artifacts.get(name)
            if cached is not None:
                self.stats.hits += 1
            else:
                build_lock = self._build_locks.setdefault(
                    name, threading.Lock()
                )
        if cached is not None:
            # Plan compilation happens *outside* the map lock (it can
            # cost as much as a robot build on big trees; plan_for has
            # its own dedup lock, and the plans dict write is atomic).
            if backend is not None and backend not in cached.plans:
                cached.plan_on(backend)
            return cached
        with build_lock:
            with self._lock:   # a concurrent builder may have won the race
                cached = self._artifacts.get(name)
                if cached is not None:
                    self.stats.hits += 1
            if cached is not None:
                if backend is not None and backend not in cached.plans:
                    cached.plan_on(backend)
                return cached
            start = time.perf_counter()
            model = load_robot(name)
            accelerator = DaduRBD(model, self.config)
            artifacts = RobotArtifacts(
                name=name,
                model=model,
                accelerator=accelerator,
                organization=accelerator.org,
                mass_matrix_mask=mass_matrix_sparsity(model),
                plan=plan_for(model),
                build_seconds=time.perf_counter() - start,
            )
            if backend is not None:
                artifacts.plan_on(backend)
            with self._lock:
                self.stats.misses += 1
                self.stats.build_seconds_total += artifacts.build_seconds
                self._artifacts[name] = artifacts
            return artifacts

    def warm(self, names: list[str],
             functions: list[RBDFunction] | None = None) -> None:
        """Pre-build robots (and optionally their pipeline graphs) so the
        first live request does not pay the build latency."""
        for name in names:
            artifacts = self.get(name)
            for f in functions or []:
                artifacts.graph(f)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._artifacts

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts)
