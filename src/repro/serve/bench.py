"""Shared serve-benchmark harness: load driver + result-table rendering.

Used by the ``python -m repro serve-bench`` CLI subcommand and by
``benchmarks/bench_serve.py`` (both pytest and direct-run modes), so the
measurement protocol and the table shape exist in exactly one place.
"""

from __future__ import annotations

from repro.dynamics.functions import RBDFunction

#: The serve-bench result columns, shared by every renderer of
#: run_serve_load stats.
SERVE_TABLE_COLUMNS = ("occupancy", "p50 (ms)", "p99 (ms)",
                       "modeled thr (M/s)")


def run_serve_load(
    robot: str,
    function: RBDFunction,
    requests: int,
    max_batch: int,
    max_wait_s: float,
    shards: int,
    shard_policy: str,
    seed: int = 0,
) -> dict:
    """Drive the serve runtime with a max-pressure open-loop load and
    return its stats dict."""
    from repro.serve.batcher import BatchPolicy
    from repro.serve.clients import OpenLoopClient
    from repro.serve.service import DynamicsService

    policy = BatchPolicy(
        max_batch=max_batch, max_wait_s=max_wait_s,
        max_pending=max(4096, requests),
    )
    with DynamicsService(policy, n_shards=shards, shard_policy=shard_policy,
                         warm_robots=[robot]) as service:
        client = OpenLoopClient(service, robot, function, seed=seed)
        report = client.run(requests, time_scale=0.0)
        stats = service.stats()
    stats["client_mean_latency_ms"] = report.mean_latency_s * 1e3
    return stats


def serve_table_row(stats: dict) -> tuple:
    """One run_serve_load stats dict -> the SERVE_TABLE_COLUMNS cells."""
    return (stats["mean_batch_occupancy"], stats["wall_p50_ms"],
            stats["wall_p99_ms"], stats["modeled_throughput_rps"] / 1e6)


def format_serve_table(rows: list[tuple[str, dict]],
                       title: str = "serve-bench") -> str:
    """Render (label, run_serve_load stats) rows via repro.reporting."""
    from repro.reporting import Table

    table = Table(title, ["mode", *SERVE_TABLE_COLUMNS])
    for label, s in rows:
        table.add_row(label, *serve_table_row(s))
    return table.render()
