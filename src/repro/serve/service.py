"""The dynamics service runtime: request -> batch -> shard -> result.

:class:`DynamicsService` is the top-level facade.  Clients submit single
robot states for any Table-I function and get a future back; internally
the runtime coalesces same-``(robot, function)`` requests with the
:class:`~repro.serve.batcher.DynamicBatcher`, executes each coalesced
batch on a :class:`~repro.serve.pool.ShardPool` shard via
:func:`repro.dynamics.batch.batch_evaluate` on the service's execution
engine (the structure-compiled ``"compiled"`` engine by default — level
-scheduled kernels over the robot's cached execution plan; see
:mod:`repro.dynamics.engine` and :mod:`repro.dynamics.plan`), charges
the batch's modeled cost to the shard via the accelerator's cycle
simulation, and resolves the per-request futures in submission order.
External forces ride along per request (link -> ``(6,)``) and are
stacked per batch; the engine that served each batch is recorded in the
metrics registry.

Serial chains (RK4-style sensitivity steps) bypass the batcher and are
dispatched as one unit whose cycle accounting uses
:func:`repro.core.scheduler.serial_chains` job dependencies (Fig 13);
``submit(..., urgent=True)`` requests bypass it the same way, trading
occupancy for immediate dispatch.

Failure semantics (see the README's "Failure semantics" section): a
request with a ``deadline_s`` is shed — resolved with
:class:`~repro.serve.request.DeadlineExceededError` — if it expires in
the batcher or while its batch waits for a shard.  A batch whose
execution fails walks a recovery pipeline: capability/resource errors
degrade the shard's engine down the chain process -> compiled ->
vectorized -> loop and re-run; transient errors retry with exponential
backoff + jitter (:class:`~repro.serve.request.RetryPolicy`),
*re-placed* through the pool so they route around the failing shard;
poison errors bisect the batch (split-and-retry) until the single bad
request is isolated and failed alone, its future carrying a
:class:`~repro.serve.request.BatchExecutionError` with the original
exception as ``__cause__``.  Consecutive shard failures trip a
per-shard circuit breaker (placement skips open shards; the flusher
probes quarantined shards in the background and closes the breaker on
success).  Every path keeps the invariant: a future handed to a client
is always resolved — by result, error, shed, or shutdown.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from random import Random

import numpy as np

from repro.backend import BackendCapabilityError, get_backend
from repro.core.config import AcceleratorConfig, PAPER_CONFIG
from repro.core.functions import BatchProfile
from repro.core.scheduler import serial_chains
from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.batch import RaggedBatch, batch_evaluate_ragged, stack_rows
from repro.dynamics.engine import (
    CompiledEngine,
    Engine,
    default_engine_explicit,
    get_engine,
)
from repro.dynamics.functions import RBDFunction
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.cache import ArtifactCache, RobotArtifacts
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import (
    ShardConfig,
    ShardPool,
    ShardState,
    accelerator_desc,
    engine_throughput_hint,
)
from repro.model.library import load_robot
from repro.obs import Telemetry, Tracer
from repro.rollout import SCHEMES, concat_windows
from repro import faults as _faults
from repro.serve.request import (
    BatchExecutionError,
    DeadlineExceededError,
    RetryPolicy,
    RolloutRequest,
    RolloutServeResult,
    ServeError,
    ServeRequest,
    ServeResult,
    ServiceClosed,
    ServiceOverloaded,
    StreamCancelledError,
)


class DynamicsService:
    """Dynamics-as-a-service over the modeled Dadu-RBD accelerator pool."""

    #: Engine degradation chain: when a shard's engine raises a
    #: capability or resource error, the shard drops to the next engine
    #: and the batch re-runs.  Unknown (custom) engines degrade to
    #: "compiled"; "loop" is terminal (nothing simpler exists).
    _DEGRADE_NEXT = {
        "jit": "process",
        "process": "compiled",
        "compiled": "vectorized",
        "vectorized": "loop",
        "loop": None,
    }
    #: Exception types that trigger degradation instead of retry — the
    #: same engine would just fail the same way again.
    _DEGRADABLE = (BackendCapabilityError, MemoryError, NotImplementedError)

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        n_shards: int = 2,
        shard_policy: str = "round_robin",
        config: AcceleratorConfig = PAPER_CONFIG,
        warm_robots: list[str] | None = None,
        engine: str | Engine | None = None,
        backend: str | None = None,
        shard_configs: list[ShardConfig] | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.05,
    ) -> None:
        self.policy = policy or BatchPolicy()
        self.config = config
        #: Optional request tracer: when set, every accepted request is
        #: stamped with a trace ID at submission and its queue wait and
        #: batch execution are booked as spans.  Install the same tracer
        #: via :func:`repro.obs.install` to nest engine-kernel spans
        #: under the batch-execute spans.
        self.tracer = tracer
        #: Execution engine shard workers evaluate batches with: the
        #: structure-compiled "compiled" engine, unless overridden by the
        #: ``engine`` argument or an explicitly pinned process default
        #: (REPRO_ENGINE env var / ``set_default_engine``).
        if engine is None and not default_engine_explicit():
            engine = "compiled"
        self.engine = get_engine(engine)
        #: Default array backend shard plans execute on (validated here
        #: so a typo or an uninstalled runtime fails at construction).
        self.backend_name = get_backend(backend).name
        self.cache = ArtifactCache(config)
        self.batcher = DynamicBatcher(self.policy)
        self.pool = ShardPool(n_shards, shard_policy, shard_configs,
                              breaker_threshold=breaker_threshold,
                              breaker_cooldown_s=breaker_cooldown_s)
        #: Retry discipline for failed batches (see
        #: :class:`~repro.serve.request.RetryPolicy`).
        self.retry = retry or RetryPolicy()
        # Seeded jitter source: retry backoff is deterministic per
        # service instance, matching the fault injector's replayability.
        self._retry_rng = Random("serve-retry-jitter")
        self._retry_rng_lock = threading.Lock()
        #: Per-shard engine instances / backend names / accelerator
        #: configs and artifact caches, resolved from the shard configs
        #: (``None`` fields inherit the service defaults).  Shards with
        #: the same accelerator override share one cache — replicating a
        #: bitstream, not rebuilding it — and default shards share
        #: :attr:`cache`.
        self._shard_engines: list[Engine] = []
        self._shard_backends: list[str] = []
        self._shard_accels: list[AcceleratorConfig] = []
        self._shard_caches: list[ArtifactCache] = []
        override_caches: dict[AcceleratorConfig, ArtifactCache] = {}
        for index, shard_config in enumerate(self.pool.shard_configs):
            eng, backend_name = self._resolve_shard(shard_config)
            self._shard_engines.append(eng)
            self._shard_backends.append(backend_name)
            accel = shard_config.accelerator
            if accel is None:
                self._shard_accels.append(config)
                self._shard_caches.append(self.cache)
            else:
                self._shard_accels.append(accel)
                if accel not in override_caches:
                    override_caches[accel] = (
                        self.cache if accel == config
                        else ArtifactCache(accel)
                    )
                self._shard_caches.append(override_caches[accel])
            shard = self.pool.shards[index]
            shard.engine_name = eng.name
            shard.backend_name = backend_name
            shard.accel_desc = accelerator_desc(shard_config.accelerator)
            shard.weight = (
                shard_config.throughput_weight
                if shard_config.throughput_weight is not None
                else engine_throughput_hint(eng)
            )
            # The static prior seeds placement until real measurements
            # arrive; recalibrate_weights keeps it for unmeasured shards.
            shard.prior_weight = shard.weight
        self.metrics = MetricsRegistry()
        #: Memoized batch profiles keyed by (robot, accelerator config,
        #: function, n, chained) — the config is part of the key so two
        #: shards with different accelerator overrides never share cycle
        #: numbers.
        self._profiles: dict[tuple, BatchProfile] = {}
        self._profile_lock = threading.Lock()
        self._chain_counter = 0
        #: Requests dispatched to the pool but not yet executed.  Counted
        #: against max_pending alongside the batcher's queue, so the bound
        #: covers the whole in-service backlog, not just un-flushed work.
        self._dispatched_outstanding = 0
        self._counter_lock = threading.Lock()
        #: Every live future handed to a client, tracked from acceptance
        #: to resolution.  This is the zero-unresolved-futures ledger:
        #: close() resolves anything still here with ServeError after
        #: the pool drains, so no client ever hangs on shutdown.
        self._inflight: set[Future] = set()
        self._inflight_lock = threading.Lock()
        #: Most recent robot seen by submit — the background breaker
        #: probe evaluates a cheap M on it (None until traffic arrives).
        self._last_robot: str | None = None
        self._closed = False
        #: Set once the first close() has fully finished (pool drained,
        #: leftovers resolved).  Concurrent/repeated close() calls block
        #: on it instead of returning while the ledger is still being
        #: resolved — close is idempotent *and* a barrier.
        self._close_done = threading.Event()
        #: Serializes elastic-pool mutations (scale_up / scale_down): the
        #: per-shard engine/backend/cache tables must be extended before
        #: placement can see a new shard.
        self._scale_lock = threading.Lock()
        #: Cumulative admitted work in cost units (1 per plain request,
        #: the horizon per rollout) — the autoscaler's demand signal,
        #: sampled as a rate and compared against the pool's measured
        #: capacity.
        self._submitted_cost = 0
        #: Serializes enqueue against shutdown: a request either lands in
        #: the batcher before close() drains it, or observes _closed —
        #: never slips in after the final drain (which would orphan its
        #: future).
        self._lifecycle_lock = threading.Lock()
        self._wake = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-serve-flusher", daemon=True
        )
        if warm_robots:
            self.cache.warm(warm_robots)
        self._flusher.start()

    def _resolve_shard(self, shard_config: ShardConfig) -> tuple[Engine, str]:
        """Resolve one :class:`ShardConfig` to (engine instance, backend).

        A shard naming a non-default backend gets its own compiled-engine
        instance bound to that backend (the compiled engine is the
        backend-portable one); host-bound engines (loop, vectorized,
        process) always record ``"numpy"``.
        """
        backend = (
            get_backend(shard_config.backend)
            if shard_config.backend is not None
            else get_backend(self.backend_name)
        )
        backend_name = backend.name
        engine = (
            get_engine(shard_config.engine)
            if shard_config.engine is not None else self.engine
        )
        if engine.name == "compiled":
            # Fail at construction, not on the first batch: the compiled
            # engine's plans require in-place arrays (jax is immutable).
            if not backend.capabilities.inplace:
                raise BackendCapabilityError(
                    f"shard backend {backend_name!r} has immutable arrays;"
                    f" the {engine.name!r} engine requires an in-place"
                    " backend (numpy or cupy)"
                )
            if backend_name != getattr(engine, "backend_name", "numpy"):
                engine = CompiledEngine(backend=backend_name)
        elif engine.name == "jit":
            # The jit engine resolves its trace backend lazily (on the
            # first batch, where a BackendCapabilityError rides the
            # degradation chain); an explicit shard backend pins it.
            # Shard operands and artifact plan warming stay host-side —
            # the engine owns the device boundary — so record "numpy".
            if shard_config.backend is not None and backend_name != getattr(
                    engine, "backend_name", None):
                from repro.dynamics.jit import JitEngine

                engine = JitEngine(backend=backend_name)
            backend_name = "numpy"
        else:
            backend_name = "numpy"
        return engine, backend_name

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def _mark_trace(self, request) -> None:
        """Stamp an accepted request with a trace ID and submit time."""
        tracer = self.tracer
        if tracer is not None:
            request.trace_id = tracer.new_trace_id()
            request.trace_t0 = time.perf_counter()

    def _validate(self, request: ServeRequest) -> None:
        """Reject malformed inputs at the submitting caller.

        Validation must happen before the batcher: once a request is
        coalesced, a shape error would fail the whole batch and surface
        on innocent co-batched clients' futures.
        """
        model = load_robot(request.robot)
        nv = model.nv
        for label, operand in (("q", request.q), ("qd", request.qd),
                               ("u", request.u)):
            if operand is not None and np.shape(operand) != (nv,):
                raise ValueError(
                    f"{label} must have shape ({nv},) for robot "
                    f"{request.robot!r}, got {np.shape(operand)}"
                )
        if request.f_ext:
            if request.function in (RBDFunction.M, RBDFunction.MINV):
                raise ValueError(
                    f"f_ext is not accepted for {request.function.value} "
                    "requests (mass-matrix functions take no forces)"
                )
            for link, value in request.f_ext.items():
                if not 0 <= link < model.nb:
                    raise ValueError(
                        f"f_ext link index {link} out of range for robot "
                        f"{request.robot!r} (nb={model.nb})"
                    )
                if np.shape(value) != (6,):
                    raise ValueError(
                        f"f_ext[{link}] must have shape (6,), "
                        f"got {np.shape(value)}"
                    )
        if request.function is RBDFunction.DIFD:
            if request.minv is None:
                raise ValueError("diFD requests must carry minv")
            if np.shape(request.minv) != (nv, nv):
                raise ValueError(
                    f"minv must have shape ({nv}, {nv}), "
                    f"got {np.shape(request.minv)}"
                )
        elif request.minv is not None:
            # A stray minv would make this request un-stackable with its
            # minv-less batchmates in _execute.
            raise ValueError(
                f"minv is only accepted for diFD requests, "
                f"not {request.function.value}"
            )

    def submit(
        self,
        robot: str,
        function: RBDFunction,
        q: np.ndarray,
        qd: np.ndarray | None = None,
        u: np.ndarray | None = None,
        minv: np.ndarray | None = None,
        f_ext: dict[int, np.ndarray] | None = None,
        urgent: bool = False,
        deadline_s: float | None = None,
    ) -> Future:
        """Submit one request; resolves to a :class:`ServeResult`.

        ``f_ext`` maps link indices to ``(6,)`` external spatial forces
        (link frame); the batcher stacks them per coalesced batch, so
        force-carrying and force-free requests share a pipeline pass.

        ``urgent=True`` skips the dynamic batcher and dispatches the
        request immediately as a singleton batch, the same bypass serial
        chains use — for deadline-bound clients that must not pay the
        ``max_wait_s`` coalescing delay under sparse traffic.  Urgent
        requests still count against ``max_pending`` backpressure.

        ``deadline_s`` is a per-request deadline in seconds from
        acceptance: if it passes before the request executes (in the
        batcher or waiting for a shard), the future resolves with
        :class:`~repro.serve.request.DeadlineExceededError` instead of
        occupying a pipeline pass nobody is waiting for.

        Raises :class:`ValueError` on malformed inputs,
        :class:`ServiceOverloaded` when the bounded queue is full
        (backpressure) and :class:`ServiceClosed` after shutdown.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        # Coerce names ("M") to members here: an unknown function must
        # fail the caller with ValueError, not strand a dispatched
        # batch whose failure path assumes RBDFunction fields.
        function = RBDFunction(function)
        request = ServeRequest(robot=robot, function=function,
                               q=np.asarray(q, dtype=float),
                               qd=qd, u=u, minv=minv, f_ext=f_ext,
                               urgent=urgent, deadline_s=deadline_s)
        self._validate(request)
        self._mark_trace(request)
        self._last_robot = robot
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            with self._counter_lock:
                dispatched = self._dispatched_outstanding
                self._submitted_cost += 1
            if urgent:
                # Priority bypass: same backpressure bound, no coalescing.
                self._check_backpressure(1)
                request.arrival_s = time.monotonic()
                self.batcher.stats.accepted += 1
                self.batcher.stats.urgent += 1
                self._track(request)
                self._dispatch([request], chained=False)
                return request.future
            batch = self.batcher.add(request, time.monotonic(),
                                     extra_pending=dispatched)
            self._track(request)
            if batch is not None:
                self._dispatch(batch, chained=False)
            else:
                self._wake.set()
        return request.future

    def submit_many(self, requests: list[tuple], robot: str,
                    function: RBDFunction) -> list[Future]:
        """Submit ``(q, qd, u)`` tuples in order; futures in that order."""
        return [self.submit(robot, function, q, qd, u)
                for q, qd, u in requests]

    def submit_chain(
        self,
        robot: str,
        function: RBDFunction,
        qs: np.ndarray,
        qds: np.ndarray | None = None,
        us: np.ndarray | None = None,
    ) -> list[Future]:
        """Submit one serial chain of requests (e.g. the 4 RK4 stages).

        The chain bypasses the batcher: its steps execute together on one
        shard and the modeled timing honours the step-to-step dependency
        via :func:`repro.core.scheduler.serial_chains`, so a chain costs
        ``~length * latency`` instead of ``latency + (length-1) * II``.
        """
        qs = np.atleast_2d(np.asarray(qs, dtype=float))
        n = qs.shape[0]
        if n == 0:
            return []
        qds_arr = None if qds is None else np.atleast_2d(np.asarray(qds))
        us_arr = None if us is None else np.atleast_2d(np.asarray(us))
        with self._counter_lock:
            chain = self._chain_counter
            self._chain_counter += 1
        now = time.monotonic()
        requests = []
        for k in range(n):
            requests.append(ServeRequest(
                robot=robot, function=function, q=qs[k],
                qd=None if qds_arr is None else qds_arr[k],
                u=None if us_arr is None else us_arr[k],
                arrival_s=now, chain=chain, sequence=k,
            ))
        for r in requests:
            self._validate(r)
            self._mark_trace(r)
        self._last_robot = robot
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            # Chains bypass the batcher but not its backpressure: the
            # whole backlog (queued + dispatched) stays under one bound.
            self._check_backpressure(n)
            with self._counter_lock:
                self._submitted_cost += n
            for r in requests:
                self._track(r)
            self._dispatch(requests, chained=True)
        return [r.future for r in requests]

    def _validate_rollout(self, request: RolloutRequest) -> None:
        """Reject malformed rollout inputs at the submitting caller."""
        if request.scheme not in SCHEMES:
            raise ValueError(
                f"unknown rollout scheme {request.scheme!r}; choose from "
                f"{sorted(SCHEMES)}"
            )
        if request.dt <= 0:
            raise ValueError(f"dt must be > 0, got {request.dt}")
        model = load_robot(request.robot)
        nv = model.nv
        for label, operand in (("q0", request.q0), ("qd0", request.qd0)):
            if np.shape(operand) != (nv,):
                raise ValueError(
                    f"{label} must have shape ({nv},) for robot "
                    f"{request.robot!r}, got {np.shape(operand)}"
                )
        if request.controls.ndim != 2 or request.controls.shape[1] != nv \
                or request.controls.shape[0] < 1:
            raise ValueError(
                f"controls must have shape (T, {nv}) with T >= 1, "
                f"got {request.controls.shape}"
            )
        for contact in request.contacts:
            if not 0 <= contact.link < model.nb:
                raise ValueError(
                    f"contact link index {contact.link} out of range for "
                    f"robot {request.robot!r} (nb={model.nb})"
                )
        if request.contact_mask is not None:
            if not request.contacts:
                raise ValueError("contact_mask given without contacts")
            expected = (request.horizon, len(request.contacts))
            if np.shape(request.contact_mask) != expected:
                raise ValueError(
                    f"contact_mask must have shape {expected}, "
                    f"got {np.shape(request.contact_mask)}"
                )
        if request.sensitivities and request.contacts:
            raise ValueError(
                "sensitivities are not available for contact rollouts"
            )
        if request.window is not None:
            if request.window < 1:
                raise ValueError(
                    f"window must be >= 1, got {request.window}"
                )
            if request.sensitivities:
                raise ValueError(
                    "streaming windows are not available for sensitivity "
                    "rollouts (A/B matrices are whole-trajectory outputs)"
                )
        if request.f_ext:
            for link, value in request.f_ext.items():
                if not 0 <= link < model.nb:
                    raise ValueError(
                        f"f_ext link index {link} out of range for robot "
                        f"{request.robot!r} (nb={model.nb})"
                    )
                if np.shape(value) != (6,):
                    raise ValueError(
                        f"f_ext[{link}] must have shape (6,), "
                        f"got {np.shape(value)}"
                    )

    def submit_rollout(
        self,
        robot: str,
        q0: np.ndarray,
        qd0: np.ndarray,
        controls: np.ndarray,
        dt: float,
        scheme: str = "semi_implicit",
        contacts: list | None = None,
        contact_mask: np.ndarray | None = None,
        f_ext: dict[int, np.ndarray] | None = None,
        sensitivities: bool = False,
        urgent: bool = False,
        deadline_s: float | None = None,
        window: int | None = None,
        on_window=None,
    ) -> Future:
        """Submit one whole-trajectory rollout; resolves to a
        :class:`RolloutServeResult`.

        Rollouts batch by (robot, scheme, dt, horizon, contact set): the
        coalesced group executes as one ``(n, T, ...)`` slab on a shard's
        engine (:mod:`repro.rollout`).  The batcher's ``max_batch_cost``
        budget is horizon-aware — each rollout counts ``T`` toward the
        flush budget — and shard placement weighs rollouts by horizon.
        ``contact_mask`` is this request's per-step ``(T, c)`` activation
        schedule; ``f_ext`` maps link indices to ``(6,)`` external
        spatial forces applied at every step (force-free and
        force-carrying rollouts coalesce, like plain requests);
        ``urgent=True`` bypasses the batcher like plain urgent requests
        do; ``deadline_s`` sheds the rollout if it expires before
        execution (see :meth:`submit`).

        Streaming: ``window=W`` executes the rollout in windows of ``W``
        knots and calls ``on_window(t0, t1, trajectory, done)`` after
        each completed window (on the shard thread; the ``trajectory``
        is that window's :class:`~repro.rollout.TaskTrajectory` slice).
        The future still resolves with the full reassembled trajectory
        — bitwise identical to the non-windowed rollout, since the
        integrators are Markovian in the carried state.  Calling the
        returned future's ``cancel_stream()`` (attached for windowed
        submissions) abandons the unsimulated tail once every rollout in
        the coalesced batch is cancelled, resolving the future with
        :class:`~repro.serve.request.StreamCancelledError`.  Windows are
        part of the coalescing key, so only same-window rollouts share a
        slab.  Incompatible with ``sensitivities``.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        request = RolloutRequest(
            robot=robot, scheme=scheme,
            q0=np.asarray(q0, dtype=float),
            qd0=np.asarray(qd0, dtype=float),
            controls=np.asarray(controls, dtype=float),
            dt=float(dt),
            contacts=tuple(contacts or ()),
            contact_mask=(
                None if contact_mask is None
                else np.asarray(contact_mask, dtype=bool)
            ),
            f_ext=f_ext,
            sensitivities=sensitivities,
            urgent=urgent,
            deadline_s=deadline_s,
            window=None if window is None else int(window),
            on_window=on_window,
        )
        self._validate_rollout(request)
        if request.window is not None:
            # Hand the consumer a cancellation handle without exposing
            # the request record: futures accept ad-hoc attributes.
            request.future.cancel_stream = request.cancel_stream
        self._mark_trace(request)
        self._last_robot = robot
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            with self._counter_lock:
                dispatched = self._dispatched_outstanding
                self._submitted_cost += request.horizon
            if urgent:
                self._check_backpressure(1)
                request.arrival_s = time.monotonic()
                self.batcher.stats.accepted += 1
                self.batcher.stats.urgent += 1
                self._track(request)
                self._dispatch([request], chained=False)
                return request.future
            batch = self.batcher.add(request, time.monotonic(),
                                     extra_pending=dispatched)
            self._track(request)
            if batch is not None:
                self._dispatch(batch, chained=False)
            else:
                self._wake.set()
        return request.future

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Synchronously flush all pending groups (regardless of age)."""
        with self._lifecycle_lock:
            for batch in self.batcher.drain():
                self._dispatch(batch, chained=False)

    def close(self) -> None:
        """Drain pending work, stop the flusher, and shut the pool down.

        After the pool drains, any future still unresolved (stranded by
        a crashed recovery path or a retry that raced shutdown) is
        resolved with ``ServeError("service shut down")`` — clients
        never hang on a closed service.

        Idempotent and a barrier: concurrent callers block until the
        first closer has fully finished (pool drained, leftover futures
        resolved) instead of returning while the inflight ledger is
        still being emptied — an async shutdown that double-closes must
        not observe live futures after *any* ``close()`` returns.
        """
        with self._lifecycle_lock:
            already = self._closed
            self._closed = True
        if already:
            # A previous (possibly concurrent) closer owns the teardown;
            # wait for it so this return means "fully closed" too.
            self._close_done.wait(timeout=10.0)
            return
        try:
            self._wake.set()
            self._flusher.join(timeout=5.0)
            with self._lifecycle_lock:
                # Any concurrent submit has either enqueued by now (this
                # drain picks it up) or will observe _closed and raise.
                for batch in self.batcher.drain():
                    self._dispatch(batch, chained=False)
                self.pool.shutdown()
                with self._inflight_lock:
                    leftovers = list(self._inflight)
                    self._inflight.clear()
                for future in leftovers:
                    if future.done():
                        continue
                    try:
                        future.set_exception(ServeError("service shut down"))
                    except InvalidStateError:
                        pass
        finally:
            # Set even if teardown raised: blocked co-closers must not
            # hang on a failed close.
            self._close_done.set()

    def __enter__(self) -> "DynamicsService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def modeled_throughput_rps(self) -> float:
        """Sustained request throughput implied by the cycle model."""
        return self.metrics.modeled_throughput_rps(
            self.config.clock_hz, max(self.pool.n_active, 1)
        )

    def stats(self) -> dict:
        """Flat service-wide stats: metrics + batcher + cache + shards."""
        out = self.metrics.snapshot()
        fragmentation = self.batcher.fragmentation()
        out.update({
            "accepted": self.batcher.stats.accepted,
            "rejected": self.batcher.stats.rejected,
            "urgent": self.batcher.stats.urgent,
            "flushed_full": self.batcher.stats.flushed_full,
            "flushed_timeout": self.batcher.stats.flushed_timeout,
            "flushed_merged": self.batcher.stats.flushed_merged,
            "queues_per_flush": fragmentation["queues_per_flush"],
            "active_queues": fragmentation["active_queues"],
            "effective_wait_s": self.batcher.effective_wait_s,
            "batcher_shed": self.batcher.stats.shed,
            "engine": self.engine.name,
            "backend": self.backend_name,
            "shards": self.pool.describe(),
            "shard_health": [s.health for s in self.pool.shards],
            "breaker_opens": sum(
                s.breaker_opens for s in self.pool.shards
            ),
            "cache_hits": self.cache.stats.hits,
            "cache_misses": self.cache.stats.misses,
            "modeled_throughput_rps": self.modeled_throughput_rps(),
            "shard_busy_cycles": self.pool.busy_cycles(),
            "placement_events": len(self.pool.placement_events()),
            "active_shards": self.pool.n_active,
            "scale_events": len(self.pool.scale_events()),
            "submitted_cost": self.submitted_cost(),
        })
        return out

    def telemetry(self, telemetry: Telemetry | None = None) -> Telemetry:
        """Project the service's observable state into a
        :class:`~repro.obs.Telemetry` registry (Prometheus text via
        ``.prometheus()``, JSON via ``.to_json()``).

        Unifies the :class:`~repro.serve.metrics.MetricsRegistry` series
        (request/rollout latency summaries, batch-occupancy histogram,
        per-engine/backend/shard counters) with the batcher, artifact
        cache, and shard-pool gauges.
        """
        t = self.metrics.telemetry(telemetry)
        stats = self.batcher.stats
        t.counter("serve_accepted_total",
                  "Requests accepted by the batcher").set(stats.accepted)
        t.counter("serve_rejected_total",
                  "Requests rejected by backpressure").set(stats.rejected)
        t.counter("serve_urgent_total",
                  "Urgent batcher bypasses").set(stats.urgent)
        t.counter("serve_flushed_full_total",
                  "Batches flushed on size/cost budget"
                  ).set(stats.flushed_full)
        t.counter("serve_flushed_timeout_total",
                  "Batches flushed on deadline").set(stats.flushed_timeout)
        t.counter("serve_flushed_merged_total",
                  "Flushes that coalesced >= 2 queues into a ragged batch"
                  ).set(stats.flushed_merged)
        fragmentation = self.batcher.fragmentation()
        t.gauge("batcher_fragmentation",
                "Distinct active (robot, function) queues pending"
                ).set(fragmentation["active_queues"])
        t.gauge("batcher_queues_per_flush",
                "Mean distinct queues folded into each executed batch"
                ).set(fragmentation["queues_per_flush"])
        t.gauge("serve_effective_wait_seconds",
                "Current adaptive batching window"
                ).set(self.batcher.effective_wait_s)
        t.counter("cache_hits_total",
                  "Artifact-cache hits").set(self.cache.stats.hits)
        t.counter("cache_misses_total",
                  "Artifact-cache misses (bundle builds)"
                  ).set(self.cache.stats.misses)
        t.gauge("modeled_throughput_rps",
                "Sustained capacity implied by the cycle model"
                ).set(self.modeled_throughput_rps())
        health_code = {"healthy": 0, "half_open": 1, "open": 2,
                       "draining": 3, "removed": 4}
        for row in self.pool.describe():
            labels = {"shard": row["shard"]}
            t.gauge("shard_weight", "Placement throughput weight",
                    **labels).set(row["weight"])
            t.gauge("shard_busy_cycles", "Accumulated modeled busy cycles",
                    **labels).set(row["busy_cycles"])
            t.counter("shard_dispatched_requests_total",
                      "Requests dispatched to the shard",
                      **labels).set(row["dispatched_requests"])
            t.gauge("shard_health",
                    "Breaker state (0 healthy, 1 half-open, 2 open, "
                    "3 draining, 4 removed)",
                    **labels).set(health_code.get(row["health"], -1))
            t.counter("shard_failures_total",
                      "Batch failures recorded against the shard",
                      **labels).set(row["failures"])
            t.counter("shard_breaker_opens_total",
                      "Times the shard's circuit breaker opened",
                      **labels).set(row["breaker_opens"])
        t.counter("shard_placement_events_total",
                  "Placement decisions retained in the event log"
                  ).set(len(self.pool.placement_events()))
        t.gauge("pool_active_shards",
                "Shards currently in the pool (not scaled away)"
                ).set(self.pool.n_active)
        scale_events = self.pool.scale_events()
        t.counter("pool_scale_up_total",
                  "Elastic-pool shard additions").set(
            sum(1 for e in scale_events if e["action"] == "add"))
        t.counter("pool_scale_down_total",
                  "Elastic-pool shard removals").set(
            sum(1 for e in scale_events if e["action"] == "remove"))
        t.counter("serve_submitted_cost_total",
                  "Admitted work in cost units (autoscaler demand signal)"
                  ).set(self.submitted_cost())
        return t

    # ------------------------------------------------------------------
    # Elastic pool & admin surface
    # ------------------------------------------------------------------

    def submitted_cost(self) -> int:
        """Cumulative admitted work in cost units (1 per plain request,
        the horizon per rollout) — sampled as a rate, this is the demand
        signal the autoscaler compares against measured capacity."""
        with self._counter_lock:
            return self._submitted_cost

    def scale_up(self, shard_config: ShardConfig | None = None,
                 reason: str = "manual") -> int:
        """Grow the pool by one shard; returns the new shard's index.

        The per-shard engine/backend/accelerator/cache tables are
        extended *before* the pool makes the shard placeable, so a
        dispatch racing the scale-up can never index past them.  Shards
        with an accelerator override matching an existing shard share
        its artifact cache (replicating a bitstream, not rebuilding it).
        """
        with self._scale_lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            shard_config = shard_config or ShardConfig()
            eng, backend_name = self._resolve_shard(shard_config)
            accel = shard_config.accelerator
            if accel is None:
                accel, cache = self.config, self.cache
            else:
                cache = next(
                    (c for a, c in zip(self._shard_accels,
                                       self._shard_caches) if a == accel),
                    None,
                ) or (self.cache if accel == self.config
                      else ArtifactCache(accel))
            self._shard_engines.append(eng)
            self._shard_backends.append(backend_name)
            self._shard_accels.append(accel)
            self._shard_caches.append(cache)
            shard = self.pool.add_shard(shard_config, reason=reason)
            shard.engine_name = eng.name
            shard.backend_name = backend_name
            shard.accel_desc = accelerator_desc(shard_config.accelerator)
            shard.weight = (
                shard_config.throughput_weight
                if shard_config.throughput_weight is not None
                else engine_throughput_hint(eng)
            )
            shard.prior_weight = shard.weight
            return shard.index

    def scale_down(self, index: int | None = None, wait_s: float = 2.0,
                   reason: str = "manual") -> int:
        """Drain and permanently remove one shard; returns its index.

        Defaults to the highest-indexed active shard.  The shard drains
        first (placement stops, queued work finishes up to ``wait_s``),
        reusing the same machinery as admin drains; its slot stays in
        the pool with health ``removed`` so shard indices — and the
        engine/cache tables keyed by them — stay stable.  Refuses to
        remove the last active shard.
        """
        with self._scale_lock:
            if self.pool.n_active <= 1:
                raise ValueError("cannot remove the last active shard")
            if index is None:
                index = max(
                    i for i, s in enumerate(self.pool.shards)
                    if s.health != "removed"
                )
            if self.pool.shards[index].health == "removed":
                raise ValueError(f"shard {index} is already removed")
            self.pool.remove_shard(index, wait_s=wait_s, reason=reason)
            return index

    def drain_shard(self, index: int, wait_s: float | None = None) -> None:
        """Admin drain: stop placing on the shard, let its queue empty."""
        self.pool.drain(index, wait_s=wait_s)

    def restart_shard(self, index: int) -> None:
        """Admin restart: return a drained/quarantined shard to service."""
        self.pool.restart(index)

    def admin_state(self) -> dict:
        """Stable admin-facing snapshot of the serving plane.

        This is the schema the async admin endpoint serves: per-shard
        health/breaker/ledger rows (:meth:`ShardPool.describe` plus the
        live backlog), the elastic-pool event log, and the service-level
        counters an operator acts on.  Fields are additive-only.
        """
        shards = []
        for row, shard in zip(self.pool.describe(), self.pool.shards):
            row = dict(row)
            row["backlog"] = shard.backlog()[0]
            shards.append(row)
        with self._counter_lock:
            submitted_cost = self._submitted_cost
            dispatched = self._dispatched_outstanding
        return {
            "closed": self._closed,
            "shards": shards,
            "active_shards": self.pool.n_active,
            "scale_events": self.pool.scale_events(),
            "submitted_cost": submitted_cost,
            "dispatched_outstanding": dispatched,
            "queued": len(self.batcher),
            "accepted": self.batcher.stats.accepted,
            "rejected": self.batcher.stats.rejected,
            "shed": self.batcher.stats.shed,
            "breaker_opens": sum(
                s.breaker_opens for s in self.pool.shards
            ),
            "modeled_throughput_rps": self.modeled_throughput_rps(),
        }

    # ------------------------------------------------------------------
    # Runtime internals
    # ------------------------------------------------------------------

    def _flush_loop(self) -> None:
        tick = max(self.policy.max_wait_s / 4.0, 2.5e-4)
        while not self._closed:
            deadline = self.batcher.next_deadline()
            if deadline is None:
                # Idle default; tighten while deadline-carrying requests
                # are queued so shedding stays responsive, and while a
                # breaker is quarantining a shard so the probe fires
                # promptly after its cooldown.
                timeout = 0.05
                if self.batcher.has_deadlines or any(
                    s.health in ("open", "half_open")
                    for s in self.pool.shards
                ):
                    timeout = max(tick, 1e-3)
                self._wake.wait(timeout=timeout)
            else:
                delay = deadline - time.monotonic()
                if delay > 0:
                    self._wake.wait(timeout=min(delay, tick))
            self._wake.clear()
            now = time.monotonic()
            if self.batcher.has_deadlines:
                self._resolve_shed(self.batcher.shed_expired(now))
            for batch in self.batcher.poll_expired(now):
                self._dispatch(batch, chained=False)
            self._probe_quarantined(now)

    def _check_backpressure(self, n: int) -> None:
        """Reject batcher-bypassing work (chains, urgent requests) that
        would push the whole in-service backlog — dispatched plus queued —
        past ``max_pending``.  Caller holds ``_lifecycle_lock``."""
        with self._counter_lock:
            outstanding = self._dispatched_outstanding
        if outstanding + len(self.batcher) + n > self.policy.max_pending:
            self.batcher.stats.rejected += 1
            raise ServiceOverloaded(
                f"request queue full ({self.policy.max_pending} pending)"
            )

    def _track(self, request) -> None:
        """Enter an accepted request's future in the inflight ledger."""
        with self._inflight_lock:
            self._inflight.add(request.future)

    def _forget(self, request) -> None:
        """Drop a resolved request's future from the inflight ledger."""
        with self._inflight_lock:
            self._inflight.discard(request.future)

    def _resolve_shed(self, requests: list) -> None:
        """Resolve deadline-expired requests with DeadlineExceededError."""
        if not requests:
            return
        for r in requests:
            if not r.future.done():
                try:
                    r.future.set_exception(DeadlineExceededError(
                        f"deadline of {r.deadline_s * 1e3:.3g} ms passed "
                        f"before execution (robot={r.robot!r})"
                    ))
                except InvalidStateError:
                    pass
            self._forget(r)
        self.metrics.record_shed(len(requests))

    def _dispatch(self, batch: list, chained: bool) -> None:
        with self._counter_lock:
            self._dispatched_outstanding += len(batch)
        # Placement cost: 1 per plain request, the horizon per rollout —
        # a 64-step rollout occupies a shard like 64 pipeline tasks.
        cost = sum(getattr(r, "cost", 1) for r in batch)
        # Per-robot segment count of the placed batch (> 1 only for
        # coalesced ragged flushes); placement events record it.
        segments = 1 + sum(
            1 for a, b in zip(batch, batch[1:]) if a.robot != b.robot
        )
        try:
            self.pool.dispatch(
                len(batch),
                lambda shard: self._execute(shard, batch, chained),
                cost=cost, segments=segments,
            )
        except RuntimeError:
            # Pool executor already shut down (a retry raced close());
            # undo the outstanding claim and let the caller fail the
            # batch (or close() resolve the futures).
            with self._counter_lock:
                self._dispatched_outstanding -= len(batch)
            raise

    def _profile(self, artifacts: RobotArtifacts, function: RBDFunction,
                 n: int, chained: bool,
                 config: AcceleratorConfig | None = None) -> BatchProfile:
        """Cycle-accounting for an n-task batch, memoized per shape.

        ``config`` disambiguates bundles built under per-shard
        accelerator overrides (defaults to the service config)."""
        key = (artifacts.name, config or self.config, function, n, chained)
        with self._profile_lock:
            cached = self._profiles.get(key)
        if cached is not None:
            return cached
        jobs = serial_chains(1, n) if chained else None
        profile = artifacts.accelerator.profile_batch(function, n, jobs=jobs)
        with self._profile_lock:
            self._profiles[key] = profile
        return profile

    @staticmethod
    def _stack_f_ext(batch: list) -> dict[int, np.ndarray] | None:
        """Stack per-request external forces into link -> ``(n, 6)`` maps.

        Requests without forces contribute zero rows, so they coalesce
        with force-carrying requests in the same pipeline pass.  Serves
        both plain and rollout batches (the rollout engine broadcasts the
        per-task rows across its steps).
        """
        links = sorted({
            link for r in batch if r.f_ext for link in r.f_ext
        })
        if not links:
            return None
        zero = np.zeros(6)
        return {
            link: np.stack([
                np.asarray(r.f_ext[link], dtype=float)
                if r.f_ext and link in r.f_ext else zero
                for r in batch
            ])
            for link in links
        }

    def _execute(self, shard: ShardState, batch: list,
                 chained: bool) -> float:
        """Run one coalesced batch on ``shard``; returns makespan cycles."""
        n_dispatched = len(batch)
        try:
            # Dispatch-time shedding: a request can expire while its
            # batch sits in the shard's one-at-a-time execution queue.
            batch = self._shed_batch(batch)
            if not batch:
                return 0.0
            rollout = isinstance(batch[0], RolloutRequest)
            # Coalesced flushes carry several robots; they execute as one
            # ragged batch (per-robot row segments, one engine dispatch).
            ragged = not rollout and any(
                r.robot != batch[0].robot for r in batch
            )
            tracer = self.tracer
            if tracer is None:
                return self._execute_resilient(shard, batch, chained)
            # Traced path: book each request's queue wait retroactively
            # (submission -> execution start, stamped with its trace ID),
            # then run the batch inside an execute span.  Kernel sections
            # recorded through repro.obs.hooks on this thread nest under
            # the execute span, completing the enqueue -> batch -> shard
            # -> kernel chain for every member trace ID.
            first = batch[0]
            fn = f"rollout/{first.scheme}" if rollout \
                else first.function.value
            span_robot = "ragged" if ragged else first.robot
            exec_t0 = time.perf_counter()
            trace_ids = [r.trace_id for r in batch if r.trace_id]
            for r in batch:
                if r.trace_id:
                    tracer.record(
                        "serve.queue", r.trace_t0, exec_t0 - r.trace_t0,
                        trace_id=r.trace_id,
                        args={"robot": r.robot, "function": fn,
                              "shard": shard.index},
                    )
            with tracer.span(
                f"serve.execute {span_robot}/{fn}",
                trace_id=trace_ids[0] if trace_ids else None,
                args={"shard": shard.index, "batch_size": len(batch),
                      "engine": self._shard_engines[shard.index].name,
                      "backend": self._shard_backends[shard.index],
                      "chained": chained, "trace_ids": trace_ids},
            ):
                return self._execute_resilient(shard, batch, chained)
        finally:
            with self._counter_lock:
                self._dispatched_outstanding -= n_dispatched

    # ------------------------------------------------------------------
    # Resilience pipeline
    # ------------------------------------------------------------------

    def _shed_batch(self, batch: list) -> list:
        """Drop deadline-expired requests from a batch about to execute,
        resolving them with DeadlineExceededError; returns the live
        remainder."""
        now = time.monotonic()
        expired = [r for r in batch if r.expired(now)]
        if not expired:
            return batch
        self._resolve_shed(expired)
        return [r for r in batch if not r.expired(now)]

    def _run_batch(self, shard: ShardState, batch: list,
                   chained: bool) -> float:
        """One raw execution attempt (no recovery); raises on failure."""
        if isinstance(batch[0], RolloutRequest):
            return self._execute_rollout(shard, batch)
        if any(r.robot != batch[0].robot for r in batch):
            return self._execute_ragged(shard, batch, chained)
        return self._execute_inner(shard, batch, chained)

    def _execute_resilient(self, shard: ShardState, batch: list,
                           chained: bool) -> float:
        """Execute with recovery; every future in ``batch`` is resolved
        by the time this returns (result, error, or re-dispatch)."""
        try:
            if _faults.enabled:
                _faults.check("shard.execute", robot=batch[0].robot,
                              shard=shard.index, n=len(batch))
            makespan = self._run_batch(shard, batch, chained)
        except Exception as exc:
            self.pool.record_result(shard, ok=False)
            return self._recover(shard, batch, chained, exc)
        self.pool.record_result(shard, ok=True)
        return makespan

    def _recover(self, shard: ShardState, batch: list, chained: bool,
                 exc: Exception) -> float:
        """Failure recovery ladder: degrade -> retry -> isolate -> fail."""
        for r in batch:
            r.attempts += 1
        # 1) Capability/resource error: the engine itself cannot serve
        #    this work — drop the shard down the degradation chain and
        #    re-run in place (retrying the same engine would be futile).
        if isinstance(exc, self._DEGRADABLE) and self._degrade_shard(shard):
            return self._execute_resilient(shard, batch, chained)
        # 2) Transient failure: back off and re-place the whole batch
        #    through the pool.  Placement skips the breaker this failure
        #    may just have opened, so the retry lands on a healthy shard.
        attempt = max(r.attempts for r in batch)
        if self.retry.is_retryable(exc) and attempt < self.retry.max_attempts:
            with self._retry_rng_lock:
                delay = self.retry.backoff_for(attempt, self._retry_rng)
            if delay > 0:
                time.sleep(delay)
            self.metrics.record_retry(len(batch))
            try:
                self._dispatch(batch, chained=chained)
                return 0.0
            except RuntimeError:
                pass        # service closed underneath the retry: fail below
        # 3) Poison isolation: a non-retryable (or retry-exhausted)
        #    multi-request batch is bisected and each half re-run, so
        #    the one malformed request fails alone after O(log n)
        #    re-executions while its coalesced neighbors still resolve.
        elif len(batch) > 1:
            self.metrics.record_poison_isolation()
            mid = len(batch) // 2
            return (self._execute_resilient(shard, batch[:mid], chained)
                    + self._execute_resilient(shard, batch[mid:], chained))
        return self._fail_batch(shard, batch, exc)

    def _degrade_shard(self, shard: ShardState) -> bool:
        """Drop ``shard`` one step down the engine degradation chain
        (jit -> process -> compiled -> vectorized -> loop); False at
        the end."""
        current = self._shard_engines[shard.index].name
        next_name = self._DEGRADE_NEXT.get(current, "compiled")
        if next_name is None:
            return False
        engine = get_engine(next_name)
        self._shard_engines[shard.index] = engine
        # Degraded engines are host engines; their plans run on numpy.
        self._shard_backends[shard.index] = "numpy"
        shard.engine_name = engine.name
        shard.backend_name = "numpy"
        # The old engine's measured throughput no longer applies; fall
        # back to the new engine's static prior until fresh measurements.
        hint = engine_throughput_hint(engine)
        shard.set_weight(hint, measured=False)
        shard.prior_weight = hint
        self.metrics.record_engine_degradation()
        return True

    def _fail_batch(self, shard: ShardState, batch: list,
                    exc: Exception) -> float:
        """Terminal failure: resolve every future with a context-carrying
        BatchExecutionError chaining the original exception."""
        first = batch[0]
        fn = (f"rollout/{first.scheme}" if isinstance(first, RolloutRequest)
              else first.function.value)
        robots = sorted({r.robot for r in batch})
        robot = robots[0] if len(robots) == 1 else "+".join(robots)
        attempts = max(r.attempts for r in batch)
        wrapped = BatchExecutionError(
            f"batch execution failed: robot={robot!r} function={fn} "
            f"batch_size={len(batch)} shard={shard.index} "
            f"attempts={attempts}: {exc}",
            robot=robot, function=fn, batch_size=len(batch),
            shard=shard.index, attempts=attempts,
        )
        wrapped.__cause__ = exc
        for r in batch:
            if not r.future.done():
                try:
                    r.future.set_exception(wrapped)
                except InvalidStateError:
                    pass
            self._forget(r)
        self.metrics.record_failure(len(batch))
        return 0.0

    def _probe_quarantined(self, now: float) -> None:
        """Launch background health probes at quarantined shards whose
        breaker cooldown has elapsed (runs on the flusher thread)."""
        if self._last_robot is None:
            return      # nothing ever served; nothing meaningful to probe
        for shard in self.pool.shards:
            if shard.probe_due(now):
                self.pool.dispatch_to(
                    shard.index, 0,
                    lambda s, _shard=shard: self._probe(_shard),
                    cost=0.0, reason="probe",
                )

    def _probe(self, shard: ShardState) -> float:
        """One synthetic health check executed *on* the quarantined
        shard: a single-row mass-matrix evaluation through the shard's
        engine.  Success closes the breaker; failure re-arms the
        cooldown.  Runs as pool work so it serializes with (and never
        races) real batches on the shard."""
        robot = self._last_robot
        ok = False
        try:
            if _faults.enabled:
                _faults.check("shard.execute", robot=robot,
                              shard=shard.index, probe=True)
            artifacts = self._shard_caches[shard.index].get(
                robot, backend=self._shard_backends[shard.index]
            )
            model = artifacts.model
            q = np.zeros((1, model.nv))
            batch_evaluate(model, RBDFunction.M, BatchStates(q, q.copy()),
                           engine=self._shard_engines[shard.index])
            ok = True
        except Exception:
            ok = False
        finally:
            shard.probe_done()
        self.pool.record_result(shard, ok)
        self.metrics.record_probe(ok)
        return 0.0

    def _execute_inner(self, shard: ShardState, batch: list[ServeRequest],
                       chained: bool) -> float:
        function = batch[0].function
        engine = self._shard_engines[shard.index]
        backend_name = self._shard_backends[shard.index]
        accel_config = self._shard_accels[shard.index]
        # Failures propagate to _execute_resilient's recovery ladder
        # (degrade / retry / isolate / fail) — no blanket handler here.
        artifacts = self._shard_caches[shard.index].get(
            batch[0].robot, backend=backend_name
        )
        model = artifacts.model
        nv = model.nv
        zero = np.zeros(nv)
        # stack_rows coerces to C-contiguous float64 and names the
        # offending request on a per-row shape mismatch.
        q = stack_rows("q", [r.q for r in batch], (nv,))
        qd = stack_rows(
            "qd", [zero if r.qd is None else r.qd for r in batch], (nv,)
        )
        u = stack_rows(
            "u", [zero if r.u is None else r.u for r in batch], (nv,)
        )
        minv = None
        if all(r.minv is not None for r in batch):
            minv = stack_rows("minv", [r.minv for r in batch], (nv, nv))
        # A mixed batch (some requests carrying minv, some not —
        # unreachable via submit()'s validation today, but cheap to
        # be safe against) falls back to engine-side Minv: correct
        # for everyone instead of failing the whole batch.
        f_ext = self._stack_f_ext(batch)
        exec_start = time.perf_counter()
        values = batch_evaluate(
            model, function, BatchStates(q, qd), u, minv=minv,
            f_ext=f_ext, engine=engine,
        )
        exec_wall = time.perf_counter() - exec_start
        profile = self._profile(artifacts, function, len(batch), chained,
                                config=accel_config)
        self.metrics.record_batch(len(batch), profile.makespan_cycles,
                                  engine=engine.name, backend=backend_name,
                                  shard=shard.index, wall_s=exec_wall)
        # Feed the measured per-shard throughput back into placement: the
        # static per-engine priors only steer until real traffic lands.
        self.pool.recalibrate_weights(self.metrics.measured_shard_rps())
        modeled_s = accel_config.cycles_to_seconds(profile.mean_latency_cycles)
        now = time.monotonic()
        for r, value in zip(batch, values):
            self._forget(r)
            if r.future.cancelled():
                continue
            # Record before resolving: a client waiting on the future may
            # read stats() the instant set_result returns, and must see
            # this request counted.
            self.metrics.record_request(now - r.arrival_s, modeled_s)
            try:
                r.future.set_result(ServeResult(
                    robot=r.robot,
                    function=function,
                    value=value,
                    wall_latency_s=now - r.arrival_s,
                    modeled_latency_cycles=profile.mean_latency_cycles,
                    modeled_latency_s=modeled_s,
                    modeled_makespan_cycles=profile.makespan_cycles,
                    batch_size=len(batch),
                    shard=shard.index,
                    engine=engine.name,
                    backend=backend_name,
                ))
            except InvalidStateError:
                continue        # cancellation raced; don't strand batchmates
        return profile.makespan_cycles

    def _execute_ragged(self, shard: ShardState, batch: list[ServeRequest],
                        chained: bool) -> float:
        """Run one coalesced multi-robot batch on ``shard``.

        The batch arrives queue-grouped from the coalescing batcher (one
        contiguous run of requests per source (robot, function) queue);
        each run stacks into a :class:`RaggedBatch` segment and the whole
        thing executes as one engine dispatch
        (:func:`~repro.dynamics.batch.batch_evaluate_ragged`).  Per-robot
        cycle profiles still apply — the modeled makespan is the sum of
        the per-segment makespans (the accelerator reprograms between
        robot structures), and each request's modeled latency comes from
        its own segment's profile — so results are identical to the
        fragmented path, batch for request.
        """
        function = batch[0].function
        engine = self._shard_engines[shard.index]
        backend_name = self._shard_backends[shard.index]
        accel_config = self._shard_accels[shard.index]
        cache = self._shard_caches[shard.index]
        # Failures propagate to _execute_resilient's recovery ladder.
        ragged = RaggedBatch()
        seg_meta: list[tuple[RobotArtifacts, list[ServeRequest]]] = []
        i = 0
        while i < len(batch):
            j = i
            while j < len(batch) and batch[j].robot == batch[i].robot:
                j += 1
            seg = batch[i:j]
            artifacts = cache.get(seg[0].robot, backend=backend_name)
            nv = artifacts.model.nv
            zero = np.zeros(nv)
            q = stack_rows("q", [r.q for r in seg], (nv,))
            qd = stack_rows(
                "qd", [zero if r.qd is None else r.qd for r in seg],
                (nv,),
            )
            u = stack_rows(
                "u", [zero if r.u is None else r.u for r in seg], (nv,)
            )
            minv = None
            if all(r.minv is not None for r in seg):
                minv = stack_rows("minv", [r.minv for r in seg],
                                  (nv, nv))
            ragged.add(artifacts.model, BatchStates(q, qd), u,
                       minv=minv, f_ext=self._stack_f_ext(seg))
            seg_meta.append((artifacts, seg))
            i = j
        exec_start = time.perf_counter()
        values = batch_evaluate_ragged(function, ragged, engine=engine)
        exec_wall = time.perf_counter() - exec_start
        profiles = [
            self._profile(artifacts, function, len(seg), chained,
                          config=accel_config)
            for artifacts, seg in seg_meta
        ]
        makespan = sum(p.makespan_cycles for p in profiles)
        self.metrics.record_batch(len(batch), makespan,
                                  engine=engine.name, backend=backend_name,
                                  shard=shard.index, wall_s=exec_wall,
                                  segments=len(seg_meta))
        self.pool.recalibrate_weights(self.metrics.measured_shard_rps())
        now = time.monotonic()
        k = 0
        for (artifacts, seg), profile in zip(seg_meta, profiles):
            modeled_s = accel_config.cycles_to_seconds(
                profile.mean_latency_cycles
            )
            for r in seg:
                value = values[k]
                k += 1
                self._forget(r)
                if r.future.cancelled():
                    continue
                self.metrics.record_request(now - r.arrival_s, modeled_s)
                try:
                    r.future.set_result(ServeResult(
                        robot=r.robot,
                        function=function,
                        value=value,
                        wall_latency_s=now - r.arrival_s,
                        modeled_latency_cycles=profile.mean_latency_cycles,
                        modeled_latency_s=modeled_s,
                        modeled_makespan_cycles=makespan,
                        batch_size=len(batch),
                        shard=shard.index,
                        engine=engine.name,
                        backend=backend_name,
                    ))
                except InvalidStateError:
                    continue    # cancellation raced; don't strand batchmates
        return makespan

    def _execute_rollout(self, shard: ShardState,
                         batch: list[RolloutRequest]) -> float:
        """Run one coalesced rollout slab on ``shard``.

        All requests in the batch share one key (robot, scheme, dt,
        horizon, contact set), so their initial states and control
        sequences stack into one ``(n, T, ...)`` rollout; the modeled
        accelerator cost is ``T`` serial FD passes (times the scheme's
        stage count) over the n-task batch.
        """
        first = batch[0]
        engine = self._shard_engines[shard.index]
        backend_name = self._shard_backends[shard.index]
        accel_config = self._shard_accels[shard.index]
        n = len(batch)
        t_steps = first.horizon
        # Failures propagate to _execute_resilient's recovery ladder.
        artifacts = self._shard_caches[shard.index].get(
            first.robot, backend=backend_name
        )
        model = artifacts.model
        nv = model.nv
        q0 = stack_rows("q0", [r.q0 for r in batch], (nv,))
        qd0 = stack_rows("qd0", [r.qd0 for r in batch], (nv,))
        # Controls were coerced and shape-checked per request in
        # submit_rollout; one C-level stack suffices here.
        controls = np.stack([r.controls for r in batch])
        contacts = list(first.contacts) or None
        mask = None
        if contacts and any(r.contact_mask is not None for r in batch):
            c = len(contacts)
            mask = np.stack([
                r.contact_mask if r.contact_mask is not None
                else np.ones((t_steps, c), dtype=bool)
                for r in batch
            ])
        f_ext = self._stack_f_ext(batch)
        plan = artifacts.rollout_plan(first.scheme, engine, backend_name)
        if first.window is not None:
            return self._execute_rollout_windowed(
                shard, batch, plan, model, q0, qd0, controls,
                contacts=contacts, mask=mask, f_ext=f_ext,
                artifacts=artifacts,
            )
        exec_start = time.perf_counter()
        result = plan.rollout(
            model, q0, qd0, controls, dt=first.dt, contacts=contacts,
            contact_mask=mask, f_ext=f_ext,
            sensitivities=first.sensitivities,
        )
        exec_wall = time.perf_counter() - exec_start
        profile = self._profile(artifacts, RBDFunction.FD, n, False,
                                config=accel_config)
        # Modeled cost: the scheme's FD passes are serial in t but
        # batched across tasks — T * stages pipeline fills of an n-batch.
        passes = SCHEMES[first.scheme] * t_steps
        makespan = profile.makespan_cycles * passes
        latency_cycles = profile.mean_latency_cycles * passes
        self.metrics.record_batch(
            n, makespan, engine=engine.name, backend=backend_name,
            shard=shard.index, wall_s=exec_wall, rows=n * t_steps,
        )
        self.pool.recalibrate_weights(self.metrics.measured_shard_rps())
        modeled_s = accel_config.cycles_to_seconds(latency_cycles)
        now = time.monotonic()
        for k, r in enumerate(batch):
            self._forget(r)
            if r.future.cancelled():
                continue
            self.metrics.record_request(now - r.arrival_s, modeled_s)
            self.metrics.record_rollout(t_steps, now - r.arrival_s)
            try:
                r.future.set_result(RolloutServeResult(
                    robot=r.robot,
                    scheme=r.scheme,
                    value=result.task(k),
                    wall_latency_s=now - r.arrival_s,
                    modeled_latency_cycles=latency_cycles,
                    modeled_latency_s=modeled_s,
                    modeled_makespan_cycles=makespan,
                    horizon=t_steps,
                    batch_size=n,
                    shard=shard.index,
                    engine=engine.name,
                    backend=backend_name,
                ))
            except InvalidStateError:
                continue
        return makespan

    def _execute_rollout_windowed(
        self, shard: ShardState, batch: list[RolloutRequest], plan,
        model, q0: np.ndarray, qd0: np.ndarray, controls: np.ndarray, *,
        contacts, mask, f_ext, artifacts: RobotArtifacts,
    ) -> float:
        """Run one coalesced *streaming* rollout slab on ``shard``.

        The slab advances per window of ``first.window`` knots; after
        each window every live request's ``on_window`` callback fires
        with its task's window slice, and at the end the windows are
        reassembled (:func:`repro.rollout.concat_windows`) into the same
        full trajectory the non-windowed path produces — bitwise, since
        the integrators carry only the last state between windows.

        Cancellation: stepping stops early only once *every* request in
        the batch has been stream-cancelled (batchmates still need the
        tail rows of the shared slab).  Cancelled requests resolve with
        :class:`~repro.serve.request.StreamCancelledError` whether or
        not their batchmates forced the tail to be simulated.
        """
        first = batch[0]
        engine = self._shard_engines[shard.index]
        backend_name = self._shard_backends[shard.index]
        accel_config = self._shard_accels[shard.index]
        n = len(batch)
        t_steps = first.horizon
        tracer = self.tracer
        windows: list = []
        t_done = 0
        exec_start = time.perf_counter()
        w_t0 = exec_start
        for t0, t1, wres in plan.rollout_windows(
            model, q0, qd0, controls, dt=first.dt, window=first.window,
            contacts=contacts, contact_mask=mask, f_ext=f_ext,
            cancelled=lambda: all(r.stream_cancelled() for r in batch),
        ):
            windows.append(wres)
            t_done = t1
            done = t1 >= t_steps
            for k, r in enumerate(batch):
                callback = r.on_window
                if callback is None or r.stream_cancelled():
                    continue
                try:
                    callback(t0, t1, wres.task(k), done)
                except Exception:
                    # A client callback must not poison its batchmates
                    # (or trip the shard's recovery ladder).
                    pass
            w_now = time.perf_counter()
            if tracer is not None and first.trace_id:
                tracer.record(
                    "serve.window", w_t0, w_now - w_t0,
                    trace_id=first.trace_id,
                    args={"t0": t0, "t1": t1, "batch_size": n,
                          "shard": shard.index},
                )
            w_t0 = w_now
        exec_wall = time.perf_counter() - exec_start
        result = windows[0] if len(windows) == 1 else concat_windows(windows)
        profile = self._profile(artifacts, RBDFunction.FD, n, False,
                                config=accel_config)
        # Modeled cost scales with the knots actually simulated: a
        # cancelled stream hands back the unspent tail.
        passes = SCHEMES[first.scheme] * t_done
        makespan = profile.makespan_cycles * passes
        latency_cycles = profile.mean_latency_cycles * passes
        self.metrics.record_batch(
            n, makespan, engine=engine.name, backend=backend_name,
            shard=shard.index, wall_s=exec_wall, rows=n * t_done,
        )
        self.pool.recalibrate_weights(self.metrics.measured_shard_rps())
        modeled_s = accel_config.cycles_to_seconds(latency_cycles)
        now = time.monotonic()
        for k, r in enumerate(batch):
            self._forget(r)
            if r.future.cancelled():
                continue
            if r.stream_cancelled() or t_done < t_steps:
                try:
                    r.future.set_exception(StreamCancelledError(
                        f"rollout stream cancelled after {t_done}/{t_steps}"
                        f" knots (robot={r.robot!r})"
                    ))
                except InvalidStateError:
                    pass
                continue
            self.metrics.record_request(now - r.arrival_s, modeled_s)
            self.metrics.record_rollout(t_steps, now - r.arrival_s)
            try:
                r.future.set_result(RolloutServeResult(
                    robot=r.robot,
                    scheme=r.scheme,
                    value=result.task(k),
                    wall_latency_s=now - r.arrival_s,
                    modeled_latency_cycles=latency_cycles,
                    modeled_latency_s=modeled_s,
                    modeled_makespan_cycles=makespan,
                    horizon=t_steps,
                    batch_size=n,
                    shard=shard.index,
                    engine=engine.name,
                    backend=backend_name,
                    windows=len(windows),
                ))
            except InvalidStateError:
                continue
        return makespan
