"""Service-level metrics: tail latency, throughput, batch occupancy.

Mirrors the paper's latency-vs-throughput methodology (Fig 15) one level
up the stack: where the paper reports single-task pipeline latency and
steady-state batch throughput per function, the service reports the
distribution of *request* latencies (p50/p95/p99, which include queueing
delay introduced by the batcher) against the *sustained* request
throughput the shard pool achieved.

The registry is built for a long-running service: latency series are
held in fixed-capacity reservoirs (Vitter's Algorithm R, uniform over
the whole stream) and batch occupancy as a size histogram, so memory
stays O(1) in requests served.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np


class Reservoir:
    """Fixed-capacity uniform sample of an unbounded value stream."""

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.seen = 0
        #: Exact running sum of the whole stream (not just the sample) —
        #: telemetry summaries expose it as the Prometheus ``_sum``.
        self.total = 0.0
        self.samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        self.seen += 1
        self.total += value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self.samples[slot] = value


@dataclass
class LatencySummary:
    """Percentile summary of one latency series (seconds)."""

    count: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    max_s: float

    @staticmethod
    def of(reservoir: Reservoir) -> "LatencySummary":
        if not reservoir.samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(reservoir.samples, dtype=float)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return LatencySummary(
            count=reservoir.seen, p50_s=float(p50), p95_s=float(p95),
            p99_s=float(p99), mean_s=float(arr.mean()), max_s=float(arr.max()),
        )


class MetricsRegistry:
    """Thread-safe accumulator for the service's observable behaviour."""

    def __init__(self, reservoir_capacity: int = 8192) -> None:
        self._lock = threading.Lock()
        self._wall = Reservoir(reservoir_capacity, seed=0)
        self._modeled = Reservoir(reservoir_capacity, seed=1)
        self._batch_hist: dict[int, int] = {}
        self._batch_requests = 0
        self._modeled_busy_cycles = 0.0
        #: Engine name -> number of batches / requests it executed (which
        #: engine a batch ran on is part of the service's observable
        #: behaviour; request counts weight the mix by actual load).
        self._engine_batches: dict[str, int] = {}
        self._engine_requests: dict[str, int] = {}
        #: Array backend name -> batches / requests executed on it (one
        #: entry per serving backend; heterogeneous shard pools show
        #: their placement mix here).
        self._backend_batches: dict[str, int] = {}
        self._backend_requests: dict[str, int] = {}
        #: Shard index -> EWMA of measured batch throughput (rows/s of
        #: actual kernel wall time).  This is the live signal the service
        #: feeds back into the pool's cost weights, replacing the static
        #: per-engine priors once real traffic has been observed.
        self._shard_rps: dict[int, float] = {}
        self._shard_rps_batches: dict[int, int] = {}
        #: EWMA smoothing factor for the per-shard throughput signal.
        self.throughput_alpha = 0.25
        #: Ragged (multi-robot coalesced) batches: batch count, request
        #: rows carried, and per-robot segments executed (segments ==
        #: batches when nothing coalesces; the gap measures how much
        #: fragmentation the ragged path absorbed).
        self.ragged_batches = 0
        self.ragged_rows = 0
        self.ragged_segments = 0
        #: Rollout traffic: wall latencies, counts, and step volume.
        self._rollout_wall = Reservoir(reservoir_capacity, seed=2)
        self.rollouts_completed = 0
        self.rollout_steps_total = 0
        self._rollout_horizons: dict[int, int] = {}
        self.completed = 0
        self.failed = 0
        #: Resilience counters: batch retries re-placed after a
        #: transient failure (and the requests riding them), requests
        #: shed on deadline expiry, bisect splits performed to isolate a
        #: poison request, engine downgrades after capability/resource
        #: errors, and background breaker probes (with failures).
        self.retries = 0
        self.retried_requests = 0
        self.shed = 0
        self.poison_isolations = 0
        self.engine_degradations = 0
        self.probes = 0
        self.probe_failures = 0
        self._started_s = time.monotonic()
        self._first_completion_s: float | None = None
        self._last_completion_s: float | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_request(self, wall_latency_s: float,
                       modeled_latency_s: float) -> None:
        now = time.monotonic()
        with self._lock:
            self._wall.add(wall_latency_s)
            self._modeled.add(modeled_latency_s)
            self.completed += 1
            if self._first_completion_s is None:
                self._first_completion_s = now
            self._last_completion_s = now

    def record_batch(self, size: int, modeled_makespan_cycles: float,
                     engine: str = "", backend: str = "",
                     shard: int | None = None,
                     wall_s: float | None = None,
                     rows: int | None = None,
                     segments: int = 1) -> None:
        """Record one executed batch.

        ``shard``/``wall_s`` additionally feed the measured per-shard
        throughput EWMA (``rows`` defaults to ``size``; rollout batches
        pass their step volume so horizons weigh in).  ``segments`` > 1
        marks a ragged batch (per-robot row segments coalesced into one
        engine dispatch).
        """
        with self._lock:
            self._batch_hist[size] = self._batch_hist.get(size, 0) + 1
            self._batch_requests += size
            self._modeled_busy_cycles += modeled_makespan_cycles
            if segments > 1:
                self.ragged_batches += 1
                self.ragged_rows += size
                self.ragged_segments += segments
            if shard is not None and wall_s is not None and wall_s > 0:
                rate = (size if rows is None else rows) / wall_s
                prev = self._shard_rps.get(shard)
                alpha = self.throughput_alpha
                self._shard_rps[shard] = (
                    rate if prev is None else alpha * rate + (1 - alpha) * prev
                )
                self._shard_rps_batches[shard] = (
                    self._shard_rps_batches.get(shard, 0) + 1
                )
            if engine:
                self._engine_batches[engine] = (
                    self._engine_batches.get(engine, 0) + 1
                )
                self._engine_requests[engine] = (
                    self._engine_requests.get(engine, 0) + size
                )
            if backend:
                self._backend_batches[backend] = (
                    self._backend_batches.get(backend, 0) + 1
                )
                self._backend_requests[backend] = (
                    self._backend_requests.get(backend, 0) + size
                )

    def record_rollout(self, horizon: int, wall_latency_s: float) -> None:
        """Record one completed rollout request (T integrator steps)."""
        with self._lock:
            self._rollout_wall.add(wall_latency_s)
            self.rollouts_completed += 1
            self.rollout_steps_total += horizon
            self._rollout_horizons[horizon] = (
                self._rollout_horizons.get(horizon, 0) + 1
            )

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def record_retry(self, requests: int = 1) -> None:
        """One failed batch re-placed through the pool for another try."""
        with self._lock:
            self.retries += 1
            self.retried_requests += requests

    def record_shed(self, count: int = 1) -> None:
        """``count`` requests resolved with DeadlineExceededError."""
        with self._lock:
            self.shed += count

    def record_poison_isolation(self) -> None:
        """One bisect split performed to isolate a poison request."""
        with self._lock:
            self.poison_isolations += 1

    def record_engine_degradation(self) -> None:
        """One shard dropped down the engine degradation chain."""
        with self._lock:
            self.engine_degradations += 1

    def record_probe(self, ok: bool) -> None:
        """One background health probe against a quarantined shard."""
        with self._lock:
            self.probes += 1
            if not ok:
                self.probe_failures += 1

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def wall_latency(self) -> LatencySummary:
        with self._lock:
            return LatencySummary.of(self._wall)

    def modeled_latency(self) -> LatencySummary:
        with self._lock:
            return LatencySummary.of(self._modeled)

    def occupancy_histogram(self) -> dict[int, int]:
        """Batch size -> number of batches executed at that size."""
        with self._lock:
            return dict(self._batch_hist)

    def engine_batches(self) -> dict[str, int]:
        """Engine name -> number of batches that engine served."""
        with self._lock:
            return dict(self._engine_batches)

    def engine_requests(self) -> dict[str, int]:
        """Engine name -> number of requests that engine served."""
        with self._lock:
            return dict(self._engine_requests)

    def backend_batches(self) -> dict[str, int]:
        """Backend name -> number of batches executed on it."""
        with self._lock:
            return dict(self._backend_batches)

    def backend_requests(self) -> dict[str, int]:
        """Backend name -> number of requests executed on it."""
        with self._lock:
            return dict(self._backend_requests)

    def measured_shard_rps(self) -> dict[int, float]:
        """Shard index -> measured batch-throughput EWMA (rows/s)."""
        with self._lock:
            return dict(self._shard_rps)

    def rollout_latency(self) -> LatencySummary:
        with self._lock:
            return LatencySummary.of(self._rollout_wall)

    def rollout_horizons(self) -> dict[int, int]:
        """Horizon -> number of rollouts served at that horizon."""
        with self._lock:
            return dict(self._rollout_horizons)

    def mean_occupancy(self) -> float:
        with self._lock:
            return self._mean_occupancy_locked()

    def _mean_occupancy_locked(self) -> float:
        batches = sum(self._batch_hist.values())
        if not batches:
            return 0.0
        return self._batch_requests / batches

    def wall_throughput_rps(self) -> float:
        """Completed requests per second of wall time while serving."""
        with self._lock:
            return self._wall_throughput_locked()

    def _wall_throughput_locked(self) -> float:
        if (self.completed < 2 or self._first_completion_s is None
                or self._last_completion_s is None):
            return 0.0
        span = self._last_completion_s - self._first_completion_s
        if span <= 0:
            return 0.0
        return (self.completed - 1) / span

    def modeled_throughput_rps(self, clock_hz: float,
                               shards: int = 1) -> float:
        """Sustained capacity implied by the accelerator cycle model.

        Total modeled busy cycles across all executed batches, spread over
        ``shards`` accelerator instances running concurrently — the
        service-level counterpart of the paper's ``batch / makespan``.
        Returns 0.0 before any batch has completed (same no-data
        convention as :meth:`wall_throughput_rps`).
        """
        with self._lock:
            if self._modeled_busy_cycles <= 0 or self.completed == 0:
                return 0.0
            seconds = self._modeled_busy_cycles / clock_hz / max(shards, 1)
            return self.completed / seconds

    def snapshot(self) -> dict:
        """One flat dict of everything (for tables and JSON dumps).

        Built under a single lock acquisition so the counters are
        mutually consistent — writers on the shard threads mutate
        ``completed``/``failed``/the rollout counters concurrently, and
        piecemeal locked reads could observe a request in one counter
        but not yet in another.
        """
        with self._lock:
            wall = LatencySummary.of(self._wall)
            modeled = LatencySummary.of(self._modeled)
            rollout = LatencySummary.of(self._rollout_wall)
            return {
                "completed": self.completed,
                "failed": self.failed,
                "retries": self.retries,
                "retried_requests": self.retried_requests,
                "shed": self.shed,
                "poison_isolations": self.poison_isolations,
                "engine_degradations": self.engine_degradations,
                "probes": self.probes,
                "probe_failures": self.probe_failures,
                "wall_p50_ms": wall.p50_s * 1e3,
                "wall_p95_ms": wall.p95_s * 1e3,
                "wall_p99_ms": wall.p99_s * 1e3,
                "modeled_p50_us": modeled.p50_s * 1e6,
                "modeled_p95_us": modeled.p95_s * 1e6,
                "modeled_p99_us": modeled.p99_s * 1e6,
                "mean_batch_occupancy": self._mean_occupancy_locked(),
                "wall_throughput_rps": self._wall_throughput_locked(),
                "engine_batches": dict(self._engine_batches),
                "engine_requests": dict(self._engine_requests),
                "backend_batches": dict(self._backend_batches),
                "backend_requests": dict(self._backend_requests),
                "measured_shard_rps": dict(self._shard_rps),
                "ragged_batches": self.ragged_batches,
                "ragged_rows": self.ragged_rows,
                "ragged_segments": self.ragged_segments,
                "rollouts_completed": self.rollouts_completed,
                "rollout_steps_total": self.rollout_steps_total,
                "rollout_p50_ms": rollout.p50_s * 1e3,
                "rollout_p99_ms": rollout.p99_s * 1e3,
            }

    def telemetry(self, telemetry=None):
        """Project this registry into a :class:`repro.obs.Telemetry`.

        Returns the registry (creating one when ``telemetry`` is None)
        with counter/gauge/histogram/summary families for everything
        :meth:`snapshot` reports, in Prometheus-friendly shape: latency
        reservoirs become quantile summaries (with exact stream sums),
        the batch-size histogram becomes a cumulative-bucket histogram,
        and the per-engine/backend/shard splits become labelled series.
        """
        from repro.obs import Telemetry

        t = telemetry if telemetry is not None else Telemetry()
        with self._lock:
            wall = LatencySummary.of(self._wall)
            modeled = LatencySummary.of(self._modeled)
            rollout = LatencySummary.of(self._rollout_wall)
            completed = self.completed
            failed = self.failed
            wall_total = self._wall.total
            modeled_total = self._modeled.total
            rollout_total = self._rollout_wall.total
            occupancy = self._mean_occupancy_locked()
            throughput = self._wall_throughput_locked()
            batch_hist = dict(self._batch_hist)
            engine_batches = dict(self._engine_batches)
            engine_requests = dict(self._engine_requests)
            backend_batches = dict(self._backend_batches)
            backend_requests = dict(self._backend_requests)
            shard_rps = dict(self._shard_rps)
            ragged_batches = self.ragged_batches
            ragged_rows = self.ragged_rows
            ragged_segments = self.ragged_segments
            rollouts = self.rollouts_completed
            rollout_steps = self.rollout_steps_total
            retries = self.retries
            shed = self.shed
            isolations = self.poison_isolations
            degradations = self.engine_degradations
            probes = self.probes
            probe_failures = self.probe_failures
        t.counter("requests_completed_total",
                  "Requests completed").set(completed)
        t.counter("requests_failed_total", "Requests failed").set(failed)
        t.counter("serve_retries_total",
                  "Failed batches re-placed for another attempt"
                  ).set(retries)
        t.counter("serve_shed_deadline_total",
                  "Requests shed on deadline expiry").set(shed)
        t.counter("serve_poison_isolations_total",
                  "Bisect splits isolating a poison request"
                  ).set(isolations)
        t.counter("serve_engine_degradations_total",
                  "Shard engine downgrades after capability errors"
                  ).set(degradations)
        t.counter("serve_probes_total",
                  "Background health probes against quarantined shards"
                  ).set(probes)
        t.counter("serve_probe_failures_total",
                  "Health probes that failed").set(probe_failures)
        t.summary("request_latency_seconds",
                  "End-to-end wall latency (reservoir quantiles)").set(
            {0.5: wall.p50_s, 0.95: wall.p95_s, 0.99: wall.p99_s},
            wall.count, wall_total,
        )
        t.summary("modeled_latency_seconds",
                  "Modeled accelerator latency").set(
            {0.5: modeled.p50_s, 0.95: modeled.p95_s, 0.99: modeled.p99_s},
            modeled.count, modeled_total,
        )
        t.gauge("mean_batch_occupancy",
                "Mean requests per executed batch").set(occupancy)
        t.gauge("wall_throughput_rps",
                "Completed requests per wall-second").set(throughput)
        if batch_hist:
            bounds = sorted(batch_hist)
            hist = t.histogram("batch_occupancy",
                               "Executed batch sizes",
                               buckets=tuple(float(b) for b in bounds))
            for size, count in sorted(batch_hist.items()):
                hist.observe(float(size), weight=count)
        for name, count in sorted(engine_batches.items()):
            t.counter("serve_batches_total", "Batches per engine",
                      engine=name).set(count)
        for name, count in sorted(engine_requests.items()):
            t.counter("serve_requests_total", "Requests per engine",
                      engine=name).set(count)
        for name, count in sorted(backend_batches.items()):
            t.counter("backend_batches_total", "Batches per backend",
                      backend=name).set(count)
        for name, count in sorted(backend_requests.items()):
            t.counter("backend_requests_total", "Requests per backend",
                      backend=name).set(count)
        for shard, rate in sorted(shard_rps.items()):
            t.gauge("shard_measured_rps",
                    "Measured shard throughput EWMA (rows/s)",
                    shard=shard).set(rate)
        t.counter("ragged_batches_total",
                  "Multi-robot coalesced batches executed"
                  ).set(ragged_batches)
        t.counter("ragged_rows_total",
                  "Requests served inside ragged batches").set(ragged_rows)
        t.counter("ragged_segments_total",
                  "Per-robot segments across ragged batches"
                  ).set(ragged_segments)
        t.counter("rollouts_completed_total",
                  "Rollout requests completed").set(rollouts)
        t.counter("rollout_steps_total",
                  "Integrator steps served").set(rollout_steps)
        t.summary("rollout_latency_seconds",
                  "Rollout end-to-end wall latency").set(
            {0.5: rollout.p50_s, 0.95: rollout.p95_s, 0.99: rollout.p99_s},
            rollout.count, rollout_total,
        )
        return t
