"""Sharded execution: a pool of accelerator instances behind one queue.

One Dadu-RBD instance has a fixed sustained capacity (``clock / II`` per
function); serving beyond it means replicating the accelerator — the
multi-FPGA scaling the paper leaves to the host.  A :class:`ShardPool`
models ``n`` accelerator cards: each shard owns its modeled-cycle ledger,
and coalesced batches are placed on a shard by policy:

* ``round_robin`` — cyclic assignment, oblivious but fair for uniform
  batches;
* ``least_loaded`` — place on the shard with the smallest outstanding
  modeled backlog (in-flight batches plus accumulated busy cycles),
  better when batch sizes or functions are mixed.

Execution is thread-pool backed (one worker per shard, so per-shard
serialization matches the hardware's one-batch-at-a-time pipeline fill).
Shards share the read-only :class:`~repro.serve.cache.ArtifactCache`
bundles — replicating a bitstream, not rebuilding it.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ShardState:
    """Load-accounting for one modeled accelerator instance."""

    index: int
    dispatched_batches: int = 0
    dispatched_requests: int = 0
    inflight: int = 0
    busy_cycles: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def begin(self, n_requests: int) -> None:
        with self._lock:
            self.inflight += 1
            self.dispatched_batches += 1
            self.dispatched_requests += n_requests

    def finish(self, makespan_cycles: float) -> None:
        with self._lock:
            self.inflight -= 1
            self.busy_cycles += makespan_cycles

    def backlog(self) -> tuple[int, float]:
        with self._lock:
            return (self.inflight, self.busy_cycles)


class ShardPool:
    """Dispatch batches onto ``n_shards`` modeled accelerator instances."""

    POLICIES = ("round_robin", "least_loaded")

    def __init__(self, n_shards: int = 2, policy: str = "round_robin") -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {self.POLICIES}"
            )
        self.policy = policy
        self.shards = [ShardState(i) for i in range(n_shards)]
        self._rr_next = 0
        self._lock = threading.Lock()
        # One single-worker executor per shard: batches placed on a shard
        # execute one at a time, in placement order, like the hardware's
        # one-pipeline-fill-at-a-time — a shared pool would let a queued
        # batch jump to whichever worker frees up first.
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"repro-serve-shard{i}"
            )
            for i in range(n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def select(self) -> ShardState:
        """Pick the shard the next batch lands on."""
        with self._lock:
            return self._select_locked()

    def _select_locked(self) -> ShardState:
        if self.policy == "round_robin":
            shard = self.shards[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self.shards)
            return shard
        return min(self.shards, key=lambda s: s.backlog())

    def dispatch(self, n_requests: int,
                 work: Callable[[ShardState], float]) -> Future:
        """Run ``work(shard)`` on the pool; ``work`` returns the batch's
        modeled makespan in cycles, credited to the shard's ledger."""
        with self._lock:
            # select+begin must be atomic: two concurrent dispatchers
            # (flusher and a flush-on-full submit) would otherwise both
            # read the same "least loaded" shard before either claims it.
            shard = self._select_locked()
            shard.begin(n_requests)

        def run() -> float:
            makespan = 0.0
            try:
                makespan = work(shard)
                return makespan
            finally:
                shard.finish(makespan)

        return self._executors[shard.index].submit(run)

    def busy_cycles(self) -> list[float]:
        return [s.backlog()[1] for s in self.shards]

    def shutdown(self) -> None:
        for executor in self._executors:
            executor.shutdown(wait=True)
