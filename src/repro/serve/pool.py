"""Sharded execution: a pool of accelerator instances behind one queue.

One Dadu-RBD instance has a fixed sustained capacity (``clock / II`` per
function); serving beyond it means replicating the accelerator — the
multi-FPGA scaling the paper leaves to the host.  A :class:`ShardPool`
models ``n`` accelerator cards: each shard owns its modeled-cycle ledger,
and coalesced batches are placed on a shard by policy:

* ``round_robin`` — cyclic assignment, oblivious but fair for uniform
  batches;
* ``least_loaded`` — place on the shard with the smallest *cost-aware*
  outstanding backlog: in-flight requests and accumulated busy cycles,
  each divided by the shard's throughput weight.  With homogeneous
  shards this degenerates to the classic least-backlog rule; with
  heterogeneous shards (per-shard engines/backends via
  :class:`ShardConfig`) a fast shard absorbs proportionally more work
  before it stops being "least loaded".

Shards are heterogeneous by configuration: :class:`ShardConfig` names
the execution engine and array backend each shard evaluates batches
with (``None`` fields inherit the service defaults), plus an optional
explicit throughput weight; absent a weight the per-engine hints in
:func:`engine_throughput_hint` seed the cost model.

Execution is thread-pool backed (one worker per shard, so per-shard
serialization matches the hardware's one-batch-at-a-time pipeline fill).
Shards share the read-only :class:`~repro.serve.cache.ArtifactCache`
bundles — replicating a bitstream, not rebuilding it.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import AcceleratorConfig


def accelerator_desc(config: AcceleratorConfig | None) -> str:
    """Short human-readable tag for a per-shard accelerator override
    (``""`` when the shard inherits the service config) — recorded in
    placement-decision events and :meth:`ShardPool.describe` rows."""
    if config is None:
        return ""
    heavy = config.ii_target_heavy_cycles
    return (
        f"{config.clock_hz / 1e6:g}MHz/II{config.ii_target_cycles}"
        + (f"+{heavy}" if heavy is not None else "")
        + (f"x{config.sap_replicas}" if config.sap_replicas != 1 else "")
    )


@dataclass(frozen=True)
class ShardConfig:
    """Per-shard execution configuration.

    ``engine``
        Engine name this shard evaluates batches with (``"loop"``,
        ``"vectorized"``, ``"compiled"``, ``"process"``); ``None``
        inherits the service's engine.
    ``backend``
        Array backend name for the shard's plans (:mod:`repro.backend`);
        ``None`` inherits the service's backend.  Only the compiled
        engine is backend-portable — host engines record ``"numpy"``.
    ``throughput_weight``
        Relative sustained-throughput estimate used by the cost-aware
        ``least_loaded`` policy; ``None`` falls back to the per-engine
        hint (:func:`engine_throughput_hint`).
    ``accelerator``
        Per-shard :class:`~repro.core.config.AcceleratorConfig` override
        — a pool may model heterogeneous cards (different clocks, II
        fits, SAP replica counts).  ``None`` inherits the service
        config.  The shard's cycle accounting, artifact bundles and
        modeled latencies all use the override; placement-decision
        events record it (:func:`accelerator_desc`).
    """

    engine: str | None = None
    backend: str | None = None
    throughput_weight: float | None = None
    accelerator: AcceleratorConfig | None = None


#: Relative single-batch throughput priors per engine, host-normalized to
#: the loop reference.  Deliberately coarse — they only have to order the
#: engines sensibly until real measurements arrive; an explicit
#: ``ShardConfig.throughput_weight`` always wins.
_ENGINE_HINTS = {
    "loop": 1.0,
    "vectorized": 8.0,
    "compiled": 12.0,
    # Trace-compiled functional kernels: whole Table-I functions fused
    # by XLA, amortized after the first-call compile.
    "jit": 20.0,
}


def engine_throughput_hint(engine) -> float:
    """Throughput prior for an engine instance (by name, duck-typed).

    The process engine scales with its worker count; unknown engines get
    the neutral weight 1.0.
    """
    name = getattr(engine, "name", str(engine))
    if name == "process":
        workers = getattr(engine, "n_workers", None) or os.cpu_count() or 1
        return _ENGINE_HINTS["compiled"] * max(int(workers), 1)
    return _ENGINE_HINTS.get(name, 1.0)


@dataclass
class ShardState:
    """Load-accounting for one modeled accelerator instance."""

    index: int
    dispatched_batches: int = 0
    dispatched_requests: int = 0
    inflight: int = 0
    #: Requests dispatched to this shard and not yet executed — the unit
    #: the cost-aware placement divides by the throughput weight.
    inflight_requests: int = 0
    #: Cost-weighted backlog: plain requests count 1, rollouts count
    #: their horizon ``T`` (the number of serial engine steps they buy).
    inflight_cost: float = 0.0
    busy_cycles: float = 0.0
    #: Engine/backend this shard executes with (recorded by the service
    #: when it resolves the shard configs; placement and stats read it).
    engine_name: str = ""
    backend_name: str = ""
    #: Per-shard accelerator override tag (:func:`accelerator_desc`;
    #: ``""`` when the shard inherits the service config).
    accel_desc: str = ""
    #: Relative throughput estimate for cost-aware placement.  Seeded
    #: from the static per-engine prior; once the service measures real
    #: per-shard batch throughput the pool recalibrates it
    #: (:meth:`ShardPool.recalibrate_weights`).
    weight: float = 1.0
    #: The static prior the weight was seeded with (kept for shards that
    #: have no measurements yet during recalibration).
    prior_weight: float = 1.0
    #: True once :meth:`ShardPool.recalibrate_weights` replaced the prior
    #: with a measured value.
    weight_measured: bool = False
    #: Health state machine: ``healthy`` -> ``open`` (consecutive-failure
    #: breaker trips; placement skips the shard) -> ``half_open``
    #: (cooldown elapsed; one probe's worth of traffic allowed) ->
    #: ``healthy`` on success / back to ``open`` on failure.
    #: ``draining`` is the administrative state (graceful restart):
    #: placement skips the shard but queued work finishes.  ``removed``
    #: is terminal: the shard was scaled out of the pool (its slot stays
    #: so indices remain stable, but placement never returns).
    health: str = "healthy"
    #: Monotonic time the open breaker's cooldown elapses.
    breaker_open_until: float = 0.0
    consecutive_failures: int = 0
    failures_total: int = 0
    successes_total: int = 0
    breaker_opens: int = 0
    #: True while a background health probe is outstanding (guards
    #: against the flusher stacking probes on a slow shard).
    probe_inflight: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def begin(self, n_requests: int, cost: float | None = None) -> None:
        with self._lock:
            self.inflight += 1
            self.inflight_requests += n_requests
            self.inflight_cost += n_requests if cost is None else cost
            self.dispatched_batches += 1
            self.dispatched_requests += n_requests

    def finish(self, makespan_cycles: float, n_requests: int,
               cost: float | None = None) -> None:
        """Close out one batch; ``n_requests``/``cost`` must mirror
        :meth:`begin` (required, so a drifted call site fails loudly
        instead of leaking phantom inflight requests into the cost
        model)."""
        with self._lock:
            self.inflight -= 1
            self.inflight_requests -= n_requests
            self.inflight_cost -= n_requests if cost is None else cost
            self.busy_cycles += makespan_cycles

    def backlog(self) -> tuple[int, float]:
        with self._lock:
            return (self.inflight, self.busy_cycles)

    def set_weight(self, weight: float, measured: bool) -> None:
        with self._lock:
            self.weight = weight
            self.weight_measured = measured

    def record_success(self) -> None:
        """One batch (or probe) succeeded: reset the failure streak and
        close the breaker if it was probing (or still open — queued work
        finishing cleanly on a quarantined shard is equally good news)."""
        with self._lock:
            self.successes_total += 1
            self.consecutive_failures = 0
            if self.health in ("open", "half_open"):
                self.health = "healthy"
                self.breaker_open_until = 0.0

    def record_failure(self, threshold: int, cooldown_s: float,
                       now: float) -> bool:
        """One batch (or probe) failed; returns True iff this failure
        opened the breaker (threshold crossed, or a half-open probe
        failed).  An already-open breaker has its cooldown extended."""
        with self._lock:
            self.failures_total += 1
            self.consecutive_failures += 1
            if self.health == "draining":
                return False
            if self.health == "open":
                self.breaker_open_until = now + cooldown_s
                return False
            if (self.health == "half_open"
                    or self.consecutive_failures >= threshold):
                self.health = "open"
                self.breaker_open_until = now + cooldown_s
                self.breaker_opens += 1
                return True
            return False

    def selectable(self, now: float) -> bool:
        """Whether placement may route new work here.  An open breaker
        whose cooldown has elapsed transitions to ``half_open`` (probe
        traffic allowed) as a side effect of being asked."""
        with self._lock:
            if self.health in ("draining", "removed"):
                return False
            if self.health == "open":
                if now >= self.breaker_open_until:
                    self.health = "half_open"
                    return True
                return False
            return True

    def probe_due(self, now: float) -> bool:
        """Atomically claim a background-probe slot: True iff the shard
        is quarantined, its cooldown has elapsed, and no probe is
        already in flight (the claim sets :attr:`probe_inflight`)."""
        with self._lock:
            if (self.health in ("open", "half_open")
                    and now >= self.breaker_open_until
                    and not self.probe_inflight):
                self.probe_inflight = True
                return True
            return False

    def probe_done(self) -> None:
        with self._lock:
            self.probe_inflight = False

    def set_health(self, health: str) -> None:
        """Administratively force a health state (drain / restart)."""
        with self._lock:
            self.health = health
            if health == "healthy":
                self.consecutive_failures = 0
                self.breaker_open_until = 0.0

    def cost_score(self) -> tuple[float, float]:
        """Estimated time-to-drain, in throughput-weighted units.

        Primary key: queued request cost over the shard's throughput
        weight (a 4x-faster shard tolerates a 4x-deeper queue); busy
        cycles break ties the same way so an idle-but-historically-busy
        shard still ranks behind a fresh one.
        """
        with self._lock:
            w = self.weight if self.weight > 0 else 1.0
            return (self.inflight_cost / w, self.busy_cycles / w)


class ShardPool:
    """Dispatch batches onto ``n_shards`` modeled accelerator instances."""

    POLICIES = ("round_robin", "least_loaded")

    def __init__(self, n_shards: int = 2, policy: str = "round_robin",
                 shard_configs: list[ShardConfig] | None = None,
                 placement_log_capacity: int = 256,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.05) -> None:
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        #: Consecutive failures that trip a shard's circuit breaker, and
        #: how long the quarantine lasts before a probe is allowed.
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        if shard_configs:
            # An explicit config list defines the pool size.
            n_shards = len(shard_configs)
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {self.POLICIES}"
            )
        self.policy = policy
        self.shard_configs = tuple(
            shard_configs or (ShardConfig(),) * n_shards
        )
        self.shards = [ShardState(i) for i in range(n_shards)]
        self._rr_next = 0
        self._lock = threading.Lock()
        #: Elastic-pool event log: every :meth:`add_shard` /
        #: :meth:`remove_shard` appends ``{"action", "shard", "t_s",
        #: "active", "reason"}`` (the autoscaler's audit trail, exposed
        #: through the service's admin schema and telemetry).
        self._scale_events: list[dict] = []
        #: Bounded log of placement decisions: which shard won, why, and
        #: the cost scores at decision time (``least_loaded`` records the
        #: whole scoreboard; ``round_robin`` has no scores to record).
        self._placement_log: deque = deque(maxlen=placement_log_capacity)
        self._placement_seq = 0
        # One single-worker executor per shard: batches placed on a shard
        # execute one at a time, in placement order, like the hardware's
        # one-pipeline-fill-at-a-time — a shared pool would let a queued
        # batch jump to whichever worker frees up first.
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"repro-serve-shard{i}"
            )
            for i in range(n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_active(self) -> int:
        """Shards still in the pool (everything not scaled ``removed``)."""
        return sum(1 for s in self.shards if s.health != "removed")

    def scale_events(self) -> list[dict]:
        """Elastic-pool add/remove decisions, oldest first."""
        with self._lock:
            return list(self._scale_events)

    def _record_scale_locked(self, action: str, index: int,
                             reason: str) -> None:
        self._scale_events.append({
            "action": action,
            "shard": index,
            "t_s": time.monotonic(),
            "active": sum(1 for s in self.shards if s.health != "removed"),
            "reason": reason,
        })

    def add_shard(self, config: ShardConfig | None = None,
                  reason: str = "manual") -> ShardState:
        """Grow the pool by one shard (a fresh modeled accelerator card
        with its own executor); returns the new :class:`ShardState`.

        The caller (:meth:`DynamicsService.scale_up`) must have resolved
        the shard's engine/backend *before* calling, so the shard is
        fully servable the moment placement can see it.
        """
        config = config or ShardConfig()
        with self._lock:
            index = len(self.shards)
            shard = ShardState(index)
            self.shard_configs = self.shard_configs + (config,)
            self._executors.append(ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"repro-serve-shard{index}"
            ))
            self.shards.append(shard)
            self._record_scale_locked("add", index, reason)
        return shard

    def remove_shard(self, index: int, wait_s: float = 2.0,
                     reason: str = "manual") -> bool:
        """Drain-before-remove: stop placement, let queued work finish
        (up to ``wait_s``), then retire the shard permanently.

        Returns True iff the shard drained clean within the wait.  The
        slot stays in :attr:`shards` with health ``removed`` so shard
        indices (metrics, placement events, service-side engine tables)
        stay stable; its executor is shut down without cancelling queued
        work, so a slow drain still completes — it just finishes after
        removal.
        """
        shard = self.shards[index]
        self.drain(index, wait_s=wait_s)
        clean = shard.backlog()[0] == 0
        shard.set_health("removed")
        with self._lock:
            self._record_scale_locked("remove", index, reason)
        self._executors[index].shutdown(wait=False)
        return clean

    def select(self) -> ShardState:
        """Pick the shard the next batch lands on."""
        with self._lock:
            return self._select_locked(time.monotonic())[0]

    def _select_locked(self, now: float) -> tuple[ShardState, list | None]:
        """Pick a shard among the healthy ones; also returns the
        per-shard cost scoreboard the decision was based on (``None``
        for round-robin).

        Shards with an open breaker or in administrative drain are
        skipped.  If *every* shard is unavailable the pool degrades to
        placing on the non-draining shards anyway (serving degraded
        beats deadlocking the whole service); only when literally all
        shards are draining does it fall back to the full set.
        """
        eligible = [s for s in self.shards if s.selectable(now)]
        if not eligible:
            eligible = [
                s for s in self.shards
                if s.health not in ("draining", "removed")
            ]
        if not eligible:
            # Literally everything is draining/removed: fall back to the
            # draining shards before the removed ones (whose executors
            # may already be gone).
            eligible = ([s for s in self.shards if s.health != "removed"]
                        or self.shards)
        if self.policy == "round_robin":
            for _ in range(len(self.shards)):
                shard = self.shards[self._rr_next]
                self._rr_next = (self._rr_next + 1) % len(self.shards)
                if shard in eligible:
                    return shard, None
            return eligible[0], None
        scores = [s.cost_score() for s in self.shards]
        best = min(
            (i for i, s in enumerate(self.shards) if s in eligible),
            key=scores.__getitem__,
        )
        return self.shards[best], scores

    def record_result(self, shard: ShardState, ok: bool) -> bool:
        """Feed one batch/probe outcome into the shard's breaker;
        returns True iff this failure opened the breaker."""
        if ok:
            shard.record_success()
            return False
        return shard.record_failure(
            self.breaker_threshold, self.breaker_cooldown_s, time.monotonic()
        )

    def drain(self, index: int, wait_s: float | None = None) -> None:
        """Gracefully drain one shard: placement stops routing to it,
        queued work finishes.  ``wait_s`` optionally blocks until the
        shard's in-flight count hits zero (or the wait elapses)."""
        shard = self.shards[index]
        shard.set_health("draining")
        if wait_s is not None:
            deadline = time.monotonic() + wait_s
            while shard.backlog()[0] > 0 and time.monotonic() < deadline:
                time.sleep(1e-3)

    def restart(self, index: int) -> None:
        """Return a drained (or quarantined) shard to service with a
        clean failure record.  Removed shards are gone for good — their
        executor is shut down; grow the pool with :meth:`add_shard`."""
        if self.shards[index].health == "removed":
            raise ValueError(
                f"shard {index} was removed from the pool and cannot be "
                "restarted; add a new shard instead"
            )
        self.shards[index].set_health("healthy")

    def _log_placement_locked(self, shard: ShardState,
                              scores: list | None, n_requests: int,
                              cost: float | None, segments: int,
                              reason: str = "policy") -> None:
        self._placement_log.append({
            "seq": self._placement_seq,
            "shard": shard.index,
            "policy": self.policy,
            # "policy" for normal selection; "pinned"/"probe"/"retry"
            # for targeted dispatches (dispatch_to).
            "reason": reason,
            "n_requests": n_requests,
            "cost": float(n_requests if cost is None else cost),
            # Ragged placements carry > 1 per-robot segment; the event
            # records how fragmented the placed batch was.
            "segments": segments,
            "accelerator": shard.accel_desc,
            "scores": (
                None if scores is None
                else [[float(a), float(b)] for a, b in scores]
            ),
            "weights": [s.weight for s in self.shards],
            #: Pool health at decision time — chaos runs read breaker
            #: transitions straight off the placement record.
            "health": [s.health for s in self.shards],
        })
        self._placement_seq += 1

    def placement_events(self) -> list[dict]:
        """The retained placement decisions, oldest first."""
        with self._lock:
            return list(self._placement_log)

    def dispatch(self, n_requests: int,
                 work: Callable[[ShardState], float],
                 cost: float | None = None,
                 segments: int = 1) -> Future:
        """Run ``work(shard)`` on the pool; ``work`` returns the batch's
        modeled makespan in cycles, credited to the shard's ledger.
        ``cost`` is the batch's placement weight (defaults to the request
        count; rollout batches pass their summed horizons); ``segments``
        is the batch's per-robot segment count (> 1 for coalesced ragged
        batches), recorded in the placement event."""
        with self._lock:
            # select+begin must be atomic: two concurrent dispatchers
            # (flusher and a flush-on-full submit) would otherwise both
            # read the same "least loaded" shard before either claims it.
            shard, scores = self._select_locked(time.monotonic())
            shard.begin(n_requests, cost)
            self._log_placement_locked(shard, scores, n_requests, cost,
                                       segments)
        return self._submit(shard, work, n_requests, cost)

    def dispatch_to(self, index: int, n_requests: int,
                    work: Callable[[ShardState], float],
                    cost: float | None = None,
                    reason: str = "pinned") -> Future:
        """Run ``work`` on a *specific* shard, bypassing placement —
        health probes and targeted tests use this (an open breaker only
        heals by executing something on the quarantined shard)."""
        shard = self.shards[index]
        with self._lock:
            shard.begin(n_requests, cost)
            self._log_placement_locked(shard, None, n_requests, cost, 1,
                                       reason=reason)
        return self._submit(shard, work, n_requests, cost)

    def _submit(self, shard: ShardState, work, n_requests: int,
                cost: float | None) -> Future:
        def run() -> float:
            makespan = 0.0
            try:
                makespan = work(shard)
                return makespan
            finally:
                shard.finish(makespan, n_requests, cost)

        try:
            return self._executors[shard.index].submit(run)
        except RuntimeError:
            # The executor is already shut down (a retry raced close()):
            # undo the ledger claim so the shard doesn't leak phantom
            # inflight cost, and let the caller fail the batch.
            shard.finish(0.0, n_requests, cost)
            raise

    def recalibrate_weights(self, measured_rps: dict[int, float]) -> None:
        """Feed measured per-shard throughput back into the cost weights.

        ``measured_rps`` maps shard index -> measured sustained request
        throughput (the :class:`~repro.serve.metrics.MetricsRegistry`
        per-shard EWMA).  Measured shards get weights proportional to
        their real throughput; shards without measurements keep their
        static prior, rescaled into the same units so mixed pools still
        compare sensibly.  Once every shard has measurements the static
        per-engine priors are fully out of the loop.
        """
        measured = {
            i: r for i, r in measured_rps.items()
            if r > 0 and 0 <= i < len(self.shards)
        }
        if not measured:
            return
        prior_sum = sum(self.shards[i].prior_weight for i in measured)
        rps_sum = sum(measured.values())
        # Scale measured rates into prior units so unmeasured shards'
        # priors remain comparable during the transition.
        scale = prior_sum / rps_sum if rps_sum > 0 else 1.0
        for index, rps in measured.items():
            self.shards[index].set_weight(rps * scale, measured=True)

    def busy_cycles(self) -> list[float]:
        return [s.backlog()[1] for s in self.shards]

    def describe(self) -> list[dict]:
        """Per-shard placement view: engine, backend, weight, ledger."""
        return [
            {
                "shard": s.index,
                "engine": s.engine_name,
                "backend": s.backend_name,
                "accelerator": s.accel_desc,
                "weight": s.weight,
                "weight_measured": s.weight_measured,
                "dispatched_requests": s.dispatched_requests,
                "busy_cycles": s.backlog()[1],
                "health": s.health,
                "consecutive_failures": s.consecutive_failures,
                "failures": s.failures_total,
                "breaker_opens": s.breaker_opens,
            }
            for s in self.shards
        ]

    def shutdown(self) -> None:
        for executor in self._executors:
            executor.shutdown(wait=True)
