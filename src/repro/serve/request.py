"""Request/response records and errors for the dynamics service.

A :class:`ServeRequest` is the service-level analogue of the accelerator's
:class:`repro.core.functions.TaskRequest`: one dynamics evaluation for one
robot, carried together with the bookkeeping the runtime needs (arrival
time, future, chain membership).  Results come back as
:class:`ServeResult`, which pairs the functional value with both clocks
the service tracks — host wall time and modeled accelerator cycles.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.dynamics.functions import RBDFunction
from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for service-runtime errors."""


class ServiceOverloaded(ServeError):
    """The bounded request queue is full; the request was rejected."""


class ServiceClosed(ServeError):
    """The service has been shut down and accepts no new requests."""


class DeadlineExceededError(ServeError):
    """The request's deadline passed before execution; it was shed.

    Shedding happens in two places: the flusher sweeps expired requests
    out of the batcher's pending queues, and the shard worker re-checks
    at dispatch time (a request can expire while its batch waits in a
    shard's one-at-a-time execution queue)."""


class StreamCancelledError(ServeError):
    """A streaming rollout was cancelled by its consumer mid-stream.

    The request's future resolves with this error instead of a full
    trajectory; the unsimulated tail of the rollout is abandoned, so a
    closed-loop client that re-plans after the first windows hands the
    shard back instead of paying for knots nobody will read."""


class BatchExecutionError(ServeError):
    """A coalesced batch failed to execute.

    Carries the batch's request context — which robot/function, how many
    requests were coalesced, which shard ran it, how many attempts were
    made — so a client holding one future can see which batch took it
    down.  The original failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, robot: str = "",
                 function: str = "", batch_size: int = 0,
                 shard: int = -1, attempts: int = 1) -> None:
        super().__init__(message)
        self.robot = robot
        self.function = function
        self.batch_size = batch_size
        self.shard = shard
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Retry discipline for failed batch executions.

    A failed batch is retried up to ``max_attempts`` total executions
    when its failure looks transient, with exponential backoff
    (``backoff_s * backoff_multiplier**(attempt-1)``) spread by
    ``jitter`` (a ±fraction drawn from the service's seeded RNG, so
    retry storms decorrelate deterministically).  Retries are
    *re-placed* through the shard pool, so a retry routes around the
    shard whose breaker the failure just opened.

    Failure classification: an exception carrying a boolean
    ``retryable`` attribute (e.g. :class:`repro.faults.InjectedFault`)
    is believed; otherwise anything not in ``non_retryable`` is treated
    as transient.  The default non-retryable set is the poison shapes —
    malformed operands raise ``ValueError``/``TypeError``/``KeyError``,
    and re-running those can only fail again (they go to bisect
    isolation instead).
    """

    max_attempts: int = 3
    backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    non_retryable: tuple = (ValueError, TypeError, KeyError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def is_retryable(self, exc: BaseException) -> bool:
        flagged = getattr(exc, "retryable", None)
        if flagged is not None:
            return bool(flagged)
        return not isinstance(exc, self.non_retryable)

    def backoff_for(self, attempt: int, rng=None) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter."""
        base = self.backoff_s * self.backoff_multiplier ** max(attempt - 1, 0)
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class ServeRequest:
    """One dynamics evaluation submitted to the service."""

    robot: str
    function: RBDFunction
    q: np.ndarray
    qd: np.ndarray | None = None
    #: ``qdd`` for ID/dID/diFD, ``tau`` for FD/dFD (the accelerator's
    #: shared third operand).
    u: np.ndarray | None = None
    minv: np.ndarray | None = None          # for diFD
    #: External forces: link index -> ``(6,)`` spatial force in the link
    #: frame.  Stacked per batch by the service and threaded through
    #: ``batch_evaluate`` (requests without forces ride in the same batch
    #: with zero stacks).
    f_ext: dict[int, np.ndarray] | None = None
    #: Wall-clock submission time (``time.monotonic``), set by the service.
    arrival_s: float = 0.0
    #: Per-request deadline, seconds from arrival.  Expired requests are
    #: shed (resolved with
    #: :class:`~repro.serve.request.DeadlineExceededError`) instead of
    #: executed; ``None`` means no deadline.
    deadline_s: float | None = None
    #: Number of times this request has been executed and failed (the
    #: retry machinery's counter; compared against
    #: :attr:`RetryPolicy.max_attempts`).
    attempts: int = 0
    #: Chain membership: requests sharing a chain id execute serially in
    #: ``sequence`` order on one shard (RK4-style sensitivity steps).
    chain: int | None = None
    sequence: int = 0
    #: Urgent requests bypass the dynamic batcher entirely (deadline-bound
    #: closed-loop clients must not pay ``max_wait_s`` under sparse load).
    urgent: bool = False
    #: Request trace ID (set at submission when the service has a
    #: :class:`~repro.obs.Tracer`) and the matching ``perf_counter``
    #: submission timestamp — the anchor for the retroactive queue span.
    trace_id: str | None = None
    trace_t0: float = 0.0
    future: Future = field(default_factory=Future, repr=False)

    @property
    def key(self) -> tuple[str, RBDFunction]:
        """The dynamic batcher's coalescing key."""
        return (self.robot, self.function)

    @property
    def cost(self) -> int:
        """Batching cost weight (one pipeline task)."""
        return 1

    def expired(self, now: float) -> bool:
        """True once the per-request deadline has passed."""
        return (self.deadline_s is not None
                and now - self.arrival_s >= self.deadline_s)


@dataclass
class RolloutRequest:
    """One whole-trajectory simulation submitted to the service.

    Unlike a :class:`ServeRequest` (one pipeline pass), a rollout costs
    ``T`` serial engine steps; its batching ``cost`` is therefore the
    horizon, which the dynamic batcher's ``max_batch_cost`` budget and
    the shard pool's cost-aware placement both account for.
    """

    robot: str
    scheme: str
    q0: np.ndarray                     # (nv,)
    qd0: np.ndarray                    # (nv,)
    controls: np.ndarray               # (T, nv)
    dt: float
    #: Contact points (tuple so the coalescing key can hash them) plus an
    #: optional per-step activation mask ``(T, c)``.
    contacts: tuple = ()
    contact_mask: np.ndarray | None = None
    #: External forces applied at every step: link index -> ``(6,)``
    #: spatial force in the link frame (stacked per batch by the service;
    #: the rollout engine already accepts per-task stacks).
    f_ext: dict[int, np.ndarray] | None = None
    sensitivities: bool = False
    #: Streaming window: when set, the rollout executes (and its batch's
    #: futures resolve) per window of this many knots — ``on_window`` is
    #: invoked after each completed window with
    #: ``(t0, t1, TaskTrajectory, done)`` and the future still resolves
    #: with the full reassembled trajectory at the end.  Part of the
    #: coalescing key (only same-window rollouts share a slab).
    window: int | None = None
    #: Per-window delivery callback (called on the shard thread; must be
    #: cheap and must not raise — exceptions are swallowed so a client
    #: callback cannot poison its batchmates).
    on_window: object | None = None
    arrival_s: float = 0.0
    #: Per-request deadline, seconds from arrival (see
    #: :attr:`ServeRequest.deadline_s`).
    deadline_s: float | None = None
    #: Failed-execution count (see :attr:`ServeRequest.attempts`).
    attempts: int = 0
    urgent: bool = False
    #: Mid-stream cancellation flag (streaming rollouts only): set via
    #: :meth:`cancel_stream`; the windowed executor stops simulating once
    #: every live request in the batch is cancelled and resolves the
    #: cancelled futures with :class:`StreamCancelledError`.
    _cancel: threading.Event = field(default_factory=threading.Event,
                                     repr=False)
    #: Trace ID + ``perf_counter`` submission timestamp (see
    #: :class:`ServeRequest`).
    trace_id: str | None = None
    trace_t0: float = 0.0
    future: Future = field(default_factory=Future, repr=False)

    @property
    def horizon(self) -> int:
        return self.controls.shape[0]

    @property
    def cost(self) -> int:
        """Batching cost weight: one engine step per horizon step."""
        return self.horizon

    @property
    def key(self) -> tuple:
        """Coalescing key: only rollouts sharing integrator, step size,
        horizon, contact set and streaming window can ride one
        ``(n, T, ...)`` slab."""
        from repro.dynamics.contact_batch import contact_signature

        return ("rollout", self.robot, self.scheme, self.dt, self.horizon,
                contact_signature(self.contacts), self.sensitivities,
                self.window)

    def cancel_stream(self) -> None:
        """Ask the windowed executor to stop simulating this rollout."""
        self._cancel.set()

    def stream_cancelled(self) -> bool:
        return self._cancel.is_set()

    def expired(self, now: float) -> bool:
        """True once the per-request deadline has passed."""
        return (self.deadline_s is not None
                and now - self.arrival_s >= self.deadline_s)


@dataclass
class RolloutServeResult:
    """One task's trajectory plus the service-level accounting."""

    robot: str
    scheme: str
    #: The per-task :class:`repro.rollout.TaskTrajectory` slice.
    value: object
    wall_latency_s: float
    modeled_latency_cycles: float
    modeled_latency_s: float
    modeled_makespan_cycles: float
    horizon: int
    #: Number of whole rollouts coalesced into the executed slab.
    batch_size: int
    shard: int
    engine: str = ""
    backend: str = ""
    #: Streaming delivery record: number of windows streamed before the
    #: future resolved (0 for non-windowed rollouts).
    windows: int = 0


@dataclass
class ServeResult:
    """Functional output plus the two latency views the service records."""

    robot: str
    function: RBDFunction
    value: object
    #: End-to-end host latency: submission to future resolution.
    wall_latency_s: float
    #: Modeled accelerator latency of this request inside its batch
    #: (queue wait is host-side and excluded, as in Fig 15's protocol).
    modeled_latency_cycles: float
    modeled_latency_s: float
    #: Modeled completion time of the whole coalesced batch (for serial
    #: chains this is where the chain's serialization cost shows up).
    modeled_makespan_cycles: float
    #: Size of the coalesced batch this request rode in.
    batch_size: int
    #: Shard that executed the batch.
    shard: int
    #: Name of the execution engine that served the batch (see
    #: :mod:`repro.dynamics.engine`).
    engine: str = ""
    #: Array backend the batch executed on (see :mod:`repro.backend`).
    backend: str = ""
