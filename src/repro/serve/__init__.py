"""Dynamics-as-a-service runtime over the modeled Dadu-RBD accelerator.

Architecture — the life of a request::

            clients                      runtime                    execution
    ------------------------   --------------------------   ----------------------
    submit(robot, fn, q, ...)                                 ArtifactCache
        |                                                      (model, DaduRBD,
        v                                                       SAPS org, graphs,
    ServeRequest + Future ---> DynamicBatcher                   M sparsity, exec
                               key=(robot, fn)                  plan; built once
                               flush on full/timeout            per robot)
                                    |                                |
                                    v                                v
                               ShardPool.select()  ---------> batch_evaluate
                               round_robin | least_loaded     (compiled Table-I
                                    |                          kernels) + cycle
                                    |                          sim profile_batch
                                    v                                |
                               futures resolved  <-------------------+
                               in submission order;
                               MetricsRegistry records
                               p50/p95/p99, occupancy,
                               throughput

    * ``submit`` hands back a future immediately; the **dynamic batcher**
      coalesces same-``(robot, function)`` requests up to ``max_batch`` or
      ``max_wait_s`` (the latency/throughput knob), with a bounded queue
      providing backpressure (``ServiceOverloaded``).  With the policy's
      ``adaptive_wait`` flag the effective timeout shrinks while batches
      fill before the deadline and relaxes again under sparse traffic.
    * A flushed batch lands on one **shard** — a modeled accelerator
      instance with its own cycle ledger — chosen round-robin or
      cost-aware least-loaded (backlog divided by the shard's throughput
      weight); a thread pool (one worker per shard) executes it.  Shards
      are heterogeneous by configuration: :class:`ShardConfig` pins an
      execution engine and array backend per shard (e.g. one
      ``"process"`` shard for multi-core batches next to a ``"compiled"``
      shard), and the engine/backend serving each batch is recorded in
      metrics and on :class:`ServeResult`.
    * The shard evaluates the batch through an **execution engine**
      (:mod:`repro.dynamics.engine`): by default the structure-compiled
      ``"compiled"`` engine, which replays the robot's cached execution
      plan (:mod:`repro.dynamics.plan`) — level-scheduled recursions over
      preallocated workspaces (numerically identical to per-request
      :func:`repro.dynamics.functions.evaluate`; the ``"vectorized"`` and
      ``"loop"`` engines remain selectable).  The batch's modeled makespan
      from :meth:`repro.core.accelerator.DaduRBD.profile_batch` is charged
      to the shard's ledger and the serving engine recorded in metrics.
    * Serial chains (RK4 sensitivity, Fig 13) bypass the batcher via
      :meth:`DynamicsService.submit_chain` and are timed with
      :func:`repro.core.scheduler.serial_chains` dependencies; urgent
      single requests (``submit(..., urgent=True)``) take the same bypass
      for deadline-bound clients.
    * Whole-trajectory rollouts (:meth:`DynamicsService.submit_rollout`)
      batch by (robot, scheme, dt, horizon, contact set) and execute as
      one ``(n, T, ...)`` slab through :mod:`repro.rollout` on the
      shard's engine.  Batching is horizon-aware — each rollout counts
      its horizon ``T`` against ``BatchPolicy.max_batch_cost`` and the
      shard pool's cost-weighted backlog — and per-rollout latency/step
      counts land in metrics.
    * The metrics registry measures real per-shard batch throughput
      (EWMA of rows per second of kernel wall time) and the service
      feeds it back into the ``least_loaded`` weights after every batch
      (:meth:`~repro.serve.pool.ShardPool.recalibrate_weights`) — the
      static per-engine priors only steer cold pools.
    * Per-robot derived state (parsed model, auto-fit accelerator build,
      SAPS organization, pipeline graphs, mass-matrix sparsity) lives in
      the **artifact cache**, built once and shared read-only by all
      shards.

Health & retry — what happens when execution fails::

                      shard executes batch
                             |
                       success? --yes--> futures resolved, breaker
                             |           failure streak reset
                             no
                             |
             record failure on shard (consecutive
             failures >= threshold => breaker OPENS:
             placement skips shard; flusher probes it
             after cooldown, success re-closes it)
                             |
         +-------------------+--------------------+
         |                   |                    |
    capability /        transient error      poison (ValueError/
    resource error      (retryable)          TypeError/KeyError,
         |                   |               or retries exhausted)
         v                   v                    |
    degrade shard       backoff+jitter,           v
    engine: process     re-place through     bisect split-and-
    -> compiled ->      the pool (routes     retry: halves re-run
    vectorized ->       around the open      until the bad request
    loop; re-run        breaker); at most    fails alone with
    in place            RetryPolicy          BatchExecutionError
                        .max_attempts        (__cause__ = original);
                                             neighbors still resolve

    Deadlines ride orthogonally: ``submit(..., deadline_s=...)`` sheds
    the request — future resolved with ``DeadlineExceededError`` — if
    it expires in the batcher (flusher sweep) or while its batch waits
    for a shard (dispatch-time check).  ``close()`` resolves any future
    still pending after the pool drains with ``ServeError("service
    shut down")``.  Chaos coverage: :mod:`repro.faults` injection
    points + ``benchmarks/bench_chaos.py`` (availability floor under
    injected shard faults).

Entry points: :class:`DynamicsService` (the facade),
``python -m repro serve-bench`` (CLI sweep), ``examples/serving.py``
(walkthrough), ``benchmarks/bench_serve.py`` (latency/throughput curves).
"""

from repro.serve.batcher import BatcherStats, BatchPolicy, DynamicBatcher
from repro.serve.bench import format_serve_table, run_serve_load
from repro.serve.cache import (
    ArtifactCache,
    CacheStats,
    RobotArtifacts,
    mass_matrix_sparsity,
)
from repro.serve.clients import ClientReport, ClosedLoopClient, OpenLoopClient
from repro.serve.metrics import LatencySummary, MetricsRegistry, Reservoir
from repro.serve.pool import (
    ShardConfig,
    ShardPool,
    ShardState,
    engine_throughput_hint,
)
from repro.serve.request import (
    BatchExecutionError,
    DeadlineExceededError,
    RetryPolicy,
    RolloutRequest,
    RolloutServeResult,
    ServeError,
    ServeRequest,
    ServeResult,
    ServiceClosed,
    ServiceOverloaded,
    StreamCancelledError,
)
from repro.serve.service import DynamicsService

__all__ = [
    "ArtifactCache",
    "BatchExecutionError",
    "BatchPolicy",
    "BatcherStats",
    "CacheStats",
    "DeadlineExceededError",
    "ClientReport",
    "ClosedLoopClient",
    "DynamicBatcher",
    "DynamicsService",
    "LatencySummary",
    "MetricsRegistry",
    "OpenLoopClient",
    "Reservoir",
    "RetryPolicy",
    "RobotArtifacts",
    "RolloutRequest",
    "RolloutServeResult",
    "ServeError",
    "ServeRequest",
    "ServeResult",
    "ServiceClosed",
    "ServiceOverloaded",
    "ShardConfig",
    "ShardPool",
    "ShardState",
    "StreamCancelledError",
    "engine_throughput_hint",
    "format_serve_table",
    "mass_matrix_sparsity",
    "run_serve_load",
]
