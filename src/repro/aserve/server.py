"""Line-protocol socket server: the serving plane's first network edge.

:class:`AsyncDynamicsServer` listens on a TCP port and speaks a
newline-delimited JSON protocol (one object per line, ``id``-correlated
responses, out-of-order completion — requests from one connection
execute concurrently and responses interleave).  It is a thin shell:
every operation lands on the :class:`~repro.aserve.gateway.AsyncGateway`,
so out-of-process clients get the same admission control, priority
classes, deadline propagation, and streaming semantics as in-process
coroutines.

Protocol (client -> server), one JSON object per line::

    {"op": "hello", "tenant": "lab", "rate_rps": 500, "priority":
     "interactive", ...}                 -> bind this connection's tenant
    {"op": "submit", "id": 1, "robot": "iiwa", "function": "FD",
     "q": [...], "qd": [...], "u": [...]}  -> one dynamics evaluation
    {"op": "rollout", "id": 2, "robot": "iiwa", "scheme": "rk4",
     "q0": [...], "qd0": [...], "controls": [[...]], "dt": 1e-3,
     "window": 8}                        -> streamed: one line per window
                                            ({"done": false}), then the
                                            final line ({"done": true})
    {"op": "cancel", "id": 2}            -> abandon stream 2's tail
    {"op": "telemetry"}                  -> telemetry JSON document
    {"op": "admin"}                      -> admin_state snapshot
    {"op": "admin", "action": "drain"|"restart"|"scale_up"|"scale_down",
     "shard": 0}                         -> pool mutation
    {"op": "ping"}                       -> {"op": "pong"}

Responses echo ``id`` and carry ``"ok": true`` or ``"ok": false`` with
``error`` (exception class name) and ``message``; rate-limit refusals
include ``retry_after_s``.  A connection whose first bytes are an HTTP
``GET`` is served as a one-shot HTTP/1.1 exchange instead —
``/metrics`` (Prometheus text), ``/healthz``, and ``/telemetry`` — so
the same port feeds both robot clients and a scraper.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.aserve.admission import (
    AdmissionController,
    ClientOverloaded,
    RateLimitedError,
    TenantPolicy,
)
from repro.aserve.autoscale import Autoscaler
from repro.aserve.gateway import AsyncGateway
from repro.dynamics.functions import RBDFunction
from repro.serve.service import DynamicsService

__all__ = ["AsyncDynamicsServer"]

#: Refuse absurd lines before json.loads allocates for them (a robot
#: client's biggest payload is a long-horizon controls matrix; 32 MiB
#: of JSON is far beyond any sane request).
_MAX_LINE = 32 * 1024 * 1024


def _jsonable(value):
    """Recursively convert engine outputs to JSON-serializable forms."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def _error_payload(req_id, exc: BaseException) -> dict:
    payload = {
        "id": req_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, RateLimitedError):
        payload["retry_after_s"] = exc.retry_after_s
    return payload


class AsyncDynamicsServer:
    """Serve a :class:`DynamicsService` over TCP (JSON lines + HTTP GET).

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  An optional :class:`Autoscaler` is started and
    stopped with the server and surfaced through the admin op.
    """

    def __init__(
        self,
        service: DynamicsService,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionController | None = None,
        autoscaler: Autoscaler | None = None,
    ) -> None:
        self.service = service
        self.gateway = AsyncGateway(service, admission)
        self.autoscaler = autoscaler
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self.connections = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "AsyncDynamicsServer":
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=_MAX_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.autoscaler is not None:
            self.autoscaler.start()
        return self

    async def stop(self) -> None:
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "AsyncDynamicsServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        peer = writer.get_extra_info("peername")
        tenant = f"conn-{self.connections}"
        write_lock = asyncio.Lock()
        #: Live streaming rollouts on this connection, id -> stream.
        streams: dict = {}
        tasks: set[asyncio.Task] = set()
        tracer = self.service.tracer

        async def send(payload: dict) -> None:
            data = json.dumps(payload).encode() + b"\n"
            async with write_lock:
                writer.write(data)
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send({"ok": False, "error": "LineTooLong",
                                "message": "request line exceeds limit"})
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith(b"GET ") or stripped.startswith(b"HEAD "):
                    await self._serve_http(stripped, reader, writer)
                    return
                try:
                    message = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    await send(_error_payload(None, exc))
                    continue
                op = message.get("op")
                if op == "hello":
                    tenant = await self._handle_hello(message, tenant, send)
                    continue
                if op == "cancel":
                    stream = streams.get(message.get("id"))
                    if stream is not None:
                        stream.cancel()
                    await send({"id": message.get("id"), "ok": True,
                                "op": "cancel"})
                    continue
                # Every other op runs concurrently so a long rollout
                # doesn't head-of-line-block the connection's pings.
                task = asyncio.ensure_future(self._handle(
                    message, tenant, send, streams
                ))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # A dropped connection abandons its streams' tails — the
            # client is gone, free the shard capacity.
            for stream in streams.values():
                stream.cancel()
            for task in tasks:
                task.cancel()
            if tracer is not None and peer is not None:
                pass        # connection spans are the requests' spans
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError):
                # Server shutdown cancels connection tasks mid-teardown;
                # the socket is closed either way.
                pass

    async def _handle_hello(self, message: dict, tenant: str,
                            send) -> str:
        name = str(message.get("tenant", tenant))
        fields = {}
        for key in ("rate_rps", "burst", "deadline_s"):
            if message.get(key) is not None:
                fields[key] = float(message[key])
        if message.get("priority") is not None:
            fields["priority"] = str(message["priority"])
        if message.get("max_inflight") is not None:
            fields["max_inflight"] = int(message["max_inflight"])
        try:
            if fields:
                self.gateway.set_policy(name, TenantPolicy(**fields))
            await send({"ok": True, "op": "hello", "tenant": name})
            return name
        except (ValueError, TypeError) as exc:
            await send({"ok": False, "op": "hello",
                        "error": type(exc).__name__, "message": str(exc)})
            return tenant

    async def _handle(self, message: dict, tenant: str, send,
                      streams: dict) -> None:
        op = message.get("op")
        req_id = message.get("id")
        try:
            if op == "submit":
                await self._handle_submit(message, tenant, send)
            elif op == "rollout":
                await self._handle_rollout(message, tenant, send, streams)
            elif op == "telemetry":
                await send({"id": req_id, "ok": True,
                            "telemetry": self.service.telemetry().to_json()})
            elif op == "admin":
                await self._handle_admin(message, send)
            elif op == "ping":
                await send({"id": req_id, "ok": True, "op": "pong"})
            else:
                await send({"id": req_id, "ok": False,
                            "error": "UnknownOp",
                            "message": f"unknown op {op!r}"})
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            try:
                await send(_error_payload(req_id, exc))
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_submit(self, message: dict, tenant: str,
                             send) -> None:
        req_id = message.get("id")
        f_ext = message.get("f_ext")
        if f_ext is not None:
            f_ext = {int(k): np.asarray(v, dtype=float)
                     for k, v in f_ext.items()}
        result = await self.gateway.submit(
            message["robot"], RBDFunction(message["function"]),
            np.asarray(message["q"], dtype=float),
            qd=(None if message.get("qd") is None
                else np.asarray(message["qd"], dtype=float)),
            u=(None if message.get("u") is None
               else np.asarray(message["u"], dtype=float)),
            minv=(None if message.get("minv") is None
                  else np.asarray(message["minv"], dtype=float)),
            f_ext=f_ext,
            tenant=tenant,
            deadline_s=message.get("deadline_s"),
            urgent=message.get("urgent"),
        )
        await send({
            "id": req_id, "ok": True,
            "value": _jsonable(result.value),
            "shard": result.shard,
            "engine": result.engine,
            "backend": result.backend,
            "batch_size": result.batch_size,
            "wall_latency_s": result.wall_latency_s,
            "modeled_latency_s": result.modeled_latency_s,
        })

    async def _handle_rollout(self, message: dict, tenant: str, send,
                              streams: dict) -> None:
        req_id = message.get("id")
        kwargs = dict(
            scheme=message.get("scheme", "semi_implicit"),
            tenant=tenant,
            deadline_s=message.get("deadline_s"),
            urgent=message.get("urgent"),
        )
        args = (
            message["robot"],
            np.asarray(message["q0"], dtype=float),
            np.asarray(message["qd0"], dtype=float),
            np.asarray(message["controls"], dtype=float),
            float(message["dt"]),
        )
        window = message.get("window")
        if window is None:
            result = await self.gateway.submit_rollout(*args, **kwargs)
            await send(self._rollout_payload(req_id, result))
            return
        stream = await self.gateway.stream_rollout(
            *args, window=int(window), **kwargs
        )
        streams[req_id] = stream
        try:
            async for w in stream:
                await send({
                    "id": req_id, "ok": True, "done": False,
                    "window": [w.t0, w.t1],
                    "qs": _jsonable(w.trajectory.qs),
                    "qds": _jsonable(w.trajectory.qds),
                })
            try:
                result = await stream.result()
            except Exception as exc:
                await send(_error_payload(req_id, exc))
                return
            await send(self._rollout_payload(req_id, result))
        finally:
            streams.pop(req_id, None)

    @staticmethod
    def _rollout_payload(req_id, result) -> dict:
        return {
            "id": req_id, "ok": True, "done": True,
            "qs": _jsonable(result.value.qs),
            "qds": _jsonable(result.value.qds),
            "horizon": result.horizon,
            "windows": result.windows,
            "shard": result.shard,
            "engine": result.engine,
            "batch_size": result.batch_size,
            "wall_latency_s": result.wall_latency_s,
        }

    async def _handle_admin(self, message: dict, send) -> None:
        req_id = message.get("id")
        action = message.get("action")
        loop = asyncio.get_running_loop()
        if action in ("drain", "restart", "scale_up", "scale_down"):
            shard = message.get("shard")
            if action == "drain":
                await loop.run_in_executor(
                    None, lambda: self.service.drain_shard(
                        int(shard), wait_s=message.get("wait_s")
                    )
                )
            elif action == "restart":
                self.service.restart_shard(int(shard))
            elif action == "scale_up":
                await loop.run_in_executor(
                    None, lambda: self.service.scale_up(reason="admin")
                )
            else:
                await loop.run_in_executor(
                    None, lambda: self.service.scale_down(
                        index=None if shard is None else int(shard),
                        reason="admin",
                    )
                )
        elif action is not None:
            await send({"id": req_id, "ok": False, "error": "UnknownAction",
                        "message": f"unknown admin action {action!r}"})
            return
        state = self.service.admin_state()
        state["tenants"] = self.gateway.admission.stats()
        if self.autoscaler is not None:
            state["autoscaler"] = self.autoscaler.stats()
        await send({"id": req_id, "ok": True, "admin": state})

    # -- HTTP (scrape surface) -----------------------------------------

    async def _serve_http(self, request_line: bytes,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.1: GET /metrics | /healthz | /telemetry."""
        try:
            path = request_line.split()[1].decode("latin-1")
        except (IndexError, UnicodeDecodeError):
            path = "/"
        # Drain the (ignored) request headers.
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        if path.startswith("/metrics"):
            status, ctype = "200 OK", "text/plain; version=0.0.4"
            body = self.service.telemetry().prometheus()
        elif path.startswith("/healthz"):
            healthy = any(
                s.health == "healthy" for s in self.service.pool.shards
            )
            status = "200 OK" if healthy else "503 Service Unavailable"
            ctype = "application/json"
            body = json.dumps({
                "status": "ok" if healthy else "degraded",
                "active_shards": self.service.pool.n_active,
                "shard_health": [
                    s.health for s in self.service.pool.shards
                ],
            })
        elif path.startswith("/telemetry"):
            status, ctype = "200 OK", "application/json"
            body = json.dumps(self.service.telemetry().to_json())
        else:
            status, ctype = "404 Not Found", "text/plain"
            body = f"no route for {path}\n"
        payload = body.encode()
        writer.write(
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n".encode() + payload
        )
        try:
            await writer.drain()
        finally:
            writer.close()
