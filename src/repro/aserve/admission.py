"""Multi-tenant admission control for the async serving plane.

Each tenant (client identity) carries a :class:`TenantPolicy`: a token
bucket bounding its sustained request rate, a priority class mapping
onto the sync service's dispatch tiers, and an inflight cap providing
per-connection backpressure.  The :class:`AdmissionController` is the
single gate every gateway submission passes through — a tenant that
exhausts its bucket or its inflight budget is refused *before* its
request touches the batcher, so one chatty tenant cannot crowd a
priority tenant out of the shared shard pool.

Priority classes:

``interactive``
    Deadline-bound closed-loop control (MPC re-planning).  Mapped to the
    service's ``urgent`` bypass — no coalescing delay — and admitted
    ahead of standard traffic.
``standard``
    The default: batched with everyone else.
``batch``
    Throughput work (sweeps, dataset generation).  Admitted last and
    first to be refused under contention.

Token accounting is cost-weighted: a plain dynamics request costs 1
token, a rollout costs its horizon — the same cost units the batcher
budgets and the shard pool places by, so "rate" means admitted *work*,
not call count.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.serve.request import ServeError

__all__ = [
    "PRIORITIES",
    "AdmissionController",
    "ClientOverloaded",
    "RateLimitedError",
    "TenantPolicy",
    "TokenBucket",
]

#: Priority class -> admission rank (lower admits first under
#: contention).  ``interactive`` additionally rides the sync service's
#: urgent bypass.
PRIORITIES = {"interactive": 0, "standard": 1, "batch": 2}


class RateLimitedError(ServeError):
    """The tenant's token bucket is empty; the request was refused.

    Carries ``retry_after_s`` — the bucket refill time until one token —
    so clients can back off precisely instead of hammering."""

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ClientOverloaded(ServeError):
    """The tenant is at its inflight cap; connection-level backpressure."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    ``take(cost)`` is non-blocking — it either debits and returns True
    or returns False and reports how long until ``cost`` tokens exist.
    The bucket starts full, so a tenant's first burst admits
    immediately.  Time is injectable for deterministic tests.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = max(now - self._stamp, 0.0)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def take(self, cost: float = 1.0) -> bool:
        with self._lock:
            self._refill_locked(self._clock())
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    def wait_time(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available (0 if now)."""
        with self._lock:
            self._refill_locked(self._clock())
            deficit = cost - self._tokens
            return max(deficit, 0.0) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission contract.

    ``rate_rps`` / ``burst`` feed the token bucket (cost units per
    second; a rollout costs its horizon).  ``priority`` names the
    dispatch tier; ``max_inflight`` caps the tenant's unresolved
    futures (connection backpressure); ``deadline_s`` is a default
    deadline stamped onto requests that don't carry their own, feeding
    the service's shedding machinery.
    """

    rate_rps: float = 1000.0
    burst: float = 2000.0
    priority: str = "standard"
    max_inflight: int = 256
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {self.priority!r}; choose from "
                f"{sorted(PRIORITIES)}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )

    @property
    def urgent(self) -> bool:
        """Interactive tenants ride the sync service's urgent bypass."""
        return self.priority == "interactive"


@dataclass
class _TenantState:
    policy: TenantPolicy
    bucket: TokenBucket
    inflight: int = 0
    admitted: int = 0
    rate_limited: int = 0
    overloaded: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class AdmissionController:
    """The gateway's admission gate: one decision point per submission.

    ``admit(tenant, cost)`` either debits the tenant's bucket and
    inflight budget and returns its policy, or raises
    :class:`RateLimitedError` / :class:`ClientOverloaded`.  Callers
    must pair every successful admit with ``release(tenant)`` when the
    request's future resolves (any way).  Unknown tenants are admitted
    under ``default_policy``.
    """

    def __init__(self, default_policy: TenantPolicy | None = None,
                 clock=time.monotonic) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Install (or replace) a tenant's admission contract."""
        with self._lock:
            state = self._tenants.get(tenant)
            bucket = TokenBucket(policy.rate_rps, policy.burst,
                                 clock=self._clock)
            if state is None:
                self._tenants[tenant] = _TenantState(policy, bucket)
            else:
                state.policy = policy
                state.bucket = bucket

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                policy = self.default_policy
                state = _TenantState(
                    policy,
                    TokenBucket(policy.rate_rps, policy.burst,
                                clock=self._clock),
                )
                self._tenants[tenant] = state
            return state

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._state(tenant).policy

    def admit(self, tenant: str, cost: float = 1.0) -> TenantPolicy:
        """Admit ``cost`` units of work for ``tenant`` or raise.

        Checks the inflight cap before the bucket so a refused-for-
        backpressure request doesn't burn tokens it never used.
        """
        state = self._state(tenant)
        with state.lock:
            if state.inflight >= state.policy.max_inflight:
                state.overloaded += 1
                raise ClientOverloaded(
                    f"tenant {tenant!r} at max_inflight="
                    f"{state.policy.max_inflight}"
                )
            if not state.bucket.take(cost):
                state.rate_limited += 1
                raise RateLimitedError(
                    f"tenant {tenant!r} rate-limited "
                    f"({state.policy.rate_rps:g} units/s)",
                    retry_after_s=state.bucket.wait_time(cost),
                )
            state.inflight += 1
            state.admitted += 1
            return state.policy

    def release(self, tenant: str) -> None:
        """Return one inflight slot (call when the future resolves)."""
        state = self._state(tenant)
        with state.lock:
            state.inflight = max(state.inflight - 1, 0)

    def stats(self) -> dict[str, dict]:
        """Per-tenant admission counters (admin/telemetry surface)."""
        with self._lock:
            tenants = dict(self._tenants)
        out = {}
        for name, state in tenants.items():
            with state.lock:
                out[name] = {
                    "priority": state.policy.priority,
                    "rate_rps": state.policy.rate_rps,
                    "inflight": state.inflight,
                    "admitted": state.admitted,
                    "rate_limited": state.rate_limited,
                    "overloaded": state.overloaded,
                    "tokens": state.bucket.tokens,
                }
        return out
