"""Asyncio client for the dynamics serving protocol.

:class:`AsyncServeClient` multiplexes any number of concurrent
requests over one TCP connection to an
:class:`~repro.aserve.server.AsyncDynamicsServer`: a background reader
task correlates ``id``-stamped response lines back to the awaiting
coroutine (or the window queue of a streaming rollout), so a robot
process can run thousands of in-flight evaluations over a single
socket.

    client = await AsyncServeClient.connect("127.0.0.1", port,
                                            tenant="arm-7",
                                            priority="interactive")
    result = await client.submit("iiwa", "FD", q, qd, tau)
    async for window in client.stream_rollout("iiwa", q0, qd0,
                                              controls, dt=1e-3,
                                              window=8):
        replan(window["qs"])            # act on the first knots
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.request import ServeError

__all__ = ["AsyncServeClient", "RemoteServeError", "RemoteStream"]


class RemoteServeError(ServeError):
    """A server-side failure surfaced over the wire.

    ``kind`` carries the server-side exception class name (e.g.
    ``"RateLimitedError"``); ``retry_after_s`` is populated for
    rate-limit refusals."""

    def __init__(self, message: str, kind: str = "",
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry_after_s = retry_after_s


def _raise_remote(payload: dict) -> None:
    raise RemoteServeError(
        payload.get("message", "remote error"),
        kind=payload.get("error", ""),
        retry_after_s=payload.get("retry_after_s", 0.0),
    )


class RemoteStream:
    """Client-side async iterator over a streamed rollout's windows.

    Yields the raw window payloads (dicts with ``window``, ``qs``,
    ``qds``); ``await stream.result()`` returns the final full-
    trajectory payload.  ``await stream.cancel()`` abandons the tail
    server-side; iteration then simply ends.
    """

    _DONE = object()

    def __init__(self, client: "AsyncServeClient", req_id: int) -> None:
        self._client = client
        self._id = req_id
        self._queue: asyncio.Queue = asyncio.Queue()
        self._final: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        # Iteration already surfaces errors; an un-awaited result()
        # must not log "exception never retrieved".
        self._final.add_done_callback(
            lambda f: f.cancelled() or f.exception()
        )
        self._cancelled = False

    def _feed(self, payload: dict) -> None:
        if not payload.get("ok", False):
            if not self._final.done():
                self._final.set_exception(RemoteServeError(
                    payload.get("message", "remote error"),
                    kind=payload.get("error", ""),
                    retry_after_s=payload.get("retry_after_s", 0.0),
                ))
            self._queue.put_nowait(self._DONE)
        elif payload.get("done"):
            if not self._final.done():
                self._final.set_result(payload)
            self._queue.put_nowait(self._DONE)
        else:
            self._queue.put_nowait(payload)

    def _drop(self, exc: Exception) -> None:
        if not self._final.done():
            self._final.set_exception(exc)
        self._queue.put_nowait(self._DONE)

    async def cancel(self) -> None:
        self._cancelled = True
        await self._client._send({"op": "cancel", "id": self._id})

    async def result(self) -> dict:
        return await asyncio.shield(self._final)

    def __aiter__(self) -> "RemoteStream":
        return self

    async def __anext__(self) -> dict:
        while True:
            item = await self._queue.get()
            if item is self._DONE:
                # Surface a transport/server error to the iterating
                # consumer; a stream this client cancelled just ends.
                if (not self._cancelled and self._final.done()
                        and self._final.exception() is not None):
                    raise self._final.exception()
                raise StopAsyncIteration
            if self._cancelled:
                continue        # late window raced the cancel
            return item


class AsyncServeClient:
    """One multiplexed connection to an :class:`AsyncDynamicsServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tenant: str) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._streams: dict[int, RemoteStream] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str = "default",
        rate_rps: float | None = None,
        burst: float | None = None,
        priority: str | None = None,
        max_inflight: int | None = None,
        deadline_s: float | None = None,
    ) -> "AsyncServeClient":
        """Open a connection and bind its tenant identity/policy."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, tenant)
        hello = {"op": "hello", "tenant": tenant}
        for key, value in (("rate_rps", rate_rps), ("burst", burst),
                           ("priority", priority),
                           ("max_inflight", max_inflight),
                           ("deadline_s", deadline_s)):
            if value is not None:
                hello[key] = value
        await client._send(hello)
        return client

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._fail_all(RemoteServeError("connection closed"))

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------

    def _fail_all(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        streams, self._streams = self._streams, {}
        for stream in streams.values():
            stream._drop(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionResetError("server closed connection")
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                req_id = payload.get("id")
                stream = self._streams.get(req_id)
                if stream is not None:
                    stream._feed(payload)
                    if payload.get("done") or not payload.get("ok", False):
                        self._streams.pop(req_id, None)
                    continue
                future = self._pending.pop(req_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_all(RemoteServeError(str(exc) or repr(exc)))

    async def _send(self, payload: dict) -> None:
        data = json.dumps(payload).encode() + b"\n"
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()

    def _allocate(self) -> tuple[int, asyncio.Future]:
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[self._next_id] = future
        return self._next_id, future

    async def _call(self, payload: dict) -> dict:
        req_id, future = self._allocate()
        payload["id"] = req_id
        await self._send(payload)
        response = await future
        if not response.get("ok", False):
            _raise_remote(response)
        return response

    @staticmethod
    def _tolist(value):
        return None if value is None else np.asarray(value).tolist()

    # -- API -----------------------------------------------------------

    async def ping(self) -> dict:
        return await self._call({"op": "ping"})

    async def submit(self, robot: str, function: str, q, qd=None, u=None,
                     *, minv=None, f_ext=None,
                     deadline_s: float | None = None,
                     urgent: bool | None = None) -> dict:
        """One dynamics evaluation; returns the response payload
        (``value`` holds the result rows)."""
        payload = {
            "op": "submit", "robot": robot,
            "function": getattr(function, "value", function),
            "q": self._tolist(q), "qd": self._tolist(qd),
            "u": self._tolist(u), "minv": self._tolist(minv),
            "deadline_s": deadline_s, "urgent": urgent,
        }
        if f_ext is not None:
            payload["f_ext"] = {
                str(k): self._tolist(v) for k, v in f_ext.items()
            }
        return await self._call(payload)

    async def submit_rollout(self, robot: str, q0, qd0, controls, *,
                             dt: float, scheme: str = "semi_implicit",
                             deadline_s: float | None = None,
                             urgent: bool | None = None) -> dict:
        """One whole-trajectory rollout; resolves with the full ``qs`` /
        ``qds`` payload."""
        return await self._call({
            "op": "rollout", "robot": robot, "scheme": scheme,
            "q0": self._tolist(q0), "qd0": self._tolist(qd0),
            "controls": self._tolist(controls), "dt": dt,
            "deadline_s": deadline_s, "urgent": urgent,
        })

    async def stream_rollout(self, robot: str, q0, qd0, controls, *,
                             dt: float, window: int,
                             scheme: str = "semi_implicit",
                             deadline_s: float | None = None,
                             urgent: bool | None = None) -> RemoteStream:
        """A streaming rollout; returns a :class:`RemoteStream` yielding
        window payloads as the server computes them."""
        req_id, _ = self._allocate()
        # Streams route through the stream table, not the pending map.
        self._pending.pop(req_id, None)
        stream = RemoteStream(self, req_id)
        self._streams[req_id] = stream
        await self._send({
            "op": "rollout", "id": req_id, "robot": robot,
            "scheme": scheme, "window": window,
            "q0": self._tolist(q0), "qd0": self._tolist(qd0),
            "controls": self._tolist(controls), "dt": dt,
            "deadline_s": deadline_s, "urgent": urgent,
        })
        return stream

    async def telemetry(self) -> dict:
        response = await self._call({"op": "telemetry"})
        return response["telemetry"]

    async def admin(self, action: str | None = None,
                    shard: int | None = None,
                    wait_s: float | None = None) -> dict:
        """Admin snapshot, optionally after a pool mutation
        (``action`` in drain/restart/scale_up/scale_down)."""
        payload = {"op": "admin"}
        if action is not None:
            payload["action"] = action
        if shard is not None:
            payload["shard"] = shard
        if wait_s is not None:
            payload["wait_s"] = wait_s
        response = await self._call(payload)
        return response["admin"]
