"""Async serving plane: awaitable clients, streaming, tenancy, scaling.

``repro.aserve`` layers an asyncio front half onto the thread-based
:class:`~repro.serve.service.DynamicsService` — the step that turns
the modeled Dadu-RBD accelerator pool from a library into a service
with out-of-process clients::

      robot processes                 event loop                sync runtime
    -------------------   --------------------------------   ----------------
    AsyncServeClient  --> AsyncDynamicsServer (JSON lines,     DynamicsService
     (TCP, multiplexed)    HTTP /metrics /healthz /telemetry)   batcher/shards
           |                        |                                ^
           |               AsyncGateway.submit /                     |
    in-process coroutines  submit_rollout / stream_rollout  ---------+
                                    |                          (wrap_future;
                           AdmissionController                  on_window ->
                           per-tenant token buckets,            call_soon_
                           priority classes, inflight caps      threadsafe)
                                    |
                           Autoscaler: demand (admitted
                           cost rate) vs capacity (measured
                           shard EWMA) -> scale_up/scale_down

The pieces:

* :class:`~repro.aserve.gateway.AsyncGateway` — ``await submit(...)``
  / ``await submit_rollout(...)`` for coroutine clients, plus
  :meth:`~repro.aserve.gateway.AsyncGateway.stream_rollout`: windowed
  rollouts as an async iterator, first ``W`` knots in hand while the
  tail still simulates, ``cancel()`` handing the tail back.
* :class:`~repro.aserve.admission.AdmissionController` — multi-tenant
  admission: cost-weighted token buckets, ``interactive`` /
  ``standard`` / ``batch`` priority classes (interactive rides the
  urgent bypass), per-tenant inflight caps, tenant default deadlines
  feeding the service's shedding.
* :class:`~repro.aserve.server.AsyncDynamicsServer` /
  :class:`~repro.aserve.client.AsyncServeClient` — the line-protocol
  socket edge (``python -m repro serve`` / ``serve-client``), with the
  admin surface (drain/restart/scale, breaker state, telemetry) on the
  same port.
* :class:`~repro.aserve.autoscale.Autoscaler` — grows and shrinks the
  shard pool from measured demand vs capacity, drain-before-remove.
* :func:`~repro.aserve.loadtest.run_async_load` — the fleet simulator
  behind ``benchmarks/bench_async.py``: thousands of Poisson + MPC
  coroutine clients, availability/latency/scaling report.
"""

from repro.aserve.admission import (
    PRIORITIES,
    AdmissionController,
    ClientOverloaded,
    RateLimitedError,
    TenantPolicy,
    TokenBucket,
)
from repro.aserve.autoscale import Autoscaler
from repro.aserve.client import AsyncServeClient, RemoteServeError, RemoteStream
from repro.aserve.gateway import AsyncGateway, RolloutStream, StreamWindow
from repro.aserve.loadtest import run_async_load
from repro.aserve.server import AsyncDynamicsServer

__all__ = [
    "PRIORITIES",
    "AdmissionController",
    "AsyncDynamicsServer",
    "AsyncGateway",
    "AsyncServeClient",
    "Autoscaler",
    "ClientOverloaded",
    "RateLimitedError",
    "RemoteServeError",
    "RemoteStream",
    "RolloutStream",
    "StreamWindow",
    "TenantPolicy",
    "TokenBucket",
    "run_async_load",
]
