"""Closed-loop async load testing: thousands of coroutine clients.

:func:`run_async_load` simulates a robot fleet against the async
serving plane, in-process (gateway, no sockets — the socket path is a
constant factor exercised separately; this harness measures the
serving plane itself).  Two client populations mix:

* **Poisson clients** (``standard`` tenants) — open-loop dynamics
  requests with exponential inter-arrival times, the classic
  telemetry/estimation workload.
* **MPC clients** (``interactive`` tenants) — closed-loop streaming
  rollouts: submit a horizon with ``window=W``, act on the first
  window (that's the control-loop latency that matters), then with
  probability ``replan_rate`` cancel the tail and re-plan — the
  predictive-sampling pattern where most of the horizon is thrown
  away.

Faults inject at the shard-execute site
(:mod:`repro.faults`) with deterministic seeding, so availability
numbers are replayable.  An optional
:class:`~repro.aserve.autoscale.Autoscaler` rides along; its grow and
shrink decisions land in the report.

The report separates *failures* (unexpected errors — these break the
availability SLO) from *policy refusals* (rate-limited / overloaded —
the admission layer doing its job) and *sheds* (deadline-expired).
Availability = ok / (ok + failed + shed).
"""

from __future__ import annotations

import asyncio
import random
import time

import numpy as np

from repro import faults as _faults
from repro.aserve.admission import (
    AdmissionController,
    ClientOverloaded,
    RateLimitedError,
    TenantPolicy,
)
from repro.aserve.autoscale import Autoscaler
from repro.aserve.gateway import AsyncGateway
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.serve import BatchPolicy, DynamicsService
from repro.serve.request import (
    DeadlineExceededError,
    StreamCancelledError,
)

__all__ = ["run_async_load"]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


class _Counts:
    """One client population's outcome ledger."""

    def __init__(self) -> None:
        self.ok = 0
        self.failed = 0
        self.rate_limited = 0
        self.shed = 0
        self.cancelled = 0
        self.latencies: list[float] = []
        self.first_window: list[float] = []
        self.errors: dict[str, int] = {}

    def error(self, exc: BaseException) -> None:
        self.failed += 1
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1

    def report(self) -> dict:
        attempts = self.ok + self.failed + self.shed
        return {
            "ok": self.ok,
            "failed": self.failed,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "availability": self.ok / attempts if attempts else 1.0,
            "p50_ms": _percentile(self.latencies, 50) * 1e3,
            "p95_ms": _percentile(self.latencies, 95) * 1e3,
            "p99_ms": _percentile(self.latencies, 99) * 1e3,
            "first_window_p50_ms": _percentile(self.first_window, 50) * 1e3,
            "first_window_p95_ms": _percentile(self.first_window, 95) * 1e3,
            "errors": dict(self.errors),
        }


async def _poisson_client(gateway: AsyncGateway, tenant: str, robot: str,
                          nv: int, n_requests: int, rate_rps: float,
                          rng: random.Random, counts: _Counts) -> None:
    q = np.asarray([rng.uniform(-1, 1) for _ in range(nv)])
    qd = np.zeros(nv)
    tau = np.zeros(nv)
    for _ in range(n_requests):
        await asyncio.sleep(rng.expovariate(rate_rps))
        t0 = time.perf_counter()
        try:
            await gateway.submit(robot, RBDFunction.FD, q, qd, tau,
                                 tenant=tenant)
            counts.ok += 1
            counts.latencies.append(time.perf_counter() - t0)
        except (RateLimitedError, ClientOverloaded):
            counts.rate_limited += 1
        except DeadlineExceededError:
            counts.shed += 1
        except Exception as exc:
            counts.error(exc)


async def _mpc_client(gateway: AsyncGateway, tenant: str, robot: str,
                      nv: int, n_plans: int, horizon: int, window: int,
                      dt: float, replan_rate: float, rng: random.Random,
                      counts: _Counts) -> None:
    q = np.asarray([rng.uniform(-0.5, 0.5) for _ in range(nv)])
    qd = np.zeros(nv)
    for _ in range(n_plans):
        controls = np.zeros((horizon, nv))
        t0 = time.perf_counter()
        try:
            stream = await gateway.stream_rollout(
                robot, q, qd, controls, dt, window=window, tenant=tenant,
            )
        except (RateLimitedError, ClientOverloaded):
            counts.rate_limited += 1
            await asyncio.sleep(0.001)
            continue
        except Exception as exc:
            counts.error(exc)
            continue
        try:
            first = True
            replan = rng.random() < replan_rate
            async for w in stream:
                if first:
                    counts.first_window.append(time.perf_counter() - t0)
                    # The closed loop advances from the first knots.
                    q = np.asarray(w.trajectory.qs[-1])
                    qd = np.asarray(w.trajectory.qds[-1])
                    first = False
                    if replan and not w.done:
                        stream.cancel()
                        counts.cancelled += 1
            if not replan:
                await stream.result()
                counts.ok += 1
                counts.latencies.append(time.perf_counter() - t0)
            else:
                counts.ok += 1
        except StreamCancelledError:
            counts.cancelled += 1
        except DeadlineExceededError:
            counts.shed += 1
        except Exception as exc:
            counts.error(exc)


async def _run(service: DynamicsService, admission: AdmissionController,
               *, n_clients: int, mpc_fraction: float, robot: str,
               requests_per_client: int, plans_per_client: int,
               horizon: int, window: int, dt: float, rate_rps: float,
               replan_rate: float, seed: int) -> tuple[_Counts, _Counts]:
    gateway = AsyncGateway(service, admission)
    nv = load_robot(robot).nv
    poisson = _Counts()
    mpc = _Counts()
    n_mpc = int(round(n_clients * mpc_fraction))
    tasks = []
    for i in range(n_clients):
        rng = random.Random(f"async-load-{seed}-{i}")
        if i < n_mpc:
            tenant = f"mpc-{i}"
            admission.set_policy(tenant, TenantPolicy(
                rate_rps=max(rate_rps * horizon, horizon * 4.0),
                burst=max(rate_rps * horizon, horizon * 4.0) * 2,
                priority="interactive",
            ))
            tasks.append(_mpc_client(
                gateway, tenant, robot, nv, plans_per_client, horizon,
                window, dt, replan_rate, rng, mpc,
            ))
        else:
            tenant = f"poisson-{i}"
            admission.set_policy(tenant, TenantPolicy(
                rate_rps=max(rate_rps * 2, 10.0),
                burst=max(rate_rps * 4, 20.0),
                priority="standard",
            ))
            tasks.append(_poisson_client(
                gateway, tenant, robot, nv, requests_per_client,
                rate_rps, rng, poisson,
            ))
    await asyncio.gather(*tasks)
    return poisson, mpc


def run_async_load(
    n_clients: int = 100,
    mpc_fraction: float = 0.2,
    requests_per_client: int = 5,
    plans_per_client: int = 2,
    robot: str = "iiwa",
    horizon: int = 32,
    window: int = 8,
    dt: float = 1e-3,
    rate_rps: float = 20.0,
    replan_rate: float = 0.5,
    fault_rate: float = 0.0,
    n_shards: int = 2,
    autoscale: bool = False,
    min_shards: int = 1,
    max_shards: int = 6,
    seed: int = 0,
    policy: BatchPolicy | None = None,
    service: DynamicsService | None = None,
) -> dict:
    """Run the Poisson + MPC mix; returns the availability report.

    ``fault_rate`` arms deterministic exception injection at the
    shard-execute site (the service's retry/breaker machinery absorbs
    them — that absorption is what the availability number measures).
    ``autoscale=True`` attaches an :class:`Autoscaler` and reports its
    grow/shrink events.  Pass ``service`` to reuse an existing one
    (it will not be closed); otherwise one is built and torn down.
    """
    own_service = service is None
    if own_service:
        service = DynamicsService(
            policy=policy or BatchPolicy(max_pending=100_000),
            n_shards=n_shards,
        )
    admission = AdmissionController()
    scaler = None
    if autoscale:
        scaler = Autoscaler(service, min_shards=min_shards,
                            max_shards=max_shards, interval_s=0.05,
                            cooldown_s=0.15, drain_wait_s=1.0)
        scaler.start()
    specs = []
    if fault_rate > 0:
        specs.append(_faults.FaultSpec("shard.execute", rate=fault_rate))
    t0 = time.perf_counter()
    try:
        if specs:
            with _faults.injected(*specs, seed=seed):
                poisson, mpc = asyncio.run(_run(
                    service, admission, n_clients=n_clients,
                    mpc_fraction=mpc_fraction, robot=robot,
                    requests_per_client=requests_per_client,
                    plans_per_client=plans_per_client, horizon=horizon,
                    window=window, dt=dt, rate_rps=rate_rps,
                    replan_rate=replan_rate, seed=seed,
                ))
        else:
            poisson, mpc = asyncio.run(_run(
                service, admission, n_clients=n_clients,
                mpc_fraction=mpc_fraction, robot=robot,
                requests_per_client=requests_per_client,
                plans_per_client=plans_per_client, horizon=horizon,
                window=window, dt=dt, rate_rps=rate_rps,
                replan_rate=replan_rate, seed=seed,
            ))
    finally:
        if scaler is not None:
            scaler.stop()
        wall_s = time.perf_counter() - t0
        scale_events = service.pool.scale_events()
        stats = service.stats()
        if own_service:
            service.close()
    total_ok = poisson.ok + mpc.ok
    total_bad = poisson.failed + mpc.failed + poisson.shed + mpc.shed
    attempts = total_ok + total_bad
    return {
        "n_clients": n_clients,
        "mpc_clients": int(round(n_clients * mpc_fraction)),
        "fault_rate": fault_rate,
        "wall_s": wall_s,
        "availability": total_ok / attempts if attempts else 1.0,
        "poisson": poisson.report(),
        "mpc": mpc.report(),
        "retries": stats.get("retries", 0),
        "breaker_opens": stats.get("breaker_opens", 0),
        "active_shards": stats.get("active_shards", 0),
        "scale_events": scale_events,
        "scale_ups": sum(1 for e in scale_events if e["action"] == "add"),
        "scale_downs": sum(
            1 for e in scale_events if e["action"] == "remove"
        ),
        "autoscaler": scaler.stats() if scaler is not None else None,
    }
