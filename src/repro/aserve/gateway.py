"""Async gateway: awaitable submissions over the thread-based service.

:class:`AsyncGateway` is the in-process bridge between asyncio clients
and the synchronous :class:`~repro.serve.service.DynamicsService`.  It
adds exactly three things on top of the service's future-based API:

* **Awaitability** — ``await gateway.submit(...)`` wraps the service's
  ``concurrent.futures.Future`` with :func:`asyncio.wrap_future`, so
  thousands of coroutine clients can multiplex over one event loop
  while shard threads resolve results underneath.
* **Admission** — every submission passes the
  :class:`~repro.aserve.admission.AdmissionController` gate first:
  token-bucket rate limiting (cost-weighted — rollouts cost their
  horizon), per-tenant inflight caps, and priority classes
  (``interactive`` tenants ride the service's urgent bypass; tenant
  default deadlines feed the service's deadline shedding).
* **Streaming** — :meth:`stream_rollout` exposes the service's
  windowed rollouts as an async iterator: windows computed on the
  shard thread are handed across the thread/loop boundary with
  ``call_soon_threadsafe`` onto an :class:`asyncio.Queue`, and
  cancelling the stream hands the unsimulated tail back to the pool.

The gateway is also what the socket server (:mod:`repro.aserve.server`)
speaks to — out-of-process clients get the same admission and
streaming semantics over the wire.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.aserve.admission import AdmissionController, TenantPolicy
from repro.serve.request import StreamCancelledError
from repro.serve.service import DynamicsService

__all__ = ["AsyncGateway", "RolloutStream", "StreamWindow"]


@dataclass(frozen=True)
class StreamWindow:
    """One delivered window of a streaming rollout."""

    t0: int
    t1: int
    #: The window's :class:`~repro.rollout.TaskTrajectory` slice for
    #: this request's task (states carry the window's leading knot).
    trajectory: object
    #: True on the final window of the horizon.
    done: bool


class RolloutStream:
    """Async iterator over a streaming rollout's windows.

    Iterate to receive :class:`StreamWindow` records as the shard
    computes them; ``await stream.result()`` afterwards (or instead)
    for the final :class:`~repro.serve.request.RolloutServeResult`
    carrying the full reassembled trajectory.  ``stream.cancel()``
    abandons the tail: iteration ends and ``result()`` raises
    :class:`~repro.serve.request.StreamCancelledError`.

    Windows are enqueued from the shard thread via
    ``call_soon_threadsafe`` *before* the future resolves, so iteration
    always sees every delivered window before the end-of-stream
    sentinel.
    """

    _DONE = object()

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._queue: asyncio.Queue = asyncio.Queue()
        self._future = None          # concurrent.futures.Future
        self._aio_future = None      # asyncio wrapper
        self._cancelled = False
        self._exhausted = False

    # -- shard-thread side --------------------------------------------

    def _deliver(self, t0: int, t1: int, trajectory, done: bool) -> None:
        """on_window callback (runs on the shard thread)."""
        self._post(StreamWindow(t0, t1, trajectory, done))

    def _finish(self, _future) -> None:
        """Future done-callback: post the end-of-stream sentinel."""
        self._post(self._DONE)

    def _post(self, item) -> None:
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, item)
        except RuntimeError:
            pass        # loop already closed; consumer is gone anyway

    # -- consumer side -------------------------------------------------

    def _bind(self, future) -> None:
        self._future = future
        self._aio_future = asyncio.wrap_future(future, loop=self._loop)
        # Swallow "exception never retrieved" for consumers that only
        # iterate (StopAsyncIteration already conveys the outcome).
        self._aio_future.add_done_callback(
            lambda f: f.cancelled() or f.exception()
        )
        future.add_done_callback(self._finish)

    def cancel(self) -> None:
        """Abandon the unsimulated tail (see ``cancel_stream``)."""
        self._cancelled = True
        if self._future is not None:
            self._future.cancel_stream()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    async def result(self):
        """The final :class:`RolloutServeResult` (full trajectory)."""
        return await asyncio.shield(self._aio_future)

    def __aiter__(self) -> "RolloutStream":
        return self

    async def __anext__(self) -> StreamWindow:
        if self._exhausted:
            raise StopAsyncIteration
        while True:
            item = await self._queue.get()
            if item is self._DONE:
                self._exhausted = True
                exc = self._future.exception()
                if exc is None or isinstance(exc, StreamCancelledError):
                    # Normal end of stream, or the tail this consumer
                    # asked to abandon — either way, iteration just ends.
                    raise StopAsyncIteration
                raise exc
            if self._cancelled:
                # A window raced the cancel across the thread boundary;
                # drop it and wait for the sentinel.
                continue
            return item


class AsyncGateway:
    """Awaitable, admission-controlled facade over a DynamicsService."""

    def __init__(self, service: DynamicsService,
                 admission: AdmissionController | None = None) -> None:
        self.service = service
        self.admission = admission or AdmissionController()

    # -- tenant management --------------------------------------------

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        self.admission.set_policy(tenant, policy)

    # -- internals -----------------------------------------------------

    def _admit(self, tenant: str, cost: float,
               deadline_s: float | None,
               urgent: bool | None) -> tuple[float | None, bool]:
        """Run the admission gate; returns the effective (deadline,
        urgent) after applying tenant policy defaults.  Raises
        RateLimitedError / ClientOverloaded on refusal."""
        t0 = time.perf_counter()
        policy = self.admission.admit(tenant, cost)
        tracer = self.service.tracer
        if tracer is not None:
            tracer.record("aserve.admission", t0,
                          time.perf_counter() - t0,
                          args={"tenant": tenant, "cost": cost,
                                "priority": policy.priority})
        if deadline_s is None:
            deadline_s = policy.deadline_s
        if urgent is None:
            urgent = policy.urgent
        return deadline_s, urgent

    def _released(self, tenant: str, future):
        """Release the tenant's inflight slot when the future resolves."""
        future.add_done_callback(lambda f: self.admission.release(tenant))
        return future

    # -- client API ----------------------------------------------------

    async def submit(self, robot: str, function, q, qd=None, u=None, *,
                     tenant: str = "default", minv=None, f_ext=None,
                     deadline_s: float | None = None,
                     urgent: bool | None = None):
        """``await`` one dynamics evaluation; returns a ServeResult.

        ``urgent=None`` defers to the tenant's priority class
        (interactive tenants bypass the batcher); likewise a ``None``
        deadline inherits the tenant's default, propagating into the
        service's deadline shedding.
        """
        deadline_s, urgent = self._admit(tenant, 1.0, deadline_s, urgent)
        try:
            future = self.service.submit(
                robot, function, q, qd=qd, u=u, minv=minv, f_ext=f_ext,
                urgent=urgent, deadline_s=deadline_s,
            )
        except Exception:
            self.admission.release(tenant)
            raise
        return await asyncio.wrap_future(self._released(tenant, future))

    async def submit_rollout(self, robot: str, q0, qd0, controls,
                             dt: float, *, scheme: str = "semi_implicit",
                             tenant: str = "default", contacts=None,
                             contact_mask=None, f_ext=None,
                             sensitivities: bool = False,
                             deadline_s: float | None = None,
                             urgent: bool | None = None):
        """``await`` one whole-trajectory rollout (non-streaming)."""
        cost = float(np.asarray(controls).shape[-2])
        deadline_s, urgent = self._admit(tenant, cost, deadline_s, urgent)
        try:
            future = self.service.submit_rollout(
                robot, q0, qd0, controls, dt, scheme=scheme,
                contacts=contacts, contact_mask=contact_mask, f_ext=f_ext,
                sensitivities=sensitivities, urgent=urgent,
                deadline_s=deadline_s,
            )
        except Exception:
            self.admission.release(tenant)
            raise
        return await asyncio.wrap_future(self._released(tenant, future))

    async def stream_rollout(self, robot: str, q0, qd0, controls,
                             dt: float, *, window: int,
                             scheme: str = "semi_implicit",
                             tenant: str = "default", contacts=None,
                             contact_mask=None, f_ext=None,
                             deadline_s: float | None = None,
                             urgent: bool | None = None) -> RolloutStream:
        """Submit a streaming rollout; returns a :class:`RolloutStream`.

        The coroutine returns as soon as the rollout is admitted and
        enqueued — windows arrive through the stream as the shard
        computes them, so a closed-loop client can act on the first
        ``window`` knots while the tail is still simulating (and
        ``stream.cancel()`` the rest once it has re-planned).
        """
        cost = float(np.asarray(controls).shape[-2])
        deadline_s, urgent = self._admit(tenant, cost, deadline_s, urgent)
        loop = asyncio.get_running_loop()
        stream = RolloutStream(loop)
        try:
            future = self.service.submit_rollout(
                robot, q0, qd0, controls, dt, scheme=scheme,
                contacts=contacts, contact_mask=contact_mask, f_ext=f_ext,
                urgent=urgent, deadline_s=deadline_s,
                window=window, on_window=stream._deliver,
            )
        except Exception:
            self.admission.release(tenant)
            raise
        stream._bind(self._released(tenant, future))
        return stream

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Gateway view: service stats plus per-tenant admission rows."""
        return {
            "service": self.service.stats(),
            "tenants": self.admission.stats(),
        }
