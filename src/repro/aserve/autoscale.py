"""Demand-driven autoscaling for the elastic shard pool.

The :class:`Autoscaler` closes the loop between two signals the
serving plane already measures:

* **Demand** — the derivative of
  :meth:`~repro.serve.service.DynamicsService.submitted_cost`, the
  admitted work rate in cost units/s (a rollout counts its horizon, so
  demand is *rows*, not calls).
* **Capacity** — the sum of the pool's per-shard measured-throughput
  EWMAs (:meth:`~repro.serve.metrics.MetricsRegistry.measured_shard_rps`,
  rows/s of kernel wall time) over shards still in the pool — the same
  measurements cost-aware placement recalibrates with.

Utilization = demand / capacity drives watermark decisions: above
``high_watermark`` for a tick, add a shard
(:meth:`DynamicsService.scale_up`); below ``low_watermark``, drain and
retire one (:meth:`DynamicsService.scale_down` — drain-before-remove,
so no queued request is lost to a shrink).  A cooldown separates
decisions so one burst can't slew the pool, and ``min_shards`` /
``max_shards`` bound the range.  Every decision lands in the pool's
scale-event log, surfaced through ``telemetry()`` and the admin
endpoint.

The scaler runs as a daemon thread beside the service's flusher; it is
deliberately *not* on the event loop — scaling decisions must keep
firing when the loop is saturated with client coroutines, which is
exactly when they matter.
"""

from __future__ import annotations

import threading
import time

from repro.serve.service import DynamicsService

__all__ = ["Autoscaler"]


class Autoscaler:
    """Watermark autoscaler over a service's elastic shard pool."""

    def __init__(
        self,
        service: DynamicsService,
        min_shards: int = 1,
        max_shards: int = 8,
        interval_s: float = 0.05,
        high_watermark: float = 0.85,
        low_watermark: float = 0.30,
        cooldown_s: float = 0.2,
        drain_wait_s: float = 2.0,
    ) -> None:
        if not 1 <= min_shards <= max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{min_shards}..{max_shards}"
            )
        if not 0.0 < low_watermark < high_watermark:
            raise ValueError(
                "need 0 < low_watermark < high_watermark, got "
                f"{low_watermark} / {high_watermark}"
            )
        self.service = service
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.interval_s = interval_s
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.cooldown_s = cooldown_s
        self.drain_wait_s = drain_wait_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_cost = service.submitted_cost()
        self._last_t = time.monotonic()
        self._last_action_t = -float("inf")
        self._lock = threading.Lock()
        self.demand_rps = 0.0
        self.capacity_rps = 0.0
        self.utilization = 0.0
        self.ticks = 0
        self.scale_ups = 0
        self.scale_downs = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Autoscaler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-aserve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Autoscaler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- control loop --------------------------------------------------

    def _capacity(self) -> float:
        """Measured pool capacity in cost units (rows) per second."""
        rps = self.service.metrics.measured_shard_rps()
        shards = self.service.pool.shards
        return sum(
            rate for index, rate in rps.items()
            if index < len(shards) and shards[index].health != "removed"
        )

    def tick(self, now: float | None = None) -> str | None:
        """One scaling decision; returns "up"/"down"/None.

        Exposed for deterministic tests; the background thread just
        calls this every ``interval_s``.
        """
        now = time.monotonic() if now is None else now
        cost = self.service.submitted_cost()
        dt = max(now - self._last_t, 1e-9)
        demand = (cost - self._last_cost) / dt
        self._last_cost = cost
        self._last_t = now
        capacity = self._capacity()
        with self._lock:
            self.ticks += 1
            self.demand_rps = demand
            self.capacity_rps = capacity
            self.utilization = demand / capacity if capacity > 0 else (
                float("inf") if demand > 0 else 0.0
            )
            utilization = self.utilization
        if now - self._last_action_t < self.cooldown_s:
            return None
        active = self.service.pool.n_active
        try:
            if utilization > self.high_watermark and active < self.max_shards:
                self.service.scale_up(reason=(
                    f"autoscale: utilization {utilization:.2f} > "
                    f"{self.high_watermark:.2f}"
                ))
                self._last_action_t = now
                with self._lock:
                    self.scale_ups += 1
                return "up"
            if utilization < self.low_watermark and active > self.min_shards:
                self.service.scale_down(
                    wait_s=self.drain_wait_s,
                    reason=(
                        f"autoscale: utilization {utilization:.2f} < "
                        f"{self.low_watermark:.2f}"
                    ),
                )
                self._last_action_t = now
                with self._lock:
                    self.scale_downs += 1
                return "down"
        except ValueError:
            # Lost a race with an admin scale op (e.g. last-shard guard);
            # the next tick re-evaluates from fresh state.
            return None
        return None

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            try:
                self.tick()
            except Exception:
                # The scaler must never take the serving plane down; a
                # failed decision is just skipped.
                continue

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "demand_rps": self.demand_rps,
                "capacity_rps": self.capacity_rps,
                "utilization": self.utilization,
                "ticks": self.ticks,
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "min_shards": self.min_shards,
                "max_shards": self.max_shards,
                "active_shards": self.service.pool.n_active,
            }
