"""Rotation (SO3) utilities used by the spatial algebra layer.

Conventions follow Featherstone, *Rigid Body Dynamics Algorithms* (2008):
a coordinate-transform matrix ``E`` maps vector coordinates from frame A to
frame B where B is rotated relative to A, i.e. ``v_B = E @ v_A``.  For a
frame rotated by ``theta`` about the z axis this is ``rotz(theta) ==
Rz(theta).T`` where ``Rz`` is the usual rotation matrix.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def skew(v: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric matrix such that ``skew(v) @ u == v x u``."""
    v = np.asarray(v, dtype=float)
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def unskew(m: np.ndarray) -> np.ndarray:
    """Inverse of :func:`skew`; extracts the vector of a skew-symmetric matrix."""
    return np.array([m[2, 1], m[0, 2], m[1, 0]])


def exp_so3(w: np.ndarray) -> np.ndarray:
    """Rodrigues formula: the rotation matrix ``R = exp(skew(w))``.

    ``R`` rotates vectors by angle ``|w|`` about axis ``w/|w|``.
    """
    w = np.asarray(w, dtype=float)
    theta = float(np.linalg.norm(w))
    if theta < _EPS:
        # Second-order series keeps exp/log round trips accurate near zero.
        k = skew(w)
        return np.eye(3) + k + 0.5 * (k @ k)
    axis = w / theta
    k = skew(axis)
    s, c = np.sin(theta), np.cos(theta)
    return np.eye(3) + s * k + (1.0 - c) * (k @ k)


def log_so3(r: np.ndarray) -> np.ndarray:
    """Rotation vector ``w`` with ``exp_so3(w) == r`` and ``|w| <= pi``."""
    r = np.asarray(r, dtype=float)
    trace = float(np.trace(r))
    cos_theta = np.clip((trace - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-10:
        return unskew(r - r.T) / 2.0
    if np.pi - theta < 1e-6:
        # Near pi the antisymmetric part vanishes; recover the axis from the
        # symmetric part r ~ 2*axis*axis^T - I.
        diag = np.clip((np.diag(r) + 1.0) / 2.0, 0.0, None)
        axis = np.sqrt(diag)
        # Fix the signs using the off-diagonal terms relative to the largest
        # component (which is safely non-zero at theta ~ pi).
        k = int(np.argmax(axis))
        for j in range(3):
            if j != k and r[k, j] + r[j, k] < 0:
                axis[j] = -axis[j]
        axis /= max(np.linalg.norm(axis), _EPS)
        return theta * axis
    return theta / (2.0 * np.sin(theta)) * unskew(r - r.T)


def rotx(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about x."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c]])


def roty(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about y."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c]])


def rotz(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about z."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0]])


def rot_axis(axis: np.ndarray, theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about ``axis``.

    Equals ``exp_so3(axis * theta).T`` for a unit axis, i.e. the transpose of
    the rotation matrix, matching the ``v_B = E @ v_A`` convention.
    """
    return exp_so3(np.asarray(axis, dtype=float) * theta).T


def is_rotation(r: np.ndarray, tol: float = 1e-9) -> bool:
    """True when ``r`` is orthonormal with determinant +1."""
    r = np.asarray(r, dtype=float)
    if r.shape != (3, 3):
        return False
    if not np.allclose(r @ r.T, np.eye(3), atol=tol):
        return False
    return bool(abs(np.linalg.det(r) - 1.0) < tol)
