"""Rotation (SO3) utilities used by the spatial algebra layer.

Conventions follow Featherstone, *Rigid Body Dynamics Algorithms* (2008):
a coordinate-transform matrix ``E`` maps vector coordinates from frame A to
frame B where B is rotated relative to A, i.e. ``v_B = E @ v_A``.  For a
frame rotated by ``theta`` about the z axis this is ``rotz(theta) ==
Rz(theta).T`` where ``Rz`` is the usual rotation matrix.

``skew``, ``unskew`` and ``exp_so3`` accept leading batch axes: a ``(..., 3)``
input yields a ``(..., 3, 3)`` output with every batch element treated
independently.  This is the substrate the vectorized dynamics engine builds
on (loop over links, broadcast over tasks).

Array math routes through :mod:`repro.backend`: every operator resolves
the namespace of its operands (:func:`repro.backend.array_namespace`), so
the same functions serve host numpy arrays and device arrays from any
*in-place* backend (cupy); operands from immutable-array backends (jax)
are materialized on the host by the dispatch.
"""

from __future__ import annotations

from repro.backend import array_namespace, host_backend

#: Host namespace for the scalar constructors (rotx/roty/rotz build small
#: fixed matrices from python floats).
_hx = host_backend().xp

_EPS = 1e-12


def skew(v):
    """Return the skew-symmetric matrix such that ``skew(v) @ u == v x u``.

    Accepts a ``(..., 3)`` batch of vectors and returns ``(..., 3, 3)``.
    """
    xp = array_namespace(v)
    v = xp.asarray(v, dtype=float)
    out = xp.zeros(v.shape[:-1] + (3, 3))
    out[..., 0, 1] = -v[..., 2]
    out[..., 0, 2] = v[..., 1]
    out[..., 1, 0] = v[..., 2]
    out[..., 1, 2] = -v[..., 0]
    out[..., 2, 0] = -v[..., 1]
    out[..., 2, 1] = v[..., 0]
    return out


def unskew(m):
    """Inverse of :func:`skew`; extracts the vector of a skew-symmetric matrix.

    Accepts a ``(..., 3, 3)`` batch and returns ``(..., 3)``.
    """
    xp = array_namespace(m)
    m = xp.asarray(m)
    return xp.stack(
        [m[..., 2, 1], m[..., 0, 2], m[..., 1, 0]], axis=-1
    )


def exp_so3(w):
    """Rodrigues formula: the rotation matrix ``R = exp(skew(w))``.

    ``R`` rotates vectors by angle ``|w|`` about axis ``w/|w|``.  Accepts a
    ``(..., 3)`` batch of rotation vectors and returns ``(..., 3, 3)``.
    """
    xp = array_namespace(w)
    w = xp.asarray(w, dtype=float)
    if w.ndim == 1:
        theta = float(xp.linalg.norm(w))
        if theta < _EPS:
            # Second-order series keeps exp/log round trips accurate near zero.
            k = skew(w)
            return xp.eye(3) + k + 0.5 * (k @ k)
        axis = w / theta
        k = skew(axis)
        s, c = xp.sin(theta), xp.cos(theta)
        return xp.eye(3) + s * k + (1.0 - c) * (k @ k)
    # Batched path: factor form R = I + (sin t / t) K + ((1-cos t)/t^2) K^2
    # with K = skew(w), matching the series branch as theta -> 0.
    theta = xp.linalg.norm(w, axis=-1)
    small = theta < _EPS
    safe = xp.where(small, 1.0, theta)
    a = xp.where(small, 1.0, xp.sin(safe) / safe)
    b = xp.where(small, 0.5, (1.0 - xp.cos(safe)) / (safe * safe))
    k = skew(w)
    return (
        xp.eye(3)
        + a[..., None, None] * k
        + b[..., None, None] * (k @ k)
    )


def log_so3(r):
    """Rotation vector ``w`` with ``exp_so3(w) == r`` and ``|w| <= pi``."""
    xp = array_namespace(r)
    r = xp.asarray(r, dtype=float)
    trace = float(xp.trace(r))
    cos_theta = xp.clip((trace - 1.0) / 2.0, -1.0, 1.0)
    theta = float(xp.arccos(cos_theta))
    if theta < 1e-10:
        return unskew(r - r.T) / 2.0
    if _hx.pi - theta < 1e-6:
        # Near pi the antisymmetric part vanishes; recover the axis from the
        # symmetric part r ~ 2*axis*axis^T - I.
        diag = xp.clip((xp.diag(r) + 1.0) / 2.0, 0.0, None)
        axis = xp.sqrt(diag)
        # Fix the signs using the off-diagonal terms relative to the largest
        # component (which is safely non-zero at theta ~ pi).
        k = int(xp.argmax(axis))
        for j in range(3):
            if j != k and r[k, j] + r[j, k] < 0:
                axis[j] = -axis[j]
        axis /= max(xp.linalg.norm(axis), _EPS)
        return theta * axis
    return theta / (2.0 * xp.sin(theta)) * unskew(r - r.T)


def rotx(theta: float):
    """Coordinate transform for a frame rotated by ``theta`` about x."""
    c, s = _hx.cos(theta), _hx.sin(theta)
    return _hx.array([[1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c]])


def roty(theta: float):
    """Coordinate transform for a frame rotated by ``theta`` about y."""
    c, s = _hx.cos(theta), _hx.sin(theta)
    return _hx.array([[c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c]])


def rotz(theta: float):
    """Coordinate transform for a frame rotated by ``theta`` about z."""
    c, s = _hx.cos(theta), _hx.sin(theta)
    return _hx.array([[c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0]])


def rot_axis(axis, theta: float):
    """Coordinate transform for a frame rotated by ``theta`` about ``axis``.

    Equals ``exp_so3(axis * theta).T`` for a unit axis, i.e. the transpose of
    the rotation matrix, matching the ``v_B = E @ v_A`` convention.
    """
    xp = array_namespace(axis)
    return exp_so3(xp.asarray(axis, dtype=float) * theta).T


def is_rotation(r, tol: float = 1e-9) -> bool:
    """True when ``r`` is orthonormal with determinant +1."""
    xp = array_namespace(r)
    r = xp.asarray(r, dtype=float)
    if r.shape != (3, 3):
        return False
    if not xp.allclose(r @ r.T, xp.eye(3), atol=tol):
        return False
    return bool(abs(xp.linalg.det(r) - 1.0) < tol)
