"""Rotation (SO3) utilities used by the spatial algebra layer.

Conventions follow Featherstone, *Rigid Body Dynamics Algorithms* (2008):
a coordinate-transform matrix ``E`` maps vector coordinates from frame A to
frame B where B is rotated relative to A, i.e. ``v_B = E @ v_A``.  For a
frame rotated by ``theta`` about the z axis this is ``rotz(theta) ==
Rz(theta).T`` where ``Rz`` is the usual rotation matrix.

``skew``, ``unskew`` and ``exp_so3`` accept leading batch axes: a ``(..., 3)``
input yields a ``(..., 3, 3)`` output with every batch element treated
independently.  This is the substrate the vectorized dynamics engine builds
on (loop over links, broadcast over tasks).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def skew(v: np.ndarray) -> np.ndarray:
    """Return the skew-symmetric matrix such that ``skew(v) @ u == v x u``.

    Accepts a ``(..., 3)`` batch of vectors and returns ``(..., 3, 3)``.
    """
    v = np.asarray(v, dtype=float)
    out = np.zeros(v.shape[:-1] + (3, 3))
    out[..., 0, 1] = -v[..., 2]
    out[..., 0, 2] = v[..., 1]
    out[..., 1, 0] = v[..., 2]
    out[..., 1, 2] = -v[..., 0]
    out[..., 2, 0] = -v[..., 1]
    out[..., 2, 1] = v[..., 0]
    return out


def unskew(m: np.ndarray) -> np.ndarray:
    """Inverse of :func:`skew`; extracts the vector of a skew-symmetric matrix.

    Accepts a ``(..., 3, 3)`` batch and returns ``(..., 3)``.
    """
    m = np.asarray(m)
    return np.stack(
        [m[..., 2, 1], m[..., 0, 2], m[..., 1, 0]], axis=-1
    )


def exp_so3(w: np.ndarray) -> np.ndarray:
    """Rodrigues formula: the rotation matrix ``R = exp(skew(w))``.

    ``R`` rotates vectors by angle ``|w|`` about axis ``w/|w|``.  Accepts a
    ``(..., 3)`` batch of rotation vectors and returns ``(..., 3, 3)``.
    """
    w = np.asarray(w, dtype=float)
    if w.ndim == 1:
        theta = float(np.linalg.norm(w))
        if theta < _EPS:
            # Second-order series keeps exp/log round trips accurate near zero.
            k = skew(w)
            return np.eye(3) + k + 0.5 * (k @ k)
        axis = w / theta
        k = skew(axis)
        s, c = np.sin(theta), np.cos(theta)
        return np.eye(3) + s * k + (1.0 - c) * (k @ k)
    # Batched path: factor form R = I + (sin t / t) K + ((1-cos t)/t^2) K^2
    # with K = skew(w), matching the series branch as theta -> 0.
    theta = np.linalg.norm(w, axis=-1)
    small = theta < _EPS
    safe = np.where(small, 1.0, theta)
    a = np.where(small, 1.0, np.sin(safe) / safe)
    b = np.where(small, 0.5, (1.0 - np.cos(safe)) / (safe * safe))
    k = skew(w)
    return (
        np.eye(3)
        + a[..., None, None] * k
        + b[..., None, None] * (k @ k)
    )


def log_so3(r: np.ndarray) -> np.ndarray:
    """Rotation vector ``w`` with ``exp_so3(w) == r`` and ``|w| <= pi``."""
    r = np.asarray(r, dtype=float)
    trace = float(np.trace(r))
    cos_theta = np.clip((trace - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-10:
        return unskew(r - r.T) / 2.0
    if np.pi - theta < 1e-6:
        # Near pi the antisymmetric part vanishes; recover the axis from the
        # symmetric part r ~ 2*axis*axis^T - I.
        diag = np.clip((np.diag(r) + 1.0) / 2.0, 0.0, None)
        axis = np.sqrt(diag)
        # Fix the signs using the off-diagonal terms relative to the largest
        # component (which is safely non-zero at theta ~ pi).
        k = int(np.argmax(axis))
        for j in range(3):
            if j != k and r[k, j] + r[j, k] < 0:
                axis[j] = -axis[j]
        axis /= max(np.linalg.norm(axis), _EPS)
        return theta * axis
    return theta / (2.0 * np.sin(theta)) * unskew(r - r.T)


def rotx(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about x."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c]])


def roty(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about y."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c]])


def rotz(theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about z."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0]])


def rot_axis(axis: np.ndarray, theta: float) -> np.ndarray:
    """Coordinate transform for a frame rotated by ``theta`` about ``axis``.

    Equals ``exp_so3(axis * theta).T`` for a unit axis, i.e. the transpose of
    the rotation matrix, matching the ``v_B = E @ v_A`` convention.
    """
    return exp_so3(np.asarray(axis, dtype=float) * theta).T


def is_rotation(r: np.ndarray, tol: float = 1e-9) -> bool:
    """True when ``r`` is orthonormal with determinant +1."""
    r = np.asarray(r, dtype=float)
    if r.shape != (3, 3):
        return False
    if not np.allclose(r @ r.T, np.eye(3), atol=tol):
        return False
    return bool(abs(np.linalg.det(r) - 1.0) < tol)
