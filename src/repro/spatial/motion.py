"""Spatial (6D) cross-product operators.

Motion vectors are ``[w; v]`` (angular on top), force vectors are ``[n; f]``
(couple on top).  ``crm(v)`` is the motion-cross operator (``v x m``) and
``crf(v) = -crm(v).T`` is the force-cross operator (``v x* f``), following
Featherstone's notation.

Every operator broadcasts over leading batch axes: ``(..., 6)`` inputs give
``(..., 6, 6)`` operators / ``(..., 6)`` products, so one call applies the
operation to a whole task batch at once.  Array math routes through
:mod:`repro.backend` — the namespace of the operands decides where the
operators are built (host numpy, or an in-place device backend like
cupy; immutable-array backends resolve to the host).
"""

from __future__ import annotations

from repro.backend import array_namespace
from repro.spatial.so3 import skew


def crm(v):
    """6x6 motion cross-product operator: ``crm(v) @ m == v x m``."""
    xp = array_namespace(v)
    v = xp.asarray(v, dtype=float)
    sw = skew(v[..., :3])
    sv = skew(v[..., 3:])
    out = xp.zeros(v.shape[:-1] + (6, 6))
    out[..., :3, :3] = sw
    out[..., 3:, :3] = sv
    out[..., 3:, 3:] = sw
    return out


def crf(v):
    """6x6 force cross-product operator: ``crf(v) @ f == v x* f == -crm(v).T @ f``."""
    xp = array_namespace(v)
    return -xp.swapaxes(crm(v), -1, -2)


def cross_motion(a, b):
    """``a x b`` for motion vectors, without building the 6x6 operator."""
    xp = array_namespace(a, b)
    a = xp.asarray(a, dtype=float)
    b = xp.asarray(b, dtype=float)
    w, v = a[..., :3], a[..., 3:]
    top = xp.cross(w, b[..., :3])
    bottom = xp.cross(v, b[..., :3]) + xp.cross(w, b[..., 3:])
    return xp.concatenate([top, bottom], axis=-1)


def cross_force(a, f):
    """``a x* f`` for a motion vector ``a`` acting on a force vector ``f``."""
    xp = array_namespace(a, f)
    a = xp.asarray(a, dtype=float)
    f = xp.asarray(f, dtype=float)
    w, v = a[..., :3], a[..., 3:]
    top = xp.cross(w, f[..., :3]) + xp.cross(v, f[..., 3:])
    bottom = xp.cross(w, f[..., 3:])
    return xp.concatenate([top, bottom], axis=-1)


def crf_bar(f):
    """Operator with ``crf_bar(f) @ a == a x* f`` (swaps the arguments of crf).

    Used by the analytical derivatives: the term ``(d_u v) x* (I v)`` becomes
    ``crf_bar(I v) @ d_u v`` so a whole derivative matrix can be multiplied at
    once.  For ``f = [n; g]``::

        crf_bar(f) = -[[skew(n), skew(g)],
                       [skew(g), 0      ]]
    """
    xp = array_namespace(f)
    f = xp.asarray(f, dtype=float)
    sn = skew(f[..., :3])
    sg = skew(f[..., 3:])
    out = xp.zeros(f.shape[:-1] + (6, 6))
    out[..., :3, :3] = -sn
    out[..., :3, 3:] = -sg
    out[..., 3:, :3] = -sg
    return out
