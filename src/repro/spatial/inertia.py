"""Spatial (6x6) rigid-body inertia.

A spatial inertia collects mass ``m``, centre of mass ``c`` and the 3x3
rotational inertia about the centre of mass ``I_c`` into::

    I = [[I_c + m * skew(c) @ skew(c).T, m * skew(c)],
         [m * skew(c).T,                 m * eye(3) ]]

so that the kinetic energy of a body moving with spatial velocity ``v`` is
``0.5 * v.T @ I @ v``.  Inertias transform between frames with
``I_B = X.T @ I_A @ X`` when ``X = ^AX_B`` maps motions B->A — equivalently
the parent-accumulation step of the paper's Algorithm 2 (line 17).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import host_backend
from repro.errors import ModelError
from repro.spatial.so3 import skew

#: Inertias are model data: they live on the host (the compilation
#: substrate) and are transferred to a device backend, if any, when an
#: execution plan stacks them.  Routed through the shim so this module
#: carries no direct numpy dependency.
np = host_backend().xp


@dataclass(frozen=True)
class SpatialInertia:
    """Immutable spatial inertia of one rigid body, in its link frame."""

    mass: float
    com: np.ndarray            # centre of mass, link frame
    inertia_com: np.ndarray    # 3x3 rotational inertia about the com

    def __post_init__(self) -> None:
        object.__setattr__(self, "com", np.asarray(self.com, dtype=float))
        object.__setattr__(
            self, "inertia_com", np.asarray(self.inertia_com, dtype=float)
        )
        if self.com.shape != (3,):
            raise ModelError(f"com must be a 3-vector, got {self.com.shape}")
        if self.inertia_com.shape != (3, 3):
            raise ModelError(
                f"inertia_com must be 3x3, got {self.inertia_com.shape}"
            )

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SpatialInertia":
        """Recover (mass, com, I_c) from a 6x6 spatial inertia matrix."""
        matrix = np.asarray(matrix, dtype=float)
        mass = float(matrix[3, 3])
        if mass <= 0.0:
            raise ModelError(f"spatial inertia has non-positive mass {mass}")
        mc = matrix[:3, 3:]
        com = np.array([mc[2, 1], mc[0, 2], mc[1, 0]]) / mass
        sc = skew(com)
        inertia_com = matrix[:3, :3] - mass * (sc @ sc.T)
        return SpatialInertia(mass, com, inertia_com)

    @staticmethod
    def zero() -> "SpatialInertia":
        """A massless placeholder body (used for composite-joint dummy links).

        Note: a tree may contain massless intermediate links as long as every
        leaf subtree has positive total mass; validity is checked at the
        robot-model level, not here (hence mass 0 is allowed).
        """
        inertia = SpatialInertia.__new__(SpatialInertia)
        object.__setattr__(inertia, "mass", 0.0)
        object.__setattr__(inertia, "com", np.zeros(3))
        object.__setattr__(inertia, "inertia_com", np.zeros((3, 3)))
        return inertia

    def matrix(self) -> np.ndarray:
        """The 6x6 spatial inertia matrix."""
        sc = skew(self.com)
        out = np.zeros((6, 6))
        out[:3, :3] = self.inertia_com + self.mass * (sc @ sc.T)
        out[:3, 3:] = self.mass * sc
        out[3:, :3] = self.mass * sc.T
        out[3:, 3:] = self.mass * np.eye(3)
        return out

    def is_physical(self, tol: float = 1e-9) -> bool:
        """True when mass > 0, I_c is symmetric PD and satisfies the
        triangle inequality on its principal moments."""
        if self.mass <= 0.0:
            return False
        ic = self.inertia_com
        if not np.allclose(ic, ic.T, atol=tol):
            return False
        eigs = np.linalg.eigvalsh((ic + ic.T) / 2.0)
        if np.any(eigs <= tol):
            return False
        a, b, c = np.sort(eigs)
        return bool(a + b >= c - tol)

    def transform(self, x: np.ndarray) -> "SpatialInertia":
        """Re-express this inertia in frame B where ``x = ^BX_A`` and the
        inertia is currently in A coordinates: ``I_B = X^{-T} I_A X^{-1}``."""
        from repro.spatial.transforms import inverse_transform

        xinv = inverse_transform(x)
        return SpatialInertia.from_matrix(xinv.T @ self.matrix() @ xinv)

    def __add__(self, other: "SpatialInertia") -> "SpatialInertia":
        total = self.matrix() + other.matrix()
        mass = self.mass + other.mass
        if mass <= 0.0:
            return SpatialInertia.zero()
        return SpatialInertia.from_matrix(total)
