"""Plücker spatial transforms.

A spatial (motion) transform ``X = ^BX_A`` maps motion-vector coordinates
from frame A to frame B::

    X = rot(E) @ xlt(r) = [[E, 0], [-E @ skew(r), E]]

where ``E`` is the A-to-B rotation and ``r`` the position of B's origin
expressed in A coordinates.  Force vectors transform with ``X^{-T}``; in
particular the force transform back to the parent used throughout the paper
is simply ``X.T`` (Algorithm 1, line 8).

All constructors and converters broadcast over leading batch axes: passing
``E`` of shape ``(..., 3, 3)`` / ``r`` of shape ``(..., 3)`` yields
``(..., 6, 6)`` transforms, one per batch element.  The scalar (unbatched)
signatures are unchanged.  Array math routes through :mod:`repro.backend`
(operand namespace dispatch), so the constructors serve host arrays and
in-place device arrays alike (immutable-array backends resolve to the
host).
"""

from __future__ import annotations

from repro.backend import array_namespace
from repro.spatial.so3 import skew


def rot(e):
    """Spatial transform for a pure rotation ``E`` (``(..., 3, 3)`` ok)."""
    xp = array_namespace(e)
    e = xp.asarray(e, dtype=float)
    out = xp.zeros(e.shape[:-2] + (6, 6))
    out[..., :3, :3] = e
    out[..., 3:, 3:] = e
    return out


def xlt(r):
    """Spatial transform for a pure translation by ``r`` (in A coordinates)."""
    xp = array_namespace(r)
    r = xp.asarray(r, dtype=float)
    out = xp.zeros(r.shape[:-1] + (6, 6))
    out[..., :3, :3] = xp.eye(3)
    out[..., 3:, 3:] = xp.eye(3)
    out[..., 3:, :3] = -skew(r)
    return out


def spatial_transform(e, r):
    """``rot(e) @ xlt(r)`` built directly (no 6x6 multiply)."""
    xp = array_namespace(e, r)
    e = xp.asarray(e, dtype=float)
    r = xp.asarray(r, dtype=float)
    shape = xp.broadcast_shapes(e.shape[:-2], r.shape[:-1])
    out = xp.zeros(shape + (6, 6))
    out[..., :3, :3] = e
    out[..., 3:, :3] = -e @ skew(r)
    out[..., 3:, 3:] = e
    return out


def transform_rotation(x):
    """Extract the rotation block ``E`` from a spatial transform."""
    xp = array_namespace(x)
    return xp.asarray(x)[..., :3, :3]


def transform_translation(x):
    """Extract the translation ``r`` (B origin in A coordinates)."""
    xp = array_namespace(x)
    x = xp.asarray(x)
    e = x[..., :3, :3]
    m = xp.swapaxes(e, -1, -2) @ x[..., 3:, :3]  # equals -skew(r)
    return -xp.stack([m[..., 2, 1], m[..., 0, 2], m[..., 1, 0]], axis=-1)


def inverse_transform(x):
    """Inverse of a Plücker motion transform, computed blockwise."""
    xp = array_namespace(x)
    x = xp.asarray(x, dtype=float)
    e = x[..., :3, :3]
    b = x[..., 3:, :3]
    out = xp.zeros(x.shape[:-2] + (6, 6))
    out[..., :3, :3] = xp.swapaxes(e, -1, -2)
    out[..., 3:, :3] = xp.swapaxes(b, -1, -2)
    out[..., 3:, 3:] = xp.swapaxes(e, -1, -2)
    return out


def force_transform(x):
    """Force-coordinate transform associated with motion transform ``x``.

    If ``x = ^BX_A`` maps motions A->B then ``force_transform(x)`` maps
    forces A->B and equals ``inverse_transform(x).T``.
    """
    xp = array_namespace(x)
    return xp.swapaxes(inverse_transform(x), -1, -2)


def is_spatial_transform(x, tol: float = 1e-8) -> bool:
    """True when ``x`` has valid Plücker structure (rotation blocks, zero TR)."""
    xp = array_namespace(x)
    x = xp.asarray(x, dtype=float)
    if x.shape != (6, 6):
        return False
    e1 = x[:3, :3]
    e2 = x[3:, 3:]
    if not xp.allclose(e1, e2, atol=tol):
        return False
    if not xp.allclose(x[:3, 3:], 0.0, atol=tol):
        return False
    if not xp.allclose(e1 @ e1.T, xp.eye(3), atol=tol):
        return False
    # The bottom-left block must be -E @ skew(r) for some r, i.e. E.T @ B
    # must be skew-symmetric.
    m = e1.T @ x[3:, :3]
    return bool(xp.allclose(m, -m.T, atol=tol))


def motion_transform_matrix(x, vecs):
    """Transform one motion vector or a stack of column motion vectors."""
    xp = array_namespace(x, vecs)
    return xp.asarray(x) @ xp.asarray(vecs)
