"""Plücker spatial transforms.

A spatial (motion) transform ``X = ^BX_A`` maps motion-vector coordinates
from frame A to frame B::

    X = rot(E) @ xlt(r) = [[E, 0], [-E @ skew(r), E]]

where ``E`` is the A-to-B rotation and ``r`` the position of B's origin
expressed in A coordinates.  Force vectors transform with ``X^{-T}``; in
particular the force transform back to the parent used throughout the paper
is simply ``X.T`` (Algorithm 1, line 8).

All constructors and converters broadcast over leading batch axes: passing
``E`` of shape ``(..., 3, 3)`` / ``r`` of shape ``(..., 3)`` yields
``(..., 6, 6)`` transforms, one per batch element.  The scalar (unbatched)
signatures are unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.spatial.so3 import skew


def rot(e: np.ndarray) -> np.ndarray:
    """Spatial transform for a pure rotation ``E`` (``(..., 3, 3)`` ok)."""
    e = np.asarray(e, dtype=float)
    out = np.zeros(e.shape[:-2] + (6, 6))
    out[..., :3, :3] = e
    out[..., 3:, 3:] = e
    return out


def xlt(r: np.ndarray) -> np.ndarray:
    """Spatial transform for a pure translation by ``r`` (in A coordinates)."""
    r = np.asarray(r, dtype=float)
    out = np.zeros(r.shape[:-1] + (6, 6))
    out[..., :3, :3] = np.eye(3)
    out[..., 3:, 3:] = np.eye(3)
    out[..., 3:, :3] = -skew(r)
    return out


def spatial_transform(e: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``rot(e) @ xlt(r)`` built directly (no 6x6 multiply)."""
    e = np.asarray(e, dtype=float)
    r = np.asarray(r, dtype=float)
    shape = np.broadcast_shapes(e.shape[:-2], r.shape[:-1])
    out = np.zeros(shape + (6, 6))
    out[..., :3, :3] = e
    out[..., 3:, :3] = -e @ skew(r)
    out[..., 3:, 3:] = e
    return out


def transform_rotation(x: np.ndarray) -> np.ndarray:
    """Extract the rotation block ``E`` from a spatial transform."""
    return np.asarray(x)[..., :3, :3]


def transform_translation(x: np.ndarray) -> np.ndarray:
    """Extract the translation ``r`` (B origin in A coordinates)."""
    x = np.asarray(x)
    e = x[..., :3, :3]
    m = np.swapaxes(e, -1, -2) @ x[..., 3:, :3]  # equals -skew(r)
    return -np.stack([m[..., 2, 1], m[..., 0, 2], m[..., 1, 0]], axis=-1)


def inverse_transform(x: np.ndarray) -> np.ndarray:
    """Inverse of a Plücker motion transform, computed blockwise."""
    x = np.asarray(x, dtype=float)
    e = x[..., :3, :3]
    b = x[..., 3:, :3]
    out = np.zeros(x.shape[:-2] + (6, 6))
    out[..., :3, :3] = np.swapaxes(e, -1, -2)
    out[..., 3:, :3] = np.swapaxes(b, -1, -2)
    out[..., 3:, 3:] = np.swapaxes(e, -1, -2)
    return out


def force_transform(x: np.ndarray) -> np.ndarray:
    """Force-coordinate transform associated with motion transform ``x``.

    If ``x = ^BX_A`` maps motions A->B then ``force_transform(x)`` maps
    forces A->B and equals ``inverse_transform(x).T``.
    """
    return np.swapaxes(inverse_transform(x), -1, -2)


def is_spatial_transform(x: np.ndarray, tol: float = 1e-8) -> bool:
    """True when ``x`` has valid Plücker structure (rotation blocks, zero TR)."""
    x = np.asarray(x, dtype=float)
    if x.shape != (6, 6):
        return False
    e1 = x[:3, :3]
    e2 = x[3:, 3:]
    if not np.allclose(e1, e2, atol=tol):
        return False
    if not np.allclose(x[:3, 3:], 0.0, atol=tol):
        return False
    if not np.allclose(e1 @ e1.T, np.eye(3), atol=tol):
        return False
    # The bottom-left block must be -E @ skew(r) for some r, i.e. E.T @ B
    # must be skew-symmetric.
    m = e1.T @ x[3:, :3]
    return bool(np.allclose(m, -m.T, atol=tol))


def motion_transform_matrix(x: np.ndarray, vecs: np.ndarray) -> np.ndarray:
    """Transform one motion vector or a stack of column motion vectors."""
    return np.asarray(x) @ np.asarray(vecs)
