"""Random generators for spatial quantities (tests, synthetic robots)."""

from __future__ import annotations

import numpy as np

from repro.spatial.inertia import SpatialInertia
from repro.spatial.so3 import exp_so3


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly-ish random rotation matrix (exp of a random axis-angle)."""
    w = rng.normal(size=3)
    norm = np.linalg.norm(w)
    if norm < 1e-12:
        return np.eye(3)
    angle = rng.uniform(0.0, np.pi * 0.99)
    return exp_so3(w / norm * angle)


def random_inertia(
    rng: np.random.Generator,
    mass_range: tuple[float, float] = (0.2, 8.0),
    com_scale: float = 0.15,
) -> SpatialInertia:
    """A physically-valid random spatial inertia.

    Principal moments are drawn so the triangle inequality holds, then
    rotated by a random orientation; the com offset stays small relative to
    typical link lengths so the resulting dynamics are well conditioned.
    """
    mass = float(rng.uniform(*mass_range))
    # Draw two principal moments, bound the third by the triangle inequality.
    a = float(rng.uniform(0.3, 1.0))
    b = float(rng.uniform(0.3, 1.0))
    c = float(rng.uniform(abs(a - b) + 0.05, a + b - 0.05))
    scale = mass * 0.01
    principal = np.diag([a, b, c]) * scale
    r = random_rotation(rng)
    inertia_com = r @ principal @ r.T
    com = rng.normal(scale=com_scale, size=3)
    return SpatialInertia(mass, com, inertia_com)


def random_motion_vector(rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """A random 6D motion vector."""
    return rng.normal(scale=scale, size=6)


def random_force_vector(rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """A random 6D force vector."""
    return rng.normal(scale=scale, size=6)
