"""Featherstone spatial (6D) vector algebra substrate.

All operators broadcast over leading batch axes (``(..., 6)`` vectors,
``(..., 6, 6)`` transforms/operators), so the same functions serve both the
scalar reference algorithms and the vectorized batch engine, which loops
over links but applies every link-step to the whole task batch at once.
"""

from repro.spatial.inertia import SpatialInertia
from repro.spatial.motion import (
    crf,
    crf_bar,
    crm,
    cross_force,
    cross_motion,
)
from repro.spatial.so3 import (
    exp_so3,
    is_rotation,
    log_so3,
    rot_axis,
    rotx,
    roty,
    rotz,
    skew,
    unskew,
)
from repro.spatial.transforms import (
    force_transform,
    inverse_transform,
    is_spatial_transform,
    rot,
    spatial_transform,
    transform_rotation,
    transform_translation,
    xlt,
)

__all__ = [
    "SpatialInertia",
    "crf",
    "crf_bar",
    "crm",
    "cross_force",
    "cross_motion",
    "exp_so3",
    "force_transform",
    "inverse_transform",
    "is_rotation",
    "is_spatial_transform",
    "log_so3",
    "rot",
    "rot_axis",
    "rotx",
    "roty",
    "rotz",
    "skew",
    "spatial_transform",
    "transform_rotation",
    "transform_translation",
    "unskew",
    "xlt",
]
