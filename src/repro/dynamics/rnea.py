"""Recursive Newton-Euler Algorithm (the paper's Algorithm 1).

Computes inverse dynamics ``tau = ID(q, qd, qdd, f_ext)`` with one forward
sweep (velocities/accelerations) and one backward sweep (forces).  The
intermediate quantities ``v, a, f`` are exactly the payloads the RNEA RTP
streams between its ``Rf_i``/``Rb_i`` submodules (Fig 6), and they feed the
derivative pipeline (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.robot import RobotModel
from repro.spatial.motion import cross_force, cross_motion


@dataclass
class RneaInternals:
    """Per-link intermediate quantities of one RNEA evaluation.

    ``forces_local`` is the forward-pass body force (Algorithm 1 line 6);
    ``forces`` is the accumulated force each ``Rb_i`` holds when it fires
    (after adding all child contributions) — this is the ``f_i`` the
    derivative pipeline consumes.
    """

    velocities: list[np.ndarray]
    accelerations: list[np.ndarray]
    forces_local: list[np.ndarray]
    forces: list[np.ndarray]


def rnea(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    *,
    apply_gravity: bool = True,
    return_internals: bool = False,
) -> np.ndarray | tuple[np.ndarray, RneaInternals]:
    """Inverse dynamics.

    Parameters
    ----------
    f_ext:
        Optional external forces per link index, expressed in the link's own
        frame (the paper's convention; they are subtracted in line 6 of
        Algorithm 1 and treated as constants under differentiation).
    apply_gravity:
        When False the gravity term is dropped (used e.g. to extract the
        mass matrix column by column in tests).
    """
    q = np.asarray(q, dtype=float)
    qd = np.asarray(qd, dtype=float)
    qdd = np.asarray(qdd, dtype=float)
    f_ext = f_ext or {}

    nb = model.nb
    a_world = -model.gravity if apply_gravity else np.zeros(6)

    velocities: list[np.ndarray] = [np.zeros(6)] * nb
    accelerations: list[np.ndarray] = [np.zeros(6)] * nb
    forces_local: list[np.ndarray] = [np.zeros(6)] * nb
    transforms: list[np.ndarray] = [np.eye(6)] * nb

    # Forward sweep (Rf_i submodules).
    for i in range(nb):
        link = model.links[i]
        sl = model.dof_slice(i)
        x = link.parent_transform(q[sl])
        transforms[i] = x
        s = link.joint.motion_subspace()
        vj = s @ qd[sl]
        if link.parent < 0:
            v = vj
            a = x @ a_world + s @ qdd[sl]
        else:
            v = x @ velocities[link.parent] + vj
            a = x @ accelerations[link.parent] + s @ qdd[sl] + cross_motion(v, vj)
        inertia = link.inertia.matrix()
        f = inertia @ a + cross_force(v, inertia @ v)
        if i in f_ext:
            f = f - np.asarray(f_ext[i], dtype=float)
        velocities[i] = v
        accelerations[i] = a
        forces_local[i] = f

    # Backward sweep (Rb_i submodules): accumulate forces, project torques.
    forces = [f.copy() for f in forces_local]
    tau = np.zeros(model.nv)
    for i in range(nb - 1, -1, -1):
        link = model.links[i]
        s = link.joint.motion_subspace()
        tau[model.dof_slice(i)] = s.T @ forces[i]
        if link.parent >= 0:
            forces[link.parent] = forces[link.parent] + transforms[i].T @ forces[i]

    if return_internals:
        return tau, RneaInternals(velocities, accelerations, forces_local, forces)
    return tau


def bias_forces(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    *,
    apply_gravity: bool = True,
) -> np.ndarray:
    """Generalized bias forces ``C(q, qd, f_ext) = ID(q, qd, 0, f_ext)``.

    This is step (1) of the paper's six-step FD decomposition (Fig 9a).
    """
    return rnea(
        model, q, qd, np.zeros(model.nv), f_ext, apply_gravity=apply_gravity
    )


def gravity_torques(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Torques that exactly compensate gravity at rest."""
    return rnea(model, q, np.zeros(model.nv), np.zeros(model.nv))
