"""Rigid body dynamics algorithms (the paper's Table I plus substrates)."""

from repro.dynamics.aba import aba
from repro.dynamics.batch import (
    BatchDerivatives,
    BatchStates,
    batch_evaluate,
    batch_fd,
    batch_fd_derivatives,
    batch_id,
    batch_minv,
    coerce_operand,
    stack_rows,
)
from repro.dynamics.contact import (
    ContactPoint,
    ConstrainedDynamicsResult,
    constrained_forward_dynamics,
    contact_impulse,
    contact_jacobian,
)
from repro.dynamics.coriolis import (
    coriolis_matrix,
    equation_of_motion_terms,
    mass_matrix_time_derivative,
)
from repro.dynamics.crba import crba
from repro.dynamics.engine import (
    CompiledEngine,
    Engine,
    LoopEngine,
    VectorizedEngine,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
    set_default_engine,
)
from repro.dynamics.process import ProcessEngine
from repro.dynamics.plan import ExecutionPlan, cached_einsum, plan_for
from repro.dynamics.derivatives import (
    FDDerivatives,
    IDDerivatives,
    fd_derivatives,
    fd_derivatives_from_inverse,
    rnea_derivatives,
)
from repro.dynamics.ik import IKResult, point_ik
from repro.dynamics.functions import (
    DERIVATIVE_FUNCTIONS,
    RBDFunction,
    evaluate,
    forward_dynamics,
    inverse_dynamics,
)
from repro.dynamics.kinematics import (
    KinematicsResult,
    center_of_mass,
    forward_kinematics,
    kinetic_energy,
    link_jacobian,
    potential_energy,
    velocity_of_point,
)
from repro.dynamics.mminv import (
    mass_matrix,
    mass_matrix_inverse,
    mass_matrix_inverse_cholesky,
    mminvgen,
)
from repro.dynamics.rnea import RneaInternals, bias_forces, gravity_torques, rnea

__all__ = [
    "DERIVATIVE_FUNCTIONS",
    "FDDerivatives",
    "IDDerivatives",
    "IKResult",
    "KinematicsResult",
    "RBDFunction",
    "RneaInternals",
    "BatchDerivatives",
    "BatchStates",
    "ConstrainedDynamicsResult",
    "CompiledEngine",
    "ContactPoint",
    "Engine",
    "ProcessEngine",
    "ExecutionPlan",
    "LoopEngine",
    "VectorizedEngine",
    "aba",
    "available_engines",
    "batch_evaluate",
    "batch_fd",
    "batch_fd_derivatives",
    "batch_id",
    "batch_minv",
    "bias_forces",
    "cached_einsum",
    "coerce_operand",
    "constrained_forward_dynamics",
    "contact_impulse",
    "contact_jacobian",
    "center_of_mass",
    "coriolis_matrix",
    "crba",
    "default_engine_name",
    "equation_of_motion_terms",
    "evaluate",
    "get_engine",
    "fd_derivatives",
    "fd_derivatives_from_inverse",
    "forward_dynamics",
    "forward_kinematics",
    "gravity_torques",
    "inverse_dynamics",
    "kinetic_energy",
    "link_jacobian",
    "mass_matrix",
    "mass_matrix_inverse",
    "mass_matrix_inverse_cholesky",
    "mass_matrix_time_derivative",
    "mminvgen",
    "plan_for",
    "point_ik",
    "potential_energy",
    "register_engine",
    "rnea",
    "rnea_derivatives",
    "set_default_engine",
    "stack_rows",
    "velocity_of_point",
]
