"""Analytical derivatives of rigid body dynamics (Table I rows 5-7).

``rnea_derivatives`` propagates full derivative matrices through the RNEA
recursion — forward transfers ``(d_u v_i, d_u a_i)`` and backward transfers
``X^T (d_u f_i + S_i x* f_i)`` — which is literally the dataflow of the
paper's dRNEA Round-Trip Pipeline (Fig 7): only the columns of supporting
joints are non-zero (the "incremental column vectors"), and the backward
cross term lands in the joint's own column.

Forward-dynamics derivatives then follow from the linear relationship the
paper builds its multifunction reuse on (Eq. 3)::

    dFD/du = -Minv @ dID/du   evaluated at  qdd = FD(q, qd, tau)
    dFD/dtau = Minv
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import rnea
from repro.model.robot import RobotModel
from repro.spatial.motion import crf, crf_bar, crm, cross_force


@dataclass
class IDDerivatives:
    """Partials of inverse dynamics: ``d tau / d q`` and ``d tau / d qd``.

    Derivatives are taken w.r.t. local tangent increments (``q [+] delta``),
    which coincides with plain partial derivatives for 1-DOF joints.
    """

    dtau_dq: np.ndarray
    dtau_dqd: np.ndarray


@dataclass
class FDDerivatives:
    """Partials of forward dynamics plus the quantities computed en route."""

    dqdd_dq: np.ndarray
    dqdd_dqd: np.ndarray
    dqdd_dtau: np.ndarray      # equals Minv
    qdd: np.ndarray
    minv: np.ndarray


def rnea_derivatives(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
) -> IDDerivatives:
    """Analytical dRNEA (the paper's dID)."""
    q = np.asarray(q, dtype=float)
    qd = np.asarray(qd, dtype=float)
    qdd = np.asarray(qdd, dtype=float)

    nb, nv = model.nb, model.nv
    _, internals = rnea(model, q, qd, qdd, f_ext, return_internals=True)
    transforms = model.parent_transforms(q)
    subspaces = model.motion_subspaces()
    a_world = -model.gravity

    dv_dq = [np.zeros((6, nv)) for _ in range(nb)]
    dv_dqd = [np.zeros((6, nv)) for _ in range(nb)]
    da_dq = [np.zeros((6, nv)) for _ in range(nb)]
    da_dqd = [np.zeros((6, nv)) for _ in range(nb)]
    df_dq = [np.zeros((6, nv)) for _ in range(nb)]
    df_dqd = [np.zeros((6, nv)) for _ in range(nb)]

    # Forward sweep (Df_i submodules): propagate d_u v and d_u a.
    for i in range(nb):
        link = model.links[i]
        x = transforms[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        parent = link.parent
        vj = s @ qd[sl]
        v_i = internals.velocities[i]

        if parent < 0:
            xa = x @ a_world
            da_dq[i][:, sl] += crm(xa) @ s
        else:
            xv = x @ internals.velocities[parent]
            xa = x @ internals.accelerations[parent]
            dv_dq[i] = x @ dv_dq[parent]
            dv_dq[i][:, sl] += crm(xv) @ s
            dv_dqd[i] = x @ dv_dqd[parent]
            da_dq[i] = x @ da_dq[parent]
            da_dq[i][:, sl] += crm(xa) @ s
            da_dqd[i] = x @ da_dqd[parent]
        dv_dqd[i][:, sl] += s

        # a_i includes v_i x vj: differentiate both factors.
        da_dq[i] += -crm(vj) @ dv_dq[i]
        da_dqd[i] += -crm(vj) @ dv_dqd[i]
        da_dqd[i][:, sl] += crm(v_i) @ s

        # Local body-force derivative (f_ext is constant).
        inertia = link.inertia.matrix()
        gyro = crf_bar(inertia @ v_i) + crf(v_i) @ inertia
        df_dq[i] = inertia @ da_dq[i] + gyro @ dv_dq[i]
        df_dqd[i] = inertia @ da_dqd[i] + gyro @ dv_dqd[i]

    # Backward sweep (Db_i submodules): accumulate force derivatives.
    dtau_dq = np.zeros((nv, nv))
    dtau_dqd = np.zeros((nv, nv))
    for i in range(nb - 1, -1, -1):
        link = model.links[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        dtau_dq[sl, :] = s.T @ df_dq[i]
        dtau_dqd[sl, :] = s.T @ df_dqd[i]
        parent = link.parent
        if parent >= 0:
            x = transforms[i]
            back_q = df_dq[i].copy()
            # d(X^T f)/dq_i adds X^T (S_k x* f_i) to the joint's own column,
            # with f_i the accumulated force (the paper's btr term).
            f_acc = internals.forces[i]
            for k in range(link.joint.nv):
                back_q[:, sl.start + k] += cross_force(s[:, k], f_acc)
            df_dq[parent] += x.T @ back_q
            df_dqd[parent] += x.T @ df_dqd[i]
    return IDDerivatives(dtau_dq, dtau_dqd)


def fd_derivatives(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
) -> FDDerivatives:
    """dFD (Table I row 6): derivatives of forward dynamics.

    Follows the paper's six-step decomposition (Fig 9a): FD first, then dID
    at the resulting acceleration, then the final ``-Minv`` products.
    """
    from repro.dynamics.functions import forward_dynamics

    qdd, minv = forward_dynamics(model, q, qd, tau, f_ext, return_minv=True)
    id_partials = rnea_derivatives(model, q, qd, qdd, f_ext)
    return FDDerivatives(
        dqdd_dq=-minv @ id_partials.dtau_dq,
        dqdd_dqd=-minv @ id_partials.dtau_dqd,
        dqdd_dtau=minv,
        qdd=qdd,
        minv=minv,
    )


def fd_derivatives_from_inverse(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    minv: np.ndarray | None = None,
    f_ext: dict[int, np.ndarray] | None = None,
) -> FDDerivatives:
    """diFD (Table I row 7): like dFD but ``qdd`` (and optionally ``Minv``)
    are already known, so the FD stage is skipped — the variant Robomorphic
    accelerates and Fig 16 benchmarks."""
    if minv is None:
        minv = mass_matrix_inverse(model, q)
    id_partials = rnea_derivatives(model, q, qd, qdd, f_ext)
    return FDDerivatives(
        dqdd_dq=-minv @ id_partials.dtau_dq,
        dqdd_dqd=-minv @ id_partials.dtau_dqd,
        dqdd_dtau=minv,
        qdd=np.asarray(qdd, dtype=float),
        minv=minv,
    )
