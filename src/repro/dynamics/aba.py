"""Articulated Body Algorithm: forward dynamics ``qdd = FD(q, qd, tau)``.

The paper deliberately does *not* instantiate ABA in hardware (it computes
FD as ``Minv @ (tau - C)``, Section III-A); this software implementation is
the independent reference that validates that substitution, and the
baseline CPU libraries (Pinocchio) use it.
"""

from __future__ import annotations

import numpy as np

from repro.model.robot import RobotModel
from repro.spatial.motion import cross_force, cross_motion


def aba(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
) -> np.ndarray:
    """Forward dynamics via the articulated-body method (O(NB))."""
    q = np.asarray(q, dtype=float)
    qd = np.asarray(qd, dtype=float)
    tau = np.asarray(tau, dtype=float)
    f_ext = f_ext or {}

    nb = model.nb
    transforms = [
        model.links[i].parent_transform(q[model.dof_slice(i)]) for i in range(nb)
    ]
    subspaces = model.motion_subspaces()

    velocities: list[np.ndarray] = [np.zeros(6)] * nb
    c_bias: list[np.ndarray] = [np.zeros(6)] * nb     # velocity-product accel
    p_bias: list[np.ndarray] = [np.zeros(6)] * nb     # bias force
    inertia_art: list[np.ndarray] = [np.zeros((6, 6))] * nb

    # Pass 1: velocities and bias terms.
    for i in range(nb):
        link = model.links[i]
        sl = model.dof_slice(i)
        vj = subspaces[i] @ qd[sl]
        if link.parent < 0:
            v = vj
        else:
            v = transforms[i] @ velocities[link.parent] + vj
        velocities[i] = v
        c_bias[i] = cross_motion(v, vj)
        inertia = link.inertia.matrix()
        inertia_art[i] = inertia.copy()
        p = cross_force(v, inertia @ v)
        if i in f_ext:
            p = p - np.asarray(f_ext[i], dtype=float)
        p_bias[i] = p

    # Pass 2: articulated inertias, backward.
    u_list: list[np.ndarray] = [np.zeros((6, 1))] * nb
    d_inv: list[np.ndarray] = [np.zeros((1, 1))] * nb
    u_tau: list[np.ndarray] = [np.zeros(1)] * nb
    for i in range(nb - 1, -1, -1):
        link = model.links[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        u = inertia_art[i] @ s
        d = s.T @ u
        u_list[i] = u
        d_inv[i] = np.linalg.inv(d)
        u_tau[i] = tau[sl] - s.T @ p_bias[i]
        if link.parent >= 0:
            x = transforms[i]
            ia = inertia_art[i] - u @ d_inv[i] @ u.T
            pa = (
                p_bias[i]
                + ia @ c_bias[i]
                + u @ (d_inv[i] @ u_tau[i])
            )
            inertia_art[link.parent] = inertia_art[link.parent] + x.T @ ia @ x
            p_bias[link.parent] = p_bias[link.parent] + x.T @ pa

    # Pass 3: accelerations, forward.
    qdd = np.zeros(model.nv)
    accelerations: list[np.ndarray] = [np.zeros(6)] * nb
    a_world = -model.gravity
    for i in range(nb):
        link = model.links[i]
        sl = model.dof_slice(i)
        a_parent = a_world if link.parent < 0 else accelerations[link.parent]
        a_prime = transforms[i] @ a_parent + c_bias[i]
        qdd_i = d_inv[i] @ (u_tau[i] - u_list[i].T @ a_prime)
        qdd[sl] = qdd_i
        accelerations[i] = a_prime + subspaces[i] @ qdd_i
    return qdd
