"""Per-robot execution plans: the robot's structure compiled ahead of time.

Dadu-RBD's central idea is that the *structure* of the robot — its tree
topology, joint types and DOF layout — is known long before any dynamics
call, so everything derivable from structure is compiled into the datapath
up front: the Structure-Adaptive Pipelines (SAPS) organize hardware around
the branch decomposition, the multifunctional pipelines keep every stage
busy across independent branches, and the Schedule Module replays a fixed
operand schedule instead of re-walking the tree.  This module is the
host-side analogue of that compilation step.  An :class:`ExecutionPlan` is
built once per :class:`~repro.model.robot.RobotModel` (from the model plus
:func:`repro.model.topology.decompose` /
:func:`~repro.model.topology.level_schedule`) and holds:

* **a level schedule** — links grouped by tree depth, the wavefront the
  paper's pipelines sweep: all links of one level advance in a single
  fused ``(n, L_d, ...)`` array op, so Atlas's two arms and two legs cost
  one step per depth instead of one step per link (the SAPS branch arrays,
  fused on the host instead of replicated in silicon);
* **flattened index arrays** — parent gathers, sibling-sum segments and
  per-level slot ranges, precomputed so the hot loop never touches a
  Python-level tree query (the Schedule Module's address streams);
* **motion-subspace selector stacks** — per-level ``S`` stacks with the
  one-DOF common case compiled to broadcast multiplies and paired index
  writes instead of matrix products (the paper's ``s_one_hot`` selection
  wiring);
* **column windows** — the mass-matrix sweeps touch only the DOF columns
  a level's links can reach (own-and-descendants), the host-side version
  of the paper's incremental column vectors (Fig 7b);
* **precomputed einsum paths** — every contraction in the Table-I kernels
  runs with a cached ``einsum_path`` (see :func:`cached_einsum`);
* **a reusable workspace** — per-thread, preallocated transform /
  velocity / force / derivative stacks sized ``(n_max, n_links, ...)``,
  so steady-state calls never reallocate the O(n·links) recursion state
  (outputs and small per-level BLAS temporaries are the only transient
  allocations).

Links are re-indexed into *slots* sorted by ``(depth, joint.nv, index)``
so every level — and every uniform-DOF group inside a level — is one
contiguous slab of the workspace stacks, turning level steps into views
instead of gathers.  The q/qd/tau layout is untouched; only the internal
link axis is permuted.

Forward dynamics runs as a level-scheduled articulated-body pass (three
O(links) sweeps, no ``nv``-column state at all), which the seed validates
against the paper's ``Minv @ (tau - C)`` substitution; the derivative
kernels carry their d/dq and d/dqd operands in one paired column block so
each level step is a single wide contraction.

:func:`plan_for` memoizes plans per model *and backend* (weakly over
models, so they can be collected); the ``"compiled"`` engine in
:mod:`repro.dynamics.engine` evaluates all seven Table-I functions on top
of these plans.  A plan compiled with ``backend="cupy"`` holds its
constant stacks, selector stacks, index arrays and workspaces on the
device, so the same level-scheduled kernels run there unmodified —
structure compilation happens once on the host (the paper's offline
bitstream build), operand execution wherever the plan lives.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, replace as _dc_replace

from repro.backend import (
    ArrayBackend,
    BackendCapabilityError,
    get_backend,
    host_backend,
)
from repro.dynamics.mminv import _symmetrize_from_rows
from repro.obs import hooks as _obs
from repro.model.joints import PrismaticJoint, RevoluteJoint
from repro.model.robot import RobotModel
from repro.model.topology import decompose, level_schedule
from repro.spatial.motion import crf, crf_bar, crm, cross_force, cross_motion

#: Host (compilation) namespace, reached through the backend shim: the
#: structure-compilation pass — index arrays, selector stacks, level
#: bookkeeping — always runs on the host; only the finished constant
#: stacks are placed on the plan's execution backend.
np = host_backend().xp
_HOST = host_backend()


def cached_einsum(expr: str, *ops, out=None):
    """Host ``einsum`` with a memoized ``einsum_path``.

    Thin wrapper over the numpy backend's :meth:`ArrayBackend.einsum`
    (which owns the path cache).  Kept as a module-level function because
    the ``"vectorized"`` engine and older call sites import it from here;
    plan kernels use their own backend's ``einsum`` so device plans
    contract on the device.
    """
    return _HOST.einsum(expr, *ops, out=out)


def _mv(x, v):
    """Batched matrix @ vector over arbitrary leading axes."""
    return (x @ v[..., None])[..., 0]


# ---------------------------------------------------------------------------
# Compiled structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelGroup:
    """Links of one level sharing a joint DOF count ``k`` (one slot slab).

    Uniform ``k`` makes the group's joint-space quantities rectangular;
    for the ubiquitous ``k == 1`` case the kernels drop to broadcast
    multiplies over ``axis`` and paired index writes at ``rows`` — the
    one-hot selection the paper folds into wiring.
    """

    lo: int                  # absolute slot range [lo, hi)
    hi: int
    k: int                   # joint.nv shared by every link in the group
    links: np.ndarray        # (Lg,) original link indices
    subspaces: np.ndarray    # (Lg, 6, k) motion subspaces S
    subspaces_t: np.ndarray  # (Lg, k, 6) == S^T
    axis: np.ndarray         # (Lg, 6) == S[:, 0] (only meaningful for k == 1)
    dofs: np.ndarray         # (Lg, k) global DOF columns
    rows: np.ndarray         # (Lg*k,) flattened DOF rows (q-layout)
    slots: np.ndarray        # (Lg,) == arange(lo, hi), for paired writes
    rel: np.ndarray          # (Lg,) slots relative to the level's lo

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class PlanLevel:
    """One wavefront of the level schedule, in slot coordinates."""

    index: int
    depth: int
    lo: int                  # slot slab [lo, hi)
    hi: int
    is_root: bool
    links: np.ndarray        # (L,) original link indices, slot order
    parent_slots: np.ndarray  # (L,) parent slot per link (-1 at the root)
    #: Sibling-sum schedule: (parent_slot, positions) per distinct parent,
    #: where ``positions`` is a slice when the siblings are adjacent in the
    #: level (the common case) and an index array otherwise.
    parent_groups: tuple
    parents_unique: bool     # no two level links share a parent
    groups: tuple[LevelGroup, ...]
    sel: np.ndarray          # (L, 6, nv) expanded subspace selectors
    btr: np.ndarray          # (L, nv, 6, 6) crf(S_col) at own DOF columns
    col_start: int           # min own-DOF start (backward MMinvGen window)

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class PackedLevel:
    """Packed-column geometry of one level (the Fig 7b column vectors).

    Packing reindexes the *internal* DOF-column axis into slot order
    (``ExecutionPlan.col_perm``) — the column analogue of the link ->
    slot reindexing the plan already performs.  Because slots are sorted
    by depth, both per-level column unions become contiguous runs of the
    permuted layout, so the packed sweeps are plain slice arithmetic at
    exactly the union width instead of index-array gathers:

    * the union of the level links' root-to-link *path* columns — the
      only columns where the derivative forward-sweep transfer stacks
      can be nonzero — is the prefix ``[0, w)`` (every path column
      belongs to a link of depth <= this level's);
    * the union of the links' *subtree* columns — the only columns where
      the mass-matrix backward-sweep force accumulators can be nonzero —
      is the suffix ``[wp, nv)`` (every link of greater depth descends
      from exactly one link of this level).

    ``wp`` is simultaneously the parent level's prefix width and this
    level's suffix start: the parent prefix nests inside the child's, so
    forward propagation is one matmul at width ``wp`` plus a zero-fill
    of the ``[wp, w)`` gap, and child suffixes nest inside the parent's,
    so backward accumulation reuses the dense scatter at the tighter
    window.  ``own_pos`` gives, per :class:`LevelGroup`, each link's own
    DOF columns in the packed layout — the owned columns the sweeps
    scatter results back to.
    """

    w: int                        # prefix width: DOF count of slots [0, hi)
    wp: int                       # parent prefix width == suffix start
    prel: np.ndarray | None       # (L,) parent positions within the parent
                                  # level (None at the root)
    own_pos: tuple                # per group: (Lg, k) packed own columns
    sel_packed: np.ndarray | None  # (L, 6, w) selectors, packed columns
    btr_packed: np.ndarray | None  # (L, nv, 6, 6) btr, packed column axis
    #: Parent slots as one basic slice when they are unique and contiguous
    #: (the common case), so backward scatters run as slice ``+=`` instead
    #: of a fancy-index read-modify-write; None falls back to
    #: ``_scatter_to_parents``.
    pslice: slice | None = None
    #: ``prel`` as a basic slice when the parent rows are the contiguous
    #: identity map (no branching between the two levels), so forward
    #: propagation matmuls read the parent slab view directly instead of
    #: staging a gathered copy.
    prelslice: slice | None = None
    #: Per group: the group's own DOF rows *in the packed permutation* —
    #: always one contiguous run (slots are contiguous and each link's
    #: DOF columns are), so permuted-row outputs write basic slices.
    prow: tuple = ()
    #: Per group: flat ``(nv*nv)`` diagonal slice of the group's own
    #: (row, col) entries in the permuted layout (k == 1 groups only).
    pdiag: tuple = ()
    #: Relative slots whose derivative ``DF[..., w:]`` tail must be
    #: zero-filled because no child-level scatter will overwrite it
    #: (childless slots, or every slot when the child level scatters
    #: through the fancy-index fallback); None when the tail is empty or
    #: fully covered by the child's slice-assign scatter.
    dfz: slice | np.ndarray | None = None


@dataclass(frozen=True)
class TransformGroup:
    """Links whose joint transforms are refreshed by one fused array op.

    Joint objects (not the model) are captured for the generic fallback,
    so a plan holds no reference back to its :class:`RobotModel` and the
    weak plan cache can collect transient models.
    """

    kind: str                # "revolute" | "prismatic" | "generic"
    slots: np.ndarray        # (L,) destination slots
    links: np.ndarray        # (L,) original link indices
    axes: np.ndarray         # (L, 3) joint axes (unused for "generic")
    qcols: np.ndarray        # (L,) global q column (single-DOF kinds)
    x_tree: np.ndarray       # (L, 6, 6) fixed parent placements
    joints: tuple = ()       # per-link Joint objects ("generic" only)
    qslices: tuple = ()      # per-link q slices ("generic" only)


def default_workspace_shapes(nb: int, nv: int) -> dict:
    """Buffer-group shape table for an *unpacked* plan workspace.

    A packed plan (:class:`PackedLevel`) swaps the dense ``mminv`` /
    ``deriv`` column stacks for per-level packed slabs; everything else
    is shared.
    """
    return {
        "x": {"X": (nb, 6, 6)},
        "rnea": {
            "vj": (nb, 6), "aj": (nb, 6), "v": (nb, 6), "a": (nb, 6),
            "xv": (nb, 6), "xa": (nb, 6), "f": (nb, 6),
            "tau": (nv,),
        },
        # Articulated/composite inertias, shared by the ABA and
        # MMinvGen kernels (each fully reinitializes the stack).
        "ia": {"IA": (nb, 6, 6)},
        "mminv": {
            "f_acc": (nb, 6, nv),
            "out": (nv, nv), "p_prop": (nb, 6, nv),
        },
        "deriv": {
            "DVA": (nb, 6, 4 * nv), "DF": (nb, 6, 2 * nv),
            "dtau_q": (nv, nv), "dtau_qd": (nv, nv),
        },
    }


def _scratch_view(buf, n: int, L: int, width: int):
    """A contiguous ``(n, L, 6, width)`` view over a flat scratch buffer."""
    return buf.reshape(-1)[: n * L * 6 * width].reshape(n, L, 6, width)


def _scratch_view5(buf, n: int, L: int, nb: int, width: int):
    """A contiguous ``(n, L, nb, 6, width)`` block-axis view over a flat
    scratch buffer."""
    size = n * L * nb * 6 * width
    return buf.reshape(-1)[:size].reshape(n, L, nb, 6, width)


class PlanWorkspace:
    """Preallocated recursion state for one thread, grown monotonically.

    Buffer groups are allocated on first use (a service that only ever
    runs FD never pays for the derivative stacks) and reused across calls:
    ``ensure`` only reallocates when a batch exceeds every batch seen
    before, so steady-state traffic runs allocation-free on the big
    ``(n_max, n_links, ...)`` stacks.  The derivative stacks hold the
    d/dq and d/dqd operands side by side (``2 * nv`` columns) so both
    propagate through one contraction per level.
    """

    def __init__(self, nb: int, nv: int,
                 backend: ArrayBackend | None = None,
                 shapes: dict | None = None) -> None:
        self._backend = backend or host_backend()
        self._shapes = default_workspace_shapes(nb, nv) if shapes is None \
            else shapes
        self.capacity = 0
        self._allocated: set[str] = set()

    def ensure(self, n: int, *groups: str) -> "PlanWorkspace":
        """Make every buffer of ``groups`` available with >= n task rows."""
        if n > self.capacity:
            self.capacity = n
            for group in self._allocated:
                self._allocate(group)
        for group in groups:
            if group not in self._allocated:
                self._allocated.add(group)
                self._allocate(group)
        return self

    def _allocate(self, group: str) -> None:
        for name, shape in self._shapes[group].items():
            setattr(self, name,
                    self._backend.zeros((self.capacity,) + shape))

    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes
            for group in self._allocated
            for name in self._shapes[group]
        )


# ---------------------------------------------------------------------------
# The execution plan
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """Structure of one robot, compiled for level-scheduled batch kernels.

    All public methods take task-major operands (``q``/``qd``/``qdd``/
    ``tau`` of shape ``(n, nv)``, ``f_ext`` as link -> ``(n, 6)`` stacks)
    and implement the same contracts as the engine interface in
    :mod:`repro.dynamics.engine`.
    """

    #: Packing policy values: ``"auto"`` packs branched topologies (where
    #: the level unions are strictly narrower than the dense windows and
    #: wide levels amortize the gathers), ``"always"`` / ``"never"``
    #: force it either way (``"never"`` is the packed-vs-dense baseline
    #: the benches compare against).
    PACKING_MODES = ("auto", "always", "never")

    def __init__(self, model: RobotModel,
                 backend: str | ArrayBackend | None = None, *,
                 packing: str = "auto") -> None:
        # Only scalars/arrays/joint objects are captured from the model —
        # no back-reference — so the weak plan cache can actually collect
        # a transient model together with its plan.
        if packing not in self.PACKING_MODES:
            raise ValueError(
                f"unknown packing mode {packing!r}; "
                f"choose from {self.PACKING_MODES}"
            )
        self.backend = get_backend(backend)
        if not self.backend.capabilities.inplace:
            raise BackendCapabilityError(
                f"backend {self.backend.name!r} has immutable arrays "
                "(capabilities.inplace=False); the compiled engine's "
                "preallocated workspaces require in-place mutation — "
                "use the 'numpy' or 'cupy' backend"
            )
        #: Kernel namespace and einsum of the execution backend.
        self._xp = self.backend.xp
        self._ein = self.backend.einsum
        #: Writable strided-view constructor (numpy and cupy expose one);
        #: packed kernels fall back to fancy-index writes without it.
        _st = getattr(getattr(self._xp, "lib", None), "stride_tricks",
                      None)
        self._as_strided = getattr(_st, "as_strided", None)
        #: True when operands must cross the host boundary (f_ext stacks
        #: arrive as numpy from the serve layer).
        self._device = self.backend.name != "numpy"
        self.robot_name = model.name
        self.nb = model.nb
        self.nv = model.nv
        # decompose() validates the single-root invariant and exposes the
        # SAPS branch view the schedule fuses (recorded for introspection).
        self.n_branches = len(decompose(model).branches)
        nb, nv = self.nb, self.nv

        # Slot order: by (depth, joint nv, index) so levels and their
        # uniform-DOF groups are contiguous slabs of every stack.
        order = sorted(
            range(nb), key=lambda i: (model.depth(i), model.joint(i).nv, i)
        )
        self.link_of_slot = np.asarray(order, dtype=np.intp)
        self.slot_of_link = np.empty(nb, dtype=np.intp)
        self.slot_of_link[self.link_of_slot] = np.arange(nb)

        subspaces = model.motion_subspaces()
        starts = np.asarray(
            [model.dof_slice(i).start for i in range(nb)], dtype=np.intp
        )
        stops = np.asarray(
            [model.dof_slice(i).stop for i in range(nb)], dtype=np.intp
        )

        # Slot-ordered constant stacks.
        self.inertias = np.stack(
            [model.links[i].inertia.matrix() for i in order]
        )
        self.sel_all = np.zeros((nb, 6, nv))
        for slot, link in enumerate(order):
            self.sel_all[slot, :, starts[link]:stops[link]] = subspaces[link]

        self.levels = self._build_levels(model, subspaces, starts, stops)
        self.transform_groups = self._build_transform_groups(model, order)

        self.packing = packing
        self.packed_levels = self._build_packing(model, starts, stops,
                                                 packing)
        self.packed = self.packed_levels is not None
        self._ws_shapes = self._workspace_shapes()

        self.minus_gravity = -np.asarray(model.gravity, dtype=float)
        if self._device:
            self._place_on_backend()
        self._tls = threading.local()

    def _place_on_backend(self) -> None:
        """Move every operand-facing constant stack to the plan backend.

        Compilation built them on the host; a device plan executes with
        device-resident constants so the level kernels never cross the
        host boundary mid-recursion.  Host-side bookkeeping used for
        python-int indexing (``slot_of_link``) stays on the host.
        """
        dev = self.backend.from_numpy
        self.inertias = dev(self.inertias)
        self.sel_all = dev(self.sel_all)
        self.minus_gravity = dev(self.minus_gravity)
        self.levels = tuple(
            _dc_replace(
                lvl,
                parent_slots=dev(lvl.parent_slots),
                sel=dev(lvl.sel),
                btr=dev(lvl.btr),
                groups=tuple(
                    _dc_replace(
                        g,
                        subspaces=dev(g.subspaces),
                        subspaces_t=dev(g.subspaces_t),
                        axis=dev(g.axis),
                        dofs=dev(g.dofs),
                        rows=dev(g.rows),
                        slots=dev(g.slots),
                        rel=dev(g.rel),
                    )
                    for g in lvl.groups
                ),
            )
            for lvl in self.levels
        )
        self.transform_groups = tuple(
            _dc_replace(
                g,
                slots=dev(g.slots),
                axes=dev(g.axes),
                qcols=dev(g.qcols),
                x_tree=dev(g.x_tree),
            )
            for g in self.transform_groups
        )
        if self.packed:
            opt = lambda a: None if a is None else dev(a)  # noqa: E731
            self.col_perm = dev(self.col_perm)
            self.col_pos = dev(self.col_pos)
            self.gyro_t = dev(self.gyro_t)
            if self._k1 is not None:
                self._k1 = {**self._k1,
                            "axis": dev(self._k1["axis"]),
                            "axis_nr": dev(self._k1["axis_nr"])}
            self.packed_levels = tuple(
                _dc_replace(
                    pk,
                    prel=opt(pk.prel),
                    own_pos=tuple(dev(p) for p in pk.own_pos),
                    sel_packed=opt(pk.sel_packed),
                    btr_packed=opt(pk.btr_packed),
                    dfz=(dev(pk.dfz)
                         if isinstance(pk.dfz, np.ndarray) else pk.dfz),
                )
                for pk in self.packed_levels
            )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _build_levels(self, model, subspaces, starts, stops):
        slot_of = self.slot_of_link
        levels: list[PlanLevel] = []
        lo = 0
        for index, level in enumerate(level_schedule(model)):
            links = sorted(level.links, key=lambda i: (model.joint(i).nv, i))
            links = np.asarray(links, dtype=np.intp)
            hi = lo + len(links)
            parents = np.asarray(
                [model.parent(i) for i in links], dtype=np.intp
            )
            is_root = bool(np.all(parents < 0))
            if is_root:
                parent_slots = np.full(len(links), -1, dtype=np.intp)
                parent_groups: tuple = ()
                parents_unique = True
            else:
                parent_slots = slot_of[parents]
                parent_groups = self._sibling_groups(parent_slots)
                parents_unique = (
                    len(np.unique(parent_slots)) == len(parent_slots)
                )
            sel = self.sel_all[lo:hi]
            btr = np.zeros((len(links), self.nv, 6, 6))
            for pos, link in enumerate(links):
                s = subspaces[link]
                for k in range(s.shape[1]):
                    btr[pos, starts[link] + k] = crf(s[:, k])
            groups = self._build_groups(model, subspaces, starts, stops,
                                        links, lo)
            levels.append(PlanLevel(
                index=index,
                depth=level.depth,
                lo=lo,
                hi=hi,
                is_root=is_root,
                links=links,
                parent_slots=parent_slots,
                parent_groups=parent_groups,
                parents_unique=parents_unique,
                groups=groups,
                sel=sel,
                btr=btr,
                col_start=int(starts[links].min()),
            ))
            lo = hi
        return tuple(levels)

    @staticmethod
    def _sibling_groups(parent_slots: np.ndarray) -> tuple:
        """(parent_slot, positions) pairs; positions as slices when the
        siblings sit adjacent in the level (the usual case)."""
        groups = []
        for parent in np.unique(parent_slots):
            pos = np.flatnonzero(parent_slots == parent)
            if len(pos) == pos[-1] - pos[0] + 1:
                groups.append((int(parent), slice(int(pos[0]),
                                                  int(pos[-1]) + 1)))
            else:
                groups.append((int(parent), pos))
        return tuple(groups)

    def _build_groups(self, model, subspaces, starts, stops, links, lo):
        groups: list[LevelGroup] = []
        pos = 0
        while pos < len(links):
            k = model.joint(int(links[pos])).nv
            end = pos
            while end < len(links) and model.joint(int(links[end])).nv == k:
                end += 1
            members = links[pos:end]
            s_stack = np.stack([subspaces[int(i)] for i in members])
            dofs = np.stack([
                np.arange(starts[int(i)], stops[int(i)]) for i in members
            ])
            groups.append(LevelGroup(
                lo=lo + pos,
                hi=lo + end,
                k=k,
                links=members,
                subspaces=s_stack,
                subspaces_t=np.ascontiguousarray(
                    np.swapaxes(s_stack, -1, -2)
                ),
                axis=np.ascontiguousarray(s_stack[:, :, 0]),
                dofs=dofs,
                rows=dofs.reshape(-1),
                slots=np.arange(lo + pos, lo + end, dtype=np.intp),
                rel=np.arange(pos, end, dtype=np.intp),
            ))
            pos = end
        return tuple(groups)

    def _build_transform_groups(self, model, order):
        kinds: dict[str, list[int]] = {}
        for slot, link in enumerate(order):
            joint = model.joint(link)
            if type(joint) is RevoluteJoint:
                kind = "revolute"
            elif type(joint) is PrismaticJoint:
                kind = "prismatic"
            else:
                kind = "generic"
            kinds.setdefault(kind, []).append(slot)
        groups = []
        for kind, slots in kinds.items():
            slots = np.asarray(slots, dtype=np.intp)
            links = self.link_of_slot[slots]
            joints: tuple = ()
            qslices: tuple = ()
            if kind == "generic":
                axes = np.zeros((len(slots), 3))
                qcols = np.zeros(len(slots), dtype=np.intp)
                joints = tuple(model.joint(int(i)) for i in links)
                qslices = tuple(model.dof_slice(int(i)) for i in links)
            else:
                axes = np.stack(
                    [model.joint(int(i)).axis for i in links]
                )
                qcols = np.asarray(
                    [model.dof_slice(int(i)).start for i in links],
                    dtype=np.intp,
                )
            x_tree = np.stack([model.links[int(i)].x_tree for i in links])
            groups.append(TransformGroup(
                kind=kind, slots=slots, links=links,
                axes=axes, qcols=qcols, x_tree=x_tree,
                joints=joints, qslices=qslices,
            ))
        return tuple(groups)

    def _build_packing(self, model, starts, stops, packing):
        """Compile the packed column layout (Fig 7b's column vectors).

        Packing permutes the *internal* DOF-column axis into slot order
        (``col_perm``; ``col_pos`` is the inverse).  Because slots sort
        by depth, the per-level column unions the sweeps need become
        contiguous runs of the permuted layout — prefix ``[0, w)`` for
        the path union, suffix ``[wp, nv)`` for the subtree union — so
        the packed kernels are the dense kernels at tighter basic-sliced
        windows, with no per-level index gathers.  ``"auto"`` packs only
        branched topologies: on a serial chain slot order *is* column
        order and the windows already match the dense ones.
        """
        self.col_perm = self.col_pos = self.gyro_t = None
        self._k1 = None
        if packing == "never" or (packing == "auto"
                                  and self.n_branches <= 1):
            return None
        nv = self.nv
        perm = np.concatenate([
            np.arange(starts[int(i)], stops[int(i)])
            for i in self.link_of_slot
        ]).astype(np.intp)
        pos = np.empty(nv, dtype=np.intp)
        pos[perm] = np.arange(nv)
        self.col_perm, self.col_pos = perm, pos

        fields: list[dict] = []
        wp = 0
        for lvl in self.levels:
            w = wp + int((stops[lvl.links] - starts[lvl.links]).sum())
            own_pos = tuple(
                pos[g.dofs].astype(np.intp) for g in lvl.groups
            )
            prow, pdiag = [], []
            for g, p in zip(lvl.groups, own_pos):
                flat = p.reshape(-1)
                p0 = int(flat[0])
                if not np.array_equal(flat,
                                      np.arange(p0, p0 + flat.size)):
                    raise AssertionError(
                        "packed own columns are not contiguous"
                    )
                prow.append(slice(p0, p0 + flat.size))
                pdiag.append(
                    slice(p0 * (nv + 1),
                          (p0 + flat.size - 1) * (nv + 1) + 1, nv + 1)
                    if g.k == 1 else None
                )
            sel_packed = btr_packed = None
            if any(g.k > 1 for g in lvl.groups):
                sel_packed = np.ascontiguousarray(lvl.sel[:, :, perm[:w]])
                btr_packed = np.ascontiguousarray(lvl.btr[:, perm])
            prel = pslice = prelslice = None
            if not lvl.is_root:
                prel = (lvl.parent_slots
                        - self.levels[lvl.index - 1].lo).astype(np.intp)
                ps = lvl.parent_slots
                if lvl.parents_unique and np.array_equal(
                    ps, np.arange(ps[0], ps[0] + len(ps))
                ):
                    pslice = slice(int(ps[0]), int(ps[0]) + len(ps))
                if np.array_equal(
                    prel, np.arange(prel[0], prel[0] + len(prel))
                ):
                    prelslice = slice(int(prel[0]),
                                      int(prel[0]) + len(prel))
            fields.append(dict(
                w=w, wp=wp, prel=prel, own_pos=own_pos,
                sel_packed=sel_packed, btr_packed=btr_packed,
                pslice=pslice, prelslice=prelslice,
                prow=tuple(prow), pdiag=tuple(pdiag),
            ))
            wp = w
        if wp != nv:
            raise AssertionError("packed layout does not cover all DOFs")

        # Childless tails: a slot's derivative DF[..., w:] needs explicit
        # zeros only if the child level will not slice-assign over it.
        for d, (lvl, fd) in enumerate(zip(self.levels, fields)):
            if fd["w"] == nv:
                continue
            child = fields[d + 1] if d + 1 < len(fields) else None
            if child is None or child["pslice"] is None:
                fd["dfz"] = slice(0, lvl.size)
                continue
            cov = child["pslice"]
            need = [i for i in range(lvl.size)
                    if not cov.start <= lvl.lo + i < cov.stop]
            if not need:
                fd["dfz"] = None
            elif need == list(range(need[0], need[0] + len(need))):
                fd["dfz"] = slice(need[0], need[0] + len(need))
            else:
                fd["dfz"] = np.asarray(need, dtype=np.intp)
        packed = [PackedLevel(**fd) for fd in fields]

        # Fused one-DOF bundle: when every k == 1 group occupies one
        # contiguous slot (and therefore packed-column) run — true for
        # every revolute/prismatic tree, floating bases included — the
        # derivative sweeps hoist the per-level one-hot terms (btr,
        # cross-motion own columns, dtau extraction) into single
        # whole-robot array ops over these slices.
        self._k1 = None
        parts = [(g.lo, g.hi, g.axis, int(packed[lvl.index]
                                          .own_pos[gi][0, 0]), lvl.is_root)
                 for lvl in self.levels
                 for gi, g in enumerate(lvl.groups) if g.k == 1]
        if parts:
            slots = np.concatenate([np.arange(lo, hi)
                                    for lo, hi, *_ in parts])
            posc = np.concatenate([np.arange(p0, p0 + hi - lo)
                                   for lo, hi, _, p0, _ in parts])
            # Root-level parts always precede non-root ones (parts are
            # generated in level order), so the non-root subset is the
            # suffix once both concatenations are contiguous runs.
            n_root = sum(hi - lo for lo, hi, _, _, r in parts if r)
            if (np.array_equal(slots, np.arange(slots[0],
                                                slots[0] + len(slots)))
                    and np.array_equal(posc, np.arange(posc[0],
                                                       posc[0] + len(posc)))):
                axis_all = np.concatenate([a for _, _, a, _, _ in parts])
                s0, p0 = int(slots[0]), int(posc[0])
                s1 = s0 + len(slots)
                self._k1 = {
                    "sl": slice(s0, s1),
                    "axis": axis_all,
                    "p0": p0,
                    "sl_nr": slice(s0 + n_root, s1),
                    "axis_nr": axis_all[n_root:],
                    "p0_nr": p0 + n_root,
                }

        # Gyroscopic-operator tensor: ``gyro(v) = crf_bar(I v) + crf(v) I``
        # is linear in ``v``, so the packed derivative sweep contracts one
        # precompiled (nb, 6, 6, 6) tensor against ``v`` instead of
        # building two batched operator stacks and multiplying them.
        gt = np.empty((self.nb, 6, 6, 6))
        eye6 = np.eye(6)
        for s in range(6):
            gt[:, s] = (crf_bar(self.inertias[:, :, s])
                        + crf(eye6[s]) @ self.inertias)
        self.gyro_t = gt
        return tuple(packed)

    def _workspace_shapes(self) -> dict:
        """This plan's workspace shape table (packed plans swap the dense
        ``deriv`` transfer stack for per-level packed slabs plus two flat
        scratch buffers for the forward-sweep propagation)."""
        nb, nv = self.nb, self.nv
        shapes = default_workspace_shapes(nb, nv)
        if not self.packed:
            return shapes
        # Packed derivative state is block-axis: the [dv/dq | dv/dqd |
        # da/dq | da/dqd] stacks (and the [df/dq | df/dqd] pair) live on a
        # leading block dimension instead of side-by-side columns, so
        # parent propagation broadcasts one matmul straight into the
        # destination blocks with no interleaved slice-copy pass.
        dv = {"DF": (nb, 2, 6, nv), "DOp": (nb, 6, 12),
              "dtau_q": (nv, nv), "dtau_qd": (nv, nv)}
        scratch = 6 * 4 * nv
        for lvl, pk in zip(self.levels, self.packed_levels):
            dv[f"Dp{lvl.index}"] = (lvl.size, 4, 6, pk.w)
            scratch = max(scratch, lvl.size * 6 * 4 * pk.w)
        dv["Dscr"] = (scratch,)
        dv["Dscr2"] = (scratch,)
        return {**shapes, "deriv": dv}

    # ------------------------------------------------------------------
    # Workspace and staging
    # ------------------------------------------------------------------

    def workspace(self, n: int, *groups: str) -> PlanWorkspace:
        """This thread's workspace, sized for ``n`` tasks.

        Shard workers run batches concurrently on one shared engine, so
        the mutable recursion state is thread-local — the software mirror
        of each accelerator card owning its operand SRAM.
        """
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = PlanWorkspace(self.nb, self.nv, self.backend,
                               self._ws_shapes)
            self._tls.ws = ws
        return ws.ensure(n, "x", *groups)

    def _stage_transforms(self, ws: PlanWorkspace, n: int,
                          q: np.ndarray) -> None:
        """Refresh every ``^iX_lambda(q_i)`` stack: one fused op per joint
        kind (the Global Trigonometric Module feeding all branch arrays)."""
        from repro.spatial.so3 import exp_so3
        from repro.spatial.transforms import rot, xlt

        t0 = _obs.kernel_begin()
        X = ws.X[:n]
        for g in self.transform_groups:
            if g.kind == "revolute":
                e = exp_so3(g.axes * q[:, g.qcols][:, :, None])
                xj = rot(np.swapaxes(e, -1, -2))
                X[:, g.slots] = xj @ g.x_tree
            elif g.kind == "prismatic":
                xj = xlt(g.axes * q[:, g.qcols][:, :, None])
                X[:, g.slots] = xj @ g.x_tree
            else:
                for pos, slot in enumerate(g.slots):
                    X[:, slot] = (
                        g.joints[pos].batch_joint_transform(
                            q[:, g.qslices[pos]]
                        ) @ g.x_tree[pos]
                    )
        _obs.kernel_end(t0, self.robot_name, "transforms", n)

    def world_transforms_batch(self, q) -> "np.ndarray":
        """Batched world transforms ``^iX_0`` per link: ``(n, nb, 6, 6)``.

        The level-scheduled front half of forward kinematics: joint
        transforms refresh in one fused op per joint kind, then each
        level composes onto its parents' world transforms in one slab op.
        Output follows the model's *link* order (not slot order) so
        downstream consumers — the batched contact Jacobians — index it
        with plain link indices.
        """
        q = self._operand(q)
        n = q.shape[0]
        ws = self.workspace(n)
        self._stage_transforms(ws, n, q)
        xp = self._xp
        X = ws.X[:n]
        xw = xp.empty((n, self.nb, 6, 6))
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                xw[:, lo:hi] = X[:, lo:hi]
            else:
                xw[:, lo:hi] = X[:, lo:hi] @ xw[:, lvl.parent_slots]
        return xw[:, self.slot_of_link]

    def velocity_kinematics_batch(self, q, qd) -> tuple:
        """Batched spatial velocities and ``qdd = 0`` accelerations.

        Returns ``(v, a)``, each ``(n, nb, 6)`` in link order and link
        coordinates; ``a`` is the gravity-free velocity-product
        acceleration accumulated down the tree — exactly the kinematic
        state the analytic contact drift term ``Jdot qd`` needs.
        """
        q = self._operand(q)
        qd = self._operand(qd)
        n = q.shape[0]
        ws = self.workspace(n, "rnea")
        self._stage_transforms(ws, n, q)
        self._stage_rates(ws, n, qd, None)
        X, v, a, vj = ws.X[:n], ws.v[:n], ws.a[:n], ws.vj[:n]
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
                a[:, lo:hi] = cross_motion(v[:, lo:hi], vj[:, lo:hi])
            else:
                par = lvl.parent_slots
                v[:, lo:hi] = _mv(X[:, lo:hi], v[:, par]) + vj[:, lo:hi]
                a[:, lo:hi] = (
                    _mv(X[:, lo:hi], a[:, par])
                    + cross_motion(v[:, lo:hi], vj[:, lo:hi])
                )
        order = self.slot_of_link
        return v[:, order].copy(), a[:, order].copy()

    def _stage_rates(self, ws: PlanWorkspace, n: int, qd, qdd) -> None:
        self._ein("bsv,nv->nbs", self.sel_all, qd, out=ws.vj[:n])
        if qdd is None:
            ws.aj[:n] = 0.0
        else:
            self._ein("bsv,nv->nbs", self.sel_all, qdd, out=ws.aj[:n])

    def _scatter_to_parents(self, dest, lvl: PlanLevel, value) -> None:
        """Accumulate per-link ``value`` slabs into parent slots.

        Siblings at one level never alias (distinct parents when
        ``parents_unique``), so the fast path is a paired fancy ``+=``;
        otherwise each distinct parent receives the sum of its children's
        contributions (precompiled slice/index per parent).
        """
        if lvl.parents_unique:
            dest[:, lvl.parent_slots] += value
        else:
            for parent, pos in lvl.parent_groups:
                chunk = value[:, pos]
                if chunk.shape[1] == 1:
                    dest[:, parent] += chunk[:, 0]
                else:
                    dest[:, parent] += chunk.sum(axis=1)

    # ------------------------------------------------------------------
    # RNEA (Algorithm 1), level-scheduled
    # ------------------------------------------------------------------

    def _rnea(self, ws: PlanWorkspace, n: int, f_ext, *,
              apply_gravity: bool = True,
              reuse_velocities: bool = False) -> np.ndarray:
        """Forward + backward RNEA over the staged transforms and rates.

        Leaves the link-frame velocity/acceleration stacks and the
        *accumulated* force stack in the workspace (the derivative sweeps
        reuse them) and returns a view of the joint torques.  With
        ``reuse_velocities`` the velocity half of the forward sweep is
        skipped — dFD re-runs RNEA at the solved ``qdd`` with identical
        ``(q, qd)``, so ``v``/``xv`` are already in the workspace.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        plv = _obs.per_level
        robot = self.robot_name
        X, v, a = ws.X[:n], ws.v[:n], ws.a[:n]
        xv, xa = ws.xv[:n], ws.xa[:n]
        vj, aj, f = ws.vj[:n], ws.aj[:n], ws.f[:n]
        a0 = self.minus_gravity if apply_gravity else xp.zeros(6)

        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
                xa[:, lo:hi] = X[:, lo:hi] @ a0
                a[:, lo:hi] = xa[:, lo:hi] + aj[:, lo:hi]
            else:
                par = lvl.parent_slots
                if not reuse_velocities:
                    xv[:, lo:hi] = _mv(X[:, lo:hi], v[:, par])
                    v[:, lo:hi] = xv[:, lo:hi] + vj[:, lo:hi]
                xa[:, lo:hi] = _mv(X[:, lo:hi], a[:, par])
                a[:, lo:hi] = (xa[:, lo:hi] + aj[:, lo:hi]
                               + cross_motion(v[:, lo:hi], vj[:, lo:hi]))
            if plv:
                _obs.level_end(lt, robot, "rnea", lvl.index)

        iv = _mv(self.inertias, v)
        f[:] = _mv(self.inertias, a) + cross_force(v, iv)
        if f_ext:
            for link, stack in f_ext.items():
                if self._device:
                    stack = self.backend.asarray(stack)
                f[:, self.slot_of_link[link]] -= stack

        for lvl in reversed(self.levels):
            if lvl.is_root:
                continue
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            self._scatter_to_parents(f, lvl, _mv(xt, f[:, lo:hi]))
            if plv:
                _obs.level_end(lt, robot, "rnea", lvl.index)
        tau = self._ein("bsv,nbs->nv", self.sel_all, f, out=ws.tau[:n])
        _obs.kernel_end(t0, robot, "rnea", n)
        return tau

    # ------------------------------------------------------------------
    # ABA forward dynamics, level-scheduled
    # ------------------------------------------------------------------

    def _aba(self, ws: PlanWorkspace, n: int, tau: np.ndarray,
             f_ext) -> np.ndarray:
        """Articulated-body FD: three O(levels) sweeps, no column state.

        The seed validates ABA against the paper's ``Minv @ (tau - C)``
        substitution (``repro.dynamics.aba``); here it is the compiled
        FD kernel because it never touches an ``nv``-column tensor —
        the entire pass stays on ``(n, L, 6)`` slabs.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        plv = _obs.per_level
        robot = self.robot_name
        X, v, vj = ws.X[:n], ws.v[:n], ws.vj[:n]
        c, p, ap = ws.a[:n], ws.f[:n], ws.xa[:n]
        IA = ws.IA[:n]

        # Pass 1: velocities and bias terms.
        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
            else:
                v[:, lo:hi] = (
                    _mv(X[:, lo:hi], v[:, lvl.parent_slots]) + vj[:, lo:hi]
                )
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)
        c[:] = cross_motion(v, vj)
        p[:] = cross_force(v, _mv(self.inertias, v))
        if f_ext:
            for link, stack in f_ext.items():
                if self._device:
                    stack = self.backend.asarray(stack)
                p[:, self.slot_of_link[link]] -= stack
        IA[:] = self.inertias

        # Pass 2: articulated inertias and bias forces, backward.
        saved: dict[tuple[int, int], tuple] = {}
        for lvl in reversed(self.levels):
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    u = _mv(IA[:, sl], g.axis)               # (n, Lg, 6)
                    d_inv = 1.0 / xp.einsum(
                        "ls,nls->nl", g.axis, u, optimize=False
                    )
                    u_tau = tau[:, g.dofs[:, 0]] - xp.einsum(
                        "ls,nls->nl", g.axis, p[:, sl], optimize=False
                    )
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA[:, sl] -= (
                            d_inv[..., None, None]
                            * (u[..., :, None] * u[..., None, :])
                        )
                        p[:, sl] += (
                            _mv(IA[:, sl], c[:, sl])
                            + u * (d_inv * u_tau)[..., None]
                        )
                else:
                    u = IA[:, sl] @ g.subspaces              # (n, Lg, 6, k)
                    d_inv = self.backend.inv(g.subspaces_t @ u)
                    u_tau = (
                        tau[:, g.dofs]
                        - _mv(g.subspaces_t, p[:, sl])
                    )
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA[:, sl] -= (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                        p[:, sl] += (
                            _mv(IA[:, sl], c[:, sl])
                            + _mv(u, _mv(d_inv, u_tau))
                        )
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                self._scatter_to_parents(p, lvl, _mv(xt, p[:, lo:hi]))
                self._scatter_to_parents(IA, lvl, (xt @ IA[:, lo:hi]) @ xl)
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)

        # Pass 3: accelerations, forward.
        qdd = xp.empty((n, self.nv))
        a = ws.v[:n]     # velocities are dead past pass 2; reuse the slab
        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                ap[:, lo:hi] = X[:, lo:hi] @ self.minus_gravity + c[:, lo:hi]
            else:
                ap[:, lo:hi] = (
                    _mv(X[:, lo:hi], a[:, lvl.parent_slots]) + c[:, lo:hi]
                )
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                u, d_inv, u_tau = saved[(lvl.index, gi)]
                if g.k == 1:
                    qdd_g = d_inv * (
                        u_tau - xp.einsum("nls,nls->nl", u, ap[:, sl],
                                          optimize=False)
                    )
                    qdd[:, g.dofs[:, 0]] = qdd_g
                    a[:, sl] = ap[:, sl] + g.axis * qdd_g[..., None]
                else:
                    qdd_g = _mv(
                        d_inv,
                        u_tau - _mv(xp.swapaxes(u, -1, -2), ap[:, sl]),
                    )
                    qdd[:, g.dofs.reshape(-1)] = qdd_g.reshape(n, -1)
                    a[:, sl] = ap[:, sl] + _mv(g.subspaces, qdd_g)
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)
        _obs.kernel_end(t0, robot, "aba", n)
        return qdd

    # ------------------------------------------------------------------
    # MMinvGen (Algorithm 2), level-scheduled
    # ------------------------------------------------------------------

    def _mminvgen(self, ws: PlanWorkspace, n: int, *,
                  out_minv: bool) -> np.ndarray:
        """``M`` or ``Minv`` over the staged transforms.

        Dispatches to the packed-column kernel when the plan compiled
        packed index sets; the dense fallback sweeps the per-level
        column windows ``[col_start, nv)``.
        """
        if self.packed:
            return self._mminvgen_packed(ws, n, out_minv=out_minv)
        return self._mminvgen_dense(ws, n, out_minv=out_minv)

    def _mminvgen_dense(self, ws: PlanWorkspace, n: int, *,
                        out_minv: bool) -> np.ndarray:
        """Dense-window MMinvGen.

        Column windows: every sweep of a level only touches DOF columns
        ``[col_start, nv)`` — the columns its links' subtrees own.  Dense
        level slabs may scribble below a row's own diagonal block, but
        those entries are structural zeros of the upper form and the final
        symmetrization reads the upper triangle only.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        X = ws.X[:n]
        IA, f_acc, out = ws.IA[:n], ws.f_acc[:n], ws.out[:n]
        IA[:] = self.inertias
        f_acc[:] = 0.0
        out[:] = 0.0
        saved: dict[tuple[int, int], tuple] = {}

        # Backward sweep (Mb submodules).
        for lvl in reversed(self.levels):
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = self.nv - w0
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    u = _mv(IA[:, sl], g.axis)               # (n, Lg, 6)
                    d = xp.einsum("ls,nls->nl", g.axis, u, optimize=False)
                    stf = self._ein(
                        "ls,nlsv->nlv", g.axis, f_acc[:, sl, :, w0:]
                    )
                    if out_minv:
                        d_inv = 1.0 / d
                        out[:, g.rows, w0:] = -(d_inv[..., None] * stf)
                        out[:, g.rows, g.rows] = d_inv
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, g.rows, w0:]             # (n, Lg, V)
                        f_acc[:, sl, :, w0:] += (
                            u[..., :, None] * og[:, :, None, :]
                        )
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                d_inv[..., None, None]
                                * (u[..., :, None] * u[..., None, :])
                            )
                    else:
                        out[:, g.rows, w0:] = stf
                        out[:, g.rows, g.rows] = d
                        f_acc[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                            u, 1, 0
                        )
                else:
                    u = IA[:, sl] @ g.subspaces              # (n, Lg, 6, k)
                    d = g.subspaces_t @ u
                    stf = g.subspaces_t @ f_acc[:, sl, :, w0:]
                    if out_minv:
                        d_inv = self.backend.inv(d)
                        out[:, g.rows, w0:] = (
                            -(d_inv @ stf)
                        ).reshape(n, len(g.rows), width)
                        self._write_diag(out, g, d_inv)
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, g.rows, w0:].reshape(
                            n, g.size, g.k, width
                        )
                        f_acc[:, sl, :, w0:] += u @ og
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                            )
                    else:
                        out[:, g.rows, w0:] = stf.reshape(
                            n, len(g.rows), width
                        )
                        self._write_diag(out, g, d)
                        for j in range(g.k):
                            f_acc[:, g.slots, :, g.dofs[:, j]] += (
                                xp.moveaxis(u[..., j], 1, 0)
                            )
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                self._scatter_to_parents(
                    f_acc[:, :, :, w0:], lvl, xt @ f_acc[:, lo:hi, :, w0:]
                )
                self._scatter_to_parents(
                    IA, lvl, (xt @ IA[:, lo:hi]) @ xl
                )

        if not out_minv:
            m = _symmetrize_from_rows(out, xp)
            _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
            return m

        minv = self._minv_forward(ws, n, saved)
        _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
        return minv

    def _minv_forward(self, ws: PlanWorkspace, n: int,
                      saved: dict) -> np.ndarray:
        """Forward MMinvGen sweep (Mf submodules), shared by the packed
        and dense kernels.

        Always dense-windowed: unlike ``M``, the upper triangle of
        ``Minv`` is dense — propagation fills the cross-branch entries —
        so there is no subtree structure to pack here.
        """
        xp = self._xp
        X = ws.X[:n]
        out = ws.out[:n]
        p_prop = ws.p_prop[:n]
        p_prop[:] = 0.0
        for lvl in self.levels:
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = self.nv - w0
            if not lvl.is_root:
                xpp = X[:, lo:hi] @ p_prop[:, lvl.parent_slots, :, w0:]
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        xpp_g = xpp[:, g.rel]
                        out[:, g.rows, w0:] -= d_inv[..., None] * xp.einsum(
                            "nls,nlsv->nlv", u, xpp_g, optimize=False
                        )
                    og = out[:, g.rows, w0:]
                    t = g.axis[:, :, None] * og[:, :, None, :]
                else:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        xpp_g = xpp[:, g.rel]
                        corr = d_inv @ (xp.swapaxes(u, -1, -2) @ xpp_g)
                        out[:, g.rows, w0:] -= corr.reshape(
                            n, len(g.rows), width
                        )
                    og = out[:, g.rows, w0:].reshape(n, g.size, g.k, width)
                    t = g.subspaces @ og
                if lvl.is_root:
                    p_prop[:, sl, :, w0:] = t
                else:
                    p_prop[:, sl, :, w0:] = t + xpp[:, g.rel]
        return _symmetrize_from_rows(out, xp)

    def _mminvgen_packed(self, ws: PlanWorkspace, n: int, *,
                         out_minv: bool) -> np.ndarray:
        """Packed-column MMinvGen backward sweep.

        The force accumulator carries its DOF-column axis in the packed
        (slot-order) layout, where each level's subtree union is exactly
        the suffix ``[wp, nv)`` — the tight version of the dense kernel's
        ``[col_start, nv)`` window — so the whole sweep is the dense code
        at narrower basic-sliced windows; everything the window skips is
        a structural zero the dense kernel spent flops recomputing.
        Output rows are written in packed columns and unpermuted once at
        the end (``M``) or before the ``Minv`` forward sweep, which
        stays in column order (:meth:`_minv_forward`: the upper triangle
        of ``Minv`` is dense, there is no subtree structure to pack).
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        nv = self.nv
        X = ws.X[:n]
        IA, f_acc, out = ws.IA[:n], ws.f_acc[:n], ws.out[:n]
        IA[:] = self.inertias
        # ``out`` rows are written in the *permuted* row layout (row r =
        # slot-order DOF r): every write below then lands on a basic
        # slice, and no row is only partially covered, so no zero-init.
        # ``f_acc`` only ever carries each level's suffix window.
        for lvl in self.levels:
            f_acc[:, lvl.lo:lvl.hi, :,
                  self.packed_levels[lvl.index].wp:] = 0.0
        out_flat = out.reshape(n, nv * nv)
        saved: dict[tuple[int, int], tuple] = {}

        # Backward sweep (Mb submodules) at subtree-union suffix windows.
        for lvl in reversed(self.levels):
            pk = self.packed_levels[lvl.index]
            lo, hi, w0 = lvl.lo, lvl.hi, pk.wp
            width = nv - w0
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                pos = pk.own_pos[gi]
                pr = pk.prow[gi]
                if g.k == 1:
                    u = _mv(IA[:, sl], g.axis)               # (n, Lg, 6)
                    d = xp.einsum("ls,nls->nl", g.axis, u, optimize=False)
                    stf = xp.matmul(
                        g.axis[:, None, :], f_acc[:, sl, :, w0:]
                    )[:, :, 0]
                    if out_minv:
                        d_inv = 1.0 / d
                        out[:, pr, w0:] = -(d_inv[..., None] * stf)
                        out_flat[:, pk.pdiag[gi]] = d_inv
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, pr, w0:]                 # (n, Lg, V)
                        f_acc[:, sl, :, w0:] += (
                            u[..., :, None] * og[:, :, None, :]
                        )
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                d_inv[..., None, None]
                                * (u[..., :, None] * u[..., None, :])
                            )
                    else:
                        out[:, pr, w0:] = stf
                        out_flat[:, pk.pdiag[gi]] = d
                        f_acc[:, g.slots, :, pos[:, 0]] += xp.moveaxis(
                            u, 1, 0
                        )
                else:
                    u = IA[:, sl] @ g.subspaces              # (n, Lg, 6, k)
                    d = g.subspaces_t @ u
                    stf = g.subspaces_t @ f_acc[:, sl, :, w0:]
                    if out_minv:
                        d_inv = self.backend.inv(d)
                        out[:, pr, w0:] = (
                            -(d_inv @ stf)
                        ).reshape(n, len(g.rows), width)
                        self._write_diag(out, g, d_inv, pos)
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, pr, w0:].reshape(
                            n, g.size, g.k, width
                        )
                        f_acc[:, sl, :, w0:] += u @ og
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                            )
                    else:
                        out[:, pr, w0:] = stf.reshape(
                            n, len(g.rows), width
                        )
                        self._write_diag(out, g, d, pos)
                        for j in range(g.k):
                            f_acc[:, g.slots, :, pos[:, j]] += (
                                xp.moveaxis(u[..., j], 1, 0)
                            )
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                vf = xt @ f_acc[:, lo:hi, :, w0:]
                vi = (xt @ IA[:, lo:hi]) @ xl
                if pk.pslice is not None:
                    f_acc[:, pk.pslice, :, w0:] += vf
                    IA[:, pk.pslice] += vi
                else:
                    self._scatter_to_parents(f_acc[:, :, :, w0:], lvl, vf)
                    self._scatter_to_parents(IA, lvl, vi)

        if not out_minv:
            sym = _symmetrize_from_rows(out, xp)
            m = sym[:, self.col_pos[:, None], self.col_pos[None, :]]
            _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
            return m
        minv = self._minv_forward_packed(ws, n, saved)
        _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
        return minv

    def _minv_forward_packed(self, ws: PlanWorkspace, n: int,
                             saved: dict) -> np.ndarray:
        """Forward MMinvGen sweep (Mf submodules) in the packed layout.

        The upper triangle of ``Minv`` is dense in *column order*, but
        the sweep's row windows are governed by reachability, and slot
        order is itself a topological order: row ``r`` only needs columns
        of links no shallower than ``r``, which in the packed layout is
        exactly the suffix ``[wp, nv)`` — tighter than the dense kernel's
        ``[col_start, nv)`` windows.  The row stack then holds the upper
        triangle *of the permuted ordering*: rows are gathered into slot
        order, symmetrized there, and both axes are unpermuted in one
        paired gather at the end.
        """
        xp = self._xp
        X = ws.X[:n]
        out = ws.out[:n]
        p_prop = ws.p_prop[:n]
        for lvl in self.levels:
            pk = self.packed_levels[lvl.index]
            lo, hi, w0 = lvl.lo, lvl.hi, pk.wp
            width = self.nv - w0
            one_group = len(lvl.groups) == 1
            if not lvl.is_root:
                xpp = X[:, lo:hi] @ p_prop[:, lvl.parent_slots, :, w0:]
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                pr = pk.prow[gi]
                if not lvl.is_root:
                    xpp_g = xpp if one_group else xpp[:, g.rel]
                if g.k == 1:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        out[:, pr, w0:] -= d_inv[..., None] * (
                            xp.matmul(u[:, :, None, :], xpp_g)[:, :, 0]
                        )
                    og = out[:, pr, w0:]
                    pv = p_prop[:, sl, :, w0:]
                    xp.multiply(g.axis[:, :, None], og[:, :, None, :],
                                out=pv)
                    if not lvl.is_root:
                        pv += xpp_g
                else:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        corr = d_inv @ (xp.swapaxes(u, -1, -2) @ xpp_g)
                        out[:, pr, w0:] -= corr.reshape(
                            n, len(g.rows), width
                        )
                    og = out[:, pr, w0:].reshape(n, g.size, g.k, width)
                    if lvl.is_root:
                        p_prop[:, sl, :, w0:] = g.subspaces @ og
                    else:
                        p_prop[:, sl, :, w0:] = (
                            g.subspaces @ og + xpp_g
                        )
        sym = _symmetrize_from_rows(out, xp)
        return sym[:, self.col_pos[:, None], self.col_pos[None, :]]

    @staticmethod
    def _write_diag(out: np.ndarray, g: LevelGroup, d: np.ndarray,
                    pos: np.ndarray | None = None) -> None:
        """Write each link's (k, k) diagonal block of ``out`` (``pos``
        supplies the packed positions when the layout is packed — both
        axes, since packed outputs keep permuted rows).
        """
        cols = g.dofs if pos is None else pos
        for j in range(g.size):
            out[:, cols[j][:, None], cols[j][None, :]] = d[:, j]

    # ------------------------------------------------------------------
    # dRNEA (analytical dID), level-scheduled with paired d/dq, d/dqd
    # ------------------------------------------------------------------

    def _rnea_derivatives(self, ws: PlanWorkspace,
                          n: int) -> tuple[np.ndarray, np.ndarray]:
        """Derivative sweeps over the state left behind by :meth:`_rnea`.

        Requires a full RNEA pass (with the real ``qdd``) in the
        workspace: ``v``/``xv``/``xa`` from the forward sweep and the
        accumulated forces ``f`` from the backward sweep (the paper's btr
        operand).  Dispatches to the packed-column forward sweep when the
        plan compiled packed index sets.
        """
        if self.packed:
            return self._rnea_derivatives_packed(ws, n)
        return self._rnea_derivatives_dense(ws, n)

    def _rnea_derivatives_dense(self, ws: PlanWorkspace,
                                n: int) -> tuple[np.ndarray, np.ndarray]:
        """Dense derivative sweeps.

        ``DVA`` carries all four transfer stacks side by side
        (``[dv/dq | dv/dqd | da/dq | da/dqd]``), so parent propagation is
        one gather and one wide contraction per level; ``DF`` carries the
        ``[df/dq | df/dqd]`` pair the same way.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        nv = self.nv
        nv2 = 2 * nv
        X = ws.X[:n]
        v, xv, xa, vj, f = (
            ws.v[:n], ws.xv[:n], ws.xa[:n], ws.vj[:n], ws.f[:n]
        )
        D, DF = ws.DVA[:n], ws.DF[:n]
        # Whole-robot operator stacks, hoisted out of the level loop.
        gyro = crf_bar(_mv(self.inertias, v)) + crf(v) @ self.inertias
        cvj = crm(vj)

        # Forward sweep (Df submodules).
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            slab = D[:, lo:hi]
            if lvl.is_root:
                slab[:] = 0.0
            else:
                xp.matmul(X[:, lo:hi], D[:, lvl.parent_slots], out=slab)
            for g in lvl.groups:
                if g.k == 1:
                    # One-hot joint terms: a cross product added at the
                    # joint's own column in each stack.
                    if not lvl.is_root:
                        D[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                            cross_motion(xv[:, g.lo:g.hi], g.axis), 1, 0
                        )
                    D[:, g.slots, :, nv + g.dofs[:, 0]] += g.axis[:, None]
                    D[:, g.slots, :, nv2 + g.dofs[:, 0]] += xp.moveaxis(
                        cross_motion(xa[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    sel = lvl.sel[g.rel]
                    gsl = D[:, g.lo:g.hi]
                    if not lvl.is_root:
                        gsl[..., :nv] += crm(xv[:, g.lo:g.hi]) @ sel
                    gsl[..., nv:nv2] += sel
                    gsl[..., nv2:3 * nv] += crm(xa[:, g.lo:g.hi]) @ sel
            # a_i includes v_i x vj: differentiate both factors (one
            # operator covers the dq and dqd halves at once).
            slab[..., nv2:] -= cvj[:, lo:hi] @ slab[..., :nv2]
            for g in lvl.groups:
                if g.k == 1:
                    D[:, g.slots, :, 3 * nv + g.dofs[:, 0]] += xp.moveaxis(
                        cross_motion(v[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    D[:, g.lo:g.hi, :, 3 * nv:] += (
                        crm(v[:, g.lo:g.hi]) @ lvl.sel[g.rel]
                    )
            DF[:, lo:hi] = (
                self.inertias[lo:hi] @ slab[..., nv2:]
                + gyro[:, lo:hi] @ slab[..., :nv2]
            )

        dtau_q, dtau_qd = self._deriv_backward(ws, n)
        _obs.kernel_end(t0, self.robot_name, "rnea_derivatives", n)
        return dtau_q, dtau_qd

    def _deriv_backward(self, ws: PlanWorkspace,
                        n: int) -> tuple[np.ndarray, np.ndarray]:
        """Backward derivative sweep (Db submodules), dense layout,
        fused with row extraction: when a level is reached its DF slab is
        fully accumulated, so its dtau rows are read off first and the
        btr term is then added in place before propagating to the
        parents."""
        xp = self._xp
        nv = self.nv
        nv2 = 2 * nv
        X, f, DF = ws.X[:n], ws.f[:n], ws.DF[:n]
        dtau_q, dtau_qd = ws.dtau_q[:n], ws.dtau_qd[:n]
        for lvl in reversed(self.levels):
            lo, hi = lvl.lo, lvl.hi
            for g in lvl.groups:
                if g.k == 1:
                    r = self._ein(
                        "ls,nlsv->nlv", g.axis, DF[:, g.lo:g.hi]
                    )
                    dtau_q[:, g.rows] = r[..., :nv]
                    dtau_qd[:, g.rows] = r[..., nv:]
                else:
                    r = (g.subspaces_t @ DF[:, g.lo:g.hi]).reshape(
                        n, len(g.rows), nv2
                    )
                    dtau_q[:, g.rows] = r[..., :nv]
                    dtau_qd[:, g.rows] = r[..., nv:]
            if lvl.is_root:
                continue
            for g in lvl.groups:
                # d(X^T f)/dq_i adds X^T (S_k x* f_i) at the joint's own
                # column, with f_i the accumulated force (the btr term).
                if g.k == 1:
                    DF[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                        cross_force(g.axis, f[:, g.lo:g.hi]), 1, 0
                    )
                else:
                    DF[:, g.lo:g.hi, :, :nv] += self._ein(
                        "lvij,nlj->nliv", lvl.btr[g.rel], f[:, g.lo:g.hi]
                    )
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            self._scatter_to_parents(DF, lvl, xt @ DF[:, lo:hi])
        return dtau_q, dtau_qd

    def _add_diag2(self, base, val) -> None:
        """``base[:, i, :, i] += val[:, :, i]`` over a ``(n, L, 6, C)``
        view (C >= L): the own-column writes of one-DOF groups, whose
        packed columns run parallel to their slots.  Uses one writable
        strided view when the backend exposes ``as_strided``; falls back
        to a fancy-index accumulate.
        """
        L = base.shape[1]
        if self._as_strided is not None:
            st = base.strides
            view = self._as_strided(base, base.shape[:1] + (L, 6),
                                    (st[0], st[1] + st[3], st[2]))
            view += val
        else:
            xp = self._xp
            idx = xp.arange(L)
            if val.ndim == 2:                      # (L, 6) broadcast
                base[:, idx, :, idx] += val[:, None, :]
            else:
                base[:, idx, :, idx] += xp.moveaxis(val, 1, 0)

    def _deriv_backward_packed(self, ws: PlanWorkspace,
                               n: int) -> tuple[np.ndarray, np.ndarray]:
        """Backward derivative sweep over the block-axis packed ``DF``.

        Two passes instead of the dense kernel's fused loop.  The btr
        own-column terms only depend on the static forces, so the fused
        one-DOF bundle adds all of them in one diagonal-strided op up
        front; the propagation pass then just scatters level slabs onto
        parent slots — a basic-slice ``+=`` over the parent's forward
        window plus a plain assign over its untouched tail when the
        parents are contiguous.  Once it finishes every slot's DF block
        is final, so the dtau rows come off in one whole-robot matmul
        (plus per-group matmuls for multi-DOF and bundle-less plans)
        written to basic slices of the *permuted-row* dtau pair, minus
        the own-column btr projection the fused extraction order used to
        exclude.
        """
        xp = self._xp
        nv = self.nv
        X, f, DF = ws.X[:n], ws.f[:n], ws.DF[:n]
        dtau_q, dtau_qd = ws.dtau_q[:n], ws.dtau_qd[:n]
        k1 = self._k1
        bt_nr = None
        if k1 is not None:
            sl_nr = k1["sl_nr"]
            if sl_nr.stop > sl_nr.start:
                bt_nr = cross_force(k1["axis_nr"], f[:, sl_nr])
                self._add_diag2(DF[:, sl_nr, 0, :, k1["p0_nr"]:], bt_nr)
        for lvl in reversed(self.levels):
            if lvl.is_root:
                continue
            pk = self.packed_levels[lvl.index]
            lo, hi, w = lvl.lo, lvl.hi, pk.w
            for gi, g in enumerate(lvl.groups):
                if g.k == 1:
                    if k1 is not None:
                        continue
                    cols = pk.own_pos[gi][:, 0]
                    DF[:, g.slots, 0, :, cols] += xp.moveaxis(
                        cross_force(g.axis, f[:, g.lo:g.hi]), 1, 0
                    )
                else:
                    DF[:, g.lo:g.hi, 0, :, :w] += self._ein(
                        "lvij,nlj->nliv", pk.btr_packed[g.rel][:, :w],
                        f[:, g.lo:g.hi]
                    )
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            val = xt[:, :, None] @ DF[:, lo:hi]
            if pk.pslice is not None:
                wpar = self.packed_levels[lvl.index - 1].w
                DF[:, pk.pslice, :, :, :wpar] += val[..., :wpar]
                DF[:, pk.pslice, :, :, wpar:] = val[..., wpar:]
            else:
                self._scatter_to_parents(DF, lvl, val)
        dq_flat = dtau_q.reshape(n, nv * nv)
        if k1 is not None:
            sl = k1["sl"]
            S = sl.stop - sl.start
            r = xp.matmul(k1["axis"][:, None, None, :], DF[:, sl])
            pr = slice(k1["p0"], k1["p0"] + S)     # (n, S, 2, 1, nv)
            dtau_q[:, pr] = r[:, :, 0, 0]
            dtau_qd[:, pr] = r[:, :, 1, 0]
            if bt_nr is not None:
                corr = self._ein("ls,nls->nl", k1["axis_nr"], bt_nr)
                p0 = k1["p0_nr"]
                s_nr = sl_nr.stop - sl_nr.start
                dq_flat[:, p0 * (nv + 1):
                        (p0 + s_nr - 1) * (nv + 1) + 1: nv + 1] -= corr
        for lvl in self.levels:
            pk = self.packed_levels[lvl.index]
            for gi, g in enumerate(lvl.groups):
                pr = pk.prow[gi]
                if g.k == 1:
                    if k1 is not None:
                        continue
                    r = xp.matmul(
                        g.axis[:, None, None, :], DF[:, g.lo:g.hi]
                    )                                # (n, Lg, 2, 1, nv)
                    dtau_q[:, pr] = r[:, :, 0, 0]
                    dtau_qd[:, pr] = r[:, :, 1, 0]
                    if not lvl.is_root:
                        corr = self._ein(
                            "ls,nls->nl", g.axis,
                            cross_force(g.axis, f[:, g.lo:g.hi])
                        )
                        dq_flat[:, pk.pdiag[gi]] -= corr
                else:
                    r = g.subspaces_t[:, None] @ DF[:, g.lo:g.hi]
                    dtau_q[:, pr] = r[:, :, 0].reshape(n, -1, nv)
                    dtau_qd[:, pr] = r[:, :, 1].reshape(n, -1, nv)
                    if not lvl.is_root:
                        b2 = self._ein(
                            "lsk,lvsj->lkvj", g.subspaces,
                            pk.btr_packed[g.rel]
                        )
                        corr = self._ein(
                            "lkvj,nlj->nlkv", b2, f[:, g.lo:g.hi]
                        )
                        dtau_q[:, pr] -= corr.reshape(n, -1, nv)
        return dtau_q, dtau_qd

    def _rnea_derivatives_packed(self, ws: PlanWorkspace,
                                 n: int) -> tuple[np.ndarray, np.ndarray]:
        """Packed-column derivative forward sweep.

        The ``[dv/dq | dv/dqd | da/dq | da/dqd]`` transfer stacks of a
        link are nonzero only at its root-to-link *path* columns.  In the
        packed (slot-order) layout the level's path union is exactly the
        prefix ``[0, w)``, and the parent level's prefix nests inside it.
        The four stacks live on a leading *block axis* — each level's
        slab is ``(n, L, 4, 6, w)`` — so parent propagation is one row
        gather plus one broadcast matmul written directly into the
        blocks' ``[0, wp)`` windows; only the ``[wp, w)`` gap (this
        level's own columns, structurally zero in every parent) is
        zero-filled.  Joint one-hot terms land at precompiled packed
        positions.  ``DF`` keeps the packed block layout through the
        packed backward sweep and the dtau pair is unpermuted once at
        the end.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        X = ws.X[:n]
        v, xv, xa, vj = ws.v[:n], ws.xv[:n], ws.xa[:n], ws.vj[:n]
        DF = ws.DF[:n]
        # Whole-robot operator stacks, hoisted out of the level loop.
        # ``DOp = [I | gyro]`` is one (6, 12) operator per link: with the
        # slab blocks ordered [da/dq, dv/dq, da/dqd, dv/dqd] each DF
        # block is DOp @ [da; dv] — one broadcast matmul per level
        # instead of two matmuls plus an accumulation pass.  The inertia
        # half is constant, so it is re-staged only when the workspace
        # buffer itself changed; gyro contracts the precompiled
        # linear-in-v tensor directly into the other half.
        DOp = ws.DOp[:n]
        if (getattr(ws, "_dop_id", None) != id(ws.DOp)
                or getattr(ws, "_dop_n", 0) < n):
            DOp[..., :6] = self.inertias
            ws._dop_id = id(ws.DOp)
            ws._dop_n = n
        self._ein("lsij,nls->nlij", self.gyro_t, v, out=DOp[..., 6:])
        cvj = crm(vj)
        # Fused one-DOF bundle: the joint one-hot own-column terms are
        # whole-robot cross products, computed here in three array ops
        # and written per level through diagonal-strided views.
        k1 = self._k1
        if k1 is not None:
            sl_a, a_all = k1["sl"], k1["axis"]
            cm_v = cross_motion(v[:, sl_a], a_all)
            cm_xa = cross_motion(xa[:, sl_a], a_all)
            sl_nr = k1["sl_nr"]
            cm_xv = cross_motion(xv[:, sl_nr], k1["axis_nr"])

        prev = None
        for lvl in self.levels:
            pk = self.packed_levels[lvl.index]
            lo, hi = lvl.lo, lvl.hi
            L = hi - lo
            w, wp = pk.w, pk.wp
            slab = getattr(ws, f"Dp{lvl.index}")[:n]  # (n, L, 4, 6, w)
            if lvl.is_root:
                slab[:] = 0.0
            else:
                if pk.prelslice is not None:
                    # Contiguous identity parent map: propagate straight
                    # off the parent slab view, no gathered copy.
                    gathered = prev[:, pk.prelslice]
                else:
                    gathered = _scratch_view5(ws.Dscr, n, L, 4, wp)
                    xp.take(prev, pk.prel, axis=1, out=gathered,
                            mode="clip")
                # One broadcast matmul writes every block's parent window
                # in place; only the [wp, w) gap (this level's own
                # columns, structurally zero in every parent) is filled.
                xp.matmul(X[:, lo:hi, None], gathered, out=slab[..., :wp])
                slab[..., wp:] = 0.0
            for gi, (g, pos) in enumerate(zip(lvl.groups, pk.own_pos)):
                if g.k == 1:
                    if k1 is not None:
                        p0 = pk.prow[gi].start
                        rel = slice(g.lo - lo, g.hi - lo)
                        if not lvl.is_root:
                            o = g.lo - sl_nr.start
                            self._add_diag2(slab[:, rel, 1, :, p0:],
                                            cm_xv[:, o:o + g.size])
                        o = g.lo - sl_a.start
                        self._add_diag2(slab[:, rel, 3, :, p0:],
                                        a_all[o:o + g.size])
                        self._add_diag2(slab[:, rel, 0, :, p0:],
                                        cm_xa[:, o:o + g.size])
                        continue
                    p0 = pos[:, 0]
                    if not lvl.is_root:
                        slab[:, g.rel, 1, :, p0] += xp.moveaxis(
                            cross_motion(xv[:, g.lo:g.hi], g.axis), 1, 0
                        )
                    slab[:, g.rel, 3, :, p0] += g.axis[:, None]
                    slab[:, g.rel, 0, :, p0] += xp.moveaxis(
                        cross_motion(xa[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    sel = pk.sel_packed[g.rel]
                    gsl = slab[:, g.lo - lo:g.hi - lo]
                    if not lvl.is_root:
                        gsl[:, :, 1] += crm(xv[:, g.lo:g.hi]) @ sel
                    gsl[:, :, 3] += sel
                    gsl[:, :, 0] += crm(xa[:, g.lo:g.hi]) @ sel
            # a_i includes v_i x vj: differentiate both factors (one
            # broadcast operator covers the dq and dqd blocks at once;
            # the a blocks interleave with their v sources at stride 2).
            cprod = _scratch_view5(ws.Dscr2, n, L, 2, w)
            xp.matmul(cvj[:, lo:hi, None], slab[:, :, 1::2], out=cprod)
            slab[:, :, ::2] -= cprod
            for gi, (g, pos) in enumerate(zip(lvl.groups, pk.own_pos)):
                if g.k == 1:
                    if k1 is not None:
                        o = g.lo - sl_a.start
                        self._add_diag2(
                            slab[:, g.lo - lo:g.hi - lo, 2, :,
                                 pk.prow[gi].start:],
                            cm_v[:, o:o + g.size]
                        )
                        continue
                    slab[:, g.rel, 2, :, pos[:, 0]] += xp.moveaxis(
                        cross_motion(v[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    slab[:, g.lo - lo:g.hi - lo, 2] += (
                        crm(v[:, g.lo:g.hi]) @ pk.sel_packed[g.rel]
                    )
            # DF pair: values live at the prefix [0, w) of both blocks;
            # the combined operator matmul broadcasts straight into the
            # DF window over the (da, dv) pair axis.
            dfv = DF[:, lo:hi, :, :, :w]
            slab_pairs = slab.reshape(n, L, 2, 12, w)
            xp.matmul(DOp[:, lo:hi, None], slab_pairs, out=dfv)
            # Zero only the tails no child-level scatter will assign
            # over (childless slots / fancy-scatter child levels).
            if pk.dfz is not None:
                if isinstance(pk.dfz, slice):
                    DF[:, lo + pk.dfz.start:lo + pk.dfz.stop,
                       :, :, w:] = 0.0
                else:
                    DF[:, lo + pk.dfz, :, :, w:] = 0.0
            prev = slab

        dtau_q, dtau_qd = self._deriv_backward_packed(ws, n)
        ix = self.col_pos
        dtau_q = dtau_q[:, ix[:, None], ix[None, :]]
        dtau_qd = dtau_qd[:, ix[:, None], ix[None, :]]
        _obs.kernel_end(t0, self.robot_name, "rnea_derivatives", n)
        return dtau_q, dtau_qd

    # ------------------------------------------------------------------
    # Table-I functions
    # ------------------------------------------------------------------

    def _operand(self, a):
        """Stage one task-major operand on the plan's backend."""
        xp = self._xp
        return xp.atleast_2d(xp.asarray(a, dtype=float))

    def _prep(self, q, qd=None, qdd=None, *groups):
        q = self._operand(q)
        n = q.shape[0]
        ws = self.workspace(n, *groups)
        self._stage_transforms(ws, n, q)
        if qd is not None:
            self._stage_rates(ws, n, self._operand(qd),
                              None if qdd is None else self._operand(qdd))
        return ws, n

    def id_batch(self, q, qd, qdd, f_ext=None):
        ws, n = self._prep(q, qd, qdd, "rnea")
        return self._rnea(ws, n, f_ext).copy()

    def m_batch(self, q):
        ws, n = self._prep(q, None, None, "mminv", "ia")
        return self._mminvgen(ws, n, out_minv=False)

    def minv_batch(self, q):
        ws, n = self._prep(q, None, None, "mminv", "ia")
        return self._mminvgen(ws, n, out_minv=True)

    def fd_batch(self, q, qd, tau, f_ext=None):
        ws, n = self._prep(q, qd, None, "rnea", "ia")
        return self._aba(ws, n, self._operand(tau), f_ext)

    def did_batch(self, q, qd, qdd, f_ext=None):
        ws, n = self._prep(q, qd, qdd, "rnea", "deriv")
        self._rnea(ws, n, f_ext)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return dtau_q.copy(), dtau_qd.copy()

    def dfd_batch(self, q, qd, tau, f_ext=None):
        xp = self._xp
        ws, n = self._prep(q, qd, None, "rnea", "mminv", "ia", "deriv")
        bias = self._rnea(ws, n, f_ext)
        minv = self._mminvgen(ws, n, out_minv=True)
        tau = self._operand(tau)
        qdd = _mv(minv, tau - bias)
        self._ein("bsv,nv->nbs", self.sel_all, qdd, out=ws.aj[:n])
        self._rnea(ws, n, f_ext, reuse_velocities=True)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return (
            qdd,
            -xp.matmul(minv, dtau_q),
            -xp.matmul(minv, dtau_qd),
            minv,
        )

    def difd_batch(self, q, qd, qdd, minv=None, f_ext=None):
        xp = self._xp
        qdd = self._operand(qdd)
        ws, n = self._prep(q, qd, qdd, "rnea", "mminv", "ia", "deriv")
        if minv is None:
            minv = self._mminvgen(ws, n, out_minv=True)
        else:
            minv = xp.asarray(minv, dtype=float)
        self._rnea(ws, n, f_ext)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return (
            qdd,
            -xp.matmul(minv, dtau_q),
            -xp.matmul(minv, dtau_qd),
            minv,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def structure_hash(self) -> str:
        """Stable fingerprint of the compiled structure and constants.

        Two plans with the same hash produce identical kernels for
        identical operand shapes, so the jit engine uses this as the
        static part of its trace-cache key — re-tracing happens per
        structure, not per model object.
        """
        cached = getattr(self, "_structure_hash", None)
        if cached is not None:
            return cached
        import hashlib

        to_np = self.backend.to_numpy

        def _bytes(a):
            return np.ascontiguousarray(to_np(a)).tobytes()

        h = hashlib.sha256()
        h.update(
            f"{self.robot_name}|{self.nb}|{self.nv}|"
            f"{self.n_branches}".encode()
        )
        for lvl in self.levels:
            h.update(
                f"L{lvl.index}:{lvl.depth}:{lvl.lo}:{lvl.hi}:"
                f"{int(lvl.is_root)}:{lvl.col_start}".encode()
            )
            h.update(_bytes(lvl.parent_slots))
            h.update(_bytes(lvl.sel))
            for g in lvl.groups:
                h.update(f"g{g.lo}:{g.hi}:{g.k}".encode())
                h.update(_bytes(g.dofs))
                h.update(_bytes(g.subspaces))
        for tg in self.transform_groups:
            h.update(tg.kind.encode())
            h.update(_bytes(tg.slots))
            if tg.axes is not None:
                h.update(_bytes(tg.axes))
            h.update(_bytes(tg.x_tree))
        h.update(_bytes(self.inertias))
        h.update(_bytes(self.minus_gravity))
        digest = h.hexdigest()
        self._structure_hash = digest
        return digest

    def describe(self) -> dict:
        """Shape summary for benchmarks and the serve cache."""
        info = {
            "robot": self.robot_name,
            "backend": self.backend.name,
            "links": self.nb,
            "dofs": self.nv,
            "branches": self.n_branches,
            "levels": len(self.levels),
            "level_widths": [lvl.size for lvl in self.levels],
            "max_level_width": max(lvl.size for lvl in self.levels),
            "packing": self.packing,
            "packed": self.packed,
        }
        if self.packed:
            # Level-width-weighted column counts: packed vs the dense
            # sweeps' footprints (the flop-ratio the packing buys).
            info["packed_cols"] = {
                "deriv_packed": sum(
                    lvl.size * pk.w
                    for lvl, pk in zip(self.levels, self.packed_levels)
                ),
                "deriv_dense": sum(
                    lvl.size * self.nv for lvl in self.levels
                ),
                "mminv_packed": sum(
                    lvl.size * (self.nv - pk.wp)
                    for lvl, pk in zip(self.levels, self.packed_levels)
                ),
                "mminv_dense": sum(
                    lvl.size * (self.nv - lvl.col_start)
                    for lvl in self.levels
                ),
            }
        return info

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan({self.robot_name!r}, "
            f"backend={self.backend.name!r}, links={self.nb}, "
            f"levels={len(self.levels)}, "
            f"widths={[lvl.size for lvl in self.levels]})"
        )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

#: model -> {(backend name, packing): plan}.  Weak over models so
#: transient models can be collected together with every variant of
#: their plan.
_PLAN_CACHE: "weakref.WeakKeyDictionary[RobotModel, dict[tuple, ExecutionPlan]]" = (
    weakref.WeakKeyDictionary()
)
_PLAN_LOCK = threading.Lock()


def plan_for(model: RobotModel,
             backend: str | ArrayBackend | None = None, *,
             packing: str = "auto") -> ExecutionPlan:
    """The memoized :class:`ExecutionPlan` for ``model`` on ``backend``.

    Plans are cached per (model instance, backend name, packing mode) —
    weakly over models, so transient models can be collected;
    :func:`repro.model.library.load_robot` returns shared instances, so
    serve traffic for one robot compiles exactly one plan per backend —
    the software analogue of programming one bitstream per robot and
    cloning it per device type.
    """
    bk = get_backend(backend)
    key = (bk.name, packing)
    plans = _PLAN_CACHE.get(model)
    if plans is not None:
        plan = plans.get(key)
        if plan is not None:
            return plan
    with _PLAN_LOCK:
        plans = _PLAN_CACHE.get(model)
        if plans is None:
            plans = {}
            _PLAN_CACHE[model] = plans
        plan = plans.get(key)
        if plan is None:
            plan = ExecutionPlan(model, bk, packing=packing)
            plans[key] = plan
    return plan


__all__ = [
    "ExecutionPlan",
    "LevelGroup",
    "PackedLevel",
    "PlanLevel",
    "PlanWorkspace",
    "TransformGroup",
    "cached_einsum",
    "default_workspace_shapes",
    "plan_for",
]
