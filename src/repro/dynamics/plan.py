"""Per-robot execution plans: the robot's structure compiled ahead of time.

Dadu-RBD's central idea is that the *structure* of the robot — its tree
topology, joint types and DOF layout — is known long before any dynamics
call, so everything derivable from structure is compiled into the datapath
up front: the Structure-Adaptive Pipelines (SAPS) organize hardware around
the branch decomposition, the multifunctional pipelines keep every stage
busy across independent branches, and the Schedule Module replays a fixed
operand schedule instead of re-walking the tree.  This module is the
host-side analogue of that compilation step.  An :class:`ExecutionPlan` is
built once per :class:`~repro.model.robot.RobotModel` (from the model plus
:func:`repro.model.topology.decompose` /
:func:`~repro.model.topology.level_schedule`) and holds:

* **a level schedule** — links grouped by tree depth, the wavefront the
  paper's pipelines sweep: all links of one level advance in a single
  fused ``(n, L_d, ...)`` array op, so Atlas's two arms and two legs cost
  one step per depth instead of one step per link (the SAPS branch arrays,
  fused on the host instead of replicated in silicon);
* **flattened index arrays** — parent gathers, sibling-sum segments and
  per-level slot ranges, precomputed so the hot loop never touches a
  Python-level tree query (the Schedule Module's address streams);
* **motion-subspace selector stacks** — per-level ``S`` stacks with the
  one-DOF common case compiled to broadcast multiplies and paired index
  writes instead of matrix products (the paper's ``s_one_hot`` selection
  wiring);
* **column windows** — the mass-matrix sweeps touch only the DOF columns
  a level's links can reach (own-and-descendants), the host-side version
  of the paper's incremental column vectors (Fig 7b);
* **precomputed einsum paths** — every contraction in the Table-I kernels
  runs with a cached ``einsum_path`` (see :func:`cached_einsum`);
* **a reusable workspace** — per-thread, preallocated transform /
  velocity / force / derivative stacks sized ``(n_max, n_links, ...)``,
  so steady-state calls never reallocate the O(n·links) recursion state
  (outputs and small per-level BLAS temporaries are the only transient
  allocations).

Links are re-indexed into *slots* sorted by ``(depth, joint.nv, index)``
so every level — and every uniform-DOF group inside a level — is one
contiguous slab of the workspace stacks, turning level steps into views
instead of gathers.  The q/qd/tau layout is untouched; only the internal
link axis is permuted.

Forward dynamics runs as a level-scheduled articulated-body pass (three
O(links) sweeps, no ``nv``-column state at all), which the seed validates
against the paper's ``Minv @ (tau - C)`` substitution; the derivative
kernels carry their d/dq and d/dqd operands in one paired column block so
each level step is a single wide contraction.

:func:`plan_for` memoizes plans per model *and backend* (weakly over
models, so they can be collected); the ``"compiled"`` engine in
:mod:`repro.dynamics.engine` evaluates all seven Table-I functions on top
of these plans.  A plan compiled with ``backend="cupy"`` holds its
constant stacks, selector stacks, index arrays and workspaces on the
device, so the same level-scheduled kernels run there unmodified —
structure compilation happens once on the host (the paper's offline
bitstream build), operand execution wherever the plan lives.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, replace as _dc_replace

from repro.backend import (
    ArrayBackend,
    BackendCapabilityError,
    get_backend,
    host_backend,
)
from repro.dynamics.mminv import _symmetrize_from_rows
from repro.obs import hooks as _obs
from repro.model.joints import PrismaticJoint, RevoluteJoint
from repro.model.robot import RobotModel
from repro.model.topology import decompose, level_schedule
from repro.spatial.motion import crf, crf_bar, crm, cross_force, cross_motion

#: Host (compilation) namespace, reached through the backend shim: the
#: structure-compilation pass — index arrays, selector stacks, level
#: bookkeeping — always runs on the host; only the finished constant
#: stacks are placed on the plan's execution backend.
np = host_backend().xp
_HOST = host_backend()


def cached_einsum(expr: str, *ops, out=None):
    """Host ``einsum`` with a memoized ``einsum_path``.

    Thin wrapper over the numpy backend's :meth:`ArrayBackend.einsum`
    (which owns the path cache).  Kept as a module-level function because
    the ``"vectorized"`` engine and older call sites import it from here;
    plan kernels use their own backend's ``einsum`` so device plans
    contract on the device.
    """
    return _HOST.einsum(expr, *ops, out=out)


def _mv(x, v):
    """Batched matrix @ vector over arbitrary leading axes."""
    return (x @ v[..., None])[..., 0]


# ---------------------------------------------------------------------------
# Compiled structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelGroup:
    """Links of one level sharing a joint DOF count ``k`` (one slot slab).

    Uniform ``k`` makes the group's joint-space quantities rectangular;
    for the ubiquitous ``k == 1`` case the kernels drop to broadcast
    multiplies over ``axis`` and paired index writes at ``rows`` — the
    one-hot selection the paper folds into wiring.
    """

    lo: int                  # absolute slot range [lo, hi)
    hi: int
    k: int                   # joint.nv shared by every link in the group
    links: np.ndarray        # (Lg,) original link indices
    subspaces: np.ndarray    # (Lg, 6, k) motion subspaces S
    subspaces_t: np.ndarray  # (Lg, k, 6) == S^T
    axis: np.ndarray         # (Lg, 6) == S[:, 0] (only meaningful for k == 1)
    dofs: np.ndarray         # (Lg, k) global DOF columns
    rows: np.ndarray         # (Lg*k,) flattened DOF rows (q-layout)
    slots: np.ndarray        # (Lg,) == arange(lo, hi), for paired writes
    rel: np.ndarray          # (Lg,) slots relative to the level's lo

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class PlanLevel:
    """One wavefront of the level schedule, in slot coordinates."""

    index: int
    depth: int
    lo: int                  # slot slab [lo, hi)
    hi: int
    is_root: bool
    links: np.ndarray        # (L,) original link indices, slot order
    parent_slots: np.ndarray  # (L,) parent slot per link (-1 at the root)
    #: Sibling-sum schedule: (parent_slot, positions) per distinct parent,
    #: where ``positions`` is a slice when the siblings are adjacent in the
    #: level (the common case) and an index array otherwise.
    parent_groups: tuple
    parents_unique: bool     # no two level links share a parent
    groups: tuple[LevelGroup, ...]
    sel: np.ndarray          # (L, 6, nv) expanded subspace selectors
    btr: np.ndarray          # (L, nv, 6, 6) crf(S_col) at own DOF columns
    col_start: int           # min own-DOF start (backward MMinvGen window)

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class TransformGroup:
    """Links whose joint transforms are refreshed by one fused array op.

    Joint objects (not the model) are captured for the generic fallback,
    so a plan holds no reference back to its :class:`RobotModel` and the
    weak plan cache can collect transient models.
    """

    kind: str                # "revolute" | "prismatic" | "generic"
    slots: np.ndarray        # (L,) destination slots
    links: np.ndarray        # (L,) original link indices
    axes: np.ndarray         # (L, 3) joint axes (unused for "generic")
    qcols: np.ndarray        # (L,) global q column (single-DOF kinds)
    x_tree: np.ndarray       # (L, 6, 6) fixed parent placements
    joints: tuple = ()       # per-link Joint objects ("generic" only)
    qslices: tuple = ()      # per-link q slices ("generic" only)


class PlanWorkspace:
    """Preallocated recursion state for one thread, grown monotonically.

    Buffer groups are allocated on first use (a service that only ever
    runs FD never pays for the derivative stacks) and reused across calls:
    ``ensure`` only reallocates when a batch exceeds every batch seen
    before, so steady-state traffic runs allocation-free on the big
    ``(n_max, n_links, ...)`` stacks.  The derivative stacks hold the
    d/dq and d/dqd operands side by side (``2 * nv`` columns) so both
    propagate through one contraction per level.
    """

    def __init__(self, nb: int, nv: int,
                 backend: ArrayBackend | None = None) -> None:
        self._backend = backend or host_backend()
        self._shapes = {
            "x": {"X": (nb, 6, 6)},
            "rnea": {
                "vj": (nb, 6), "aj": (nb, 6), "v": (nb, 6), "a": (nb, 6),
                "xv": (nb, 6), "xa": (nb, 6), "f": (nb, 6),
                "tau": (nv,),
            },
            # Articulated/composite inertias, shared by the ABA and
            # MMinvGen kernels (each fully reinitializes the stack).
            "ia": {"IA": (nb, 6, 6)},
            "mminv": {
                "f_acc": (nb, 6, nv),
                "out": (nv, nv), "p_prop": (nb, 6, nv),
            },
            "deriv": {
                "DVA": (nb, 6, 4 * nv), "DF": (nb, 6, 2 * nv),
                "dtau_q": (nv, nv), "dtau_qd": (nv, nv),
            },
        }
        self.capacity = 0
        self._allocated: set[str] = set()

    def ensure(self, n: int, *groups: str) -> "PlanWorkspace":
        """Make every buffer of ``groups`` available with >= n task rows."""
        if n > self.capacity:
            self.capacity = n
            for group in self._allocated:
                self._allocate(group)
        for group in groups:
            if group not in self._allocated:
                self._allocated.add(group)
                self._allocate(group)
        return self

    def _allocate(self, group: str) -> None:
        for name, shape in self._shapes[group].items():
            setattr(self, name,
                    self._backend.zeros((self.capacity,) + shape))

    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes
            for group in self._allocated
            for name in self._shapes[group]
        )


# ---------------------------------------------------------------------------
# The execution plan
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """Structure of one robot, compiled for level-scheduled batch kernels.

    All public methods take task-major operands (``q``/``qd``/``qdd``/
    ``tau`` of shape ``(n, nv)``, ``f_ext`` as link -> ``(n, 6)`` stacks)
    and implement the same contracts as the engine interface in
    :mod:`repro.dynamics.engine`.
    """

    def __init__(self, model: RobotModel,
                 backend: str | ArrayBackend | None = None) -> None:
        # Only scalars/arrays/joint objects are captured from the model —
        # no back-reference — so the weak plan cache can actually collect
        # a transient model together with its plan.
        self.backend = get_backend(backend)
        if not self.backend.capabilities.inplace:
            raise BackendCapabilityError(
                f"backend {self.backend.name!r} has immutable arrays "
                "(capabilities.inplace=False); the compiled engine's "
                "preallocated workspaces require in-place mutation — "
                "use the 'numpy' or 'cupy' backend"
            )
        #: Kernel namespace and einsum of the execution backend.
        self._xp = self.backend.xp
        self._ein = self.backend.einsum
        #: True when operands must cross the host boundary (f_ext stacks
        #: arrive as numpy from the serve layer).
        self._device = self.backend.name != "numpy"
        self.robot_name = model.name
        self.nb = model.nb
        self.nv = model.nv
        # decompose() validates the single-root invariant and exposes the
        # SAPS branch view the schedule fuses (recorded for introspection).
        self.n_branches = len(decompose(model).branches)
        nb, nv = self.nb, self.nv

        # Slot order: by (depth, joint nv, index) so levels and their
        # uniform-DOF groups are contiguous slabs of every stack.
        order = sorted(
            range(nb), key=lambda i: (model.depth(i), model.joint(i).nv, i)
        )
        self.link_of_slot = np.asarray(order, dtype=np.intp)
        self.slot_of_link = np.empty(nb, dtype=np.intp)
        self.slot_of_link[self.link_of_slot] = np.arange(nb)

        subspaces = model.motion_subspaces()
        starts = np.asarray(
            [model.dof_slice(i).start for i in range(nb)], dtype=np.intp
        )
        stops = np.asarray(
            [model.dof_slice(i).stop for i in range(nb)], dtype=np.intp
        )

        # Slot-ordered constant stacks.
        self.inertias = np.stack(
            [model.links[i].inertia.matrix() for i in order]
        )
        self.sel_all = np.zeros((nb, 6, nv))
        for slot, link in enumerate(order):
            self.sel_all[slot, :, starts[link]:stops[link]] = subspaces[link]

        self.levels = self._build_levels(model, subspaces, starts, stops)
        self.transform_groups = self._build_transform_groups(model, order)

        self.minus_gravity = -np.asarray(model.gravity, dtype=float)
        if self._device:
            self._place_on_backend()
        self._tls = threading.local()

    def _place_on_backend(self) -> None:
        """Move every operand-facing constant stack to the plan backend.

        Compilation built them on the host; a device plan executes with
        device-resident constants so the level kernels never cross the
        host boundary mid-recursion.  Host-side bookkeeping used for
        python-int indexing (``slot_of_link``) stays on the host.
        """
        dev = self.backend.from_numpy
        self.inertias = dev(self.inertias)
        self.sel_all = dev(self.sel_all)
        self.minus_gravity = dev(self.minus_gravity)
        self.levels = tuple(
            _dc_replace(
                lvl,
                parent_slots=dev(lvl.parent_slots),
                sel=dev(lvl.sel),
                btr=dev(lvl.btr),
                groups=tuple(
                    _dc_replace(
                        g,
                        subspaces=dev(g.subspaces),
                        subspaces_t=dev(g.subspaces_t),
                        axis=dev(g.axis),
                        dofs=dev(g.dofs),
                        rows=dev(g.rows),
                        slots=dev(g.slots),
                        rel=dev(g.rel),
                    )
                    for g in lvl.groups
                ),
            )
            for lvl in self.levels
        )
        self.transform_groups = tuple(
            _dc_replace(
                g,
                slots=dev(g.slots),
                axes=dev(g.axes),
                qcols=dev(g.qcols),
                x_tree=dev(g.x_tree),
            )
            for g in self.transform_groups
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _build_levels(self, model, subspaces, starts, stops):
        slot_of = self.slot_of_link
        levels: list[PlanLevel] = []
        lo = 0
        for index, level in enumerate(level_schedule(model)):
            links = sorted(level.links, key=lambda i: (model.joint(i).nv, i))
            links = np.asarray(links, dtype=np.intp)
            hi = lo + len(links)
            parents = np.asarray(
                [model.parent(i) for i in links], dtype=np.intp
            )
            is_root = bool(np.all(parents < 0))
            if is_root:
                parent_slots = np.full(len(links), -1, dtype=np.intp)
                parent_groups: tuple = ()
                parents_unique = True
            else:
                parent_slots = slot_of[parents]
                parent_groups = self._sibling_groups(parent_slots)
                parents_unique = (
                    len(np.unique(parent_slots)) == len(parent_slots)
                )
            sel = self.sel_all[lo:hi]
            btr = np.zeros((len(links), self.nv, 6, 6))
            for pos, link in enumerate(links):
                s = subspaces[link]
                for k in range(s.shape[1]):
                    btr[pos, starts[link] + k] = crf(s[:, k])
            groups = self._build_groups(model, subspaces, starts, stops,
                                        links, lo)
            levels.append(PlanLevel(
                index=index,
                depth=level.depth,
                lo=lo,
                hi=hi,
                is_root=is_root,
                links=links,
                parent_slots=parent_slots,
                parent_groups=parent_groups,
                parents_unique=parents_unique,
                groups=groups,
                sel=sel,
                btr=btr,
                col_start=int(starts[links].min()),
            ))
            lo = hi
        return tuple(levels)

    @staticmethod
    def _sibling_groups(parent_slots: np.ndarray) -> tuple:
        """(parent_slot, positions) pairs; positions as slices when the
        siblings sit adjacent in the level (the usual case)."""
        groups = []
        for parent in np.unique(parent_slots):
            pos = np.flatnonzero(parent_slots == parent)
            if len(pos) == pos[-1] - pos[0] + 1:
                groups.append((int(parent), slice(int(pos[0]),
                                                  int(pos[-1]) + 1)))
            else:
                groups.append((int(parent), pos))
        return tuple(groups)

    def _build_groups(self, model, subspaces, starts, stops, links, lo):
        groups: list[LevelGroup] = []
        pos = 0
        while pos < len(links):
            k = model.joint(int(links[pos])).nv
            end = pos
            while end < len(links) and model.joint(int(links[end])).nv == k:
                end += 1
            members = links[pos:end]
            s_stack = np.stack([subspaces[int(i)] for i in members])
            dofs = np.stack([
                np.arange(starts[int(i)], stops[int(i)]) for i in members
            ])
            groups.append(LevelGroup(
                lo=lo + pos,
                hi=lo + end,
                k=k,
                links=members,
                subspaces=s_stack,
                subspaces_t=np.ascontiguousarray(
                    np.swapaxes(s_stack, -1, -2)
                ),
                axis=np.ascontiguousarray(s_stack[:, :, 0]),
                dofs=dofs,
                rows=dofs.reshape(-1),
                slots=np.arange(lo + pos, lo + end, dtype=np.intp),
                rel=np.arange(pos, end, dtype=np.intp),
            ))
            pos = end
        return tuple(groups)

    def _build_transform_groups(self, model, order):
        kinds: dict[str, list[int]] = {}
        for slot, link in enumerate(order):
            joint = model.joint(link)
            if type(joint) is RevoluteJoint:
                kind = "revolute"
            elif type(joint) is PrismaticJoint:
                kind = "prismatic"
            else:
                kind = "generic"
            kinds.setdefault(kind, []).append(slot)
        groups = []
        for kind, slots in kinds.items():
            slots = np.asarray(slots, dtype=np.intp)
            links = self.link_of_slot[slots]
            joints: tuple = ()
            qslices: tuple = ()
            if kind == "generic":
                axes = np.zeros((len(slots), 3))
                qcols = np.zeros(len(slots), dtype=np.intp)
                joints = tuple(model.joint(int(i)) for i in links)
                qslices = tuple(model.dof_slice(int(i)) for i in links)
            else:
                axes = np.stack(
                    [model.joint(int(i)).axis for i in links]
                )
                qcols = np.asarray(
                    [model.dof_slice(int(i)).start for i in links],
                    dtype=np.intp,
                )
            x_tree = np.stack([model.links[int(i)].x_tree for i in links])
            groups.append(TransformGroup(
                kind=kind, slots=slots, links=links,
                axes=axes, qcols=qcols, x_tree=x_tree,
                joints=joints, qslices=qslices,
            ))
        return tuple(groups)

    # ------------------------------------------------------------------
    # Workspace and staging
    # ------------------------------------------------------------------

    def workspace(self, n: int, *groups: str) -> PlanWorkspace:
        """This thread's workspace, sized for ``n`` tasks.

        Shard workers run batches concurrently on one shared engine, so
        the mutable recursion state is thread-local — the software mirror
        of each accelerator card owning its operand SRAM.
        """
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = PlanWorkspace(self.nb, self.nv, self.backend)
            self._tls.ws = ws
        return ws.ensure(n, "x", *groups)

    def _stage_transforms(self, ws: PlanWorkspace, n: int,
                          q: np.ndarray) -> None:
        """Refresh every ``^iX_lambda(q_i)`` stack: one fused op per joint
        kind (the Global Trigonometric Module feeding all branch arrays)."""
        from repro.spatial.so3 import exp_so3
        from repro.spatial.transforms import rot, xlt

        t0 = _obs.kernel_begin()
        X = ws.X[:n]
        for g in self.transform_groups:
            if g.kind == "revolute":
                e = exp_so3(g.axes * q[:, g.qcols][:, :, None])
                xj = rot(np.swapaxes(e, -1, -2))
                X[:, g.slots] = xj @ g.x_tree
            elif g.kind == "prismatic":
                xj = xlt(g.axes * q[:, g.qcols][:, :, None])
                X[:, g.slots] = xj @ g.x_tree
            else:
                for pos, slot in enumerate(g.slots):
                    X[:, slot] = (
                        g.joints[pos].batch_joint_transform(
                            q[:, g.qslices[pos]]
                        ) @ g.x_tree[pos]
                    )
        _obs.kernel_end(t0, self.robot_name, "transforms", n)

    def world_transforms_batch(self, q) -> "np.ndarray":
        """Batched world transforms ``^iX_0`` per link: ``(n, nb, 6, 6)``.

        The level-scheduled front half of forward kinematics: joint
        transforms refresh in one fused op per joint kind, then each
        level composes onto its parents' world transforms in one slab op.
        Output follows the model's *link* order (not slot order) so
        downstream consumers — the batched contact Jacobians — index it
        with plain link indices.
        """
        q = self._operand(q)
        n = q.shape[0]
        ws = self.workspace(n)
        self._stage_transforms(ws, n, q)
        xp = self._xp
        X = ws.X[:n]
        xw = xp.empty((n, self.nb, 6, 6))
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                xw[:, lo:hi] = X[:, lo:hi]
            else:
                xw[:, lo:hi] = X[:, lo:hi] @ xw[:, lvl.parent_slots]
        return xw[:, self.slot_of_link]

    def velocity_kinematics_batch(self, q, qd) -> tuple:
        """Batched spatial velocities and ``qdd = 0`` accelerations.

        Returns ``(v, a)``, each ``(n, nb, 6)`` in link order and link
        coordinates; ``a`` is the gravity-free velocity-product
        acceleration accumulated down the tree — exactly the kinematic
        state the analytic contact drift term ``Jdot qd`` needs.
        """
        q = self._operand(q)
        qd = self._operand(qd)
        n = q.shape[0]
        ws = self.workspace(n, "rnea")
        self._stage_transforms(ws, n, q)
        self._stage_rates(ws, n, qd, None)
        X, v, a, vj = ws.X[:n], ws.v[:n], ws.a[:n], ws.vj[:n]
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
                a[:, lo:hi] = cross_motion(v[:, lo:hi], vj[:, lo:hi])
            else:
                par = lvl.parent_slots
                v[:, lo:hi] = _mv(X[:, lo:hi], v[:, par]) + vj[:, lo:hi]
                a[:, lo:hi] = (
                    _mv(X[:, lo:hi], a[:, par])
                    + cross_motion(v[:, lo:hi], vj[:, lo:hi])
                )
        order = self.slot_of_link
        return v[:, order].copy(), a[:, order].copy()

    def _stage_rates(self, ws: PlanWorkspace, n: int, qd, qdd) -> None:
        self._ein("bsv,nv->nbs", self.sel_all, qd, out=ws.vj[:n])
        if qdd is None:
            ws.aj[:n] = 0.0
        else:
            self._ein("bsv,nv->nbs", self.sel_all, qdd, out=ws.aj[:n])

    def _scatter_to_parents(self, dest, lvl: PlanLevel, value) -> None:
        """Accumulate per-link ``value`` slabs into parent slots.

        Siblings at one level never alias (distinct parents when
        ``parents_unique``), so the fast path is a paired fancy ``+=``;
        otherwise each distinct parent receives the sum of its children's
        contributions (precompiled slice/index per parent).
        """
        if lvl.parents_unique:
            dest[:, lvl.parent_slots] += value
        else:
            for parent, pos in lvl.parent_groups:
                chunk = value[:, pos]
                if chunk.shape[1] == 1:
                    dest[:, parent] += chunk[:, 0]
                else:
                    dest[:, parent] += chunk.sum(axis=1)

    # ------------------------------------------------------------------
    # RNEA (Algorithm 1), level-scheduled
    # ------------------------------------------------------------------

    def _rnea(self, ws: PlanWorkspace, n: int, f_ext, *,
              apply_gravity: bool = True,
              reuse_velocities: bool = False) -> np.ndarray:
        """Forward + backward RNEA over the staged transforms and rates.

        Leaves the link-frame velocity/acceleration stacks and the
        *accumulated* force stack in the workspace (the derivative sweeps
        reuse them) and returns a view of the joint torques.  With
        ``reuse_velocities`` the velocity half of the forward sweep is
        skipped — dFD re-runs RNEA at the solved ``qdd`` with identical
        ``(q, qd)``, so ``v``/``xv`` are already in the workspace.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        plv = _obs.per_level
        robot = self.robot_name
        X, v, a = ws.X[:n], ws.v[:n], ws.a[:n]
        xv, xa = ws.xv[:n], ws.xa[:n]
        vj, aj, f = ws.vj[:n], ws.aj[:n], ws.f[:n]
        a0 = self.minus_gravity if apply_gravity else xp.zeros(6)

        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
                xa[:, lo:hi] = X[:, lo:hi] @ a0
                a[:, lo:hi] = xa[:, lo:hi] + aj[:, lo:hi]
            else:
                par = lvl.parent_slots
                if not reuse_velocities:
                    xv[:, lo:hi] = _mv(X[:, lo:hi], v[:, par])
                    v[:, lo:hi] = xv[:, lo:hi] + vj[:, lo:hi]
                xa[:, lo:hi] = _mv(X[:, lo:hi], a[:, par])
                a[:, lo:hi] = (xa[:, lo:hi] + aj[:, lo:hi]
                               + cross_motion(v[:, lo:hi], vj[:, lo:hi]))
            if plv:
                _obs.level_end(lt, robot, "rnea", lvl.index)

        iv = _mv(self.inertias, v)
        f[:] = _mv(self.inertias, a) + cross_force(v, iv)
        if f_ext:
            for link, stack in f_ext.items():
                if self._device:
                    stack = self.backend.asarray(stack)
                f[:, self.slot_of_link[link]] -= stack

        for lvl in reversed(self.levels):
            if lvl.is_root:
                continue
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            self._scatter_to_parents(f, lvl, _mv(xt, f[:, lo:hi]))
            if plv:
                _obs.level_end(lt, robot, "rnea", lvl.index)
        tau = self._ein("bsv,nbs->nv", self.sel_all, f, out=ws.tau[:n])
        _obs.kernel_end(t0, robot, "rnea", n)
        return tau

    # ------------------------------------------------------------------
    # ABA forward dynamics, level-scheduled
    # ------------------------------------------------------------------

    def _aba(self, ws: PlanWorkspace, n: int, tau: np.ndarray,
             f_ext) -> np.ndarray:
        """Articulated-body FD: three O(levels) sweeps, no column state.

        The seed validates ABA against the paper's ``Minv @ (tau - C)``
        substitution (``repro.dynamics.aba``); here it is the compiled
        FD kernel because it never touches an ``nv``-column tensor —
        the entire pass stays on ``(n, L, 6)`` slabs.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        plv = _obs.per_level
        robot = self.robot_name
        X, v, vj = ws.X[:n], ws.v[:n], ws.vj[:n]
        c, p, ap = ws.a[:n], ws.f[:n], ws.xa[:n]
        IA = ws.IA[:n]

        # Pass 1: velocities and bias terms.
        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v[:, lo:hi] = vj[:, lo:hi]
            else:
                v[:, lo:hi] = (
                    _mv(X[:, lo:hi], v[:, lvl.parent_slots]) + vj[:, lo:hi]
                )
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)
        c[:] = cross_motion(v, vj)
        p[:] = cross_force(v, _mv(self.inertias, v))
        if f_ext:
            for link, stack in f_ext.items():
                if self._device:
                    stack = self.backend.asarray(stack)
                p[:, self.slot_of_link[link]] -= stack
        IA[:] = self.inertias

        # Pass 2: articulated inertias and bias forces, backward.
        saved: dict[tuple[int, int], tuple] = {}
        for lvl in reversed(self.levels):
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    u = _mv(IA[:, sl], g.axis)               # (n, Lg, 6)
                    d_inv = 1.0 / xp.einsum(
                        "ls,nls->nl", g.axis, u, optimize=False
                    )
                    u_tau = tau[:, g.dofs[:, 0]] - xp.einsum(
                        "ls,nls->nl", g.axis, p[:, sl], optimize=False
                    )
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA[:, sl] -= (
                            d_inv[..., None, None]
                            * (u[..., :, None] * u[..., None, :])
                        )
                        p[:, sl] += (
                            _mv(IA[:, sl], c[:, sl])
                            + u * (d_inv * u_tau)[..., None]
                        )
                else:
                    u = IA[:, sl] @ g.subspaces              # (n, Lg, 6, k)
                    d_inv = self.backend.inv(g.subspaces_t @ u)
                    u_tau = (
                        tau[:, g.dofs]
                        - _mv(g.subspaces_t, p[:, sl])
                    )
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA[:, sl] -= (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                        p[:, sl] += (
                            _mv(IA[:, sl], c[:, sl])
                            + _mv(u, _mv(d_inv, u_tau))
                        )
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                self._scatter_to_parents(p, lvl, _mv(xt, p[:, lo:hi]))
                self._scatter_to_parents(IA, lvl, (xt @ IA[:, lo:hi]) @ xl)
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)

        # Pass 3: accelerations, forward.
        qdd = xp.empty((n, self.nv))
        a = ws.v[:n]     # velocities are dead past pass 2; reuse the slab
        for lvl in self.levels:
            if plv:
                lt = _obs.level_begin()
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                ap[:, lo:hi] = X[:, lo:hi] @ self.minus_gravity + c[:, lo:hi]
            else:
                ap[:, lo:hi] = (
                    _mv(X[:, lo:hi], a[:, lvl.parent_slots]) + c[:, lo:hi]
                )
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                u, d_inv, u_tau = saved[(lvl.index, gi)]
                if g.k == 1:
                    qdd_g = d_inv * (
                        u_tau - xp.einsum("nls,nls->nl", u, ap[:, sl],
                                          optimize=False)
                    )
                    qdd[:, g.dofs[:, 0]] = qdd_g
                    a[:, sl] = ap[:, sl] + g.axis * qdd_g[..., None]
                else:
                    qdd_g = _mv(
                        d_inv,
                        u_tau - _mv(xp.swapaxes(u, -1, -2), ap[:, sl]),
                    )
                    qdd[:, g.dofs.reshape(-1)] = qdd_g.reshape(n, -1)
                    a[:, sl] = ap[:, sl] + _mv(g.subspaces, qdd_g)
            if plv:
                _obs.level_end(lt, robot, "aba", lvl.index)
        _obs.kernel_end(t0, robot, "aba", n)
        return qdd

    # ------------------------------------------------------------------
    # MMinvGen (Algorithm 2), level-scheduled
    # ------------------------------------------------------------------

    def _mminvgen(self, ws: PlanWorkspace, n: int, *,
                  out_minv: bool) -> np.ndarray:
        """``M`` or ``Minv`` over the staged transforms.

        Column windows: every sweep of a level only touches DOF columns
        ``[col_start, nv)`` — the columns its links' subtrees own.  Dense
        level slabs may scribble below a row's own diagonal block, but
        those entries are structural zeros of the upper form and the final
        symmetrization reads the upper triangle only.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        X = ws.X[:n]
        IA, f_acc, out = ws.IA[:n], ws.f_acc[:n], ws.out[:n]
        IA[:] = self.inertias
        f_acc[:] = 0.0
        out[:] = 0.0
        saved: dict[tuple[int, int], tuple] = {}

        # Backward sweep (Mb submodules).
        for lvl in reversed(self.levels):
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = self.nv - w0
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    u = _mv(IA[:, sl], g.axis)               # (n, Lg, 6)
                    d = xp.einsum("ls,nls->nl", g.axis, u, optimize=False)
                    stf = self._ein(
                        "ls,nlsv->nlv", g.axis, f_acc[:, sl, :, w0:]
                    )
                    if out_minv:
                        d_inv = 1.0 / d
                        out[:, g.rows, w0:] = -(d_inv[..., None] * stf)
                        out[:, g.rows, g.rows] = d_inv
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, g.rows, w0:]             # (n, Lg, V)
                        f_acc[:, sl, :, w0:] += (
                            u[..., :, None] * og[:, :, None, :]
                        )
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                d_inv[..., None, None]
                                * (u[..., :, None] * u[..., None, :])
                            )
                    else:
                        out[:, g.rows, w0:] = stf
                        out[:, g.rows, g.rows] = d
                        f_acc[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                            u, 1, 0
                        )
                else:
                    u = IA[:, sl] @ g.subspaces              # (n, Lg, 6, k)
                    d = g.subspaces_t @ u
                    stf = g.subspaces_t @ f_acc[:, sl, :, w0:]
                    if out_minv:
                        d_inv = self.backend.inv(d)
                        out[:, g.rows, w0:] = (
                            -(d_inv @ stf)
                        ).reshape(n, len(g.rows), width)
                        self._write_diag(out, g, d_inv)
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = out[:, g.rows, w0:].reshape(
                            n, g.size, g.k, width
                        )
                        f_acc[:, sl, :, w0:] += u @ og
                        if not lvl.is_root:
                            IA[:, sl] -= (
                                (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                            )
                    else:
                        out[:, g.rows, w0:] = stf.reshape(
                            n, len(g.rows), width
                        )
                        self._write_diag(out, g, d)
                        for j in range(g.k):
                            f_acc[:, g.slots, :, g.dofs[:, j]] += (
                                xp.moveaxis(u[..., j], 1, 0)
                            )
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                self._scatter_to_parents(
                    f_acc[:, :, :, w0:], lvl, xt @ f_acc[:, lo:hi, :, w0:]
                )
                self._scatter_to_parents(
                    IA, lvl, (xt @ IA[:, lo:hi]) @ xl
                )

        if not out_minv:
            m = _symmetrize_from_rows(out, xp)
            _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
            return m

        # Forward sweep (Mf submodules).
        p_prop = ws.p_prop[:n]
        p_prop[:] = 0.0
        for lvl in self.levels:
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = self.nv - w0
            if not lvl.is_root:
                xpp = X[:, lo:hi] @ p_prop[:, lvl.parent_slots, :, w0:]
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        xpp_g = xpp[:, g.rel]
                        out[:, g.rows, w0:] -= d_inv[..., None] * xp.einsum(
                            "nls,nlsv->nlv", u, xpp_g, optimize=False
                        )
                    og = out[:, g.rows, w0:]
                    t = g.axis[:, :, None] * og[:, :, None, :]
                else:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        xpp_g = xpp[:, g.rel]
                        corr = d_inv @ (xp.swapaxes(u, -1, -2) @ xpp_g)
                        out[:, g.rows, w0:] -= corr.reshape(
                            n, len(g.rows), width
                        )
                    og = out[:, g.rows, w0:].reshape(n, g.size, g.k, width)
                    t = g.subspaces @ og
                if lvl.is_root:
                    p_prop[:, sl, :, w0:] = t
                else:
                    p_prop[:, sl, :, w0:] = t + xpp[:, g.rel]
        minv = _symmetrize_from_rows(out, xp)
        _obs.kernel_end(t0, self.robot_name, "mminvgen", n)
        return minv

    @staticmethod
    def _write_diag(out: np.ndarray, g: LevelGroup, d: np.ndarray) -> None:
        """Write each link's (k, k) diagonal block of ``out``."""
        for j in range(g.size):
            out[:, g.dofs[j][:, None], g.dofs[j][None, :]] = d[:, j]

    # ------------------------------------------------------------------
    # dRNEA (analytical dID), level-scheduled with paired d/dq, d/dqd
    # ------------------------------------------------------------------

    def _rnea_derivatives(self, ws: PlanWorkspace,
                          n: int) -> tuple[np.ndarray, np.ndarray]:
        """Derivative sweeps over the state left behind by :meth:`_rnea`.

        Requires a full RNEA pass (with the real ``qdd``) in the
        workspace: ``v``/``xv``/``xa`` from the forward sweep and the
        accumulated forces ``f`` from the backward sweep (the paper's btr
        operand).  ``DVA`` carries all four transfer stacks side by side
        (``[dv/dq | dv/dqd | da/dq | da/dqd]``), so parent propagation is
        one gather and one wide contraction per level; ``DF`` carries the
        ``[df/dq | df/dqd]`` pair the same way.
        """
        xp = self._xp
        t0 = _obs.kernel_begin()
        nv = self.nv
        nv2 = 2 * nv
        X = ws.X[:n]
        v, xv, xa, vj, f = (
            ws.v[:n], ws.xv[:n], ws.xa[:n], ws.vj[:n], ws.f[:n]
        )
        D, DF = ws.DVA[:n], ws.DF[:n]
        # Whole-robot operator stacks, hoisted out of the level loop.
        gyro = crf_bar(_mv(self.inertias, v)) + crf(v) @ self.inertias
        cvj = crm(vj)

        # Forward sweep (Df submodules).
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            slab = D[:, lo:hi]
            if lvl.is_root:
                slab[:] = 0.0
            else:
                xp.matmul(X[:, lo:hi], D[:, lvl.parent_slots], out=slab)
            for g in lvl.groups:
                if g.k == 1:
                    # One-hot joint terms: a cross product added at the
                    # joint's own column in each stack.
                    if not lvl.is_root:
                        D[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                            cross_motion(xv[:, g.lo:g.hi], g.axis), 1, 0
                        )
                    D[:, g.slots, :, nv + g.dofs[:, 0]] += g.axis[:, None]
                    D[:, g.slots, :, nv2 + g.dofs[:, 0]] += xp.moveaxis(
                        cross_motion(xa[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    sel = lvl.sel[g.rel]
                    gsl = D[:, g.lo:g.hi]
                    if not lvl.is_root:
                        gsl[..., :nv] += crm(xv[:, g.lo:g.hi]) @ sel
                    gsl[..., nv:nv2] += sel
                    gsl[..., nv2:3 * nv] += crm(xa[:, g.lo:g.hi]) @ sel
            # a_i includes v_i x vj: differentiate both factors (one
            # operator covers the dq and dqd halves at once).
            slab[..., nv2:] -= cvj[:, lo:hi] @ slab[..., :nv2]
            for g in lvl.groups:
                if g.k == 1:
                    D[:, g.slots, :, 3 * nv + g.dofs[:, 0]] += xp.moveaxis(
                        cross_motion(v[:, g.lo:g.hi], g.axis), 1, 0
                    )
                else:
                    D[:, g.lo:g.hi, :, 3 * nv:] += (
                        crm(v[:, g.lo:g.hi]) @ lvl.sel[g.rel]
                    )
            DF[:, lo:hi] = (
                self.inertias[lo:hi] @ slab[..., nv2:]
                + gyro[:, lo:hi] @ slab[..., :nv2]
            )

        # Backward sweep (Db submodules), fused with row extraction: when
        # a level is reached its DF slab is fully accumulated, so its
        # dtau rows are read off first and the btr term is then added in
        # place before propagating to the parents.
        dtau_q, dtau_qd = ws.dtau_q[:n], ws.dtau_qd[:n]
        for lvl in reversed(self.levels):
            lo, hi = lvl.lo, lvl.hi
            for g in lvl.groups:
                if g.k == 1:
                    r = self._ein(
                        "ls,nlsv->nlv", g.axis, DF[:, g.lo:g.hi]
                    )
                    dtau_q[:, g.rows] = r[..., :nv]
                    dtau_qd[:, g.rows] = r[..., nv:]
                else:
                    r = (g.subspaces_t @ DF[:, g.lo:g.hi]).reshape(
                        n, len(g.rows), nv2
                    )
                    dtau_q[:, g.rows] = r[..., :nv]
                    dtau_qd[:, g.rows] = r[..., nv:]
            if lvl.is_root:
                continue
            for g in lvl.groups:
                # d(X^T f)/dq_i adds X^T (S_k x* f_i) at the joint's own
                # column, with f_i the accumulated force (the btr term).
                if g.k == 1:
                    DF[:, g.slots, :, g.dofs[:, 0]] += xp.moveaxis(
                        cross_force(g.axis, f[:, g.lo:g.hi]), 1, 0
                    )
                else:
                    DF[:, g.lo:g.hi, :, :nv] += self._ein(
                        "lvij,nlj->nliv", lvl.btr[g.rel], f[:, g.lo:g.hi]
                    )
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            self._scatter_to_parents(DF, lvl, xt @ DF[:, lo:hi])
        _obs.kernel_end(t0, self.robot_name, "rnea_derivatives", n)
        return dtau_q, dtau_qd

    # ------------------------------------------------------------------
    # Table-I functions
    # ------------------------------------------------------------------

    def _operand(self, a):
        """Stage one task-major operand on the plan's backend."""
        xp = self._xp
        return xp.atleast_2d(xp.asarray(a, dtype=float))

    def _prep(self, q, qd=None, qdd=None, *groups):
        q = self._operand(q)
        n = q.shape[0]
        ws = self.workspace(n, *groups)
        self._stage_transforms(ws, n, q)
        if qd is not None:
            self._stage_rates(ws, n, self._operand(qd),
                              None if qdd is None else self._operand(qdd))
        return ws, n

    def id_batch(self, q, qd, qdd, f_ext=None):
        ws, n = self._prep(q, qd, qdd, "rnea")
        return self._rnea(ws, n, f_ext).copy()

    def m_batch(self, q):
        ws, n = self._prep(q, None, None, "mminv", "ia")
        return self._mminvgen(ws, n, out_minv=False)

    def minv_batch(self, q):
        ws, n = self._prep(q, None, None, "mminv", "ia")
        return self._mminvgen(ws, n, out_minv=True)

    def fd_batch(self, q, qd, tau, f_ext=None):
        ws, n = self._prep(q, qd, None, "rnea", "ia")
        return self._aba(ws, n, self._operand(tau), f_ext)

    def did_batch(self, q, qd, qdd, f_ext=None):
        ws, n = self._prep(q, qd, qdd, "rnea", "deriv")
        self._rnea(ws, n, f_ext)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return dtau_q.copy(), dtau_qd.copy()

    def dfd_batch(self, q, qd, tau, f_ext=None):
        xp = self._xp
        ws, n = self._prep(q, qd, None, "rnea", "mminv", "ia", "deriv")
        bias = self._rnea(ws, n, f_ext)
        minv = self._mminvgen(ws, n, out_minv=True)
        tau = self._operand(tau)
        qdd = _mv(minv, tau - bias)
        self._ein("bsv,nv->nbs", self.sel_all, qdd, out=ws.aj[:n])
        self._rnea(ws, n, f_ext, reuse_velocities=True)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return (
            qdd,
            -xp.matmul(minv, dtau_q),
            -xp.matmul(minv, dtau_qd),
            minv,
        )

    def difd_batch(self, q, qd, qdd, minv=None, f_ext=None):
        xp = self._xp
        qdd = self._operand(qdd)
        ws, n = self._prep(q, qd, qdd, "rnea", "mminv", "ia", "deriv")
        if minv is None:
            minv = self._mminvgen(ws, n, out_minv=True)
        else:
            minv = xp.asarray(minv, dtype=float)
        self._rnea(ws, n, f_ext)
        dtau_q, dtau_qd = self._rnea_derivatives(ws, n)
        return (
            qdd,
            -xp.matmul(minv, dtau_q),
            -xp.matmul(minv, dtau_qd),
            minv,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Shape summary for benchmarks and the serve cache."""
        return {
            "robot": self.robot_name,
            "backend": self.backend.name,
            "links": self.nb,
            "dofs": self.nv,
            "branches": self.n_branches,
            "levels": len(self.levels),
            "level_widths": [lvl.size for lvl in self.levels],
            "max_level_width": max(lvl.size for lvl in self.levels),
        }

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan({self.robot_name!r}, "
            f"backend={self.backend.name!r}, links={self.nb}, "
            f"levels={len(self.levels)}, "
            f"widths={[lvl.size for lvl in self.levels]})"
        )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

#: model -> {backend name: plan}.  Weak over models so transient models
#: can be collected together with every backend variant of their plan.
_PLAN_CACHE: "weakref.WeakKeyDictionary[RobotModel, dict[str, ExecutionPlan]]" = (
    weakref.WeakKeyDictionary()
)
_PLAN_LOCK = threading.Lock()


def plan_for(model: RobotModel,
             backend: str | ArrayBackend | None = None) -> ExecutionPlan:
    """The memoized :class:`ExecutionPlan` for ``model`` on ``backend``.

    Plans are cached per (model instance, backend name) — weakly over
    models, so transient models can be collected;
    :func:`repro.model.library.load_robot` returns shared instances, so
    serve traffic for one robot compiles exactly one plan per backend —
    the software analogue of programming one bitstream per robot and
    cloning it per device type.
    """
    bk = get_backend(backend)
    plans = _PLAN_CACHE.get(model)
    if plans is not None:
        plan = plans.get(bk.name)
        if plan is not None:
            return plan
    with _PLAN_LOCK:
        plans = _PLAN_CACHE.get(model)
        if plans is None:
            plans = {}
            _PLAN_CACHE[model] = plans
        plan = plans.get(bk.name)
        if plan is None:
            plan = ExecutionPlan(model, bk)
            plans[bk.name] = plan
    return plan


__all__ = [
    "ExecutionPlan",
    "LevelGroup",
    "PlanLevel",
    "PlanWorkspace",
    "TransformGroup",
    "cached_einsum",
    "plan_for",
]
