"""Functional (out-of-place) variants of the execution-plan kernels.

The compiled :class:`~repro.dynamics.plan.ExecutionPlan` kernels mutate
preallocated workspaces, which is exactly what trace-compiling runtimes
with immutable arrays (JAX) cannot execute — the single reason the jax
backend is declined by the ``compiled`` engine.  This module re-derives
the same level-scheduled sweeps as *pure functions*:

* forward sweeps build each level's slab from the previous level (a
  gather by relative parent position) and concatenate — levels are
  contiguous slot runs, so no scatter is needed going down the tree;
* backward sweeps accumulate into parents through the backend's
  out-of-place :meth:`~repro.backend.ArrayBackend.at_add` scatter
  (duplicate parent slots sum, mirroring ``_scatter_to_parents``);
* DOF-row outputs are assembled in slot order (the order the levels
  produce them) and unpermuted once at the end with a precompiled
  position gather.

A :class:`FunctionalPlan` borrows its *structure* — levels, groups,
selector stacks, inertias, transform groups — from the host numpy
:class:`ExecutionPlan` (structure compilation stays a host-side, one-time
pass, exactly like the paper's offline bitstream build) and executes on
any backend: with numpy the kernels run interpreted (the correctness
reference CI exercises everywhere), with jax each Table-I function
traces into one fused XLA program via :meth:`ArrayBackend.jit`.

Numerically the sweeps mirror the dense plan kernels step for step
(same windows ``[col_start, nv)``, same group branches, same
symmetrization), so equivalence against the ``loop`` engine holds at
the suite's 1e-10 tolerance on every library robot.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.backend import (
    ArrayBackend,
    BackendCapabilityError,
    get_backend,
)
from repro.dynamics.mminv import _symmetrize_from_rows
from repro.dynamics.plan import plan_for
from repro.model.joints import FloatingJoint
from repro.model.robot import RobotModel

_EPS = 1e-12


# ---------------------------------------------------------------------------
# Pure spatial helpers
#
# The operators in ``repro.spatial`` build their outputs with in-place
# writes into ``xp.zeros`` (and dispatch jax operands to the host), so
# traceable equivalents are assembled here from stack/concatenate only.
# ---------------------------------------------------------------------------


def _mv(x, v):
    """Batched matrix @ vector over arbitrary leading axes."""
    return (x @ v[..., None])[..., 0]


def fskew(xp, v):
    """``(..., 3) -> (..., 3, 3)`` skew operator, pure."""
    x, y, z = v[..., 0], v[..., 1], v[..., 2]
    o = xp.zeros_like(x)
    return xp.stack([
        xp.stack([o, -z, y], axis=-1),
        xp.stack([z, o, -x], axis=-1),
        xp.stack([-y, x, o], axis=-1),
    ], axis=-2)


def fexp_so3(xp, w):
    """Batched Rodrigues formula, matching ``spatial.so3.exp_so3``."""
    theta = xp.sqrt(xp.sum(w * w, axis=-1))
    small = theta < _EPS
    safe = xp.where(small, 1.0, theta)
    a = xp.where(small, 1.0, xp.sin(safe) / safe)
    b = xp.where(small, 0.5, (1.0 - xp.cos(safe)) / (safe * safe))
    k = fskew(xp, w)
    return (xp.eye(3) + a[..., None, None] * k
            + b[..., None, None] * (k @ k))


def frot(xp, e):
    """Block-diagonal spatial rotation ``[[E, 0], [0, E]]``."""
    z = xp.zeros_like(e)
    return xp.concatenate([
        xp.concatenate([e, z], axis=-1),
        xp.concatenate([z, e], axis=-1),
    ], axis=-2)


def fspatial_transform(xp, e, r):
    """Spatial transform ``[[E, 0], [-E skew(r), E]]``."""
    z = xp.zeros_like(e)
    return xp.concatenate([
        xp.concatenate([e, z], axis=-1),
        xp.concatenate([-(e @ fskew(xp, r)), e], axis=-1),
    ], axis=-2)


def fxlt(xp, r):
    """Pure translation transform ``[[1, 0], [-skew(r), 1]]``."""
    eye = xp.zeros(r.shape[:-1] + (3, 3)) + xp.eye(3)
    return fspatial_transform(xp, eye, r)


def fcrm(xp, v):
    """Motion cross operator ``[[skew(w), 0], [skew(v), skew(w)]]``."""
    sw = fskew(xp, v[..., :3])
    sv = fskew(xp, v[..., 3:])
    z = xp.zeros_like(sw)
    return xp.concatenate([
        xp.concatenate([sw, z], axis=-1),
        xp.concatenate([sv, sw], axis=-1),
    ], axis=-2)


def fcrf(xp, v):
    """Force cross operator ``crf(v) = -crm(v).T``."""
    return -xp.swapaxes(fcrm(xp, v), -1, -2)


def fcrf_bar(xp, f):
    """Argument-swapped force cross: ``fcrf_bar(f) @ a == a x* f``."""
    sn = fskew(xp, f[..., :3])
    sg = fskew(xp, f[..., 3:])
    z = xp.zeros_like(sn)
    return xp.concatenate([
        xp.concatenate([-sn, -sg], axis=-1),
        xp.concatenate([-sg, z], axis=-1),
    ], axis=-2)


def fcross_motion(xp, a, b):
    """``a x b`` for motion vectors, pure."""
    w, v = a[..., :3], a[..., 3:]
    top = xp.cross(w, b[..., :3])
    bottom = xp.cross(v, b[..., :3]) + xp.cross(w, b[..., 3:])
    return xp.concatenate([top, bottom], axis=-1)


def fcross_force(xp, a, f):
    """``a x* f`` for a motion vector on a force vector, pure."""
    w, v = a[..., :3], a[..., 3:]
    top = xp.cross(w, f[..., :3]) + xp.cross(v, f[..., 3:])
    bottom = xp.cross(w, f[..., 3:])
    return xp.concatenate([top, bottom], axis=-1)


# ---------------------------------------------------------------------------
# The functional plan
# ---------------------------------------------------------------------------


class FunctionalPlan:
    """One robot's level schedule as pure functions on one backend.

    Structure (levels, groups, constants) is borrowed from the memoized
    host :class:`ExecutionPlan`; the constant stacks stay host numpy and
    become trace constants when a kernel is jitted.  All kernel methods
    take backend-native task-major operands and return backend-native
    results — the :class:`~repro.dynamics.jit.JitEngine` owns the host
    boundary and the compiled-callable cache.
    """

    def __init__(self, model: RobotModel,
                 backend: str | ArrayBackend | None = None) -> None:
        self.backend = get_backend(backend)
        self.xp = self.backend.xp
        self.ein = self.backend.einsum
        sp = plan_for(model, "numpy")
        self.sp = sp
        self.nb, self.nv = sp.nb, sp.nv
        self.robot_name = sp.robot_name
        self.inertias = sp.inertias
        self.sel_all = sp.sel_all
        self.minus_gravity = sp.minus_gravity
        self.levels = sp.levels
        self.transform_groups = sp.transform_groups
        self.slot_of_link = sp.slot_of_link
        for tg in self.transform_groups:
            if tg.kind == "generic":
                bad = [type(j).__name__ for j in tg.joints
                       if not isinstance(j, FloatingJoint)]
                if bad:
                    raise BackendCapabilityError(
                        "the functional kernels support revolute, "
                        "prismatic and floating joints; "
                        f"{sp.robot_name!r} has {sorted(set(bad))}"
                    )
        # Per-level parent positions relative to the previous level (the
        # forward-sweep gather; parents of level d live exactly in level
        # d-1 because levels are depth wavefronts).
        self.prel: list = [None]
        for lvl in self.levels[1:]:
            prev = self.levels[lvl.index - 1]
            self.prel.append(
                np.asarray(lvl.parent_slots - prev.lo, dtype=np.intp)
            )
        # Slot-major DOF order: outputs are assembled level by level,
        # group by group, then unpermuted with one position gather.
        perm = np.concatenate([
            g.dofs.reshape(-1) for lvl in self.levels for g in lvl.groups
        ]).astype(np.intp)
        pos = np.empty(self.nv, dtype=np.intp)
        pos[perm] = np.arange(self.nv)
        self.dof_perm, self.dof_pos = perm, pos
        #: Trace-cache key: two models with identical compiled structure
        #: *and* constants share compiled callables.
        self.key = (sp.structure_hash(), self.backend.name)

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------

    def transforms(self, q):
        """All joint transforms ``^iX_lambda(q)`` as one ``(n, nb, 6, 6)``
        stack, built group-by-group and scattered once per joint kind."""
        xp, b = self.xp, self.backend
        n = q.shape[0]
        X = xp.zeros((n, self.nb, 6, 6))
        for g in self.transform_groups:
            if g.kind == "revolute":
                e = fexp_so3(xp, g.axes * q[:, g.qcols][:, :, None])
                xj = frot(xp, xp.swapaxes(e, -1, -2))
                X = b.at_set(X, (slice(None), g.slots), xj @ g.x_tree)
            elif g.kind == "prismatic":
                xj = fxlt(xp, g.axes * q[:, g.qcols][:, :, None])
                X = b.at_set(X, (slice(None), g.slots), xj @ g.x_tree)
            else:
                for pos, slot in enumerate(g.slots):
                    qj = q[:, g.qslices[pos]]
                    e = xp.swapaxes(fexp_so3(xp, qj[:, :3]), -1, -2)
                    xj = fspatial_transform(xp, e, qj[:, 3:])
                    X = b.at_set(X, (slice(None), int(slot)),
                                 xj @ g.x_tree[pos])
        return X

    def rates(self, qd):
        """Joint-space rates projected to spatial: ``(n, nb, 6)``."""
        return self.ein("bsv,nv->nbs", self.sel_all, qd)

    # ------------------------------------------------------------------
    # RNEA
    # ------------------------------------------------------------------

    def _rnea_core(self, X, vj, aj, fx):
        """Forward + backward RNEA; returns ``(tau, state)`` where state
        carries the intermediates the derivative sweeps reuse."""
        xp, b = self.xp, self.backend
        v_sl, xv_sl, xa_sl, a_sl = [], [], [], []
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            X_l, vj_l, aj_l = X[:, lo:hi], vj[:, lo:hi], aj[:, lo:hi]
            if lvl.is_root:
                v_l = vj_l
                xv_l = xp.zeros_like(vj_l)
                xa_l = X_l @ self.minus_gravity
                a_l = xa_l + aj_l
            else:
                prel = self.prel[lvl.index]
                xv_l = _mv(X_l, v_sl[-1][:, prel])
                v_l = xv_l + vj_l
                xa_l = _mv(X_l, a_sl[-1][:, prel])
                a_l = xa_l + aj_l + fcross_motion(xp, v_l, vj_l)
            v_sl.append(v_l)
            xv_sl.append(xv_l)
            xa_sl.append(xa_l)
            a_sl.append(a_l)
        v = xp.concatenate(v_sl, axis=1)
        xv = xp.concatenate(xv_sl, axis=1)
        xa = xp.concatenate(xa_sl, axis=1)
        a = xp.concatenate(a_sl, axis=1)
        iv = _mv(self.inertias, v)
        f = _mv(self.inertias, a) + fcross_force(xp, v, iv)
        if fx is not None:
            f = f - fx
        for lvl in reversed(self.levels):
            if lvl.is_root:
                continue
            lo, hi = lvl.lo, lvl.hi
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            f = b.at_add(f, (slice(None), lvl.parent_slots),
                         _mv(xt, f[:, lo:hi]))
        tau = self.ein("bsv,nbs->nv", self.sel_all, f)
        return tau, dict(v=v, xv=xv, xa=xa, f=f, vj=vj)

    def id_(self, q, qd, qdd, fx=None):
        X = self.transforms(q)
        tau, _ = self._rnea_core(X, self.rates(qd), self.rates(qdd), fx)
        return tau

    # ------------------------------------------------------------------
    # ABA forward dynamics
    # ------------------------------------------------------------------

    def fd(self, q, qd, tau, fx=None):
        xp, b = self.xp, self.backend
        n = q.shape[0]
        X = self.transforms(q)
        vj = self.rates(qd)

        # Pass 1: velocities.
        v_sl = []
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                v_sl.append(vj[:, lo:hi])
            else:
                prel = self.prel[lvl.index]
                v_sl.append(_mv(X[:, lo:hi], v_sl[-1][:, prel])
                            + vj[:, lo:hi])
        v = xp.concatenate(v_sl, axis=1)
        c = fcross_motion(xp, v, vj)
        p = fcross_force(xp, v, _mv(self.inertias, v))
        if fx is not None:
            p = p - fx
        IA = xp.zeros((n, self.nb, 6, 6)) + self.inertias

        # Pass 2: articulated inertias and bias forces, backward.
        saved: dict = {}
        for lvl in reversed(self.levels):
            lo, hi = lvl.lo, lvl.hi
            ia_parts, p_parts = [], []
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                IA_g, p_g, c_g = IA[:, sl], p[:, sl], c[:, sl]
                if g.k == 1:
                    u = _mv(IA_g, g.axis)
                    d_inv = 1.0 / xp.einsum("ls,nls->nl", g.axis, u)
                    u_tau = tau[:, g.dofs[:, 0]] - xp.einsum(
                        "ls,nls->nl", g.axis, p_g
                    )
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA_n = IA_g - (
                            d_inv[..., None, None]
                            * (u[..., :, None] * u[..., None, :])
                        )
                        ia_parts.append(IA_n)
                        p_parts.append(p_g + _mv(IA_n, c_g)
                                       + u * (d_inv * u_tau)[..., None])
                else:
                    u = IA_g @ g.subspaces
                    d_inv = xp.linalg.inv(g.subspaces_t @ u)
                    u_tau = tau[:, g.dofs] - _mv(g.subspaces_t, p_g)
                    saved[(lvl.index, gi)] = (u, d_inv, u_tau)
                    if not lvl.is_root:
                        IA_n = IA_g - (u @ d_inv) @ xp.swapaxes(u, -1, -2)
                        ia_parts.append(IA_n)
                        p_parts.append(p_g + _mv(IA_n, c_g)
                                       + _mv(u, _mv(d_inv, u_tau)))
            if not lvl.is_root:
                IA_lvl = xp.concatenate(ia_parts, axis=1)
                p_lvl = xp.concatenate(p_parts, axis=1)
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                IA = b.at_add(IA, (slice(None), lvl.parent_slots),
                              (xt @ IA_lvl) @ xl)
                p = b.at_add(p, (slice(None), lvl.parent_slots),
                             _mv(xt, p_lvl))

        # Pass 3: accelerations, forward.
        a_prev = None
        qdd_parts = []
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                ap_l = X[:, lo:hi] @ self.minus_gravity + c[:, lo:hi]
            else:
                prel = self.prel[lvl.index]
                ap_l = _mv(X[:, lo:hi], a_prev[:, prel]) + c[:, lo:hi]
            a_parts = []
            for gi, g in enumerate(lvl.groups):
                u, d_inv, u_tau = saved[(lvl.index, gi)]
                ap_g = ap_l[:, g.lo - lo:g.hi - lo]
                if g.k == 1:
                    qdd_g = d_inv * (
                        u_tau - xp.einsum("nls,nls->nl", u, ap_g)
                    )
                    qdd_parts.append(qdd_g)
                    a_parts.append(ap_g + g.axis * qdd_g[..., None])
                else:
                    qdd_g = _mv(
                        d_inv,
                        u_tau - _mv(xp.swapaxes(u, -1, -2), ap_g),
                    )
                    qdd_parts.append(qdd_g.reshape(n, -1))
                    a_parts.append(ap_g + _mv(g.subspaces, qdd_g))
            a_prev = xp.concatenate(a_parts, axis=1)
        qdd_perm = xp.concatenate(qdd_parts, axis=1)
        return qdd_perm[:, self.dof_pos]

    # ------------------------------------------------------------------
    # MMinvGen
    # ------------------------------------------------------------------

    def _mminv(self, X, *, out_minv):
        """Dense-window MMinvGen backward sweep (+ forward for Minv)."""
        xp, b = self.xp, self.backend
        n = X.shape[0]
        nv = self.nv
        IA = xp.zeros((n, self.nb, 6, 6)) + self.inertias
        f_acc = xp.zeros((n, self.nb, 6, nv))
        row_blocks: dict = {}
        saved: dict = {}

        for lvl in reversed(self.levels):
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = nv - w0
            blocks = []
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                IA_g = IA[:, sl]
                if g.k == 1:
                    u = _mv(IA_g, g.axis)
                    d = xp.einsum("ls,nls->nl", g.axis, u)
                    stf = self.ein("ls,nlsv->nlv", g.axis,
                                   f_acc[:, sl, :, w0:])
                    diag_idx = (slice(None), np.arange(g.size),
                                g.dofs[:, 0] - w0)
                    if out_minv:
                        d_inv = 1.0 / d
                        block = -(d_inv[..., None] * stf)
                        block = b.at_set(block, diag_idx, d_inv)
                        saved[(lvl.index, gi)] = (u, d_inv)
                        f_acc = b.at_add(
                            f_acc,
                            (slice(None), sl, slice(None),
                             slice(w0, None)),
                            u[..., :, None] * block[:, :, None, :],
                        )
                        if not lvl.is_root:
                            IA = b.at_set(
                                IA, (slice(None), sl),
                                IA_g - (d_inv[..., None, None]
                                        * (u[..., :, None]
                                           * u[..., None, :])),
                            )
                    else:
                        block = b.at_set(stf, diag_idx, d)
                        f_acc = b.at_add(
                            f_acc,
                            (slice(None), g.slots, slice(None),
                             g.dofs[:, 0]),
                            xp.moveaxis(u, 1, 0),
                        )
                else:
                    u = IA_g @ g.subspaces
                    d = g.subspaces_t @ u
                    stf = g.subspaces_t @ f_acc[:, sl, :, w0:]
                    if out_minv:
                        d_inv = xp.linalg.inv(d)
                        block = (-(d_inv @ stf)).reshape(
                            n, g.size * g.k, width
                        )
                        block = self._set_diag_blocks(block, g, w0, d_inv)
                        saved[(lvl.index, gi)] = (u, d_inv)
                        og = block.reshape(n, g.size, g.k, width)
                        f_acc = b.at_add(
                            f_acc,
                            (slice(None), sl, slice(None),
                             slice(w0, None)),
                            u @ og,
                        )
                        if not lvl.is_root:
                            IA = b.at_set(
                                IA, (slice(None), sl),
                                IA_g - (u @ d_inv)
                                @ xp.swapaxes(u, -1, -2),
                            )
                    else:
                        block = stf.reshape(n, g.size * g.k, width)
                        block = self._set_diag_blocks(block, g, w0, d)
                        for j in range(g.k):
                            f_acc = b.at_add(
                                f_acc,
                                (slice(None), g.slots, slice(None),
                                 g.dofs[:, j]),
                                xp.moveaxis(u[..., j], 1, 0),
                            )
                blocks.append(block)
            lvl_block = xp.concatenate(blocks, axis=1)
            if w0:
                pad = xp.zeros(lvl_block.shape[:-1] + (w0,))
                lvl_block = xp.concatenate([pad, lvl_block], axis=-1)
            row_blocks[lvl.index] = lvl_block
            if not lvl.is_root:
                xl = X[:, lo:hi]
                xt = xp.swapaxes(xl, -1, -2)
                f_acc = b.at_add(
                    f_acc,
                    (slice(None), lvl.parent_slots, slice(None),
                     slice(w0, None)),
                    xt @ f_acc[:, lo:hi, :, w0:],
                )
                IA = b.at_add(IA, (slice(None), lvl.parent_slots),
                              (xt @ IA[:, lo:hi]) @ xl)

        out_perm = xp.concatenate(
            [row_blocks[i] for i in range(len(self.levels))], axis=1
        )
        out = out_perm[:, self.dof_pos]
        if not out_minv:
            return _symmetrize_from_rows(out, xp)
        return self._minv_forward(X, out, saved)

    def _set_diag_blocks(self, block, g, w0, d):
        """Write each link's (k, k) diagonal block into a level row
        block (multi-DOF groups; own DOF columns are contiguous)."""
        b = self.backend
        for j in range(g.size):
            c0 = int(g.dofs[j, 0]) - w0
            block = b.at_set(
                block,
                (slice(None), slice(j * g.k, (j + 1) * g.k),
                 slice(c0, c0 + g.k)),
                d[:, j],
            )
        return block

    def _minv_forward(self, X, out, saved):
        """Forward MMinvGen sweep over the assembled (global-row) out."""
        xp, b = self.xp, self.backend
        n = X.shape[0]
        nv = self.nv
        p_prop = xp.zeros((n, self.nb, 6, nv))
        for lvl in self.levels:
            lo, hi, w0 = lvl.lo, lvl.hi, lvl.col_start
            width = nv - w0
            if not lvl.is_root:
                xpp = X[:, lo:hi] @ p_prop[:, lvl.parent_slots, :, w0:]
            for gi, g in enumerate(lvl.groups):
                sl = slice(g.lo, g.hi)
                if g.k == 1:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        corr = d_inv[..., None] * xp.einsum(
                            "nls,nlsv->nlv", u, xpp[:, g.rel]
                        )
                        out = b.at_add(
                            out,
                            (slice(None), g.rows, slice(w0, None)),
                            -corr,
                        )
                    og = out[:, g.rows, w0:]
                    t = g.axis[:, :, None] * og[:, :, None, :]
                else:
                    if not lvl.is_root:
                        u, d_inv = saved[(lvl.index, gi)]
                        corr = d_inv @ (xp.swapaxes(u, -1, -2)
                                        @ xpp[:, g.rel])
                        out = b.at_add(
                            out,
                            (slice(None), g.rows, slice(w0, None)),
                            -corr.reshape(n, len(g.rows), width),
                        )
                    og = out[:, g.rows, w0:].reshape(
                        n, g.size, g.k, width
                    )
                    t = g.subspaces @ og
                if not lvl.is_root:
                    t = t + xpp[:, g.rel]
                p_prop = b.at_set(
                    p_prop,
                    (slice(None), sl, slice(None), slice(w0, None)),
                    t,
                )
        return _symmetrize_from_rows(out, xp)

    def m(self, q):
        return self._mminv(self.transforms(q), out_minv=False)

    def minv(self, q):
        return self._mminv(self.transforms(q), out_minv=True)

    # ------------------------------------------------------------------
    # dRNEA derivative sweeps
    # ------------------------------------------------------------------

    def _derivatives(self, X, state):
        """Paired d/dq, d/dqd sweeps over a completed RNEA state."""
        xp, b = self.xp, self.backend
        v, xv, xa, f, vj = (state["v"], state["xv"], state["xa"],
                            state["f"], state["vj"])
        n = v.shape[0]
        nv = self.nv
        nv2 = 2 * nv
        gyro = (fcrf_bar(xp, _mv(self.inertias, v))
                + fcrf(xp, v) @ self.inertias)
        cvj = fcrm(xp, vj)

        # Forward sweep: per-level [dv/dq | dv/dqd | da/dq | da/dqd].
        df_sl = []
        prev = None
        for lvl in self.levels:
            lo, hi = lvl.lo, lvl.hi
            if lvl.is_root:
                slab = xp.zeros((n, hi - lo, 6, 4 * nv))
            else:
                slab = xp.matmul(X[:, lo:hi],
                                 prev[:, self.prel[lvl.index]])
            for g in lvl.groups:
                if g.k == 1:
                    if not lvl.is_root:
                        slab = b.at_add(
                            slab,
                            (slice(None), g.rel, slice(None),
                             g.dofs[:, 0]),
                            xp.moveaxis(fcross_motion(
                                xp, xv[:, g.lo:g.hi], g.axis), 1, 0),
                        )
                    slab = b.at_add(
                        slab,
                        (slice(None), g.rel, slice(None),
                         nv + g.dofs[:, 0]),
                        g.axis[:, None],
                    )
                    slab = b.at_add(
                        slab,
                        (slice(None), g.rel, slice(None),
                         nv2 + g.dofs[:, 0]),
                        xp.moveaxis(fcross_motion(
                            xp, xa[:, g.lo:g.hi], g.axis), 1, 0),
                    )
                else:
                    sel = lvl.sel[g.rel]
                    rl = slice(g.lo - lo, g.hi - lo)
                    if not lvl.is_root:
                        slab = b.at_add(
                            slab,
                            (slice(None), rl, slice(None), slice(0, nv)),
                            fcrm(xp, xv[:, g.lo:g.hi]) @ sel,
                        )
                    slab = b.at_add(
                        slab,
                        (slice(None), rl, slice(None), slice(nv, nv2)),
                        xp.zeros((n, 1, 6, nv)) + sel,
                    )
                    slab = b.at_add(
                        slab,
                        (slice(None), rl, slice(None),
                         slice(nv2, 3 * nv)),
                        fcrm(xp, xa[:, g.lo:g.hi]) @ sel,
                    )
            # a_i includes v_i x vj: differentiate both factors.
            slab = xp.concatenate([
                slab[..., :nv2],
                slab[..., nv2:] - cvj[:, lo:hi] @ slab[..., :nv2],
            ], axis=-1)
            for g in lvl.groups:
                if g.k == 1:
                    slab = b.at_add(
                        slab,
                        (slice(None), g.rel, slice(None),
                         3 * nv + g.dofs[:, 0]),
                        xp.moveaxis(fcross_motion(
                            xp, v[:, g.lo:g.hi], g.axis), 1, 0),
                    )
                else:
                    rl = slice(g.lo - lo, g.hi - lo)
                    slab = b.at_add(
                        slab,
                        (slice(None), rl, slice(None),
                         slice(3 * nv, 4 * nv)),
                        fcrm(xp, v[:, g.lo:g.hi]) @ lvl.sel[g.rel],
                    )
            df_sl.append(self.inertias[lo:hi] @ slab[..., nv2:]
                         + gyro[:, lo:hi] @ slab[..., :nv2])
            prev = slab
        DF = xp.concatenate(df_sl, axis=1)

        # Backward sweep: extract each level's dtau rows *before* the
        # own-column btr term lands, then propagate to the parents.
        row_blocks: dict = {}
        for lvl in reversed(self.levels):
            lo, hi = lvl.lo, lvl.hi
            blocks = []
            for g in lvl.groups:
                if g.k == 1:
                    blocks.append(self.ein("ls,nlsv->nlv", g.axis,
                                           DF[:, g.lo:g.hi]))
                else:
                    blocks.append(
                        (g.subspaces_t @ DF[:, g.lo:g.hi]).reshape(
                            n, g.size * g.k, nv2
                        )
                    )
            row_blocks[lvl.index] = xp.concatenate(blocks, axis=1)
            if lvl.is_root:
                continue
            for g in lvl.groups:
                if g.k == 1:
                    DF = b.at_add(
                        DF,
                        (slice(None), g.slots, slice(None),
                         g.dofs[:, 0]),
                        xp.moveaxis(fcross_force(
                            xp, g.axis, f[:, g.lo:g.hi]), 1, 0),
                    )
                else:
                    DF = b.at_add(
                        DF,
                        (slice(None), slice(g.lo, g.hi), slice(None),
                         slice(0, nv)),
                        self.ein("lvij,nlj->nliv", lvl.btr[g.rel],
                                 f[:, g.lo:g.hi]),
                    )
            xt = xp.swapaxes(X[:, lo:hi], -1, -2)
            DF = b.at_add(DF, (slice(None), lvl.parent_slots),
                          xt @ DF[:, lo:hi])

        rows = xp.concatenate(
            [row_blocks[i] for i in range(len(self.levels))], axis=1
        )[:, self.dof_pos]
        return rows[..., :nv], rows[..., nv:]

    def did(self, q, qd, qdd, fx=None):
        X = self.transforms(q)
        _, state = self._rnea_core(X, self.rates(qd), self.rates(qdd), fx)
        return self._derivatives(X, state)

    def dfd(self, q, qd, tau, fx=None):
        xp = self.xp
        X = self.transforms(q)
        vj = self.rates(qd)
        bias, _ = self._rnea_core(X, vj, xp.zeros_like(vj), fx)
        minv = self._mminv(X, out_minv=True)
        qdd = _mv(minv, tau - bias)
        _, state = self._rnea_core(X, vj, self.rates(qdd), fx)
        dtau_q, dtau_qd = self._derivatives(X, state)
        return (qdd, -xp.matmul(minv, dtau_q),
                -xp.matmul(minv, dtau_qd), minv)

    def difd(self, q, qd, qdd, minv=None, fx=None):
        xp = self.xp
        X = self.transforms(q)
        if minv is None:
            minv = self._mminv(X, out_minv=True)
        _, state = self._rnea_core(X, self.rates(qd), self.rates(qdd), fx)
        dtau_q, dtau_qd = self._derivatives(X, state)
        return (qdd, -xp.matmul(minv, dtau_q),
                -xp.matmul(minv, dtau_qd), minv)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

#: model -> {backend name: FunctionalPlan}, weak over models like the
#: execution-plan cache it builds on.
_FPLAN_CACHE: "weakref.WeakKeyDictionary[RobotModel, dict]" = (
    weakref.WeakKeyDictionary()
)
_FPLAN_LOCK = threading.Lock()


def functional_plan_for(model: RobotModel,
                        backend: str | ArrayBackend | None = None,
                        ) -> FunctionalPlan:
    """The memoized :class:`FunctionalPlan` for ``model`` on ``backend``."""
    bk = get_backend(backend)
    plans = _FPLAN_CACHE.get(model)
    if plans is not None:
        plan = plans.get(bk.name)
        if plan is not None:
            return plan
    with _FPLAN_LOCK:
        plans = _FPLAN_CACHE.get(model)
        if plans is None:
            plans = {}
            _FPLAN_CACHE[model] = plans
        plan = plans.get(bk.name)
        if plan is None:
            plan = FunctionalPlan(model, bk)
            plans[bk.name] = plan
    return plan


__all__ = [
    "FunctionalPlan",
    "functional_plan_for",
    "fcrf",
    "fcrf_bar",
    "fcrm",
    "fcross_force",
    "fcross_motion",
    "fexp_so3",
    "fskew",
    "fspatial_transform",
]
