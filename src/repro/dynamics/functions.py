"""The Table-I function suite with a single software reference interface.

These are the seven functions Dadu-RBD accelerates.  ``forward_dynamics``
deliberately uses the paper's route (``Minv @ (tau - C)``, Eq. 2) rather
than ABA, matching the hardware; ``aba`` remains available as an
independent cross-check.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.dynamics.derivatives import (
    FDDerivatives,
    IDDerivatives,
    fd_derivatives,
    fd_derivatives_from_inverse,
    rnea_derivatives,
)
from repro.dynamics.mminv import mass_matrix, mass_matrix_inverse
from repro.dynamics.rnea import bias_forces, rnea
from repro.model.robot import RobotModel


class RBDFunction(Enum):
    """Function identifiers (the accelerator's ``type`` input)."""

    ID = "ID"
    FD = "FD"
    M = "M"
    MINV = "Minv"
    DID = "dID"
    DFD = "dFD"
    DIFD = "diFD"


#: Functions whose output includes derivative matrices.
DERIVATIVE_FUNCTIONS = frozenset({RBDFunction.DID, RBDFunction.DFD, RBDFunction.DIFD})


def inverse_dynamics(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
) -> np.ndarray:
    """``tau = ID(q, qd, qdd, f_ext)`` via RNEA."""
    return rnea(model, q, qd, qdd, f_ext)


def forward_dynamics(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    *,
    return_minv: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """``qdd = FD(q, qd, tau, f_ext)`` via the paper's Eq. (2):
    ``FD = Minv @ (tau - C)``."""
    c = bias_forces(model, q, qd, f_ext)
    minv = mass_matrix_inverse(model, q)
    qdd = minv @ (np.asarray(tau, dtype=float) - c)
    if return_minv:
        return qdd, minv
    return qdd


def evaluate(
    model: RobotModel,
    function: RBDFunction,
    q: np.ndarray,
    qd: np.ndarray | None = None,
    qdd_or_tau: np.ndarray | None = None,
    f_ext: dict[int, np.ndarray] | None = None,
    minv: np.ndarray | None = None,
):
    """Dispatch one Table-I function.

    ``qdd_or_tau`` is ``qdd`` for ID/dID/diFD and ``tau`` for FD/dFD
    (mirroring the accelerator's shared input stream).  Returns the natural
    result type per function: a vector, a matrix, or a derivative bundle.
    """
    zeros = np.zeros(model.nv)
    qd = zeros if qd is None else qd
    qdd_or_tau = zeros if qdd_or_tau is None else qdd_or_tau
    if function is RBDFunction.ID:
        return inverse_dynamics(model, q, qd, qdd_or_tau, f_ext)
    if function is RBDFunction.FD:
        return forward_dynamics(model, q, qd, qdd_or_tau, f_ext)
    if function is RBDFunction.M:
        return mass_matrix(model, q)
    if function is RBDFunction.MINV:
        return mass_matrix_inverse(model, q)
    if function is RBDFunction.DID:
        return rnea_derivatives(model, q, qd, qdd_or_tau, f_ext)
    if function is RBDFunction.DFD:
        return fd_derivatives(model, q, qd, qdd_or_tau, f_ext)
    if function is RBDFunction.DIFD:
        return fd_derivatives_from_inverse(model, q, qd, qdd_or_tau, minv, f_ext)
    raise ValueError(f"unknown function {function!r}")


__all__ = [
    "RBDFunction",
    "DERIVATIVE_FUNCTIONS",
    "IDDerivatives",
    "FDDerivatives",
    "inverse_dynamics",
    "forward_dynamics",
    "evaluate",
]
