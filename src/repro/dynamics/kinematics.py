"""Forward kinematics: link poses, velocities and geometric Jacobians.

These are the "Kinematics" capabilities of the paper's Fig 1 — substrate
functions the planning/control stack needs alongside the dynamics suite.
All quantities use link-frame spatial coordinates; ``world_transforms[i]``
is ``^iX_0`` (world -> link i motion transform).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.robot import RobotModel
from repro.spatial.motion import cross_motion
from repro.spatial.transforms import (
    inverse_transform,
    transform_rotation,
    transform_translation,
)


@dataclass
class KinematicsResult:
    """Output of :func:`forward_kinematics`."""

    world_transforms: list[np.ndarray]   # ^iX_0 per link
    parent_transforms: list[np.ndarray]  # ^iX_lambda(i) per link
    velocities: list[np.ndarray]         # spatial velocity of link i, link frame

    def link_rotation(self, i: int) -> np.ndarray:
        """Rotation of link i's frame relative to world (world <- link)."""
        return transform_rotation(self.world_transforms[i]).T

    def link_position(self, i: int) -> np.ndarray:
        """Origin of link i's frame in world coordinates.

        ``^iX_0 = rot(E) @ xlt(r)`` stores exactly r = link origin in world.
        """
        return transform_translation(self.world_transforms[i])


def forward_kinematics(
    model: RobotModel, q: np.ndarray, qd: np.ndarray | None = None
) -> KinematicsResult:
    """Compute link transforms and (optionally) spatial velocities."""
    q = np.asarray(q, dtype=float)
    if qd is None:
        qd = np.zeros(model.nv)
    qd = np.asarray(qd, dtype=float)

    parent_x: list[np.ndarray] = []
    world_x: list[np.ndarray] = []
    velocities: list[np.ndarray] = []
    for i in range(model.nb):
        link = model.links[i]
        x_parent = link.parent_transform(q[model.dof_slice(i)])
        parent_x.append(x_parent)
        if link.parent < 0:
            world_x.append(x_parent)
            v_parent = np.zeros(6)
        else:
            world_x.append(x_parent @ world_x[link.parent])
            v_parent = velocities[link.parent]
        s = link.joint.motion_subspace()
        velocities.append(x_parent @ v_parent + s @ qd[model.dof_slice(i)])
    return KinematicsResult(world_x, parent_x, velocities)


def link_jacobian(
    model: RobotModel, q: np.ndarray, link: int,
    fk: KinematicsResult | None = None,
) -> np.ndarray:
    """Geometric Jacobian of link ``link`` expressed in its own frame.

    Columns follow the global DOF layout; only supporting joints contribute
    (the same column sparsity the paper's incremental calculation exploits).
    ``fk`` lets callers that already ran :func:`forward_kinematics` for
    this ``q`` share the result instead of recomputing the whole tree per
    Jacobian (contact stacks ask for one Jacobian per contact point).
    """
    if fk is None:
        fk = forward_kinematics(model, q)
    jac = np.zeros((6, model.nv))
    x_link = fk.world_transforms[link]
    j = link
    while j >= 0:
        # Map joint j's subspace into link coordinates: ^linkX_j = ^linkX_0 @ ^0X_j.
        x_j_to_link = x_link @ inverse_transform(fk.world_transforms[j])
        s = model.joint(j).motion_subspace()
        jac[:, model.dof_slice(j)] = x_j_to_link @ s
        j = model.parent(j)
    return jac


def kinetic_energy(model: RobotModel, q: np.ndarray, qd: np.ndarray) -> float:
    """Total kinetic energy ``sum_i 0.5 v_i^T I_i v_i`` (frame invariant)."""
    fk = forward_kinematics(model, q, qd)
    total = 0.0
    for i in range(model.nb):
        v = fk.velocities[i]
        total += 0.5 * float(v @ model.links[i].inertia.matrix() @ v)
    return total


def potential_energy(model: RobotModel, q: np.ndarray) -> float:
    """Gravitational potential energy relative to the world origin."""
    fk = forward_kinematics(model, q)
    g_accel = model.gravity[3:]
    total = 0.0
    for i in range(model.nb):
        inertia = model.links[i].inertia
        if inertia.mass == 0.0:
            continue
        com_world = fk.link_position(i) + fk.link_rotation(i) @ inertia.com
        total -= inertia.mass * float(g_accel @ com_world)
    return total


def center_of_mass(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Whole-robot centre of mass in world coordinates."""
    fk = forward_kinematics(model, q)
    total_mass = 0.0
    weighted = np.zeros(3)
    for i in range(model.nb):
        inertia = model.links[i].inertia
        if inertia.mass == 0.0:
            continue
        com_world = fk.link_position(i) + fk.link_rotation(i) @ inertia.com
        weighted += inertia.mass * com_world
        total_mass += inertia.mass
    return weighted / total_mass


def velocity_of_point(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, link: int, point: np.ndarray
) -> np.ndarray:
    """Linear velocity (world frame) of a point fixed on ``link``."""
    fk = forward_kinematics(model, q, qd)
    v = fk.velocities[link]
    v_point_local = v[3:] + np.cross(v[:3], np.asarray(point, dtype=float))
    return fk.link_rotation(link) @ v_point_local


def spatial_acceleration_bias(
    model: RobotModel, q: np.ndarray, qd: np.ndarray
) -> list[np.ndarray]:
    """Velocity-product accelerations ``c_i = v_i x S_i qd_i`` per link
    (useful for task-space controllers built on this substrate)."""
    fk = forward_kinematics(model, q, qd)
    out = []
    for i in range(model.nb):
        s = model.joint(i).motion_subspace()
        vj = s @ np.asarray(qd, dtype=float)[model.dof_slice(i)]
        out.append(cross_motion(fk.velocities[i], vj))
    return out
