"""The ``"process"`` engine: a persistent worker-process pool.

The compiled engine removes almost all Python overhead from a batch, but
one CPython process still executes one batch at a time: for small
per-task kernels the numpy ops are too short for released-GIL threading
to help, which caps the serve runtime's host throughput at a single
core.  This engine is the multi-core scale-out behind the same
:class:`~repro.dynamics.engine.Engine` interface — the software analogue
of replicating the accelerator card:

* **a persistent pool of worker processes** (start method ``"spawn"`` by
  default — safe regardless of the threads the serve runtime runs;
  override with ``REPRO_PROCESS_START=fork|forkserver|spawn``).  Workers
  boot once, on the first real batch, and stay warm.
* **plans rebuilt per worker**: the :class:`~repro.model.robot.RobotModel`
  is pickled to each worker exactly once (a few KB), and the worker
  compiles/caches its own :class:`~repro.dynamics.plan.ExecutionPlan` —
  nothing process-shared is captured, so the pool is fork/spawn-safe by
  construction.
* **shared-memory operand stacks**: the ``(n, ...)`` inputs are written
  to one :class:`multiprocessing.shared_memory.SharedMemory` block and
  the outputs to another; workers map views and write their task-row
  slice ``[lo, hi)`` in place, so operands cross the process boundary
  without pickling or pipe copies.
* **batch splitting**: a coalesced batch is divided into contiguous row
  chunks (at least ``min_chunk`` rows each) and each chunk runs the
  compiled engine in one worker.  Batches too small to split — or a
  pool sized to a single core — run inline on the parent's compiled
  engine with zero IPC, so the engine degrades gracefully to
  ``"compiled"`` instead of paying for a pointless split.

Numerics are inherited from the compiled engine (same 1e-10 equivalence
contract against ``"loop"``).  The pool shuts down atexit, or explicitly
via :meth:`ProcessEngine.shutdown`.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import traceback
import weakref
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from queue import Empty

from repro.backend import host_backend
from repro.dynamics.engine import BatchFExt, Engine
from repro.model.robot import RobotModel
from repro import faults as _faults
from repro.obs import hooks as _obs

np = host_backend().xp

#: method name -> output shapes as a function of (n, nv).
_METHOD_OUTPUTS = {
    "id_batch": lambda n, nv: [(n, nv)],
    "m_batch": lambda n, nv: [(n, nv, nv)],
    "minv_batch": lambda n, nv: [(n, nv, nv)],
    "fd_batch": lambda n, nv: [(n, nv)],
    "did_batch": lambda n, nv: [(n, nv, nv), (n, nv, nv)],
    "dfd_batch": lambda n, nv: [(n, nv), (n, nv, nv), (n, nv, nv),
                                (n, nv, nv)],
    "difd_batch": lambda n, nv: [(n, nv), (n, nv, nv), (n, nv, nv),
                                 (n, nv, nv)],
}

_ALIGN = 64  # byte alignment of packed operands (cache-line friendly)


def _pack_layout(entries: list[tuple[str, tuple]]) -> tuple[int, list]:
    """Back-to-back float64 layout: (total bytes, [(key, offset, shape)])."""
    layout = []
    offset = 0
    for key, shape in entries:
        layout.append((key, offset, tuple(shape)))
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        offset += (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
    return max(offset, 8), layout


def _views(shm: SharedMemory, layout: list) -> dict:
    """Map ``(key, offset, shape)`` descriptors onto a block's buffer.

    The views alias ``shm.buf``; every view must be dropped before the
    block is closed (callers keep them inside a narrow scope).
    """
    out = {}
    for key, offset, shape in layout:
        count = int(np.prod(shape, dtype=np.int64))
        out[key] = np.frombuffer(
            shm.buf, dtype=np.float64, count=count, offset=offset
        ).reshape(shape)
    return out


def _attach_shm(name: str) -> SharedMemory:
    """Attach an existing shared-memory block (the parent owns cleanup).

    Workers share the parent's resource-tracker process (multiprocessing
    hands the tracker down), and its name cache is a set — the worker's
    attach-time registration dedupes against the parent's create-time one
    and the parent's prompt ``unlink`` balances it, so no tracker
    gymnastics are needed here.
    """
    return SharedMemory(name=name)


def _compute_chunk(task: dict, models: dict, shm_in: SharedMemory,
                   shm_out: SharedMemory) -> None:
    """Run one row slice on this worker's compiled plan, writing results
    into the output block.  All shm views live and die in this frame so
    the caller can close the blocks afterwards."""
    from repro.dynamics.plan import plan_for

    model = models[task["token"]]
    # Pinned to the numpy backend: chunk results are written into
    # host shared memory, so a device-backend process default (e.g. an
    # inherited REPRO_BACKEND=cupy) must not leak into the workers.
    plan = plan_for(model, "numpy")
    inputs = _views(shm_in, task["inputs"])
    outputs = _views(shm_out, task["outputs"])
    lo, hi = task["lo"], task["hi"]
    f_ext = {
        link: inputs[f"f_ext_{link}"][lo:hi]
        for link in task["f_ext_links"]
    } or None
    method = task["method"]
    q = inputs["q"][lo:hi]
    if method in ("m_batch", "minv_batch"):
        results = (getattr(plan, method)(q),)
    elif method == "difd_batch":
        minv = inputs["minv"][lo:hi] if "minv" in inputs else None
        results = plan.difd_batch(q, inputs["qd"][lo:hi],
                                  inputs["u"][lo:hi], minv, f_ext)
    else:
        results = getattr(plan, method)(q, inputs["qd"][lo:hi],
                                        inputs["u"][lo:hi], f_ext)
        if not isinstance(results, tuple):
            results = (results,)
    for (key, _, _), value in zip(task["outputs"], results):
        outputs[key][lo:hi] = value


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: receive chunk tasks until the ``None`` sentinel.

    Models arrive pickled at most once per worker and are cached by
    token; plans compile lazily per (worker, model) via the worker's own
    ``plan_for`` memo.
    """
    models: dict[str, RobotModel] = {}
    while True:
        task = task_queue.get()
        if task is None:
            return
        shm_in = shm_out = None
        try:
            # Fault delivery: the parent's injector decided this chunk's
            # fate when it built the task (repro.faults, site
            # "process.worker"); the worker just executes the sentence.
            # worker_kill is a hard exit — no cleanup, no result message
            # — modeling a real worker crash (OOM kill, segfault).
            inject = task.get("inject")
            if inject is not None:
                if inject["kind"] == "worker_kill":
                    os._exit(23)
                if inject["kind"] == "latency":
                    time.sleep(inject["latency_s"])
                elif inject["kind"] == "exception":
                    raise RuntimeError(
                        "injected fault at 'process.worker' "
                        f"(worker {worker_id})"
                    )
            if task.get("model_bytes") is not None:
                models[task["token"]] = pickle.loads(task["model_bytes"])
            shm_in = _attach_shm(task["shm_in"])
            shm_out = _attach_shm(task["shm_out"])
            profile = None
            if task.get("profile"):
                # Worker-side aggregation: profile this chunk's kernels
                # locally and ship the snapshot home with the completion,
                # where the parent merges it into its own profiler.
                from repro.obs.profile import KernelProfiler

                local = KernelProfiler(per_level=task.get("per_level", False))
                with _obs.profiled(profiler=local):
                    _compute_chunk(task, models, shm_in, shm_out)
                profile = local.snapshot()
            else:
                _compute_chunk(task, models, shm_in, shm_out)
            result_queue.put((task["task_id"], None, profile))
        except Exception:
            result_queue.put((task["task_id"], traceback.format_exc(), None))
        finally:
            for shm in (shm_in, shm_out):
                if shm is not None:
                    try:
                        shm.close()
                    except BufferError:  # a view leaked on an error path
                        pass


class ProcessEngine(Engine):
    """Worker-process pool running the compiled engine on batch slices.

    ``n_workers``
        Pool size; defaults to ``os.cpu_count()``.  A pool sized to one
        never starts processes — every call runs inline on the parent's
        compiled engine (the correct degenerate case on single-core
        hosts).
    ``min_chunk``
        Smallest row slice worth shipping to a worker; batches below
        ``2 * min_chunk`` rows run inline.
    ``start_method``
        ``"spawn"`` (default), ``"forkserver"`` or ``"fork"``; also
        settable via ``REPRO_PROCESS_START``.
    """

    name = "process"

    def __init__(self, n_workers: int | None = None, min_chunk: int = 32,
                 start_method: str | None = None,
                 timeout_s: float = 120.0) -> None:
        self._n_workers = int(n_workers or os.cpu_count() or 1)
        self._min_chunk = max(1, int(min_chunk))
        self._start_method = (
            start_method
            or os.environ.get("REPRO_PROCESS_START")
            or "spawn"
        )
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        #: Serializes the send-chunks/drain-completions RPC: concurrent
        #: dispatchers (serve shard workers share one engine) must not
        #: steal each other's completions off the shared result queue —
        #: and one batch already fans out across every core, so there is
        #: no parallelism left for a second batch anyway.
        self._dispatch_lock = threading.Lock()
        self._workers: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._task_counter = 0
        self._atexit_registered = False
        #: model -> token; weak so transient models do not pin entries
        #: (tokens are never reused, so worker caches cannot alias).
        self._model_tokens: "weakref.WeakKeyDictionary[RobotModel, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._token_counter = 0
        #: per-worker set of model tokens already shipped.
        self._worker_models: list[set[str]] = []
        self._inline = None  # lazy CompiledEngine for the no-split path

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def started(self) -> bool:
        return bool(self._workers)

    def _ensure_pool(self) -> None:
        """Start the worker pool (idempotent, thread-safe)."""
        if self._workers:
            return
        with self._lock:
            if self._workers:
                return
            ctx = get_context(self._start_method)
            result_queue = ctx.Queue()
            workers, queues = [], []
            for i in range(self._n_workers):
                tq = ctx.Queue()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(i, tq, result_queue),
                    name=f"repro-engine-worker-{i}",
                    daemon=True,
                )
                proc.start()
                queues.append(tq)
                workers.append(proc)
            self._result_queue = result_queue
            self._task_queues = queues
            self._workers = workers
            self._worker_models = [set() for _ in workers]
            if not self._atexit_registered:
                self._atexit_registered = True
                atexit.register(self.shutdown)

    def shutdown(self) -> None:
        """Stop every worker and drop the pool (restartable afterwards)."""
        with self._lock:
            workers = self._workers
            queues = self._task_queues
            self._workers = []
            self._task_queues = []
            self._worker_models = []
            self._result_queue = None
        for tq in queues:
            try:
                tq.put(None)
            except Exception:
                pass
        for proc in workers:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------

    def _model_token(self, model: RobotModel) -> str:
        with self._lock:
            token = self._model_tokens.get(model)
            if token is None:
                token = f"{model.name}#{self._token_counter}"
                self._token_counter += 1
                self._model_tokens[model] = token
            return token

    def _inline_engine(self):
        if self._inline is None:
            from repro.dynamics.engine import CompiledEngine

            # Same backend pinning as the workers: this engine's results
            # are host arrays by contract.
            self._inline = CompiledEngine(backend="numpy")
        return self._inline

    def _chunks(self, n: int) -> list[tuple[int, int]] | None:
        """Contiguous row slices, or None when splitting is not worth it."""
        k = min(self._n_workers, n // self._min_chunk)
        if k < 2:
            return None
        bounds = [round(j * n / k) for j in range(k + 1)]
        return [(bounds[j], bounds[j + 1]) for j in range(k)]

    def _run_inline(self, model, method, operands, f_ext):
        engine = self._inline_engine()
        q = operands["q"]
        if method in ("m_batch", "minv_batch"):
            return getattr(engine, method)(model, q)
        if method == "difd_batch":
            return engine.difd_batch(model, q, operands["qd"],
                                     operands["u"], operands.get("minv"),
                                     f_ext)
        return getattr(engine, method)(model, q, operands["qd"],
                                       operands["u"], f_ext)

    def _stage_inputs(self, shm_in: SharedMemory, layout: list,
                      arrays: dict) -> None:
        views = _views(shm_in, layout)
        for key, _, _ in layout:
            views[key][...] = arrays[key]

    def _read_outputs(self, shm_out: SharedMemory, layout: list) -> tuple:
        views = _views(shm_out, layout)
        return tuple(np.array(views[key], copy=True) for key, _, _ in layout)

    def _await_chunks(self, pending: set) -> list[str]:
        """Drain completions for this call; returns worker tracebacks.

        Worker-side kernel-profile snapshots riding on the completions
        are merged into the parent's active profiler as they land.
        """
        errors = []
        deadline = time.monotonic() + self._timeout_s
        while pending:
            try:
                task_id, err, profile = self._result_queue.get(timeout=1.0)
            except Empty:
                dead = [w.name for w in self._workers if not w.is_alive()]
                if dead or time.monotonic() > deadline:
                    self.shutdown()
                    raise RuntimeError(
                        "process engine lost its workers"
                        + (f" (dead: {dead})" if dead else " (timeout)")
                    ) from None
                continue
            pending.discard(task_id)
            if err is not None:
                errors.append(err)
            if profile is not None:
                prof = _obs.active_profiler()
                if prof is not None:
                    prof.merge(profile)
        return errors

    def _run(self, model: RobotModel, method: str, operands: dict,
             f_ext: BatchFExt | None):
        """Split one batched call across the pool; returns the host-side
        output arrays (a tuple for multi-output methods, else one array)."""
        operands = {
            key: np.ascontiguousarray(value, dtype=np.float64)
            for key, value in operands.items() if value is not None
        }
        n = operands["q"].shape[0]
        chunks = self._chunks(n)
        if chunks is None:
            return self._run_inline(model, method, operands, f_ext)
        self._ensure_pool()

        arrays = dict(operands)
        f_ext_links = sorted(f_ext) if f_ext else []
        for link in f_ext_links:
            arrays[f"f_ext_{link}"] = np.ascontiguousarray(
                f_ext[link], dtype=np.float64
            )
        in_bytes, in_layout = _pack_layout(
            [(key, arr.shape) for key, arr in arrays.items()]
        )
        out_bytes, out_layout = _pack_layout([
            (f"out{j}", shape)
            for j, shape in enumerate(_METHOD_OUTPUTS[method](n, model.nv))
        ])
        shm_in = SharedMemory(create=True, size=in_bytes)
        shm_out = SharedMemory(create=True, size=out_bytes)
        try:
            self._stage_inputs(shm_in, in_layout, arrays)
            token = self._model_token(model)
            profiler = _obs.active_profiler()
            with self._dispatch_lock:
                base_id = self._task_counter
                self._task_counter += len(chunks)
                pending = set()
                for j, (lo, hi) in enumerate(chunks):
                    ship_model = token not in self._worker_models[j]
                    # Injection point "process.worker": the decision is
                    # drawn parent-side (deterministic seeded stream)
                    # and shipped in the task for the worker to act on.
                    inject = None
                    if _faults.enabled:
                        action = _faults.fire("process.worker", worker=j,
                                              method=method)
                        if action is not None:
                            inject = {"kind": action.kind,
                                      "latency_s": action.latency_s}
                    self._task_queues[j].put({
                        "task_id": base_id + j,
                        "inject": inject,
                        "method": method,
                        "token": token,
                        "profile": profiler is not None,
                        "per_level": bool(
                            profiler is not None and profiler.per_level
                        ),
                        "model_bytes": (
                            pickle.dumps(model) if ship_model else None
                        ),
                        "shm_in": shm_in.name,
                        "shm_out": shm_out.name,
                        "inputs": in_layout,
                        "outputs": out_layout,
                        "lo": lo,
                        "hi": hi,
                        "f_ext_links": f_ext_links,
                    })
                    if ship_model:
                        self._worker_models[j].add(token)
                    pending.add(base_id + j)
                errors = self._await_chunks(pending)
            if errors:
                raise RuntimeError(
                    "process-engine worker failed:\n" + "\n".join(errors)
                )
            outputs = self._read_outputs(shm_out, out_layout)
            return outputs if len(outputs) > 1 else outputs[0]
        finally:
            shm_in.close()
            shm_out.close()
            shm_in.unlink()
            shm_out.unlink()

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def id_batch(self, model, q, qd, qdd, f_ext=None):
        return self._run(model, "id_batch",
                         {"q": q, "qd": qd, "u": qdd}, f_ext)

    def m_batch(self, model, q):
        return self._run(model, "m_batch", {"q": q}, None)

    def minv_batch(self, model, q):
        return self._run(model, "minv_batch", {"q": q}, None)

    def fd_batch(self, model, q, qd, tau, f_ext=None):
        return self._run(model, "fd_batch",
                         {"q": q, "qd": qd, "u": tau}, f_ext)

    def did_batch(self, model, q, qd, qdd, f_ext=None):
        return self._run(model, "did_batch",
                         {"q": q, "qd": qd, "u": qdd}, f_ext)

    def dfd_batch(self, model, q, qd, tau, f_ext=None):
        return self._run(model, "dfd_batch",
                         {"q": q, "qd": qd, "u": tau}, f_ext)

    def difd_batch(self, model, q, qd, qdd, minv=None, f_ext=None):
        operands = {"q": q, "qd": qd, "u": qdd}
        if minv is not None:
            operands["minv"] = minv
        return self._run(model, "difd_batch", operands, f_ext)


__all__ = ["ProcessEngine"]
