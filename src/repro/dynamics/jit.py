"""The ``jit`` engine: trace-compiled functional plan kernels.

Where the ``compiled`` engine runs the level schedule as in-place numpy
(and therefore declines immutable-array backends), this engine runs the
:mod:`repro.dynamics.functional` out-of-place variants and hands each
whole Table-I function to the backend's :meth:`ArrayBackend.jit` — on
jax every entry point becomes one fused XLA program per (structure,
batch shape), and the rollout step loop folds through
:meth:`ArrayBackend.scan` so an entire ``(n, T)`` trajectory slab is a
single compiled call.

Backend resolution is *lazy* and failure maps to
:class:`BackendCapabilityError` at call time, so a ``jit`` serve shard
on a jax-less host degrades through the engine chain instead of failing
the batch.  Constructing ``JitEngine(backend="numpy")`` is always legal:
numpy's ``jit`` is the identity, which runs the same functional kernels
interpreted — the correctness path CI exercises without jax installed.

Compiled callables are cached per ``(plan structure hash, backend,
function, variant)`` — :meth:`ExecutionPlan.structure_hash` is the
static argument, so models with identical compiled structure share
traces; see :meth:`JitEngine.compile_cache_stats`.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.backend import (
    ArrayBackend,
    BackendCapabilityError,
    BackendUnavailable,
    get_backend,
)
from repro.dynamics.engine import Engine, normalize_f_ext
from repro.dynamics.functional import FunctionalPlan, functional_plan_for
from repro.model.robot import RobotModel

#: Backends tried, in order, when none is requested explicitly.
_PREFERRED = ("jax",)

#: Integrator schemes the fused rollout can fold (must mirror
#: ``repro.rollout.engine``'s step functions exactly).
FUSED_SCHEMES = ("euler", "semi_implicit", "rk4")


class JitEngine(Engine):
    """Table-I functions as jit-compiled functional plan sweeps."""

    name = "jit"

    def __init__(self, backend: str | ArrayBackend | None = None) -> None:
        self._requested = backend
        self._backend: ArrayBackend | None = None
        self._lock = threading.Lock()
        self._cache: dict = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The backend this engine targets (resolved lazily)."""
        if self._backend is not None:
            return self._backend.name
        if isinstance(self._requested, ArrayBackend):
            return self._requested.name
        if self._requested is not None:
            return self._requested
        return os.environ.get("REPRO_JIT_BACKEND") or _PREFERRED[0]

    def _resolve_backend(self) -> ArrayBackend:
        backend = self._backend
        if backend is not None:
            return backend
        requested = self._requested
        if requested is None:
            requested = os.environ.get("REPRO_JIT_BACKEND") or None
        if requested is not None:
            try:
                backend = get_backend(requested)
            except BackendUnavailable as exc:
                raise BackendCapabilityError(
                    f"the jit engine was pinned to backend "
                    f"{requested!r}, which is unavailable: {exc}"
                ) from exc
        else:
            last: BackendUnavailable | None = None
            for name in _PREFERRED:
                try:
                    candidate = get_backend(name)
                except BackendUnavailable as exc:
                    last = exc
                    continue
                if candidate.capabilities.jit:
                    backend = candidate
                    break
            if backend is None:
                raise BackendCapabilityError(
                    "the jit engine needs a trace-compiling backend and "
                    "none is available (install jax, set "
                    "REPRO_JIT_BACKEND, or construct "
                    "JitEngine(backend='numpy') to run the functional "
                    "kernels interpreted)"
                ) from last
        with self._lock:
            if self._backend is None:
                self._backend = backend
        return self._backend

    def plan(self, model: RobotModel) -> FunctionalPlan:
        """The memoized functional plan on this engine's backend."""
        return functional_plan_for(model, self._resolve_backend())

    # ------------------------------------------------------------------
    # Compile cache
    # ------------------------------------------------------------------

    def _fn(self, plan: FunctionalPlan, func: str, *variant):
        """The jitted callable for (plan structure, function, variant)."""
        key = plan.key + (func,) + variant
        with self._lock:
            fn = self._cache.get(key)
            if fn is not None:
                self._hits += 1
                return fn
        fn = plan.backend.jit(self._build(plan, func, variant))
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            self._cache[key] = fn
            self._misses += 1
        return fn

    @staticmethod
    def _build(plan: FunctionalPlan, func: str, variant: tuple):
        """Close a single traceable callable over the plan constants.

        ``f_ext`` presence is part of the cache key rather than a traced
        branch, so each variant stays one straight-line program.
        """
        if func == "rollout":
            return _build_rollout(plan, variant[0])
        fext = "fext" in variant
        if func == "id":
            if fext:
                return lambda q, qd, qdd, fx: plan.id_(q, qd, qdd, fx)
            return lambda q, qd, qdd: plan.id_(q, qd, qdd)
        if func == "m":
            return plan.m
        if func == "minv":
            return plan.minv
        if func == "fd":
            if fext:
                return lambda q, qd, tau, fx: plan.fd(q, qd, tau, fx)
            return lambda q, qd, tau: plan.fd(q, qd, tau)
        if func == "did":
            if fext:
                return lambda q, qd, qdd, fx: plan.did(q, qd, qdd, fx)
            return lambda q, qd, qdd: plan.did(q, qd, qdd)
        if func == "dfd":
            if fext:
                return lambda q, qd, tau, fx: plan.dfd(q, qd, tau, fx)
            return lambda q, qd, tau: plan.dfd(q, qd, tau)
        if func == "difd":
            with_minv = "minv" in variant
            if with_minv and fext:
                return lambda q, qd, qdd, minv, fx: plan.difd(
                    q, qd, qdd, minv, fx)
            if with_minv:
                return lambda q, qd, qdd, minv: plan.difd(q, qd, qdd, minv)
            if fext:
                return lambda q, qd, qdd, fx: plan.difd(
                    q, qd, qdd, None, fx)
            return lambda q, qd, qdd: plan.difd(q, qd, qdd)
        raise KeyError(func)

    def compile_cache_stats(self) -> dict:
        """Trace-cache counters: ``{entries, hits, misses}``."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "hits": self._hits,
                "misses": self._misses,
            }

    # ------------------------------------------------------------------
    # Operand staging
    # ------------------------------------------------------------------

    @staticmethod
    def _host2d(x):
        return np.atleast_2d(np.asarray(x, dtype=float))

    def _fx_operand(self, plan: FunctionalPlan, f_ext, n: int):
        """Per-link force dict -> dense slot-ordered ``(n, nb, 6)``."""
        fe = normalize_f_ext(f_ext, n)
        if not fe:
            return None
        dense = np.zeros((n, plan.nb, 6))
        for link, stack in fe.items():
            dense[:, plan.slot_of_link[link]] = stack
        return plan.backend.asarray(dense)

    def _stage(self, plan: FunctionalPlan, *arrays):
        b = plan.backend
        return tuple(b.asarray(self._host2d(a)) for a in arrays)

    # ------------------------------------------------------------------
    # Table-I entry points
    # ------------------------------------------------------------------

    def id_batch(self, model, q, qd, qdd, f_ext=None):
        plan = self.plan(model)
        q, qd, qdd = self._stage(plan, q, qd, qdd)
        fx = self._fx_operand(plan, f_ext, q.shape[0])
        if fx is None:
            out = self._fn(plan, "id")(q, qd, qdd)
        else:
            out = self._fn(plan, "id", "fext")(q, qd, qdd, fx)
        return plan.backend.to_numpy(out)

    def m_batch(self, model, q):
        plan = self.plan(model)
        (q,) = self._stage(plan, q)
        return plan.backend.to_numpy(self._fn(plan, "m")(q))

    def minv_batch(self, model, q):
        plan = self.plan(model)
        (q,) = self._stage(plan, q)
        return plan.backend.to_numpy(self._fn(plan, "minv")(q))

    def fd_batch(self, model, q, qd, tau, f_ext=None):
        plan = self.plan(model)
        q, qd, tau = self._stage(plan, q, qd, tau)
        fx = self._fx_operand(plan, f_ext, q.shape[0])
        if fx is None:
            out = self._fn(plan, "fd")(q, qd, tau)
        else:
            out = self._fn(plan, "fd", "fext")(q, qd, tau, fx)
        return plan.backend.to_numpy(out)

    def did_batch(self, model, q, qd, qdd, f_ext=None):
        plan = self.plan(model)
        q, qd, qdd = self._stage(plan, q, qd, qdd)
        fx = self._fx_operand(plan, f_ext, q.shape[0])
        if fx is None:
            out = self._fn(plan, "did")(q, qd, qdd)
        else:
            out = self._fn(plan, "did", "fext")(q, qd, qdd, fx)
        to_np = plan.backend.to_numpy
        return tuple(to_np(o) for o in out)

    def dfd_batch(self, model, q, qd, tau, f_ext=None):
        plan = self.plan(model)
        q, qd, tau = self._stage(plan, q, qd, tau)
        fx = self._fx_operand(plan, f_ext, q.shape[0])
        if fx is None:
            out = self._fn(plan, "dfd")(q, qd, tau)
        else:
            out = self._fn(plan, "dfd", "fext")(q, qd, tau, fx)
        to_np = plan.backend.to_numpy
        return tuple(to_np(o) for o in out)

    def difd_batch(self, model, q, qd, qdd, minv=None, f_ext=None):
        plan = self.plan(model)
        q, qd, qdd = self._stage(plan, q, qd, qdd)
        fx = self._fx_operand(plan, f_ext, q.shape[0])
        variant = []
        args = [q, qd, qdd]
        if minv is not None:
            variant.append("minv")
            args.append(plan.backend.asarray(
                np.asarray(minv, dtype=float)
            ))
        if fx is not None:
            variant.append("fext")
            args.append(fx)
        out = self._fn(plan, "difd", *variant)(*args)
        to_np = plan.backend.to_numpy
        return tuple(to_np(o) for o in out)

    # ------------------------------------------------------------------
    # Fused rollout
    # ------------------------------------------------------------------

    def supports_fused_rollout(self, model: RobotModel,
                               scheme: str) -> bool:
        """Whether the whole step loop can fold into one scanned program.

        Quasi-velocity joints (spherical/floating) integrate through
        per-task exponential maps the trace cannot express, so those
        models keep the per-step path.
        """
        if scheme not in FUSED_SCHEMES:
            return False
        return all(link.joint.coordinate_velocity for link in model.links)

    def fused_rollout(self, model: RobotModel, q0, qd0, controls, *,
                      dt: float, scheme: str):
        """Run ``T`` integrator steps as one compiled scan.

        ``controls`` is ``(n, T, nv)``; returns host ``(qs, qds)`` of
        shape ``(n, T+1, nv)`` including the initial state, matching
        the per-step rollout loop bit for bit on the numpy backend.
        ``dt`` rides along as an operand, so sweeps over step sizes
        reuse one trace.
        """
        if not self.supports_fused_rollout(model, scheme):
            raise BackendCapabilityError(
                f"fused rollout supports schemes {FUSED_SCHEMES} on "
                "coordinate-velocity models; "
                f"{model.name!r}/{scheme!r} does not qualify"
            )
        plan = self.plan(model)
        b = plan.backend
        q0, qd0 = self._stage(plan, q0, qd0)
        us = b.asarray(np.asarray(controls, dtype=float))
        us = b.xp.swapaxes(us, 0, 1)       # (T, n, nv) scan-major
        fn = self._fn(plan, "rollout", scheme)
        qs, qds = fn(q0, qd0, us, dt)
        qs = np.swapaxes(b.to_numpy(qs), 0, 1)
        qds = np.swapaxes(b.to_numpy(qds), 0, 1)
        n = qs.shape[0]
        qs = np.concatenate([b.to_numpy(q0).reshape(n, 1, -1), qs], axis=1)
        qds = np.concatenate([b.to_numpy(qd0).reshape(n, 1, -1), qds],
                             axis=1)
        return qs, qds


def _build_rollout(plan: FunctionalPlan, scheme: str):
    """One scanned trajectory program (additive integrate only)."""
    b = plan.backend

    def run(q0, qd0, us, dt):
        def step(carry, tau):
            q, qd = carry
            if scheme == "euler":
                qdd = plan.fd(q, qd, tau)
                q_new = q + dt * qd
                qd_new = qd + dt * qdd
            elif scheme == "semi_implicit":
                qdd = plan.fd(q, qd, tau)
                qd_new = qd + dt * qdd
                q_new = q + dt * qd_new
            else:                          # rk4, mirrors _rk4_step
                k1_dqd = plan.fd(q, qd, tau)
                q2 = q + 0.5 * dt * qd
                qd2 = qd + 0.5 * dt * k1_dqd
                k2_dqd = plan.fd(q2, qd2, tau)
                q3 = q + 0.5 * dt * qd2
                qd3 = qd + 0.5 * dt * k2_dqd
                k3_dqd = plan.fd(q3, qd3, tau)
                q4 = q + dt * qd3
                qd4 = qd + dt * k3_dqd
                k4_dqd = plan.fd(q4, qd4, tau)
                dq = dt / 6.0 * (qd + 2 * qd2 + 2 * qd3 + qd4)
                dqd = dt / 6.0 * (k1_dqd + 2 * k2_dqd + 2 * k3_dqd
                                  + k4_dqd)
                q_new = q + dq
                qd_new = qd + dqd
            return (q_new, qd_new), (q_new, qd_new)

        _, (qs, qds) = b.scan(step, (q0, qd0), xs=us)
        return qs, qds

    return run


__all__ = ["FUSED_SCHEMES", "JitEngine"]
