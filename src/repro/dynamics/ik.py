"""Inverse kinematics (damped least squares on the geometric Jacobian).

Fig 1 lists inverse kinematics among the capabilities the planning stack
needs next to the dynamics suite; this solver closes that gap using the
same kinematics substrate (and gives the examples a target-reaching
primitive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.kinematics import forward_kinematics, link_jacobian
from repro.model.robot import RobotModel


@dataclass
class IKResult:
    """Solver output."""

    q: np.ndarray
    error: float
    iterations: int
    converged: bool


def point_ik(
    model: RobotModel,
    link: int,
    target_world: np.ndarray,
    q0: np.ndarray | None = None,
    *,
    point_local: np.ndarray | None = None,
    tolerance: float = 1e-5,
    max_iterations: int = 200,
    damping: float = 1e-3,
    step_scale: float = 0.7,
    max_step: float = 0.3,
) -> IKResult:
    """Move a point fixed on ``link`` to ``target_world``.

    Damped-least-squares iteration on the positional rows of the link
    Jacobian, with manifold-aware configuration updates (so floating-base
    and spherical joints work too).
    """
    target_world = np.asarray(target_world, dtype=float)
    point_local = (
        np.zeros(3) if point_local is None
        else np.asarray(point_local, dtype=float)
    )
    q = model.neutral_q() if q0 is None else np.asarray(q0, dtype=float).copy()

    error = np.inf
    for iteration in range(1, max_iterations + 1):
        fk = forward_kinematics(model, q)
        rotation = fk.link_rotation(link)
        world_point = fk.link_position(link) + rotation @ point_local
        residual = target_world - world_point
        error = float(np.linalg.norm(residual))
        if error < tolerance:
            return IKResult(q, error, iteration, True)
        # Positional Jacobian of the point, in world coordinates:
        # v_point(world) = R (v + w x p) with (w, v) the link twist.
        jac = link_jacobian(model, q, link)
        omega_cols = jac[:3, :].T                      # (nv, 3)
        linear_cols = jac[3:, :].T
        point_cols = linear_cols + np.cross(omega_cols, point_local)
        jac_point = rotation @ point_cols.T
        jtj = jac_point @ jac_point.T + damping * np.eye(3)
        dq = jac_point.T @ np.linalg.solve(jtj, residual)
        norm = np.linalg.norm(dq)
        if norm > max_step:
            dq *= max_step / norm
        q = model.integrate(q, step_scale * dq)
    return IKResult(q, error, max_iterations, False)
