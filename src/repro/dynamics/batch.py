"""Batch dispatch of the dynamics functions over an execution engine.

The paper's workloads are *batched*: 256 independent tasks per call
(Section VI-A), one per MPC sampling point.  This module is the dispatch
layer over :mod:`repro.dynamics.engine`: callers hand in task-major arrays
(:class:`BatchStates`) and pick an engine — ``"compiled"`` replays the
robot's structure-compiled execution plan (:mod:`repro.dynamics.plan`,
level-scheduled recursions over preallocated workspaces; the serve
default), ``"vectorized"`` runs batch-native kernels that loop over links
but apply every link-step to the whole batch at once (the GRiD layout),
and ``"loop"`` is the per-task scalar reference used for equivalence
testing.

All seven Table-I functions dispatch through the engine, so a service
layer (``repro.serve``) can fan independent requests into one engine call
and fan the per-task results back out to their callers.

Operand intake is normalized *here*, once, at the boundary: every
``q``/``qd``/``u``/``minv``/``f_ext`` stack is coerced to C-contiguous
float64 (:func:`coerce_operand`) before an engine sees it — the engines'
preallocated workspaces, einsum paths and shared-memory packing all
assume that layout — and shape mismatches raise errors that name the
offending operand (and, when a single task row is at fault, its index).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dynamics.derivatives import FDDerivatives, IDDerivatives
from repro.dynamics.engine import Engine, get_engine, normalize_f_ext
from repro.dynamics.functions import RBDFunction
from repro.model.robot import RobotModel
from repro import faults as _faults
from repro.obs import hooks as _obs

#: Dispatchable functions beyond the seven Table-I ones, keyed by name.
#: Handlers have the signature
#: ``handler(model, states, u=..., minv=..., f_ext=..., engine=..., **kw)``
#: and return a *list* of per-task results (the same fan-out contract as
#: :func:`batch_evaluate`).  The batched contact kernels
#: (:mod:`repro.dynamics.contact_batch`) register ``"cFD"`` and
#: ``"impulse"`` here.
_EXTENSION_FUNCTIONS: dict[str, Callable] = {}
_EXTENSION_LOCK = threading.Lock()


def register_batch_function(name: str, handler: Callable) -> None:
    """Register (or replace) a named batch-dispatchable function."""
    with _EXTENSION_LOCK:
        _EXTENSION_FUNCTIONS[name] = handler


def batch_function_names() -> tuple[str, ...]:
    """Names of the registered extension functions."""
    with _EXTENSION_LOCK:
        return tuple(sorted(_EXTENSION_FUNCTIONS))


def coerce_operand(name: str, value, shape: tuple | None = None,
                   *, request: int | None = None) -> np.ndarray:
    """Coerce one operand stack to C-contiguous float64, verifying shape.

    Engines assume C-contiguous float64 task-major stacks; this is the
    single intake point where float32 buffers, transposed views, lists
    and otherwise exotic inputs are normalized (a no-op passthrough for
    already-conforming arrays).  Errors name the operand and — when the
    caller is coalescing per-request rows — the offending request.
    """
    where = name if request is None else f"{name} (request {request})"
    try:
        arr = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where} is not a numeric array: {exc}") from None
    if shape is not None and arr.shape != tuple(shape):
        raise ValueError(
            f"{where} must have shape {tuple(shape)}, got {arr.shape}"
        )
    return np.ascontiguousarray(arr)


def stack_rows(name: str, rows: list, row_shape: tuple) -> np.ndarray:
    """Stack per-request rows into one C-contiguous float64 operand.

    Each row is validated against ``row_shape`` individually so a shape
    error names the request that caused it instead of failing the whole
    ``np.stack`` anonymously.
    """
    return np.stack([
        coerce_operand(name, row, row_shape, request=k)
        for k, row in enumerate(rows)
    ])


@dataclass
class BatchStates:
    """A batch of robot states (rows = tasks)."""

    q: np.ndarray            # (n, nv)
    qd: np.ndarray           # (n, nv)

    def __post_init__(self) -> None:
        self.q = np.atleast_2d(coerce_operand("q", self.q))
        self.qd = np.atleast_2d(coerce_operand("qd", self.qd))
        if self.q.shape != self.qd.shape:
            raise ValueError(
                f"q and qd batches must have the same shape; "
                f"got q {self.q.shape} vs qd {self.qd.shape}"
            )

    def __len__(self) -> int:
        return self.q.shape[0]

    @staticmethod
    def random(model: RobotModel, n: int, seed: int = 0) -> "BatchStates":
        rng = np.random.default_rng(seed)
        qs = np.stack([model.random_q(rng) for _ in range(n)])
        qds = rng.normal(size=(n, model.nv))
        return BatchStates(qs, qds)


@dataclass
class BatchDerivatives:
    """Batched dFD output: stacked derivative tensors."""

    qdd: np.ndarray          # (n, nv)
    dqdd_dq: np.ndarray      # (n, nv, nv)
    dqdd_dqd: np.ndarray     # (n, nv, nv)
    dqdd_dtau: np.ndarray    # (n, nv, nv) == Minv per task


def batch_id(
    model: RobotModel,
    states: BatchStates,
    qdd: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    engine: str | Engine | None = None,
) -> np.ndarray:
    """Batched inverse dynamics: (n, nv) torques."""
    qdd = np.atleast_2d(coerce_operand("qdd", qdd))
    return get_engine(engine).id_batch(
        model, states.q, states.qd, qdd,
        normalize_f_ext(f_ext, len(states)),
    )


def batch_minv(
    model: RobotModel,
    states: BatchStates,
    engine: str | Engine | None = None,
) -> np.ndarray:
    """Batched mass-matrix inverses: (n, nv, nv)."""
    return get_engine(engine).minv_batch(model, states.q)


def batch_fd(
    model: RobotModel,
    states: BatchStates,
    tau: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    engine: str | Engine | None = None,
) -> np.ndarray:
    """Batched forward dynamics via the paper's Eq. (2)."""
    tau = np.atleast_2d(coerce_operand("tau", tau))
    return get_engine(engine).fd_batch(
        model, states.q, states.qd, tau,
        normalize_f_ext(f_ext, len(states)),
    )


def batch_fd_derivatives(
    model: RobotModel,
    states: BatchStates,
    tau: np.ndarray,
    f_ext: dict[int, np.ndarray] | None = None,
    engine: str | Engine | None = None,
) -> BatchDerivatives:
    """Batched dFD (the Fig 2c "Derivatives of Dynamics" workload)."""
    tau = np.atleast_2d(coerce_operand("tau", tau))
    qdd, dqdd_dq, dqdd_dqd, minv = get_engine(engine).dfd_batch(
        model, states.q, states.qd, tau,
        normalize_f_ext(f_ext, len(states)),
    )
    return BatchDerivatives(
        qdd=qdd, dqdd_dq=dqdd_dq, dqdd_dqd=dqdd_dqd, dqdd_dtau=minv
    )


@dataclass
class RaggedSegment:
    """One robot's contiguous row block inside a :class:`RaggedBatch`."""

    model: RobotModel
    states: BatchStates
    u: np.ndarray | None = None
    minv: np.ndarray | None = None
    f_ext: dict[int, np.ndarray] | None = None
    #: Row window [lo, hi) this segment occupies in the ragged batch
    #: (assigned by :meth:`RaggedBatch.add`).
    lo: int = 0
    hi: int = 0

    def __len__(self) -> int:
        return len(self.states)


class RaggedBatch:
    """A cross-robot batch: per-robot row segments evaluated in one call.

    Same-robot rows share one execution plan, so a heterogeneous-fleet
    load (the multi-robot MPC / serving case) is carried as an ordered
    list of :class:`RaggedSegment` row blocks — each a dense
    ``(n_r, ...)`` operand stack for one robot — instead of fragmenting
    into independent engine calls at the call site.
    :func:`batch_evaluate_ragged` dispatches every segment to its
    robot's (packed-column) plan inside one engine call and returns the
    per-task results flattened back into global row order, so callers
    fan results out exactly as they would for a dense batch.
    """

    def __init__(self) -> None:
        self.segments: list[RaggedSegment] = []
        self._rows = 0

    def __len__(self) -> int:
        """Total task rows across all segments."""
        return self._rows

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def add(
        self,
        model: RobotModel,
        states: BatchStates,
        u: np.ndarray | None = None,
        minv: np.ndarray | None = None,
        f_ext: dict[int, np.ndarray] | None = None,
    ) -> RaggedSegment:
        """Append one robot's row block; returns the placed segment."""
        segment = RaggedSegment(
            model=model, states=states, u=u, minv=minv, f_ext=f_ext,
            lo=self._rows, hi=self._rows + len(states),
        )
        self.segments.append(segment)
        self._rows = segment.hi
        return segment

    def describe(self) -> dict:
        """Shape summary: rows, segments, and the per-segment windows."""
        return {
            "rows": self._rows,
            "segments": self.n_segments,
            "windows": [
                {"robot": s.model.name, "lo": s.lo, "hi": s.hi,
                 "nv": s.model.nv}
                for s in self.segments
            ],
        }


def batch_evaluate_ragged(
    function: RBDFunction | str,
    ragged: RaggedBatch,
    engine: str | Engine | None = None,
    **kwargs,
) -> list:
    """Dispatch one function over a cross-robot :class:`RaggedBatch`.

    Each segment's rows run through its own robot's execution plan (the
    packed-column sweeps for branched robots), back to back on the same
    engine, inside one dispatch; the per-task results come back as one
    flat list in global row order — ``out[seg.lo:seg.hi]`` are segment
    ``seg``'s results, identical to what a per-robot
    :func:`batch_evaluate` call on the same rows would produce.
    """
    if not ragged.segments:
        return []
    eng = get_engine(engine)
    t0 = _obs.kernel_begin()
    out: list = []
    for segment in ragged.segments:
        out.extend(batch_evaluate(
            segment.model, function, segment.states, segment.u,
            minv=segment.minv, f_ext=segment.f_ext, engine=eng, **kwargs,
        ))
    name = function if isinstance(function, str) else function.value
    _obs.kernel_end(
        t0, f"ragged[{ragged.n_segments}]",
        f"dispatch.ragged.{name}[{getattr(eng, 'name', '?')}]", len(ragged),
    )
    return out


def batch_evaluate(
    model: RobotModel,
    function: RBDFunction | str,
    states: BatchStates,
    u: np.ndarray | None = None,
    minv: np.ndarray | None = None,
    f_ext: dict[int, np.ndarray] | None = None,
    engine: str | Engine | None = None,
    **kwargs,
) -> list:
    """Dispatch one Table-I function over a whole batch.

    ``u`` is the per-task third operand — ``qdd`` for ID/dID/diFD, ``tau``
    for FD/dFD (the accelerator's shared input stream), unused for M/Minv.
    ``minv`` is the per-task ``(n, nv, nv)`` stack consumed by diFD and
    ``f_ext`` an optional link -> ``(6,)`` / ``(n, 6)`` external-force map.
    ``engine`` selects the execution engine (name, instance, or None for
    the process default — see :mod:`repro.dynamics.engine`).

    ``function`` may also name a registered extension function
    (:func:`register_batch_function`, e.g. the batched contact kernels
    ``"cFD"``/``"impulse"``); extra keyword arguments — ``contacts``,
    ``active``, ``restitution`` — are forwarded to its handler.

    Returns a *list* of per-task results with the same types
    :func:`repro.dynamics.functions.evaluate` produces for a single
    request, so service layers can fan results back out to independent
    callers.
    """
    if _faults.enabled:
        # Injection point "engine.batch": the engine dispatch boundary,
        # below the serving layer — plan/kernel failures land here.
        _faults.check(
            "engine.batch", robot=model.name,
            function=function if isinstance(function, str)
            else function.value,
        )
    if isinstance(function, str):
        with _EXTENSION_LOCK:
            handler = _EXTENSION_FUNCTIONS.get(function)
        if handler is None:
            raise KeyError(
                f"unknown batch function {function!r}; registered extension "
                f"functions: {batch_function_names()}"
            )
        t0 = _obs.kernel_begin()
        out = handler(model, states, u=u, minv=minv, f_ext=f_ext,
                      engine=engine, **kwargs)
        _obs.kernel_end(t0, model.name, f"dispatch.{function}", len(states))
        return out
    if kwargs:
        raise TypeError(
            f"{function.value} takes no extra keyword arguments: "
            f"{sorted(kwargs)}"
        )
    n = len(states)
    eng = get_engine(engine)
    fe = normalize_f_ext(f_ext, n)
    if fe is not None:
        fe = {
            link: coerce_operand(f"f_ext[{link}]", stack, (n, 6))
            for link, stack in fe.items()
        }
    if u is None:
        u = np.zeros((n, model.nv))
    u = np.atleast_2d(coerce_operand("u", u))
    if u.shape[0] == 1 and n > 1:
        # One operand for all tasks: materialize the broadcast so the
        # engines still receive a C-contiguous stack.
        u = np.ascontiguousarray(np.broadcast_to(u, (n, u.shape[1])))
    if u.shape != (n, model.nv):
        raise ValueError(
            f"u must have shape ({n}, {model.nv}) to match the batch, "
            f"got {u.shape}"
        )
    if minv is not None:
        minv = coerce_operand("minv", minv, (n, model.nv, model.nv))
    q, qd = states.q, states.qd
    if q.shape[1] != model.nv:
        raise ValueError(
            f"q must have shape ({n}, {model.nv}) for robot "
            f"{model.name!r}, got {q.shape}"
        )
    t0 = _obs.kernel_begin()
    if function is RBDFunction.ID:
        out = list(eng.id_batch(model, q, qd, u, fe))
    elif function is RBDFunction.FD:
        out = list(eng.fd_batch(model, q, qd, u, fe))
    elif function is RBDFunction.M:
        out = list(eng.m_batch(model, q))
    elif function is RBDFunction.MINV:
        out = list(eng.minv_batch(model, q))
    elif function is RBDFunction.DID:
        dtau_dq, dtau_dqd = eng.did_batch(model, q, qd, u, fe)
        out = [
            IDDerivatives(dtau_dq=dtau_dq[k], dtau_dqd=dtau_dqd[k])
            for k in range(n)
        ]
    elif function is RBDFunction.DFD:
        qdd, dqdd_dq, dqdd_dqd, minv_out = eng.dfd_batch(model, q, qd, u, fe)
        out = _fan_out_fd(qdd, dqdd_dq, dqdd_dqd, minv_out, n)
    elif function is RBDFunction.DIFD:
        qdd, dqdd_dq, dqdd_dqd, minv_out = eng.difd_batch(
            model, q, qd, u, minv, fe
        )
        out = _fan_out_fd(qdd, dqdd_dq, dqdd_dqd, minv_out, n)
    else:
        raise ValueError(f"unknown function {function!r}")
    _obs.kernel_end(
        t0, model.name,
        f"dispatch.{function.value}[{getattr(eng, 'name', '?')}]", n,
    )
    return out


def _fan_out_fd(qdd, dqdd_dq, dqdd_dqd, minv_out, n: int) -> list:
    return [
        FDDerivatives(
            dqdd_dq=dqdd_dq[k],
            dqdd_dqd=dqdd_dqd[k],
            dqdd_dtau=minv_out[k],
            qdd=qdd[k],
            minv=minv_out[k],
        )
        for k in range(n)
    ]
