"""Vectorized batch evaluation of the dynamics functions.

The paper's workloads are *batched*: 256 independent tasks per call
(Section VI-A), one per MPC sampling point.  This module provides
numpy-vectorized batch wrappers — the same role GRiD's batched kernels play
on the GPU — so host-side Python code can generate, check and consume the
accelerator's workloads at array speed.

The core recursions stay per-task (their sparsity patterns are exactly
what the paper exploits); vectorization batches the per-task loop and the
linear algebra around it, and `batch_fd_derivatives` shares the single
``Minv`` factor across the matrix products, which is where the real
savings are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.derivatives import FDDerivatives, rnea_derivatives
from repro.dynamics.functions import RBDFunction, evaluate
from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import rnea
from repro.model.robot import RobotModel


@dataclass
class BatchStates:
    """A batch of robot states (rows = tasks)."""

    q: np.ndarray            # (n, nv)
    qd: np.ndarray           # (n, nv)

    def __post_init__(self) -> None:
        self.q = np.atleast_2d(np.asarray(self.q, dtype=float))
        self.qd = np.atleast_2d(np.asarray(self.qd, dtype=float))
        if self.q.shape != self.qd.shape:
            raise ValueError("q and qd batches must have the same shape")

    def __len__(self) -> int:
        return self.q.shape[0]

    @staticmethod
    def random(model: RobotModel, n: int, seed: int = 0) -> "BatchStates":
        rng = np.random.default_rng(seed)
        qs = np.stack([model.random_q(rng) for _ in range(n)])
        qds = rng.normal(size=(n, model.nv))
        return BatchStates(qs, qds)


def batch_id(
    model: RobotModel, states: BatchStates, qdd: np.ndarray
) -> np.ndarray:
    """Batched inverse dynamics: (n, nv) torques."""
    qdd = np.atleast_2d(np.asarray(qdd, dtype=float))
    return np.stack([
        rnea(model, states.q[k], states.qd[k], qdd[k])
        for k in range(len(states))
    ])


def batch_minv(model: RobotModel, states: BatchStates) -> np.ndarray:
    """Batched mass-matrix inverses: (n, nv, nv)."""
    return np.stack([
        mass_matrix_inverse(model, states.q[k]) for k in range(len(states))
    ])


def batch_fd(
    model: RobotModel, states: BatchStates, tau: np.ndarray
) -> np.ndarray:
    """Batched forward dynamics via the paper's Eq. (2), with the bias and
    Minv factors computed once per task and the solve vectorized."""
    tau = np.atleast_2d(np.asarray(tau, dtype=float))
    n = len(states)
    bias = np.stack([
        rnea(model, states.q[k], states.qd[k], np.zeros(model.nv))
        for k in range(n)
    ])
    minv = batch_minv(model, states)
    return np.einsum("nij,nj->ni", minv, tau - bias)


@dataclass
class BatchDerivatives:
    """Batched dFD output: stacked derivative tensors."""

    qdd: np.ndarray          # (n, nv)
    dqdd_dq: np.ndarray      # (n, nv, nv)
    dqdd_dqd: np.ndarray     # (n, nv, nv)
    dqdd_dtau: np.ndarray    # (n, nv, nv) == Minv per task


def batch_fd_derivatives(
    model: RobotModel, states: BatchStates, tau: np.ndarray
) -> BatchDerivatives:
    """Batched dFD (the Fig 2c "Derivatives of Dynamics" workload).

    Computes each task's dID analytically, then applies the shared
    ``-Minv @ .`` products as one einsum over the batch (the Schedule
    Module's job, vectorized host-side).
    """
    tau = np.atleast_2d(np.asarray(tau, dtype=float))
    n = len(states)
    minv = batch_minv(model, states)
    bias = np.stack([
        rnea(model, states.q[k], states.qd[k], np.zeros(model.nv))
        for k in range(n)
    ])
    qdd = np.einsum("nij,nj->ni", minv, tau - bias)
    dtau_dq = np.empty((n, model.nv, model.nv))
    dtau_dqd = np.empty((n, model.nv, model.nv))
    for k in range(n):
        partials = rnea_derivatives(model, states.q[k], states.qd[k], qdd[k])
        dtau_dq[k] = partials.dtau_dq
        dtau_dqd[k] = partials.dtau_dqd
    return BatchDerivatives(
        qdd=qdd,
        dqdd_dq=-np.einsum("nij,njk->nik", minv, dtau_dq),
        dqdd_dqd=-np.einsum("nij,njk->nik", minv, dtau_dqd),
        dqdd_dtau=minv,
    )


def batch_evaluate(
    model: RobotModel,
    function: RBDFunction,
    states: BatchStates,
    u: np.ndarray | None = None,
    minv: np.ndarray | None = None,
) -> list:
    """Dispatch one Table-I function over a whole batch.

    ``u`` is the per-task third operand — ``qdd`` for ID/dID/diFD, ``tau``
    for FD/dFD (the accelerator's shared input stream), unused for M/Minv.
    ``minv`` is the per-task ``(n, nv, nv)`` stack consumed by diFD.

    Returns a *list* of per-task results with the same types
    :func:`repro.dynamics.functions.evaluate` produces for a single
    request, so service layers can fan results back out to independent
    callers.  ID/FD/Minv/dFD route through the vectorized batch kernels;
    the remaining functions fall back to a per-task loop.
    """
    n = len(states)
    if u is None:
        u = np.zeros((n, model.nv))
    u = np.atleast_2d(np.asarray(u, dtype=float))
    if u.shape[0] == 1 and n > 1:
        u = np.broadcast_to(u, (n, u.shape[1]))     # one operand, all tasks
    if u.shape != (n, model.nv):
        raise ValueError(
            f"u must have shape ({n}, {model.nv}) to match the batch, "
            f"got {u.shape}"
        )
    if function is RBDFunction.ID:
        return list(batch_id(model, states, u))
    if function is RBDFunction.FD:
        return list(batch_fd(model, states, u))
    if function is RBDFunction.MINV:
        return list(batch_minv(model, states))
    if function is RBDFunction.DFD:
        d = batch_fd_derivatives(model, states, u)
        return [
            FDDerivatives(
                dqdd_dq=d.dqdd_dq[k],
                dqdd_dqd=d.dqdd_dqd[k],
                dqdd_dtau=d.dqdd_dtau[k],
                qdd=d.qdd[k],
                minv=d.dqdd_dtau[k],
            )
            for k in range(n)
        ]
    return [
        evaluate(
            model, function, states.q[k], states.qd[k], u[k],
            minv=None if minv is None else minv[k],
        )
        for k in range(n)
    ]
