"""Coriolis matrix and the classic equation-of-motion decomposition.

Provides the factorization ``tau = M(q) qdd + C(q, qd) qd + g(q)`` used by
passivity-based controllers, with the Christoffel-consistent ``C`` so the
classic property that ``dM/dt - 2C`` is skew-symmetric holds.  Built on
CRBA with manifold-aware directional derivatives, and validated against
RNEA in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.dynamics.crba import crba
from repro.dynamics.rnea import gravity_torques
from repro.errors import ModelError
from repro.model.robot import RobotModel


def _require_coordinate_velocities(model: RobotModel) -> None:
    """The Christoffel construction needs qd == d(q)/dt; floating and
    spherical joints use quasi-velocities (body twists) whose equations
    of motion carry extra Lie-bracket terms not captured here."""
    for i in range(model.nb):
        if not model.joint(i).coordinate_velocity:
            raise ModelError(
                "coriolis_matrix requires coordinate velocities; link "
                f"{model.links[i].name!r} has a "
                f"{model.joint(i).type_name} (quasi-velocity joint)"
            )


def _unit(n: int, k: int) -> np.ndarray:
    e = np.zeros(n)
    e[k] = 1.0
    return e


def mass_matrix_derivatives(
    model: RobotModel, q: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """``dM/dq`` as an (nv, nv, nv) array (last axis = tangent direction).

    Central differences on the configuration manifold; exact to O(eps^2).
    """
    nv = model.nv
    dm = np.zeros((nv, nv, nv))
    for k in range(nv):
        e = eps * _unit(nv, k)
        dm[:, :, k] = (
            crba(model, model.integrate(q, e))
            - crba(model, model.integrate(q, -e))
        ) / (2 * eps)
    return dm


def coriolis_matrix(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """The Christoffel Coriolis matrix ``C(q, qd)``::

        C[i, j] = sum_k c_{ijk}(q) qd[k]
        c_{ijk} = 0.5 * (dM_ij/dq_k + dM_ik/dq_j - dM_jk/dq_i)
    """
    _require_coordinate_velocities(model)
    qd = np.asarray(qd, dtype=float)
    dm = mass_matrix_derivatives(model, q, eps)
    # c[i, j, k] vectorized from the three dM permutations.
    christoffel = 0.5 * (
        dm
        + np.transpose(dm, (0, 2, 1))
        - np.transpose(dm, (2, 1, 0))
    )
    return christoffel @ qd


def equation_of_motion_terms(
    model: RobotModel, q: np.ndarray, qd: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(M, C, g) with ``tau = M qdd + C qd + g(q)``."""
    return (
        crba(model, q),
        coriolis_matrix(model, q, qd),
        gravity_torques(model, q),
    )


def mass_matrix_time_derivative(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """``dM/dt`` along the current velocity (directional derivative)."""
    qd = np.asarray(qd, dtype=float)
    m_plus = crba(model, model.integrate(q, eps * qd))
    m_minus = crba(model, model.integrate(q, -eps * qd))
    return (m_plus - m_minus) / (2 * eps)
