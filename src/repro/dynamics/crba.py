"""Composite Rigid Body Algorithm: the joint-space mass matrix ``M(q)``.

The reference algorithm the paper's MMinvGen fuses with the analytical
inverse (Section III-A); kept as an independent implementation so tests can
cross-check Algorithm 2 against it.
"""

from __future__ import annotations

import numpy as np

from repro.model.robot import RobotModel


def crba(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Symmetric positive-definite mass matrix, shape (nv, nv)."""
    q = np.asarray(q, dtype=float)
    nb = model.nb
    transforms = model.parent_transforms(q)
    subspaces = model.motion_subspaces()

    composite = [link.inertia.matrix().copy() for link in model.links]
    mass_matrix = np.zeros((model.nv, model.nv))

    for i in range(nb - 1, -1, -1):
        parent = model.parent(i)
        if parent >= 0:
            x = transforms[i]
            composite[parent] += x.T @ composite[i] @ x

        s_i = subspaces[i]
        force = composite[i] @ s_i            # 6 x nv_i
        sl_i = model.dof_slice(i)
        mass_matrix[sl_i, sl_i] = s_i.T @ force

        # Walk up the supporting chain, transforming the test force.
        j = i
        while model.parent(j) >= 0:
            force = transforms[j].T @ force
            j = model.parent(j)
            sl_j = model.dof_slice(j)
            block = subspaces[j].T @ force    # nv_j x nv_i
            mass_matrix[sl_j, sl_i] = block
            mass_matrix[sl_i, sl_j] = block.T
    return mass_matrix
