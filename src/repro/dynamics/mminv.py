"""MMinvGen (the paper's Algorithm 2): mass matrix or its inverse.

The algorithm fuses CRBA with Carpentier's analytical inverse of the joint
space inertia matrix so one backward sweep plus (for the inverse) one
forward sweep produces either output.  Compared with running CRBA and then a
Cholesky factorization, the reciprocal work is overlapped with the matrix
generation — the property the Backward-Forward Module's RTP exploits
(Section IV-B, Fig 8).

``out_m`` and ``out_minv`` are mutually exclusive, exactly as in the
hardware: generating the inverse applies the articulated-body correction to
``IA`` (line 13), after which the accumulated inertias are no longer the
composite inertias the mass matrix needs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.model.robot import RobotModel


def mminvgen(
    model: RobotModel,
    q: np.ndarray,
    *,
    out_m: bool = False,
    out_minv: bool = False,
) -> np.ndarray:
    """Run Algorithm 2; returns ``M`` or ``Minv`` (nv x nv, symmetric)."""
    if out_m == out_minv:
        raise ModelError("exactly one of out_m / out_minv must be set")
    q = np.asarray(q, dtype=float)
    nb, nv = model.nb, model.nv

    transforms = model.parent_transforms(q)
    subspaces = model.motion_subspaces()
    dof_cols = [
        [d for j in model.subtree(i) for d in range(*_bounds(model, j))]
        for i in range(nb)
    ]

    inertia_acc = [link.inertia.matrix().copy() for link in model.links]
    f_acc = [np.zeros((6, nv)) for _ in range(nb)]
    out = np.zeros((nv, nv))
    d_inv: list[np.ndarray] = [np.zeros((0, 0))] * nb
    u_store: list[np.ndarray] = [np.zeros((6, 0))] * nb

    # ------------------------------------------------------------------
    # Backward sweep (Mb_i submodules): lines 1-17.
    # ------------------------------------------------------------------
    for i in range(nb - 1, -1, -1):
        x = transforms[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        u = inertia_acc[i] @ s            # U_i, 6 x nv_i
        d = s.T @ u                       # D_i, nv_i x nv_i
        u_store[i] = u

        strict_cols = [c for c in dof_cols[i] if c < sl.start or c >= sl.stop]
        if out_minv:
            d_inv[i] = np.linalg.inv(d)
            out[sl, sl] = d_inv[i]
            if strict_cols:
                out[np.ix_(range(sl.start, sl.stop), strict_cols)] = (
                    -d_inv[i] @ s.T @ f_acc[i][:, strict_cols]
                )
        else:
            out[sl, sl] = d
            if strict_cols:
                out[np.ix_(range(sl.start, sl.stop), strict_cols)] = (
                    s.T @ f_acc[i][:, strict_cols]
                )

        parent = model.parent(i)
        if parent >= 0:
            cols = dof_cols[i]
            if out_minv:
                f_acc[i][:, cols] += u @ out[np.ix_(range(sl.start, sl.stop), cols)]
                inertia_acc[i] = inertia_acc[i] - u @ d_inv[i] @ u.T
            else:
                f_acc[i][:, sl] = u
            # Lazy updates to the parent (line 16-17).
            f_acc[parent][:, cols] += x.T @ f_acc[i][:, cols]
            inertia_acc[parent] += x.T @ inertia_acc[i] @ x

    if out_m:
        return _symmetrize_from_rows(out)

    # ------------------------------------------------------------------
    # Forward sweep (Mf_i submodules): lines 18-24.
    # ------------------------------------------------------------------
    p_prop = [np.zeros((6, nv)) for _ in range(nb)]
    for i in range(nb):
        x = transforms[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        right = list(range(sl.start, nv))
        parent = model.parent(i)
        rows = range(sl.start, sl.stop)
        if parent >= 0:
            out[np.ix_(rows, right)] -= (
                d_inv[i] @ u_store[i].T @ x @ p_prop[parent][:, right]
            )
        p_prop[i][:, right] = s @ out[np.ix_(rows, right)]
        if parent >= 0:
            p_prop[i][:, right] += x @ p_prop[parent][:, right]

    return _symmetrize_from_rows(out)


def _bounds(model: RobotModel, link: int) -> tuple[int, int]:
    sl = model.dof_slice(link)
    return sl.start, sl.stop


def _symmetrize_from_rows(out: np.ndarray, xp=np) -> np.ndarray:
    """Both sweeps fill row blocks whose columns lie to the right of the
    diagonal block; mirror them into the lower triangle.

    Accepts one ``(nv, nv)`` matrix or an ``(n, nv, nv)`` batch, and an
    optional array namespace — the single implementation shared by this
    scalar reference, the vectorized engine and the backend-portable
    compiled plans (which pass their plan backend's ``xp``).
    """
    upper = xp.triu(out)
    diag = xp.diagonal(upper, axis1=-2, axis2=-1)
    return (upper + xp.swapaxes(upper, -1, -2)
            - diag[..., None] * xp.eye(out.shape[-1]))


def mass_matrix(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """``M(q)`` via MMinvGen (Table I row 3)."""
    return mminvgen(model, q, out_m=True)


def mass_matrix_inverse(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """``Minv(q)`` via MMinvGen (Table I row 4)."""
    return mminvgen(model, q, out_minv=True)


def mass_matrix_inverse_cholesky(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Reference inverse: CRBA + Cholesky solve (the conventional two-step
    route whose serialized latency the paper's fusion avoids)."""
    from repro.dynamics.crba import crba

    m = crba(model, q)
    chol = np.linalg.cholesky(m)
    identity = np.eye(model.nv)
    y = np.linalg.solve(chol, identity)
    return np.linalg.solve(chol.T, y)
