"""Engine-native batched contact dynamics.

:mod:`repro.dynamics.contact` solves one task at a time with its own
forward-kinematics sweeps; this module promotes the same constrained
dynamics to whole-batch kernels on the engine/plan/backend stack, the
shape the rollout subsystem (:mod:`repro.rollout`) consumes:

* **batched contact Jacobians** from the execution plan's level schedule
  (:meth:`repro.dynamics.plan.ExecutionPlan.world_transforms_batch`):
  world transforms for the whole batch advance one tree level per slab
  op, then each contact's positional Jacobian is assembled with one
  fused op per supporting joint;
* **batched KKT/Schur solves** on the engine's ``Minv`` output — the
  operational-space inertia ``Lambda^-1 = J Minv J^T`` is built and
  solved for all tasks at once via the backend's batched ``solve``;
* **per-task contact-mode masks**: an ``active`` mask ``(n, c)`` selects
  each task's contact set *inside* the shared solve (masked rows/columns
  collapse to identity via ``where``), so tasks in different contact
  modes still ride one batched KKT factorization — the rollout engine's
  per-step mode switching;
* **batched impulse resolution** for (in)elastic touchdown events.

The kernels are registered as dispatchable functions next to the seven
Table-I ones (:func:`repro.dynamics.batch.register_batch_function`,
names ``"cFD"`` and ``"impulse"``), so ``batch_evaluate`` and service
layers reach them through the same engine-selection machinery.

All kernels match the per-task :mod:`repro.dynamics.contact` reference
at 1e-10 (see ``tests/test_contact_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import host_backend, to_host
from repro.dynamics.contact import ContactPoint, ConstrainedDynamicsResult
from repro.dynamics.engine import Engine, get_engine, normalize_f_ext
from repro.dynamics.plan import ExecutionPlan, plan_for
from repro.model.robot import RobotModel
from repro.obs import hooks as _obs
from repro.spatial.transforms import (
    inverse_transform,
    transform_rotation,
    transform_translation,
)

#: Host namespace via the backend shim (the one layer owning numpy).
np = host_backend().xp


def contact_signature(contacts: list[ContactPoint] | tuple) -> tuple:
    """Hashable identity of a contact set (for batching/memo keys)."""
    return tuple(
        (c.link, tuple(float(x) for x in c.point_local)) for c in contacts
    )


# ---------------------------------------------------------------------------
# Batched contact kinematics (plan level schedule)
# ---------------------------------------------------------------------------


def _batch_link_jacobians(
    model: RobotModel, xw: np.ndarray, links: set[int]
) -> dict[int, np.ndarray]:
    """Batched link-frame geometric Jacobians ``(n, 6, nv)`` per link.

    Mirrors :func:`repro.dynamics.kinematics.link_jacobian` over the
    batched world transforms; inverse transforms of shared ancestors are
    computed once for all requesting links.
    """
    n = xw.shape[0]
    subspaces = model.motion_subspaces()
    inv_cache: dict[int, np.ndarray] = {}
    out: dict[int, np.ndarray] = {}
    for link in links:
        jac = np.zeros((n, 6, model.nv))
        x_link = xw[:, link]
        j = link
        while j >= 0:
            xj_inv = inv_cache.get(j)
            if xj_inv is None:
                xj_inv = inverse_transform(xw[:, j])
                inv_cache[j] = xj_inv
            jac[:, :, model.dof_slice(j)] = (x_link @ xj_inv) @ subspaces[j]
            j = model.parent(j)
        out[link] = jac
    return out


def batch_contact_jacobian(
    model: RobotModel,
    q: np.ndarray,
    contacts: list[ContactPoint],
    plan: ExecutionPlan | None = None,
    xw: np.ndarray | None = None,
) -> np.ndarray:
    """Stacked world-frame positional contact Jacobians ``(n, 3c, nv)``.

    One level-scheduled world-transform sweep serves every contact point
    of every task; contacts sharing a link share one link Jacobian.
    ``xw`` lets callers that already computed the batch's world
    transforms (:meth:`ExecutionPlan.world_transforms_batch`) share them.
    """
    q = np.atleast_2d(np.asarray(q, dtype=float))
    if plan is None:
        plan = plan_for(model)
    if xw is None:
        xw = plan.world_transforms_batch(q)
    jacs = _batch_link_jacobians(model, xw, {c.link for c in contacts})
    rows = []
    for contact in contacts:
        jac = jacs[contact.link]
        # world <- link rotation (the transpose of the stored E block).
        rot = np.swapaxes(transform_rotation(xw[:, contact.link]), -1, -2)
        omega_cols = np.swapaxes(jac[:, :3, :], -1, -2)      # (n, nv, 3)
        linear_cols = np.swapaxes(jac[:, 3:, :], -1, -2)
        point_cols = linear_cols + np.cross(omega_cols, contact.point_local)
        rows.append(rot @ np.swapaxes(point_cols, -1, -2))   # (n, 3, nv)
    return np.concatenate(rows, axis=1)


def batch_contact_positions(
    model: RobotModel,
    q: np.ndarray,
    contacts: list[ContactPoint],
    plan: ExecutionPlan | None = None,
    xw: np.ndarray | None = None,
) -> np.ndarray:
    """World positions of the contact points: ``(n, c, 3)``.

    The rollout engine's ``"ground"`` contact mode derives per-step
    active masks from these heights.
    """
    q = np.atleast_2d(np.asarray(q, dtype=float))
    if plan is None:
        plan = plan_for(model)
    if xw is None:
        xw = plan.world_transforms_batch(q)
    cols = []
    for contact in contacts:
        x = xw[:, contact.link]
        rot = np.swapaxes(transform_rotation(x), -1, -2)
        origin = transform_translation(x)                    # (n, 3)
        cols.append(origin + (rot @ contact.point_local))
    return np.stack(cols, axis=1)


def batch_jacobian_dot_qd(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    contacts: list[ContactPoint],
    plan: ExecutionPlan | None = None,
    xw: np.ndarray | None = None,
) -> np.ndarray:
    """Batched analytic ``Jdot(q, qd) qd`` drift term: ``(n, 3c)``.

    One level-scheduled velocity-kinematics sweep
    (:meth:`~repro.dynamics.plan.ExecutionPlan.velocity_kinematics_batch`)
    yields every link's spatial velocity and ``qdd = 0`` acceleration;
    each contact's classical world acceleration follows in closed form —
    the batched mirror of :func:`repro.dynamics.contact.jacobian_dot_qd`.
    """
    q = np.atleast_2d(np.asarray(q, dtype=float))
    qd = np.atleast_2d(np.asarray(qd, dtype=float))
    if plan is None:
        plan = plan_for(model)
    v_all, a_all = plan.velocity_kinematics_batch(q, qd)
    if xw is None:
        xw = plan.world_transforms_batch(q)
    cols = []
    for contact in contacts:
        v = v_all[:, contact.link]
        a = a_all[:, contact.link]
        p = contact.point_local
        v_point = v[:, 3:] + np.cross(v[:, :3], p)
        a_point = (a[:, 3:] + np.cross(a[:, :3], p)
                   + np.cross(v[:, :3], v_point))
        rot = np.swapaxes(transform_rotation(xw[:, contact.link]), -1, -2)
        cols.append((rot @ a_point[:, :, None])[..., 0])
    return np.concatenate(cols, axis=1)


# ---------------------------------------------------------------------------
# Masked batched KKT solves
# ---------------------------------------------------------------------------


def _coordinate_mask(active, n: int, c: int) -> np.ndarray:
    """Broadcast an ``active`` contact mask to coordinates ``(n, 3c)``."""
    mask = np.broadcast_to(np.asarray(active, dtype=bool), (n, c))
    return np.repeat(mask, 3, axis=1)


def _masked_schur_solve(
    lam: np.ndarray, rhs: np.ndarray, mask3: np.ndarray | None
) -> np.ndarray:
    """Solve ``lam x = rhs`` per task with inactive coordinates removed.

    Inactive rows/columns collapse to the identity (``where``-masked) and
    their right-hand sides to zero, so the solution carries exact zeros
    there and the active block solves exactly its own sub-system — one
    batched factorization serves every contact mode in the batch.
    """
    m = lam.shape[1]
    if mask3 is not None:
        idx = np.arange(m)
        pair = mask3[:, :, None] & mask3[:, None, :]
        lam = np.where(pair, lam, 0.0)
        lam[:, idx, idx] = np.where(mask3, lam[:, idx, idx], 1.0)
        rhs = np.where(mask3, rhs, 0.0)
    return np.linalg.solve(lam, rhs[..., None])[..., 0]


@dataclass
class BatchConstrainedResult:
    """Output of :func:`batch_constrained_fd`."""

    qdd: np.ndarray            # (n, nv)
    contact_forces: np.ndarray  # (n, 3c) world-frame forces, 3 per point
    active: np.ndarray | None = None   # (n, c) mask actually applied


def batch_constrained_fd(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    contacts: list[ContactPoint],
    f_ext: dict[int, np.ndarray] | None = None,
    active: np.ndarray | None = None,
    *,
    damping: float = 1e-10,
    engine: str | Engine | None = None,
    plan: ExecutionPlan | None = None,
    minv: np.ndarray | None = None,
    free_qdd: np.ndarray | None = None,
) -> BatchConstrainedResult:
    """Batched FD with (masked) contact points held at zero acceleration.

    The free dynamics and ``Minv`` come from the selected execution
    engine (any registered engine); the Schur complement on ``Minv`` is
    one batched solve.  ``active`` is an optional per-task ``(n, c)``
    mask — masked-out contacts contribute exactly zero force, matching a
    per-task solve over only the active set.  ``minv``/``free_qdd`` let
    steady-state callers (the rollout engine) reuse operands they
    already computed.
    """
    q = np.atleast_2d(np.asarray(q, dtype=float))
    qd = np.atleast_2d(np.asarray(qd, dtype=float))
    tau = np.atleast_2d(np.asarray(tau, dtype=float))
    n = q.shape[0]
    eng = get_engine(engine)
    fe = normalize_f_ext(f_ext, n)
    # The Schur solve runs host-side against the host contact Jacobians,
    # so device-engine outputs cross the boundary here.
    if minv is None:
        minv = to_host(eng.minv_batch(model, q))
    if free_qdd is None:
        free_qdd = to_host(eng.fd_batch(model, q, qd, tau, fe))
    if plan is None:
        plan = plan_for(model)
    # One world-transform sweep serves the Jacobian and the drift term.
    t0 = _obs.kernel_begin()
    xw = plan.world_transforms_batch(q)
    jac = batch_contact_jacobian(model, q, contacts, plan, xw=xw)
    jdot_qd = batch_jacobian_dot_qd(model, q, qd, contacts, plan=plan,
                                    xw=xw)
    _obs.kernel_end(t0, model.name, "contact.kinematics", n)
    t0 = _obs.kernel_begin()
    jt = np.swapaxes(jac, -1, -2)
    lam = jac @ minv @ jt
    m = jac.shape[1]
    idx = np.arange(m)
    lam[:, idx, idx] += damping
    rhs = (jac @ free_qdd[:, :, None])[..., 0] + jdot_qd
    mask3 = None
    if active is not None:
        active = np.broadcast_to(
            np.asarray(active, dtype=bool), (n, len(contacts))
        )
        mask3 = _coordinate_mask(active, n, len(contacts))
    forces = -_masked_schur_solve(lam, rhs, mask3)
    qdd = free_qdd + (minv @ (jt @ forces[:, :, None]))[..., 0]
    _obs.kernel_end(t0, model.name, "contact.schur", n)
    return BatchConstrainedResult(qdd=qdd, contact_forces=forces,
                                  active=active)


def batch_contact_impulse(
    model: RobotModel,
    q: np.ndarray,
    qd_minus: np.ndarray,
    contacts: list[ContactPoint],
    *,
    restitution: float | np.ndarray = 0.0,
    active: np.ndarray | None = None,
    damping: float = 1e-10,
    engine: str | Engine | None = None,
    plan: ExecutionPlan | None = None,
    minv: np.ndarray | None = None,
) -> np.ndarray:
    """Batched post-impact velocities ``(n, nv)`` for touchdown impacts.

    ``restitution`` may be a scalar or an ``(n,)`` per-task coefficient;
    ``active`` masks which contacts of each task actually impact.
    """
    q = np.atleast_2d(np.asarray(q, dtype=float))
    qd_minus = np.atleast_2d(np.asarray(qd_minus, dtype=float))
    n = q.shape[0]
    eng = get_engine(engine)
    if minv is None:
        minv = to_host(eng.minv_batch(model, q))
    jac = batch_contact_jacobian(model, q, contacts, plan)
    t0 = _obs.kernel_begin()
    jt = np.swapaxes(jac, -1, -2)
    lam = jac @ minv @ jt
    m = jac.shape[1]
    idx = np.arange(m)
    lam[:, idx, idx] += damping
    v_contact = (jac @ qd_minus[:, :, None])[..., 0]
    rest = np.asarray(restitution, dtype=float)
    rhs = (1.0 + rest.reshape(-1, 1)) * v_contact
    mask3 = None
    if active is not None:
        mask3 = _coordinate_mask(active, n, len(contacts))
    impulse = -_masked_schur_solve(lam, rhs, mask3)
    qd_plus = qd_minus + (minv @ (jt @ impulse[:, :, None]))[..., 0]
    _obs.kernel_end(t0, model.name, "impulse.schur", n)
    return qd_plus


# ---------------------------------------------------------------------------
# Dispatch registration (next to the Table-I functions)
# ---------------------------------------------------------------------------


def _cfd_handler(model, states, u=None, minv=None, f_ext=None, engine=None,
                 *, contacts=None, active=None, damping=1e-10):
    """``batch_evaluate``-shaped adapter for constrained FD (``u`` = tau)."""
    if not contacts:
        raise ValueError("cFD dispatch requires contacts=[ContactPoint, ...]")
    n = len(states)
    tau = np.zeros((n, model.nv)) if u is None else u
    result = batch_constrained_fd(
        model, states.q, states.qd, tau, list(contacts), f_ext=f_ext,
        active=active, damping=damping, engine=engine, minv=minv,
    )
    return [
        ConstrainedDynamicsResult(
            qdd=result.qdd[k], contact_forces=result.contact_forces[k]
        )
        for k in range(n)
    ]


def _impulse_handler(model, states, u=None, minv=None, f_ext=None,
                     engine=None, *, contacts=None, active=None,
                     restitution=0.0, damping=1e-10):
    """``batch_evaluate``-shaped adapter for impact resolution."""
    if not contacts:
        raise ValueError(
            "impulse dispatch requires contacts=[ContactPoint, ...]"
        )
    qd_plus = batch_contact_impulse(
        model, states.q, states.qd, list(contacts), restitution=restitution,
        active=active, damping=damping, engine=engine, minv=minv,
    )
    return list(qd_plus)


def _register() -> None:
    from repro.dynamics.batch import register_batch_function

    register_batch_function("cFD", _cfd_handler)
    register_batch_function("impulse", _impulse_handler)


_register()


__all__ = [
    "BatchConstrainedResult",
    "batch_constrained_fd",
    "batch_contact_impulse",
    "batch_contact_jacobian",
    "batch_contact_positions",
    "batch_jacobian_dot_qd",
    "contact_signature",
]
