"""Batch-native execution engines for the Table-I dynamics suite.

The paper's workloads are batched (256 independent tasks per call, Section
VI-A) and its accelerator keeps every pipeline stage busy across the batch.
This module is the host-side analogue, following the layout GRiD and the
batched-PyTorch RBD work use on GPUs: **the recursion stays over links, but
every link-step operates on the whole batch at once** — one ``(n, ...)``
einsum/matmul per step instead of ``n`` Python-level recursions.

Four interchangeable engines implement the same batched interface:

* :class:`LoopEngine` (``"loop"``) — the reference: per-task loops over the
  scalar kernels in :mod:`repro.dynamics.rnea` / ``mminv`` /
  ``derivatives``.  Trivially correct, GIL-bound, O(n) Python overhead.
* :class:`VectorizedEngine` (``"vectorized"``) — batch-native kernels built
  on the broadcasting spatial layer.  Joint transforms are computed once
  per batch (:meth:`repro.model.robot.RobotModel.batch_parent_transforms`)
  and shared between the bias, mass-matrix and derivative recursions of a
  single call (e.g. FD reuses one transform stack for both its RNEA and
  MMinvGen halves).  Every contraction runs with a cached
  ``einsum_path`` (:func:`repro.dynamics.plan.cached_einsum`).
* :class:`CompiledEngine` (``"compiled"``) — structure-compiled kernels on
  per-robot execution plans (:mod:`repro.dynamics.plan`): the recursion is
  scheduled by tree *depth level* rather than by link, so independent
  branches advance in one fused ``(n, L_d, ...)`` op per level, with
  flattened index arrays, precomputed selector stacks and per-thread
  preallocated workspaces.  The fastest single-process engine on branched
  robots and the serve runtime's default.  Takes an optional *backend*
  (:mod:`repro.backend`): ``CompiledEngine(backend="cupy")`` resolves
  device-resident plans.
* ``ProcessEngine`` (``"process"``, :mod:`repro.dynamics.process`) — a
  persistent worker-process pool that splits each batch across cores and
  runs the compiled engine in every worker: multi-core scale-out for the
  small-batch/many-request regime where numpy ops are too short to
  release the GIL.  Registered lazily (workers only start on first use).

Engines are selected per call (``engine="loop"``) or process-wide via
:func:`set_default_engine` / the ``REPRO_ENGINE`` environment variable; the
serve runtime records which engine executed each batch in its metrics.
The registry is thread-safe and extensible via :func:`register_engine`.

Array math routes through :mod:`repro.backend` — the vectorized kernels
dispatch on their operands' namespace, so device arrays flow through the
same code path as host numpy.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Callable

from repro.backend import array_namespace, host_backend
from repro.dynamics.mminv import _symmetrize_from_rows
from repro.dynamics.plan import cached_einsum, plan_for
from repro.model.robot import RobotModel
from repro.spatial.motion import crf, crf_bar, crm, cross_force, cross_motion

#: Host namespace (via the backend shim): the loop engine's scalar
#: kernels and the f_ext normalization are host-side by construction.
np = host_backend().xp

#: External forces for a batch: link index -> (n, 6) force stack (link frame).
BatchFExt = dict[int, "np.ndarray"]


def normalize_f_ext(
    f_ext: dict | None, n: int
) -> BatchFExt | None:
    """Broadcast per-link external forces to ``(n, 6)`` task stacks.

    Accepts the scalar convention (one ``(6,)`` force shared by every task)
    as well as per-task ``(n, 6)`` stacks.
    """
    if not f_ext:
        return None
    out: BatchFExt = {}
    for link, value in f_ext.items():
        arr = np.asarray(value, dtype=float)
        if arr.ndim == 1:
            arr = np.broadcast_to(arr, (n, 6))
        if arr.shape != (n, 6):
            raise ValueError(
                f"f_ext[{link}] must have shape (6,) or ({n}, 6), "
                f"got {arr.shape}"
            )
        out[link] = arr
    return out


class Engine(ABC):
    """One batched implementation of the Table-I function suite.

    Every method takes task-major arrays — ``q``/``qd``/``qdd``/``tau`` of
    shape ``(n, nv)`` — and returns task-major stacks.  ``f_ext`` maps link
    indices to ``(n, 6)`` stacks (see :func:`normalize_f_ext`).
    """

    name: str

    @abstractmethod
    def id_batch(self, model: RobotModel, q: np.ndarray, qd: np.ndarray,
                 qdd: np.ndarray, f_ext: BatchFExt | None = None) -> np.ndarray:
        """Batched inverse dynamics: ``(n, nv)`` torques."""

    @abstractmethod
    def m_batch(self, model: RobotModel, q: np.ndarray) -> np.ndarray:
        """Batched mass matrices: ``(n, nv, nv)``."""

    @abstractmethod
    def minv_batch(self, model: RobotModel, q: np.ndarray) -> np.ndarray:
        """Batched mass-matrix inverses: ``(n, nv, nv)``."""

    @abstractmethod
    def fd_batch(self, model: RobotModel, q: np.ndarray, qd: np.ndarray,
                 tau: np.ndarray, f_ext: BatchFExt | None = None) -> np.ndarray:
        """Batched forward dynamics via Eq. (2): ``(n, nv)`` accelerations."""

    @abstractmethod
    def did_batch(
        self, model: RobotModel, q: np.ndarray, qd: np.ndarray,
        qdd: np.ndarray, f_ext: BatchFExt | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched dID: ``(dtau_dq, dtau_dqd)``, each ``(n, nv, nv)``."""

    @abstractmethod
    def dfd_batch(
        self, model: RobotModel, q: np.ndarray, qd: np.ndarray,
        tau: np.ndarray, f_ext: BatchFExt | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched dFD: ``(qdd, dqdd_dq, dqdd_dqd, minv)``."""

    @abstractmethod
    def difd_batch(
        self, model: RobotModel, q: np.ndarray, qd: np.ndarray,
        qdd: np.ndarray, minv: np.ndarray | None = None,
        f_ext: BatchFExt | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched diFD (``qdd`` and optionally ``Minv`` known):
        ``(qdd, dqdd_dq, dqdd_dqd, minv)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ---------------------------------------------------------------------------
# Loop engine: the per-task reference
# ---------------------------------------------------------------------------


def _task_f_ext(f_ext: BatchFExt | None, k: int) -> dict[int, np.ndarray] | None:
    if not f_ext:
        return None
    return {link: value[k] for link, value in f_ext.items()}


class LoopEngine(Engine):
    """Reference engine: one scalar-kernel evaluation per task."""

    name = "loop"

    def id_batch(self, model, q, qd, qdd, f_ext=None):
        from repro.dynamics.rnea import rnea

        return np.stack([
            rnea(model, q[k], qd[k], qdd[k], _task_f_ext(f_ext, k))
            for k in range(q.shape[0])
        ])

    def m_batch(self, model, q):
        from repro.dynamics.mminv import mass_matrix

        return np.stack([mass_matrix(model, q[k]) for k in range(q.shape[0])])

    def minv_batch(self, model, q):
        from repro.dynamics.mminv import mass_matrix_inverse

        return np.stack([
            mass_matrix_inverse(model, q[k]) for k in range(q.shape[0])
        ])

    def fd_batch(self, model, q, qd, tau, f_ext=None):
        from repro.dynamics.functions import forward_dynamics

        return np.stack([
            forward_dynamics(model, q[k], qd[k], tau[k], _task_f_ext(f_ext, k))
            for k in range(q.shape[0])
        ])

    def did_batch(self, model, q, qd, qdd, f_ext=None):
        from repro.dynamics.derivatives import rnea_derivatives

        n, nv = q.shape
        dtau_dq = np.empty((n, nv, nv))
        dtau_dqd = np.empty((n, nv, nv))
        for k in range(n):
            partials = rnea_derivatives(
                model, q[k], qd[k], qdd[k], _task_f_ext(f_ext, k)
            )
            dtau_dq[k] = partials.dtau_dq
            dtau_dqd[k] = partials.dtau_dqd
        return dtau_dq, dtau_dqd

    def dfd_batch(self, model, q, qd, tau, f_ext=None):
        from repro.dynamics.derivatives import fd_derivatives

        n, nv = q.shape
        qdd = np.empty((n, nv))
        dq = np.empty((n, nv, nv))
        dqd = np.empty((n, nv, nv))
        minv = np.empty((n, nv, nv))
        for k in range(n):
            d = fd_derivatives(model, q[k], qd[k], tau[k],
                               _task_f_ext(f_ext, k))
            qdd[k], dq[k], dqd[k], minv[k] = (
                d.qdd, d.dqdd_dq, d.dqdd_dqd, d.minv
            )
        return qdd, dq, dqd, minv

    def difd_batch(self, model, q, qd, qdd, minv=None, f_ext=None):
        from repro.dynamics.derivatives import fd_derivatives_from_inverse

        n, nv = q.shape
        dq = np.empty((n, nv, nv))
        dqd = np.empty((n, nv, nv))
        minv_out = np.empty((n, nv, nv))
        for k in range(n):
            d = fd_derivatives_from_inverse(
                model, q[k], qd[k], qdd[k],
                None if minv is None else minv[k], _task_f_ext(f_ext, k),
            )
            dq[k], dqd[k], minv_out[k] = d.dqdd_dq, d.dqdd_dqd, d.minv
        return np.asarray(qdd, dtype=float), dq, dqd, minv_out


# ---------------------------------------------------------------------------
# Vectorized engine: loop over links, broadcast over tasks
# ---------------------------------------------------------------------------


def _rnea_batch(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    f_ext: BatchFExt | None,
    xs: list[np.ndarray],
    *,
    apply_gravity: bool = True,
    return_internals: bool = False,
):
    """Batched Algorithm 1 over precomputed ``(n, 6, 6)`` transforms.

    Mirrors :func:`repro.dynamics.rnea.rnea` step for step; each line is one
    vectorized array op across the batch.
    """
    n = q.shape[0]
    nb = model.nb
    subspaces = model.motion_subspaces()
    a_world = -model.gravity if apply_gravity else np.zeros(6)

    velocities: list[np.ndarray] = [None] * nb       # each (n, 6)
    accelerations: list[np.ndarray] = [None] * nb
    forces: list[np.ndarray] = [None] * nb

    for i in range(nb):
        link = model.links[i]
        sl = model.dof_slice(i)
        x = xs[i]
        s = subspaces[i]
        vj = qd[:, sl] @ s.T                         # (n, 6)
        aj = qdd[:, sl] @ s.T
        if link.parent < 0:
            v = vj
            a = x @ a_world + aj
        else:
            v = cached_einsum("nij,nj->ni", x, velocities[link.parent]) + vj
            a = (cached_einsum("nij,nj->ni", x, accelerations[link.parent])
                 + aj + cross_motion(v, vj))
        inertia = link.inertia.matrix()
        f = a @ inertia.T + cross_force(v, v @ inertia.T)
        if f_ext and i in f_ext:
            f = f - f_ext[i]
        velocities[i] = v
        accelerations[i] = a
        forces[i] = f

    tau = np.zeros((n, model.nv))
    acc = [f.copy() for f in forces]
    for i in range(nb - 1, -1, -1):
        link = model.links[i]
        s = subspaces[i]
        tau[:, model.dof_slice(i)] = acc[i] @ s
        if link.parent >= 0:
            acc[link.parent] += cached_einsum("nji,nj->ni", xs[i], acc[i])

    if return_internals:
        return tau, (velocities, accelerations, acc)
    return tau


def _mminvgen_batch(
    model: RobotModel,
    q: np.ndarray,
    xs: list[np.ndarray],
    *,
    out_minv: bool,
) -> np.ndarray:
    """Batched Algorithm 2 (MMinvGen): ``M`` or ``Minv`` per task.

    The link recursion and lazy parent updates follow
    :func:`repro.dynamics.mminv.mminvgen`; every matrix product carries the
    leading task axis.
    """
    n = q.shape[0]
    nb, nv = model.nb, model.nv
    subspaces = model.motion_subspaces()
    dof_cols = [
        [d for j in model.subtree(i)
         for d in range(model.dof_slice(j).start, model.dof_slice(j).stop)]
        for i in range(nb)
    ]

    inertia_acc = [
        np.broadcast_to(link.inertia.matrix(), (n, 6, 6)).copy()
        for link in model.links
    ]
    f_acc = [np.zeros((n, 6, nv)) for _ in range(nb)]
    out = np.zeros((n, nv, nv))
    d_inv: list[np.ndarray] = [None] * nb
    u_store: list[np.ndarray] = [None] * nb

    # Backward sweep (Mb_i submodules).
    for i in range(nb - 1, -1, -1):
        x = xs[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        u = inertia_acc[i] @ s                       # (n, 6, nv_i)
        d = s.T @ u                                  # (n, nv_i, nv_i)
        u_store[i] = u

        strict_cols = [c for c in dof_cols[i] if c < sl.start or c >= sl.stop]
        if out_minv:
            d_inv[i] = np.linalg.inv(d)
            out[:, sl, sl] = d_inv[i]
            if strict_cols:
                out[:, sl, strict_cols] = (
                    -d_inv[i] @ (s.T @ f_acc[i][:, :, strict_cols])
                )
        else:
            out[:, sl, sl] = d
            if strict_cols:
                out[:, sl, strict_cols] = s.T @ f_acc[i][:, :, strict_cols]

        parent = model.parent(i)
        if parent >= 0:
            cols = dof_cols[i]
            if out_minv:
                f_acc[i][:, :, cols] += u @ out[:, sl, cols]
                inertia_acc[i] = (
                    inertia_acc[i] - u @ d_inv[i] @ np.swapaxes(u, -1, -2)
                )
            else:
                f_acc[i][:, :, sl] = u
            xt = np.swapaxes(x, -1, -2)
            f_acc[parent][:, :, cols] += xt @ f_acc[i][:, :, cols]
            inertia_acc[parent] += xt @ inertia_acc[i] @ x

    if not out_minv:
        return _symmetrize_from_rows(out, np)

    # Forward sweep (Mf_i submodules).
    p_prop = [np.zeros((n, 6, nv)) for _ in range(nb)]
    for i in range(nb):
        x = xs[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        right = slice(sl.start, nv)
        parent = model.parent(i)
        if parent >= 0:
            out[:, sl, right] -= (
                d_inv[i] @ np.swapaxes(u_store[i], -1, -2)
                @ x @ p_prop[parent][:, :, right]
            )
        p_prop[i][:, :, right] = s @ out[:, sl, right]
        if parent >= 0:
            p_prop[i][:, :, right] += x @ p_prop[parent][:, :, right]

    return _symmetrize_from_rows(out, np)


def _rnea_derivatives_batch(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    f_ext: BatchFExt | None,
    xs: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Batched analytical dRNEA over precomputed transforms.

    Mirrors :func:`repro.dynamics.derivatives.rnea_derivatives`; the
    derivative transfers become ``(n, 6, nv)`` stacks.
    """
    n = q.shape[0]
    nb, nv = model.nb, model.nv
    _, (velocities, _accelerations, forces) = _rnea_batch(
        model, q, qd, qdd, f_ext, xs, return_internals=True
    )
    # Re-run the forward recursion's parent quantities for the derivative
    # sweep; accelerations of the parents come from the internals.
    accelerations = _accelerations
    subspaces = model.motion_subspaces()
    a_world = -model.gravity

    dv_dq = [np.zeros((n, 6, nv)) for _ in range(nb)]
    dv_dqd = [np.zeros((n, 6, nv)) for _ in range(nb)]
    da_dq = [np.zeros((n, 6, nv)) for _ in range(nb)]
    da_dqd = [np.zeros((n, 6, nv)) for _ in range(nb)]
    df_dq = [None] * nb
    df_dqd = [None] * nb

    # Forward sweep (Df_i submodules): propagate d_u v and d_u a.
    for i in range(nb):
        link = model.links[i]
        x = xs[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        parent = link.parent
        vj = qd[:, sl] @ s.T
        v_i = velocities[i]

        if parent < 0:
            xa = x @ a_world
            da_dq[i][:, :, sl] += crm(xa) @ s
        else:
            xv = cached_einsum("nij,nj->ni", x, velocities[parent])
            xa = cached_einsum("nij,nj->ni", x, accelerations[parent])
            dv_dq[i] = x @ dv_dq[parent]
            dv_dq[i][:, :, sl] += crm(xv) @ s
            dv_dqd[i] = x @ dv_dqd[parent]
            da_dq[i] = x @ da_dq[parent]
            da_dq[i][:, :, sl] += crm(xa) @ s
            da_dqd[i] = x @ da_dqd[parent]
        dv_dqd[i][:, :, sl] += s

        # a_i includes v_i x vj: differentiate both factors.
        da_dq[i] += -crm(vj) @ dv_dq[i]
        da_dqd[i] += -crm(vj) @ dv_dqd[i]
        da_dqd[i][:, :, sl] += crm(v_i) @ s

        # Local body-force derivative (f_ext is constant).
        inertia = link.inertia.matrix()
        gyro = crf_bar(v_i @ inertia.T) + crf(v_i) @ inertia
        df_dq[i] = inertia @ da_dq[i] + gyro @ dv_dq[i]
        df_dqd[i] = inertia @ da_dqd[i] + gyro @ dv_dqd[i]

    # Backward sweep (Db_i submodules): accumulate force derivatives.
    dtau_dq = np.zeros((n, nv, nv))
    dtau_dqd = np.zeros((n, nv, nv))
    for i in range(nb - 1, -1, -1):
        link = model.links[i]
        s = subspaces[i]
        sl = model.dof_slice(i)
        dtau_dq[:, sl, :] = s.T @ df_dq[i]
        dtau_dqd[:, sl, :] = s.T @ df_dqd[i]
        parent = link.parent
        if parent >= 0:
            x = xs[i]
            back_q = df_dq[i].copy()
            # d(X^T f)/dq_i adds X^T (S_k x* f_i) to the joint's own column,
            # with f_i the accumulated force (the paper's btr term).
            f_acc = forces[i]
            for k in range(link.joint.nv):
                back_q[:, :, sl.start + k] += cross_force(s[:, k], f_acc)
            xt = np.swapaxes(x, -1, -2)
            df_dq[parent] += xt @ back_q
            df_dqd[parent] += xt @ df_dqd[i]
    return dtau_dq, dtau_dqd


class VectorizedEngine(Engine):
    """Batch-native kernels: one array op per link-step, whole batch wide.

    Each public method computes the per-link joint-transform stacks once
    and shares them across every recursion the function needs (bias, Minv,
    derivatives) — the Schedule Module's operand reuse, host-side.
    """

    name = "vectorized"

    def id_batch(self, model, q, qd, qdd, f_ext=None):
        xs = model.batch_parent_transforms(q)
        return _rnea_batch(model, q, qd, qdd, f_ext, xs)

    def m_batch(self, model, q):
        xs = model.batch_parent_transforms(q)
        return _mminvgen_batch(model, q, xs, out_minv=False)

    def minv_batch(self, model, q):
        xs = model.batch_parent_transforms(q)
        return _mminvgen_batch(model, q, xs, out_minv=True)

    def fd_batch(self, model, q, qd, tau, f_ext=None):
        xs = model.batch_parent_transforms(q)
        bias = _rnea_batch(model, q, qd, np.zeros_like(q), f_ext, xs)
        minv = _mminvgen_batch(model, q, xs, out_minv=True)
        return cached_einsum("nij,nj->ni", minv, tau - bias)

    def did_batch(self, model, q, qd, qdd, f_ext=None):
        xs = model.batch_parent_transforms(q)
        return _rnea_derivatives_batch(model, q, qd, qdd, f_ext, xs)

    def dfd_batch(self, model, q, qd, tau, f_ext=None):
        xs = model.batch_parent_transforms(q)
        bias = _rnea_batch(model, q, qd, np.zeros_like(q), f_ext, xs)
        minv = _mminvgen_batch(model, q, xs, out_minv=True)
        qdd = cached_einsum("nij,nj->ni", minv, tau - bias)
        dtau_dq, dtau_dqd = _rnea_derivatives_batch(
            model, q, qd, qdd, f_ext, xs
        )
        return (
            qdd,
            -cached_einsum("nij,njk->nik", minv, dtau_dq),
            -cached_einsum("nij,njk->nik", minv, dtau_dqd),
            minv,
        )

    def difd_batch(self, model, q, qd, qdd, minv=None, f_ext=None):
        xs = model.batch_parent_transforms(q)
        if minv is None:
            minv = _mminvgen_batch(model, q, xs, out_minv=True)
        else:
            minv = np.asarray(minv, dtype=float)
        dtau_dq, dtau_dqd = _rnea_derivatives_batch(
            model, q, qd, qdd, f_ext, xs
        )
        return (
            np.asarray(qdd, dtype=float),
            -cached_einsum("nij,njk->nik", minv, dtau_dq),
            -cached_einsum("nij,njk->nik", minv, dtau_dqd),
            minv,
        )


# ---------------------------------------------------------------------------
# Compiled engine: level-scheduled kernels over per-robot execution plans
# ---------------------------------------------------------------------------


class CompiledEngine(Engine):
    """Structure-compiled kernels: recursion by depth level, not by link.

    Each call resolves the robot's memoized
    :class:`~repro.dynamics.plan.ExecutionPlan`
    (:func:`~repro.dynamics.plan.plan_for`) and runs the level-scheduled
    kernels on its preallocated per-thread workspace: independent branches
    at the same tree depth advance in one fused ``(n, L_d, ...)`` array op,
    transforms refresh in one op per joint kind, and the big recursion
    stacks never reallocate in steady state.  Numerically interchangeable
    with the other engines (same 1e-10 equivalence contract).

    ``backend`` selects the array backend the plans execute on
    (:mod:`repro.backend`); ``None`` follows the process-wide default
    (``REPRO_BACKEND`` / :func:`repro.backend.set_default_backend`).
    """

    name = "compiled"

    def __init__(self, backend: str | None = None) -> None:
        self._backend = backend

    @property
    def backend_name(self) -> str:
        """Resolved backend name plans run on."""
        from repro.backend import get_backend

        return get_backend(self._backend).name

    def _plan(self, model):
        return plan_for(model, self._backend)

    def id_batch(self, model, q, qd, qdd, f_ext=None):
        return self._plan(model).id_batch(q, qd, qdd, f_ext)

    def m_batch(self, model, q):
        return self._plan(model).m_batch(q)

    def minv_batch(self, model, q):
        return self._plan(model).minv_batch(q)

    def fd_batch(self, model, q, qd, tau, f_ext=None):
        return self._plan(model).fd_batch(q, qd, tau, f_ext)

    def did_batch(self, model, q, qd, qdd, f_ext=None):
        return self._plan(model).did_batch(q, qd, qdd, f_ext)

    def dfd_batch(self, model, q, qd, tau, f_ext=None):
        return self._plan(model).dfd_batch(q, qd, tau, f_ext)

    def difd_batch(self, model, q, qd, qdd, minv=None, f_ext=None):
        return self._plan(model).difd_batch(q, qd, qdd, minv, f_ext)


# ---------------------------------------------------------------------------
# Registry and default selection
# ---------------------------------------------------------------------------


def _make_process_engine() -> Engine:
    # Imported lazily: repro.dynamics.process imports this module for the
    # Engine interface, and instantiating the engine must not start any
    # worker (the pool boots on first real batch).
    from repro.dynamics.process import ProcessEngine

    return ProcessEngine()


def _make_jit_engine() -> Engine:
    # Lazy for the same reason; constructing the engine never probes a
    # backend — resolution (and any BackendCapabilityError) happens at
    # first batch, where the serve degradation chain can catch it.
    from repro.dynamics.jit import JitEngine

    return JitEngine()


#: name -> constructor; instantiated on first lookup, under the registry
#: lock.  Keeping construction lazy means `import repro` never pays for
#: engines it does not use (and never forks/spawns anything).
_ENGINE_FACTORIES: dict[str, Callable[[], Engine]] = {
    LoopEngine.name: LoopEngine,
    VectorizedEngine.name: VectorizedEngine,
    CompiledEngine.name: CompiledEngine,
    "process": _make_process_engine,
    "jit": _make_jit_engine,
}
_ENGINES: dict[str, Engine] = {}
_REGISTRY_LOCK = threading.RLock()


def register_engine(name: str, factory: Callable[[], Engine]) -> None:
    """Register (or replace) an engine constructor under ``name``.

    Thread-safe; a previously instantiated engine under the same name is
    dropped so the next :func:`get_engine` builds the new one.
    """
    with _REGISTRY_LOCK:
        _ENGINE_FACTORIES[name] = factory
        _ENGINES.pop(name, None)


#: Process-wide default, overridable via the REPRO_ENGINE env var.  A bad
#: env value is reported lazily (first use) so importing the package never
#: fails for commands that touch no engine.
_default_engine_name = os.environ.get("REPRO_ENGINE", VectorizedEngine.name)

#: True once the user pinned the default (REPRO_ENGINE env var or
#: set_default_engine).  Layers with their own fallback default — the
#: serve runtime prefers "compiled" — consult this to know whether the
#: process default is an explicit user choice they must honour.
_default_engine_explicit = "REPRO_ENGINE" in os.environ


def default_engine_explicit() -> bool:
    """Whether the process default was pinned by the user."""
    return _default_engine_explicit


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines."""
    with _REGISTRY_LOCK:
        return tuple(sorted(set(_ENGINE_FACTORIES) | set(_ENGINES)))


def default_engine_name() -> str:
    """The engine used when a call does not name one."""
    if _default_engine_name not in _ENGINE_FACTORIES:
        # Only the REPRO_ENGINE env var can install an unvalidated name
        # (set_default_engine checks eagerly), so name it in the error.
        raise KeyError(
            f"REPRO_ENGINE={_default_engine_name!r} names an unknown "
            f"engine; known engines: {available_engines()}"
        )
    return _default_engine_name


def set_default_engine(name: str | None) -> None:
    """Set the process-wide default engine (``"loop"``, ``"vectorized"`` or
    ``"compiled"``) and pin it against layer-specific fallbacks.

    Passing ``None`` un-pins the default, restoring the REPRO_ENGINE env
    var (or the built-in fallback) — mainly for tests that must not leak
    a pinned default into later tests.
    """
    global _default_engine_name, _default_engine_explicit
    if name is None:
        _default_engine_name = os.environ.get(
            "REPRO_ENGINE", VectorizedEngine.name
        )
        _default_engine_explicit = "REPRO_ENGINE" in os.environ
        return
    if name not in _ENGINE_FACTORIES:
        raise KeyError(
            f"unknown engine {name!r}; known engines: {available_engines()}"
        )
    _default_engine_name = name
    _default_engine_explicit = True


def get_engine(engine: str | Engine | None = None) -> Engine:
    """Resolve an engine argument: instance, name, or None (the default).

    Named engines are singletons, instantiated on first lookup under the
    registry lock (thread-safe double-checked); instances pass through.
    """
    if engine is None:
        engine = default_engine_name()
    if isinstance(engine, Engine):
        return engine
    instance = _ENGINES.get(engine)
    if instance is not None:
        return instance
    with _REGISTRY_LOCK:
        instance = _ENGINES.get(engine)
        if instance is None:
            factory = _ENGINE_FACTORIES.get(engine)
            if factory is None:
                raise KeyError(
                    f"unknown engine {engine!r}; known engines: "
                    f"{available_engines()}"
                )
            instance = factory()
            _ENGINES[engine] = instance
    return instance


__all__ = [
    "BatchFExt",
    "CompiledEngine",
    "Engine",
    "LoopEngine",
    "VectorizedEngine",
    "cached_einsum",
    "available_engines",
    "default_engine_explicit",
    "default_engine_name",
    "get_engine",
    "normalize_f_ext",
    "register_engine",
    "set_default_engine",
]
