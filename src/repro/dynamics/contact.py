"""Point-contact dynamics on the rigid-body substrate.

The paper's motivating robots are legged (HyQ, Atlas, the Fig 3
quadruped): their MPC formulations solve contact-constrained dynamics
(the cited whole-body-through-contact controllers).  This module adds the
constrained forward dynamics those formulations need:

* contact Jacobians for points fixed on links;
* constrained FD by solving the KKT system
  ``[M -J^T; J 0] [qdd; f] = [tau - C; -Jdot qd]``
  via the Minv-based Schur complement (the operational-space inertia),
  which reuses exactly the accelerator's Minv output;
* impulse resolution for inelastic impacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.kinematics import forward_kinematics, link_jacobian
from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import rnea
from repro.model.robot import RobotModel


@dataclass(frozen=True)
class ContactPoint:
    """A point fixed on a link, constrained not to accelerate (in world)."""

    link: int
    point_local: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "point_local", np.asarray(self.point_local, dtype=float)
        )


def contact_jacobian(
    model: RobotModel, q: np.ndarray, contacts: list[ContactPoint]
) -> np.ndarray:
    """Stacked world-frame positional Jacobian of the contact points
    (3 * n_contacts, nv)."""
    # One tree sweep shared by every contact point (link_jacobian would
    # otherwise redo forward kinematics per point).
    fk = forward_kinematics(model, q)
    rows = []
    for contact in contacts:
        jac = link_jacobian(model, q, contact.link, fk=fk)
        rotation = fk.link_rotation(contact.link)
        omega_cols = jac[:3, :].T
        linear_cols = jac[3:, :].T
        point_cols = linear_cols + np.cross(omega_cols, contact.point_local)
        rows.append(rotation @ point_cols.T)
    return np.vstack(rows)


def directional_eps(qd: np.ndarray, eps: float = 1e-6) -> float:
    """Step size for the ``Jdot qd`` directional difference.

    The difference perturbs ``q`` by ``eps * qd``, so an absolute ``eps``
    makes the *configuration* step grow with ``|qd|`` — at high joint
    rates the truncation error swamps the quadratic convergence.  Scaling
    by the state magnitude keeps the configuration perturbation at
    ``~eps`` radians regardless of how fast the robot moves.
    """
    scale = float(np.max(np.abs(qd), initial=0.0))
    return eps / max(1.0, scale)


def _jacobian_dot_qd(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    contacts: list[ContactPoint],
    eps: float = 1e-6,
) -> np.ndarray:
    """``Jdot(q, qd) qd`` by a manifold-aware directional difference.

    Kept as an independent cross-check of :func:`jacobian_dot_qd` (the
    analytic form the solvers use).
    """
    h = directional_eps(qd, eps)
    j_plus = contact_jacobian(model, model.integrate(q, h * qd), contacts)
    j_minus = contact_jacobian(model, model.integrate(q, -h * qd), contacts)
    return ((j_plus - j_minus) / (2.0 * h)) @ qd


def jacobian_dot_qd(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    contacts: list[ContactPoint],
) -> np.ndarray:
    """Analytic ``Jdot(q, qd) qd``: the contact points' world acceleration
    at ``qdd = 0``.

    One kinematic sweep accumulates each link's spatial velocity and its
    gravity-free, ``qdd = 0`` spatial acceleration; the classical point
    acceleration is then ``R (a_O + wd x p + w x (v_O + w x p))`` — exact,
    where the directional difference :func:`_jacobian_dot_qd` carries
    truncation and cancellation error.
    """
    from repro.spatial.motion import cross_motion

    qd = np.asarray(qd, dtype=float)
    fk = forward_kinematics(model, q, qd)
    accelerations: list[np.ndarray] = []
    for i in range(model.nb):
        s = model.joint(i).motion_subspace()
        vj = s @ qd[model.dof_slice(i)]
        a = cross_motion(fk.velocities[i], vj)
        parent = model.parent(i)
        if parent >= 0:
            a = fk.parent_transforms[i] @ accelerations[parent] + a
        accelerations.append(a)
    rows = []
    for contact in contacts:
        v = fk.velocities[contact.link]
        a = accelerations[contact.link]
        p = contact.point_local
        v_point = v[3:] + np.cross(v[:3], p)
        a_point = a[3:] + np.cross(a[:3], p) + np.cross(v[:3], v_point)
        rows.append(fk.link_rotation(contact.link) @ a_point)
    return np.concatenate(rows)


@dataclass
class ConstrainedDynamicsResult:
    """Output of :func:`constrained_forward_dynamics`."""

    qdd: np.ndarray
    contact_forces: np.ndarray     # stacked world-frame forces (3 per point)


def constrained_forward_dynamics(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    contacts: list[ContactPoint],
    f_ext: dict[int, np.ndarray] | None = None,
    *,
    damping: float = 1e-10,
) -> ConstrainedDynamicsResult:
    """FD with the contact points held at zero world acceleration.

    Schur-complement solve on Minv (the accelerator's output): the
    operational-space inertia is ``Lambda^-1 = J Minv J^T``.  ``f_ext``
    maps link indices to ``(6,)`` link-frame external forces applied on
    top of the contact constraint forces.
    """
    qd = np.asarray(qd, dtype=float)
    tau = np.asarray(tau, dtype=float)
    minv = mass_matrix_inverse(model, q)
    bias = rnea(model, q, qd, np.zeros(model.nv), f_ext)
    free_qdd = minv @ (tau - bias)
    jac = contact_jacobian(model, q, contacts)
    jdot_qd = jacobian_dot_qd(model, q, qd, contacts)
    lambda_inv = jac @ minv @ jac.T
    lambda_inv += damping * np.eye(lambda_inv.shape[0])
    # Contact forces cancel the unconstrained contact acceleration.
    rhs = jac @ free_qdd + jdot_qd
    forces = -np.linalg.solve(lambda_inv, rhs)
    qdd = free_qdd + minv @ jac.T @ forces
    return ConstrainedDynamicsResult(qdd=qdd, contact_forces=forces)


def contact_impulse(
    model: RobotModel,
    q: np.ndarray,
    qd_minus: np.ndarray,
    contacts: list[ContactPoint],
    *,
    restitution: float = 0.0,
    damping: float = 1e-10,
) -> np.ndarray:
    """Post-impact velocity for an (in)elastic impact at the contacts.

    Solves ``J qd_plus = -e J qd_minus`` with the impulse acting through
    ``Minv J^T`` — e.g. a quadruped foot touching down.
    """
    qd_minus = np.asarray(qd_minus, dtype=float)
    minv = mass_matrix_inverse(model, q)
    jac = contact_jacobian(model, q, contacts)
    lambda_inv = jac @ minv @ jac.T + damping * np.eye(jac.shape[0])
    v_contact = jac @ qd_minus
    impulse = -np.linalg.solve(lambda_inv, (1.0 + restitution) * v_contact)
    return qd_minus + minv @ jac.T @ impulse
