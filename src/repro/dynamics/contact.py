"""Point-contact dynamics on the rigid-body substrate.

The paper's motivating robots are legged (HyQ, Atlas, the Fig 3
quadruped): their MPC formulations solve contact-constrained dynamics
(the cited whole-body-through-contact controllers).  This module adds the
constrained forward dynamics those formulations need:

* contact Jacobians for points fixed on links;
* constrained FD by solving the KKT system
  ``[M -J^T; J 0] [qdd; f] = [tau - C; -Jdot qd]``
  via the Minv-based Schur complement (the operational-space inertia),
  which reuses exactly the accelerator's Minv output;
* impulse resolution for inelastic impacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.kinematics import forward_kinematics, link_jacobian
from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import rnea
from repro.model.robot import RobotModel


@dataclass(frozen=True)
class ContactPoint:
    """A point fixed on a link, constrained not to accelerate (in world)."""

    link: int
    point_local: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "point_local", np.asarray(self.point_local, dtype=float)
        )


def contact_jacobian(
    model: RobotModel, q: np.ndarray, contacts: list[ContactPoint]
) -> np.ndarray:
    """Stacked world-frame positional Jacobian of the contact points
    (3 * n_contacts, nv)."""
    fk = forward_kinematics(model, q)
    rows = []
    for contact in contacts:
        jac = link_jacobian(model, q, contact.link)
        rotation = fk.link_rotation(contact.link)
        omega_cols = jac[:3, :].T
        linear_cols = jac[3:, :].T
        point_cols = linear_cols + np.cross(omega_cols, contact.point_local)
        rows.append(rotation @ point_cols.T)
    return np.vstack(rows)


def _jacobian_dot_qd(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    contacts: list[ContactPoint],
    eps: float = 1e-6,
) -> np.ndarray:
    """``Jdot(q, qd) qd`` by a manifold-aware directional difference."""
    j_plus = contact_jacobian(model, model.integrate(q, eps * qd), contacts)
    j_minus = contact_jacobian(model, model.integrate(q, -eps * qd), contacts)
    return ((j_plus - j_minus) / (2.0 * eps)) @ qd


@dataclass
class ConstrainedDynamicsResult:
    """Output of :func:`constrained_forward_dynamics`."""

    qdd: np.ndarray
    contact_forces: np.ndarray     # stacked world-frame forces (3 per point)


def constrained_forward_dynamics(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    tau: np.ndarray,
    contacts: list[ContactPoint],
    *,
    damping: float = 1e-10,
) -> ConstrainedDynamicsResult:
    """FD with the contact points held at zero world acceleration.

    Schur-complement solve on Minv (the accelerator's output): the
    operational-space inertia is ``Lambda^-1 = J Minv J^T``.
    """
    qd = np.asarray(qd, dtype=float)
    tau = np.asarray(tau, dtype=float)
    minv = mass_matrix_inverse(model, q)
    bias = rnea(model, q, qd, np.zeros(model.nv))
    free_qdd = minv @ (tau - bias)
    jac = contact_jacobian(model, q, contacts)
    jdot_qd = _jacobian_dot_qd(model, q, qd, contacts)
    lambda_inv = jac @ minv @ jac.T
    lambda_inv += damping * np.eye(lambda_inv.shape[0])
    # Contact forces cancel the unconstrained contact acceleration.
    rhs = jac @ free_qdd + jdot_qd
    forces = -np.linalg.solve(lambda_inv, rhs)
    qdd = free_qdd + minv @ jac.T @ forces
    return ConstrainedDynamicsResult(qdd=qdd, contact_forces=forces)


def contact_impulse(
    model: RobotModel,
    q: np.ndarray,
    qd_minus: np.ndarray,
    contacts: list[ContactPoint],
    *,
    restitution: float = 0.0,
    damping: float = 1e-10,
) -> np.ndarray:
    """Post-impact velocity for an (in)elastic impact at the contacts.

    Solves ``J qd_plus = -e J qd_minus`` with the impulse acting through
    ``Minv J^T`` — e.g. a quadruped foot touching down.
    """
    qd_minus = np.asarray(qd_minus, dtype=float)
    minv = mass_matrix_inverse(model, q)
    jac = contact_jacobian(model, q, contacts)
    lambda_inv = jac @ minv @ jac.T + damping * np.eye(jac.shape[0])
    v_contact = jac @ qd_minus
    impulse = -np.linalg.solve(lambda_inv, (1.0 + restitution) * v_contact)
    return qd_minus + minv @ jac.T @ impulse
