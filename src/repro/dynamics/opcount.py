"""Analytical operation counts for the dynamics algorithms.

The accelerator cost model (stage service times, DSP usage) and the
CPU/GPU baseline models both consume these counts, so every performance
comparison in the benchmarks is driven by one shared notion of "work".

Counts are multiply-accumulate-ish operations per link, parametrized by the
structural facts the paper's sparsity optimizations exploit (Section
IV-A1): joint cost profiles (e.g. 8 multiplies to refresh a revolute X),
one-hot motion subspaces, the incremental column counts of the derivative
pipeline, and subtree-width column counts of MMinvGen.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dynamics.functions import RBDFunction
from repro.model.robot import RobotModel


@dataclass(frozen=True)
class OpCountParams:
    """Tunable per-primitive costs (in equivalent multiply operations).

    ``sparse_x`` toggles the paper's sparsity/constant optimization for the
    transform matrices; switching it off models a naive dense datapath (used
    by the ablation bench).
    """

    sparse_x: bool = True
    matvec_x_sparse: float = 20.0     # X @ vec exploiting Plücker structure
    matvec_x_dense: float = 36.0
    matvec_inertia: float = 20.0      # symmetric, 8-distinct-constant I @ vec
    cross_motion: float = 14.0
    cross_force: float = 14.0
    gyro_col: float = 24.0            # (crf_bar(Iv) + crf(v) I) @ column
    reciprocal: float = 4.0           # fixed<->float reciprocal trick
    s_project_dense: float = 6.0      # S^T x per DOF when S is not one-hot
    axpy6: float = 6.0                # 6-vector scale-add

    def matvec_x(self) -> float:
        return self.matvec_x_sparse if self.sparse_x else self.matvec_x_dense


DEFAULT_PARAMS = OpCountParams()


def _s_cost(model: RobotModel, i: int, params: OpCountParams) -> float:
    """Cost of one S-projection / S-expansion for joint i."""
    profile = model.joint(i).cost_profile()
    if profile.s_one_hot:
        return 0.0
    return params.s_project_dense * profile.nv


def derivative_columns(model: RobotModel, i: int) -> int:
    """Active derivative columns at link i: twice the supporting DOF count
    (q and qd blocks) — the paper's incremental column count (Fig 7b)."""
    return 2 * len(model.supporting_dofs(i))


def subtree_columns(model: RobotModel, i: int) -> int:
    """DOF columns owned by the subtree of link i (MMinvGen's F width)."""
    return sum(model.joint(j).cost_profile().nv for j in model.subtree(i))


def right_columns(model: RobotModel, i: int) -> int:
    """Columns to the right of link i's diagonal block (Mf sweep width)."""
    return model.nv - model.dof_slice(i).start


# ----------------------------------------------------------------------
# Per-submodule counts (the six RTP submodule types)
# ----------------------------------------------------------------------


def ops_rf(model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """RNEA forward submodule Rf_i: X refresh, v, a, f."""
    profile = model.joint(i).cost_profile()
    nv = profile.nv
    x_update = profile.x_mults if params.sparse_x else 66.0
    ops = x_update
    ops += 2 * params.matvec_x()                  # X v_parent, X a_parent
    ops += 2 * _s_cost(model, i, params) + 2 * nv * params.axpy6
    ops += params.cross_motion                    # v x vj
    ops += params.matvec_inertia                  # I a
    ops += params.matvec_inertia + params.cross_force   # v x* (I v)
    return ops


def ops_rb(model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """RNEA backward submodule Rb_i: X reupdate, tau, force push to parent."""
    profile = model.joint(i).cost_profile()
    x_update = profile.x_mults if params.sparse_x else 66.0
    ops = x_update                               # re-update X (Section IV-A2)
    ops += _s_cost(model, i, params)             # tau = S^T f
    ops += params.matvec_x()                     # X^T f
    return ops


def ops_df(model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """dRNEA forward submodule Df_i — cost grows with depth (Fig 7c)."""
    cols = derivative_columns(model, i)
    per_col = (
        2 * params.matvec_x()        # X dv_col, X da_col
        + params.cross_motion        # -crm(vj) dv_col
        + params.matvec_inertia      # I da_col
        + params.gyro_col            # gyro dv_col
    )
    setup = 2 * params.cross_motion * model.joint(i).cost_profile().nv
    return setup + cols * per_col


def ops_db(model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """dRNEA backward submodule Db_i."""
    cols = derivative_columns(model, i)
    per_col = params.matvec_x() + params.axpy6   # X^T df_col + accumulate
    own = params.cross_force * model.joint(i).cost_profile().nv
    projection = _s_cost(model, i, params) * cols
    return own + cols * per_col + projection


def ops_mb(
    model: RobotModel,
    i: int,
    params: OpCountParams = DEFAULT_PARAMS,
    *,
    out_minv: bool = True,
) -> float:
    """MMinvGen backward submodule Mb_i."""
    cols = subtree_columns(model, i)
    profile = model.joint(i).cost_profile()
    nv = profile.nv
    ops = _s_cost(model, i, params)              # U = IA S, D = S^T U
    ops += params.reciprocal * nv                # D^{-1} (fixed/float trick)
    ops += cols * nv                             # output row(s)
    if out_minv:
        ops += 6 * cols * nv                     # F += U Minv[i, cols]
        ops += 21.0 * nv                         # IA -= U D^{-1} U^T (sym)
    ops += cols * params.matvec_x()              # X^T F[:, cols]
    ops += 4 * params.matvec_x()                 # X^T IA X congruence (sym)
    return ops


def ops_mf(model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """MMinvGen forward submodule Mf_i (second sweep, Minv only)."""
    cols = right_columns(model, i)
    nv = model.joint(i).cost_profile().nv
    per_col = params.matvec_x() + 6.0 * nv + params.axpy6
    return cols * per_col


# ----------------------------------------------------------------------
# Whole-function counts (software baselines)
# ----------------------------------------------------------------------


def _sum_links(model: RobotModel, fn) -> float:
    return float(sum(fn(i) for i in range(model.nb)))


def ops_rnea(model: RobotModel, params: OpCountParams = DEFAULT_PARAMS) -> float:
    return _sum_links(model, lambda i: ops_rf(model, i, params) + ops_rb(model, i, params))


def ops_drnea(model: RobotModel, params: OpCountParams = DEFAULT_PARAMS) -> float:
    return _sum_links(model, lambda i: ops_df(model, i, params) + ops_db(model, i, params))


def ops_mminvgen(
    model: RobotModel, params: OpCountParams = DEFAULT_PARAMS, *, out_minv: bool = True
) -> float:
    total = _sum_links(
        model, lambda i: ops_mb(model, i, params, out_minv=out_minv)
    )
    if out_minv:
        total += _sum_links(model, lambda i: ops_mf(model, i, params))
    return total


def ops_aba_backward(
    model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS
) -> float:
    """ABA backward submodule (articulated inertia + bias propagation).

    The paper notes the Backward-Forward Module "has the potential to
    implement the ABA algorithm"; these counts size that option.
    """
    nv = model.joint(i).cost_profile().nv
    ops = _s_cost(model, i, params)              # U = IA S, D = S^T U
    ops += params.reciprocal * nv                # D^{-1}
    ops += 21.0 * nv                             # IA - U D^{-1} U^T (sym)
    ops += 4 * params.matvec_x()                 # X^T Ia X congruence
    ops += params.matvec_inertia + params.axpy6  # pa = p + Ia c + U u
    ops += params.matvec_x()                     # X^T pa
    return ops


def ops_aba_forward(
    model: RobotModel, i: int, params: OpCountParams = DEFAULT_PARAMS
) -> float:
    """ABA forward submodule (acceleration propagation)."""
    nv = model.joint(i).cost_profile().nv
    ops = params.matvec_x()                      # X a_parent
    ops += params.axpy6                          # + c bias
    ops += 7.0 * nv                              # qdd = Dinv (u - U^T a')
    ops += params.axpy6 * nv                     # a = a' + S qdd
    return ops


def ops_aba(model: RobotModel, params: OpCountParams = DEFAULT_PARAMS) -> float:
    """Whole-ABA cost (software FD baseline and the BF-module option)."""
    velocity_pass = _sum_links(
        model,
        lambda i: params.matvec_x() + params.cross_motion
        + params.matvec_inertia + params.cross_force,
    )
    return velocity_pass + _sum_links(
        model,
        lambda i: ops_aba_backward(model, i, params)
        + ops_aba_forward(model, i, params),
    )


def ops_matmul(n: int, m: int, k: int) -> float:
    """Dense matmul cost (Schedule Module products like Minv @ dtau)."""
    return float(n * m * k)


def function_ops(
    model: RobotModel,
    function: RBDFunction,
    params: OpCountParams = DEFAULT_PARAMS,
    *,
    software: bool = False,
) -> float:
    """Total work for one Table-I function.

    ``software=True`` counts what a CPU library does (e.g. ABA for FD);
    ``software=False`` counts the paper's hardware decomposition (Fig 9a).
    """
    nv = model.nv
    if function is RBDFunction.ID:
        return ops_rnea(model, params)
    if function is RBDFunction.M:
        return ops_mminvgen(model, params, out_minv=False)
    if function is RBDFunction.MINV:
        return ops_mminvgen(model, params, out_minv=True)
    if function is RBDFunction.FD:
        if software:
            return ops_aba(model, params)
        # C = RNEA(qdd=0); Minv; qdd = Minv (tau - C).
        return (
            ops_rnea(model, params)
            + ops_mminvgen(model, params, out_minv=True)
            + ops_matmul(nv, nv, 1)
        )
    if function is RBDFunction.DID:
        return ops_rnea(model, params) + ops_drnea(model, params)
    if function is RBDFunction.DIFD:
        return (
            ops_rnea(model, params)
            + ops_drnea(model, params)
            + ops_matmul(nv, nv, 2 * nv) / 2.0    # symmetric-A optimization
        )
    if function is RBDFunction.DFD:
        return (
            function_ops(model, RBDFunction.FD, params, software=software)
            + ops_rnea(model, params)
            + ops_drnea(model, params)
            + ops_matmul(nv, nv, 2 * nv) / 2.0
        )
    raise ValueError(f"unknown function {function!r}")


def without_sparsity(params: OpCountParams = DEFAULT_PARAMS) -> OpCountParams:
    """Params with the sparsity/constant optimization disabled (ablation)."""
    return replace(params, sparse_x=False)
