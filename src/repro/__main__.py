"""Command-line interface: inspect accelerator builds for library robots.

Examples::

    python -m repro list
    python -m repro engines
    python -m repro report iiwa
    python -m repro report atlas --function dID
    python -m repro timeline hyq --function ID --jobs 3
    python -m repro serve-bench iiwa --function FD --requests 512
    python -m repro serve-bench hyq --requests 256 --shards 4 \\
        --shard-policy least_loaded
    python -m repro rollout-bench --batch 256 --horizon 16
    python -m repro rollout-bench --workload quadruped_contact
    python -m repro trace iiwa --requests 32 --out TRACE_iiwa.json
    python -m repro trace hyq --prometheus

``engines`` probes the execution-engine registry and the array backends
(:mod:`repro.backend`): which engines are selectable, whether cupy/jax
are importable, and how many cores the process engine would use.

``serve-bench`` drives the :mod:`repro.serve` runtime with an open-loop
load twice — batch-size-1 dispatch vs dynamic batching — and prints the
service-level latency/throughput comparison.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.accelerator import DaduRBD
from repro.core.visualize import pipeline_timeline
from repro.dynamics.functions import RBDFunction
from repro.model.library import ROBOT_REGISTRY, load_robot


def _add_robot_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("robot", choices=sorted(ROBOT_REGISTRY),
                        help="robot model from the library")


def _function(name: str) -> RBDFunction:
    for f in RBDFunction:
        if f.value.lower() == name.lower():
            return f
    raise argparse.ArgumentTypeError(
        f"unknown function {name!r}; choose from "
        + ", ".join(f.value for f in RBDFunction)
    )


def cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(ROBOT_REGISTRY):
        model = load_robot(name)
        print(f"{name:16s} NB={model.nb:3d}  N={model.nv:3d}  "
              f"depth={model.max_depth()}")
    return 0


def cmd_engines(_args: argparse.Namespace) -> int:
    """Print the per-engine x per-backend capability matrix."""
    import os

    from repro.backend import backend_status, default_backend_name, get_backend
    from repro.dynamics.engine import (
        available_engines,
        default_engine_name,
        get_engine,
    )

    cores = os.cpu_count() or 1
    default = default_engine_name()
    notes = {
        "loop": "per-task scalar reference",
        "vectorized": "batch-native kernels, host numpy",
        "compiled": "structure-compiled plans (serve default); "
                    "in-place backends",
        "process": f"worker-process pool ({cores} core"
                   f"{'s' if cores != 1 else ''} available)",
        "jit": "trace-compiled functional kernels + fused rollout scan",
    }
    status = backend_status()
    caps = {
        name: get_backend(name).capabilities
        for name, st in status.items() if st["available"]
    }

    def cell(engine: str, backend: str) -> str:
        if backend not in caps:
            return "--"
        c = caps[backend]
        if engine == "compiled":
            return "yes" if c.inplace else "no"
        if engine == "jit":
            return "jit+scan" if (c.jit and c.scan) else "interp"
        return "yes" if backend == "numpy" else "no"

    backends = list(status)
    print("engines x backends:")
    header = "    " + f"{'engine':12s}" + "".join(
        f"{b:>10s}" for b in backends
    ) + "  notes"
    print(header)
    for name in available_engines():
        marker = "*" if name == default else " "
        row = "".join(f"{cell(name, b):>10s}" for b in backends)
        print(f"  {marker} {name:12s}{row}  {notes.get(name, '')}")
    print("    (* = process default; REPRO_ENGINE or set_default_engine"
          " overrides; -- = backend unavailable; interp = functional"
          " kernels run uncompiled)")
    print()
    print("backends:")
    default_backend = default_backend_name()
    for name, st in status.items():
        marker = "*" if name == default_backend else " "
        state = "ok " if st["available"] else "-- "
        detail = st["detail"]
        c = caps.get(name)
        if c is not None:
            detail += f", jit={c.jit}, scan={c.scan}"
        print(f"  {marker} {name:8s} {state}{detail}")
    print("    (* = default backend; REPRO_BACKEND overrides)")
    jit = get_engine("jit")
    stats = jit.compile_cache_stats()
    print()
    print(f"jit compile cache: backend={jit.backend_name} "
          f"entries={stats['entries']} hits={stats['hits']} "
          f"misses={stats['misses']}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    accelerator = DaduRBD(load_robot(args.robot))
    print(accelerator.describe())
    print()
    functions = [args.function] if args.function else list(RBDFunction)
    header = (f"{'function':6s} {'latency(us)':>12s} {'II(cyc)':>8s} "
              f"{'thr(M/s)':>9s} {'power(W)':>9s}")
    print(header)
    print("-" * len(header))
    for f in functions:
        print(
            f"{f.value:6s} "
            f"{accelerator.latency_seconds(f) * 1e6:12.2f} "
            f"{accelerator.initiation_interval(f):8.1f} "
            f"{accelerator.throughput_tasks_per_s(f, 256) / 1e6:9.2f} "
            f"{accelerator.power_w(f):9.1f}"
        )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    accelerator = DaduRBD(load_robot(args.robot))
    function = args.function or RBDFunction.ID
    print(pipeline_timeline(
        accelerator.graph(function), n_jobs=args.jobs, width=args.width
    ))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import format_serve_table, run_serve_load

    function = args.function or RBDFunction.FD
    print(f"serve-bench: {args.robot} {function.value}, "
          f"{args.requests} requests, {args.shards} shard(s), "
          f"policy={args.shard_policy}")
    runs = {
        "batch-1": dict(max_batch=1, max_wait_s=0.0),
        f"dynamic(max_batch={args.max_batch})": dict(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
        ),
    }
    stats = {}
    for label, knobs in runs.items():
        stats[label] = run_serve_load(
            args.robot, function, args.requests,
            shards=args.shards, shard_policy=args.shard_policy, **knobs,
        )
    print(format_serve_table(list(stats.items())))
    base = stats["batch-1"]["modeled_throughput_rps"]
    batched = [v for k, v in stats.items() if k != "batch-1"][0]
    if base <= 0:
        print("\nno batch-1 baseline throughput measured "
              "(too few requests?); speedup n/a")
        return 0
    speedup = batched["modeled_throughput_rps"] / base
    print(f"\ndynamic batching sustained-throughput speedup: {speedup:.1f}x")
    return 0


def cmd_rollout_bench(args: argparse.Namespace) -> int:
    from repro.rollout.bench import (
        SPEEDUP_TARGET,
        format_rollout_table,
        run_rollout_bench,
    )

    workloads = (
        [args.workload] if args.workload
        else ["serial", "quadruped_contact"]
    )
    print(f"rollout-bench: batch {args.batch}, horizon {args.horizon}, "
          f"engine {args.engine}")
    rows = [
        run_rollout_bench(workload, batch=args.batch, horizon=args.horizon,
                          engine=args.engine,
                          baseline_tasks=args.baseline_tasks)
        for workload in workloads
    ]
    print(format_rollout_table(rows).render())
    best = max(row["speedup"] for row in rows)
    print(f"\nbest batched-rollout speedup: {best:.1f}x "
          f"(target {SPEEDUP_TARGET:.0f}x at batch 256)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced serve workload and export the observability views.

    Drives a short :class:`~repro.serve.service.DynamicsService` load —
    plain requests, one urgent request, and one rollout carrying an
    external force — with a :class:`~repro.obs.Tracer` and
    :class:`~repro.obs.KernelProfiler` installed, then writes the
    Chrome-trace JSON (load it at ``chrome://tracing`` or
    https://ui.perfetto.dev) and prints the span summary and per-kernel
    breakdown.  ``--prometheus`` additionally dumps the unified
    telemetry registry in text exposition format.
    """
    import numpy as np

    from repro import obs
    from repro.serve import BatchPolicy, DynamicsService

    model = load_robot(args.robot)
    function = args.function or RBDFunction.FD
    rng = np.random.default_rng(args.seed)
    tracer = obs.Tracer()
    profiler = obs.KernelProfiler(per_level=args.per_level)
    obs.install(profiler=profiler, tracer=tracer)
    try:
        policy = BatchPolicy(max_batch=args.max_batch, max_wait_s=2e-3)
        with DynamicsService(policy=policy, n_shards=args.shards,
                             shard_policy="least_loaded",
                             warm_robots=[args.robot],
                             tracer=tracer) as service:
            futures = []
            for _ in range(args.requests):
                futures.append(service.submit(
                    args.robot, function,
                    rng.standard_normal(model.nv),
                    rng.standard_normal(model.nv),
                    rng.standard_normal(model.nv),
                ))
            # One urgent request: a singleton batch whose trace ID is the
            # execute span's primary, the easiest trace to follow.
            futures.append(service.submit(
                args.robot, function,
                rng.standard_normal(model.nv),
                rng.standard_normal(model.nv),
                rng.standard_normal(model.nv),
                urgent=True,
            ))
            # One rollout with an external force on the last link.
            futures.append(service.submit_rollout(
                args.robot,
                rng.standard_normal(model.nv) * 0.1,
                np.zeros(model.nv),
                rng.standard_normal((args.horizon, model.nv)) * 0.05,
                dt=1e-3,
                f_ext={model.nb - 1: np.array([0, 0, 0, 0, 0, -4.0])},
            ))
            service.flush()
            for future in futures:
                future.result(timeout=60.0)
            telemetry = service.telemetry()
    finally:
        obs.uninstall()

    out = args.out or f"TRACE_{args.robot}.json"
    tracer.export_chrome(out)
    summary = tracer.summary()
    print(f"trace: {summary['spans']} spans, {summary['traces']} traces "
          f"-> {out}")
    print()
    print(obs.format_summary(summary))
    print()
    print(obs.format_breakdown(profiler.breakdown()))
    if args.prometheus:
        print()
        print(telemetry.prometheus(), end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async dynamics server until interrupted.

    ``python -m repro serve --port 7431 --shards 2 --engine compiled``
    binds the JSON-line protocol plus the HTTP scrape surface
    (``/metrics``, ``/healthz``, ``/telemetry``) on one port;
    ``--autoscale`` attaches the demand-driven shard autoscaler;
    ``--rate-rps``/``--burst`` set the default tenant admission policy
    (connections override per-tenant via the hello op).
    """
    import asyncio

    from repro.aserve import (
        AdmissionController,
        AsyncDynamicsServer,
        Autoscaler,
        TenantPolicy,
    )
    from repro.serve import BatchPolicy, DynamicsService

    service = DynamicsService(
        policy=BatchPolicy(max_wait_s=args.max_wait_ms * 1e-3,
                           max_pending=args.max_pending),
        n_shards=args.shards,
        shard_policy="least_loaded",
        engine=args.engine,
        warm_robots=args.warm.split(",") if args.warm else None,
    )
    admission = AdmissionController(TenantPolicy(
        rate_rps=args.rate_rps, burst=args.burst or 2 * args.rate_rps,
    ))
    autoscaler = None
    if args.autoscale:
        autoscaler = Autoscaler(service, min_shards=1,
                                max_shards=args.max_shards)
    server = AsyncDynamicsServer(service, host=args.host, port=args.port,
                                 admission=admission,
                                 autoscaler=autoscaler)

    async def run() -> None:
        await server.start()
        print(f"serving dynamics on {args.host}:{server.port} "
              f"({args.shards} shard(s), engine={service.engine.name}, "
              f"autoscale={'on' if autoscaler else 'off'})")
        print(f"  scrape: http://{args.host}:{server.port}/metrics")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
    return 0


def cmd_serve_client(args: argparse.Namespace) -> int:
    """Connect to a running server and run a smoke workload.

    ``--selftest`` instead starts an in-process server on an ephemeral
    port, runs the same workload against it over a real socket, and
    tears everything down — the one-command health check CI uses.
    """
    import asyncio

    import numpy as np

    from repro.aserve import AsyncServeClient

    model = load_robot(args.robot)
    nv = model.nv

    async def workload(host: str, port: int) -> int:
        client = await AsyncServeClient.connect(
            host, port, tenant=args.tenant, priority=args.priority,
        )
        try:
            pong = await client.ping()
            print(f"ping -> {pong['op']}")
            q = np.zeros(nv)
            results = await asyncio.gather(*[
                client.submit(args.robot, "FD", q, q, q)
                for _ in range(args.requests)
            ])
            shards = sorted({r["shard"] for r in results})
            print(f"{len(results)} FD evaluations OK "
                  f"(shards {shards}, batch sizes up to "
                  f"{max(r['batch_size'] for r in results)})")
            windows = 0
            stream = await client.stream_rollout(
                args.robot, q, q, np.zeros((args.horizon, nv)),
                dt=1e-3, window=args.window,
            )
            async for w in stream:
                windows += 1
                if windows == 1:
                    print(f"first window [{w['window'][0]}, "
                          f"{w['window'][1]}) streamed")
            final = await stream.result()
            print(f"rollout streamed in {windows} windows "
                  f"(horizon {final['horizon']})")
            admin = await client.admin()
            print(f"admin: {admin['active_shards']} active shard(s), "
                  f"{len(admin['scale_events'])} scale event(s), "
                  f"health {[s['health'] for s in admin['shards']]}")
            return 0
        finally:
            await client.close()

    async def selftest() -> int:
        from repro.aserve import AsyncDynamicsServer
        from repro.serve import DynamicsService

        service = DynamicsService(n_shards=2, shard_policy="least_loaded")
        server = AsyncDynamicsServer(service, port=0)
        await server.start()
        print(f"selftest server on 127.0.0.1:{server.port}")
        try:
            return await workload("127.0.0.1", server.port)
        finally:
            await server.stop()
            service.close()
            print("selftest OK")

    if args.selftest:
        return asyncio.run(selftest())
    return asyncio.run(workload(args.host, args.port))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dadu-RBD reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list library robots").set_defaults(
        handler=cmd_list
    )

    sub.add_parser(
        "engines",
        help="list execution engines and array backends (with probes)",
    ).set_defaults(handler=cmd_engines)

    report = sub.add_parser("report", help="accelerator build report")
    _add_robot_argument(report)
    report.add_argument("--function", type=_function, default=None)
    report.set_defaults(handler=cmd_report)

    timeline = sub.add_parser("timeline", help="ASCII pipeline timeline")
    _add_robot_argument(timeline)
    timeline.add_argument("--function", type=_function, default=None)
    timeline.add_argument("--jobs", type=int, default=4)
    timeline.add_argument("--width", type=int, default=72)
    timeline.set_defaults(handler=cmd_timeline)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the repro.serve runtime (batching vs batch-1)",
    )
    _add_robot_argument(serve)
    serve.add_argument("--function", type=_function, default=None)
    serve.add_argument("--requests", type=int, default=512)
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--shard-policy", default="round_robin",
                       choices=("round_robin", "least_loaded"))
    serve.set_defaults(handler=cmd_serve_bench)

    rollout = sub.add_parser(
        "rollout-bench",
        help="benchmark batched trajectory rollouts vs per-task stepping",
    )
    rollout.add_argument("--workload", default=None,
                         choices=("serial", "quadruped_contact"))
    rollout.add_argument("--batch", type=int, default=64)
    rollout.add_argument("--horizon", type=int, default=16)
    rollout.add_argument("--engine", default="compiled")
    rollout.add_argument("--baseline-tasks", type=int, default=4)
    rollout.set_defaults(handler=cmd_rollout_bench)

    trace = sub.add_parser(
        "trace",
        help="run a traced serve workload; export Chrome-trace JSON "
             "and kernel/telemetry summaries",
    )
    _add_robot_argument(trace)
    trace.add_argument("--function", type=_function, default=None)
    trace.add_argument("--requests", type=int, default=32)
    trace.add_argument("--horizon", type=int, default=8)
    trace.add_argument("--max-batch", type=int, default=16)
    trace.add_argument("--shards", type=int, default=2)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--per-level", action="store_true",
                       help="record per-recursion-level kernel timing")
    trace.add_argument("--out", default=None,
                       help="Chrome-trace output path "
                            "(default TRACE_<robot>.json)")
    trace.add_argument("--prometheus", action="store_true",
                       help="also print the telemetry registry in "
                            "Prometheus text exposition format")
    trace.set_defaults(handler=cmd_trace)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the async dynamics server (JSON lines + HTTP scrape)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7431)
    serve_cmd.add_argument("--shards", type=int, default=2)
    serve_cmd.add_argument("--engine", default=None,
                           help="execution engine for shard workers "
                                "(default: compiled)")
    serve_cmd.add_argument("--max-wait-ms", type=float, default=2.0)
    serve_cmd.add_argument("--max-pending", type=int, default=8192)
    serve_cmd.add_argument("--rate-rps", type=float, default=1000.0,
                           help="default tenant rate limit (cost units/s)")
    serve_cmd.add_argument("--burst", type=float, default=None)
    serve_cmd.add_argument("--autoscale", action="store_true",
                           help="grow/shrink the shard pool from measured "
                                "demand vs capacity")
    serve_cmd.add_argument("--max-shards", type=int, default=8)
    serve_cmd.add_argument("--warm", default=None,
                           help="comma-separated robots to warm the "
                                "artifact cache with")
    serve_cmd.set_defaults(handler=cmd_serve)

    serve_client = sub.add_parser(
        "serve-client",
        help="smoke-test a running server (or --selftest in-process)",
    )
    serve_client.add_argument("--host", default="127.0.0.1")
    serve_client.add_argument("--port", type=int, default=7431)
    serve_client.add_argument("--robot", default="iiwa",
                              choices=sorted(ROBOT_REGISTRY))
    serve_client.add_argument("--requests", type=int, default=16)
    serve_client.add_argument("--horizon", type=int, default=32)
    serve_client.add_argument("--window", type=int, default=8)
    serve_client.add_argument("--tenant", default="cli")
    serve_client.add_argument("--priority", default="standard",
                              choices=("interactive", "standard", "batch"))
    serve_client.add_argument("--selftest", action="store_true",
                              help="start an in-process server on an "
                                   "ephemeral port and run against it")
    serve_client.set_defaults(handler=cmd_serve_client)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
