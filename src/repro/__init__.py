"""Dadu-RBD reproduction (MICRO 2023).

A pure-Python reproduction of "Dadu-RBD: Robot Rigid Body Dynamics
Accelerator with Multifunctional Pipelines": rigid-body-dynamics algorithms
(Table I), a functional + cycle-level model of the accelerator
(Round-Trip Pipelines, Structure-Adaptive Pipelines), calibrated baseline
platform models, and the applications the paper evaluates.
"""

from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.model.robot import RobotBuilder, RobotModel

__version__ = "1.0.0"

__all__ = [
    "RBDFunction",
    "RobotBuilder",
    "RobotModel",
    "load_robot",
    "__version__",
]
