"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(ReproError):
    """The robot model is malformed (bad tree, bad inertia, bad joint)."""


class ConfigurationError(ReproError):
    """An accelerator or baseline configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event pipeline simulation reached an inconsistent state."""


class DataflowError(ReproError):
    """A function request cannot be routed through the configured dataflow."""
