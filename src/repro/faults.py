"""Deterministic, seeded fault injection for resilience testing.

Production failure handling (retries, circuit breakers, poison
isolation, worker restarts) is only trustworthy if it is *exercised* —
so the serving stack carries named injection points at its failure
boundaries, and this module is the switchboard that arms them:

* ``"shard.execute"`` — fired by the serve runtime as a shard begins a
  coalesced batch (:mod:`repro.serve.service`).
* ``"engine.batch"`` — fired at the engine dispatch boundary
  (:func:`repro.dynamics.batch.batch_evaluate`), below the serving
  layer, so plan/kernel failures are reachable too.
* ``"process.worker"`` — fired in the parent as each chunk task is
  shipped to a process-engine worker; the decision rides to the worker
  in the task dict, where ``worker_kill`` becomes ``os._exit`` (real
  worker death, not a polite exception).

The design copies :mod:`repro.obs.hooks`: a module-level ``enabled``
bool is the only cost on the hot path when nothing is armed (one
module-attribute load and a branch — the chaos bench's "disabled adds
no measurable overhead" criterion leans on this), and installation is
explicit and process-global.

Determinism: every armed site draws from its own
``random.Random(f"{seed}:{site}")`` stream under a per-site lock, so
the k-th decision at a site is a pure function of (seed, site, k) no
matter how shard threads interleave — a failing chaos run replays
exactly from its seed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random

from repro.errors import ReproError
from repro.obs import hooks as _obs

#: Fault kinds an injection point can express.  ``latency`` sleeps,
#: ``exception`` raises :class:`InjectedFault`, ``worker_kill`` is
#: returned to the caller (only the process-engine parent knows how to
#: deliver death to a worker process).
KINDS = ("exception", "latency", "worker_kill")


class InjectedFault(ReproError):
    """Raised at an armed injection point (``kind="exception"``).

    ``retryable`` mirrors the arming :class:`FaultSpec` so retry
    policies can distinguish injected transients from injected poison.
    """

    def __init__(self, message: str, site: str = "",
                 retryable: bool = True, sequence: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.retryable = retryable
        self.sequence = sequence


@dataclass(frozen=True)
class FaultSpec:
    """Arming description for one injection site.

    ``rate`` is the per-fire fault probability; ``max_faults`` caps the
    total number of faults the site will produce (``None`` = unlimited)
    — a cap of 1 turns a site into a one-shot trigger, the shape most
    targeted tests want.
    """

    site: str
    rate: float = 1.0
    kind: str = "exception"
    latency_s: float = 0.0
    max_faults: int | None = None
    #: Whether injected exceptions should look transient (retry-worthy)
    #: or like poison (isolate-worthy) to the serving layer.
    retryable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be >= 0 (or None), got {self.max_faults}"
            )


@dataclass(frozen=True)
class FaultAction:
    """One positive injection decision, returned by :func:`fire`."""

    site: str
    kind: str
    latency_s: float
    retryable: bool
    #: 1-based count of faults this site has produced so far.
    sequence: int

    def apply(self) -> "FaultAction | None":
        """Deliver the fault inline where possible.

        ``latency`` sleeps and returns ``None`` (handled); ``exception``
        raises :class:`InjectedFault`.  Kinds the call site must deliver
        itself (``worker_kill``) are returned unhandled.
        """
        if self.kind == "latency":
            time.sleep(self.latency_s)
            return None
        if self.kind == "exception":
            raise InjectedFault(
                f"injected fault at {self.site!r} (#{self.sequence})",
                site=self.site, retryable=self.retryable,
                sequence=self.sequence,
            )
        return self


class _SiteState:
    """Per-site decision stream: spec + seeded RNG + counters."""

    __slots__ = ("spec", "rng", "lock", "calls", "fired")

    def __init__(self, spec: FaultSpec, rng: Random) -> None:
        self.spec = spec
        self.rng = rng
        self.lock = threading.Lock()
        self.calls = 0
        self.fired = 0


class FaultInjector:
    """Seeded decision engine over a set of armed injection sites."""

    def __init__(self, specs: "list[FaultSpec] | tuple[FaultSpec, ...]",
                 seed: int = 0) -> None:
        self.seed = seed
        self._sites: dict[str, _SiteState] = {}
        for spec in specs:
            if spec.site in self._sites:
                raise ValueError(f"duplicate fault site {spec.site!r}")
            self._sites[spec.site] = _SiteState(
                spec, Random(f"{seed}:{spec.site}")
            )

    def fire(self, site: str, **tags) -> FaultAction | None:
        """Draw one decision for ``site``; ``None`` means no fault.

        A positive decision is tagged into the active request trace (if
        any) so chaos-run traces show exactly where faults landed.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        spec = state.spec
        with state.lock:
            state.calls += 1
            if spec.max_faults is not None and state.fired >= spec.max_faults:
                return None
            if spec.rate < 1.0 and state.rng.random() >= spec.rate:
                return None
            state.fired += 1
            sequence = state.fired
        action = FaultAction(
            site=site, kind=spec.kind, latency_s=spec.latency_s,
            retryable=spec.retryable, sequence=sequence,
        )
        tracer = _obs.active_tracer()
        if tracer is not None:
            now = time.perf_counter()
            args = {"kind": spec.kind, "sequence": sequence}
            args.update(tags)
            tracer.record(f"fault.{site}", now, 0.0, inherit=True, args=args)
        return action

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site decision counts: ``{site: {"calls", "fired"}}``."""
        out = {}
        for site, state in self._sites.items():
            with state.lock:
                out[site] = {"calls": state.calls, "fired": state.fired}
        return out


# ----------------------------------------------------------------------
# Module switchboard (process-global, repro.obs.hooks-style)
# ----------------------------------------------------------------------

#: Fast gate read at every injection point.  True iff an injector is
#: installed — call sites guard with ``if _faults.enabled:`` so the
#: disarmed cost is one module-attribute load and a branch.
enabled: bool = False

_injector: FaultInjector | None = None
_lock = threading.Lock()


def install(injector: FaultInjector | None) -> None:
    """Install ``injector`` as the process-global fault source
    (``None`` disarms every site)."""
    global _injector, enabled
    with _lock:
        _injector = injector
        enabled = injector is not None


def uninstall() -> None:
    """Disarm all injection points."""
    install(None)


def active_injector() -> FaultInjector | None:
    return _injector


def fire(site: str, **tags) -> FaultAction | None:
    """Draw a decision for ``site`` from the installed injector (if any)."""
    if not enabled:
        return None
    injector = _injector
    if injector is None:
        return None
    return injector.fire(site, **tags)


def check(site: str, **tags) -> FaultAction | None:
    """Fire ``site`` and deliver inline kinds (sleep / raise).

    Returns the action only for kinds the caller must deliver itself
    (``worker_kill``); the common call site is just
    ``_faults.check("shard.execute", ...)``.
    """
    action = fire(site, **tags)
    if action is None:
        return None
    return action.apply()


@contextmanager
def injected(*specs: FaultSpec, seed: int = 0):
    """Arm ``specs`` for a ``with`` block, then restore the previous
    injector.  Yields the :class:`FaultInjector` (for ``.stats()``)."""
    injector = FaultInjector(specs, seed=seed)
    previous = _injector
    install(injector)
    try:
        yield injector
    finally:
        install(previous)
