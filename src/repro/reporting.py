"""Small table formatter for the benchmark harness.

Every bench prints a paper-vs-measured table through this module so the
output that lands in ``bench_output.txt`` / EXPERIMENTS.md has one format.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A fixed-width text table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "  "
        header = sep.join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [f"== {self.title} ==", header, rule]
        for row in cells:
            lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def ratio_line(name: str, measured: float, paper: float) -> str:
    """One-line paper-vs-measured comparison."""
    agreement = measured / paper if paper else float("nan")
    return (
        f"{name}: measured {format_value(measured)} "
        f"vs paper {format_value(paper)} (x{agreement:.2f})"
    )
