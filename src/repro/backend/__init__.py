"""Pluggable array backends: the one layer that owns ``import numpy``.

Dadu-RBD's datapath is structure-specialized but *operand-agnostic*: the
same pipelines serve every Table-I function because the schedule, not the
ALUs, encodes the robot.  The host-side analogue is that our kernels —
the spatial algebra, the vectorized engine and the compiled execution
plans — are written against a ~20-op array vocabulary (einsum with
precomputed paths, matmul, solve/cholesky, scatter/gather by flat index,
stack/where) that NumPy, CuPy and JAX all speak.  This package is the
shim those layers import instead of numpy:

* :class:`ArrayBackend` — one array runtime: its namespace (``.xp``),
  the op vocabulary as methods, and :class:`BackendCapabilities` flags
  the engines consult (in-place workspace mutation, device, einsum-path
  caching).
* :func:`get_backend` — registry lookup (``"numpy" | "cupy" | "jax"``)
  with graceful *not-installed* probing: an unavailable backend raises
  :class:`BackendUnavailable` naming the missing module, never an
  ``ImportError`` mid-kernel.  ``REPRO_BACKEND`` pins the process-wide
  default the same way ``REPRO_ENGINE`` pins the engine.
* :func:`array_namespace` — cheap type-dispatch (``cupy.ndarray`` →
  ``cupy``, jax array → ``jax.numpy``, everything else → numpy) so the
  broadcasting spatial layer serves whichever arrays the caller hands it
  without per-call configuration.

Execution plans allocate their constant stacks and workspaces on a
backend (:func:`repro.dynamics.plan.plan_for` keys its memo by backend
name), so the compiled engine runs unmodified wherever the ops exist;
backends whose arrays are immutable (JAX) advertise
``capabilities.inplace = False`` and the mutating engines refuse them
with a clean :class:`BackendCapabilityError` instead of failing mid-
recursion.
"""

from __future__ import annotations

import os
import threading

import numpy as _np

from repro.errors import ReproError


class BackendUnavailable(ReproError):
    """The requested backend's runtime is not installed/usable."""


class BackendCapabilityError(ReproError):
    """The selected backend lacks a capability the caller requires."""


class BackendCapabilities:
    """What an engine may assume about a backend's arrays.

    ``inplace``
        Arrays support in-place mutation (``a[i] = v``, ``+=`` views).
        The vectorized and compiled engines require this for their
        preallocated workspaces.
    ``device``
        Where the arrays live (``"cpu"`` or ``"gpu"``); serve placement
        uses it for throughput hints only.
    ``einsum_paths``
        ``einsum`` benefits from precomputed contraction paths (NumPy/
        CuPy); JAX traces/fuses its own.
    ``jit``
        :meth:`ArrayBackend.jit` performs real trace-compilation (JAX).
        Backends without it still *run* jitted callables — ``jit`` is
        the identity — so functional kernels stay portable, just
        uncompiled.
    ``scan``
        :meth:`ArrayBackend.scan` lowers to a fused structured loop
        (``lax.scan``) instead of the python fallback, so a whole
        rollout step loop compiles into one program.
    """

    __slots__ = ("inplace", "device", "einsum_paths", "jit", "scan")

    def __init__(self, *, inplace: bool, device: str,
                 einsum_paths: bool, jit: bool = False,
                 scan: bool = False) -> None:
        self.inplace = inplace
        self.device = device
        self.einsum_paths = einsum_paths
        self.jit = jit
        self.scan = scan

    def __repr__(self) -> str:
        return (f"BackendCapabilities(inplace={self.inplace}, "
                f"device={self.device!r}, "
                f"einsum_paths={self.einsum_paths}, "
                f"jit={self.jit}, scan={self.scan})")


class ArrayBackend:
    """One array runtime behind the kernel vocabulary.

    The base class implements every op against ``self.xp`` (the
    numpy-compatible namespace); concrete backends override only what
    their runtime spells differently.  All ops take/return the backend's
    native arrays; :meth:`to_numpy` / :meth:`from_numpy` cross the host
    boundary explicitly.
    """

    name: str = "abstract"

    def __init__(self, xp, capabilities: BackendCapabilities) -> None:
        self.xp = xp
        self.capabilities = capabilities
        #: expr (2-operand) or (expr, shapes) -> precomputed einsum path.
        #: Two-operand contractions have a shape-independent optimal path
        #: (one pairwise contraction), so the expression alone keys them.
        self._einsum_paths: dict = {}
        self._einsum_lock = threading.Lock()

    # -- construction ---------------------------------------------------
    def asarray(self, a, dtype=None):
        return self.xp.asarray(a, dtype=dtype)

    def zeros(self, shape, dtype=float):
        return self.xp.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype=float):
        return self.xp.empty(shape, dtype=dtype)

    def eye(self, n, dtype=float):
        return self.xp.eye(n, dtype=dtype)

    def arange(self, *args, dtype=None):
        return self.xp.arange(*args, dtype=dtype)

    # -- restructuring --------------------------------------------------
    def stack(self, arrays, axis=0):
        return self.xp.stack(arrays, axis=axis)

    def concatenate(self, arrays, axis=0):
        return self.xp.concatenate(arrays, axis=axis)

    def broadcast_to(self, a, shape):
        return self.xp.broadcast_to(a, shape)

    def swapaxes(self, a, axis1, axis2):
        return self.xp.swapaxes(a, axis1, axis2)

    def moveaxis(self, a, source, destination):
        return self.xp.moveaxis(a, source, destination)

    def atleast_2d(self, a):
        return self.xp.atleast_2d(a)

    def where(self, cond, a, b):
        return self.xp.where(cond, a, b)

    # -- gather / scatter by flat index ---------------------------------
    def take(self, a, indices, axis=0):
        """Gather rows/slabs by an integer index array."""
        return self.xp.take(a, indices, axis=axis)

    def index_add(self, a, indices, values, axis=0):
        """Scatter-accumulate ``values`` into ``a`` at ``indices`` along
        ``axis`` (duplicate indices sum).  Mutates and returns ``a`` on
        in-place backends."""
        if axis == 0:
            self.xp.add.at(a, indices, values)
        else:
            sl = [slice(None)] * a.ndim
            sl[axis] = indices
            self.xp.add.at(a, tuple(sl), values)
        return a

    # -- functional (out-of-place) scatter ------------------------------
    # ``idx`` is a tuple mixing slices and integer index arrays, exactly
    # the subscripts numpy fancy indexing accepts.  The input is never
    # mutated: the host fallback copies, JAX lowers to ``.at[idx]`` so a
    # jitted program sees a pure scatter op (XLA elides the copy).

    def at_set(self, a, idx, values):
        """Return ``a`` with ``a[idx] = values`` applied out-of-place."""
        out = a.copy()
        out[idx] = values
        return out

    def at_add(self, a, idx, values):
        """Return ``a`` with ``a[idx] += values`` applied out-of-place;
        duplicate indices accumulate (``np.add.at`` semantics)."""
        out = a.copy()
        self.xp.add.at(out, idx, values)
        return out

    # -- trace compilation ----------------------------------------------
    def jit(self, fn, static_argnums=()):
        """Trace-compile ``fn`` end-to-end where the runtime supports it
        (``capabilities.jit``); the host fallback returns ``fn`` as-is so
        functional kernels run everywhere, just interpreted."""
        return fn

    def scan(self, f, init, xs=None, length=None):
        """``lax.scan``-style structured fold: ``f(carry, x) -> (carry,
        y)`` applied over the leading axis of ``xs`` (or ``length``
        steps), returning ``(final_carry, stacked_ys)``.  The host
        fallback is a python loop; jit-capable backends fuse the whole
        loop into one compiled program."""
        n = length if xs is None else xs.shape[0] if hasattr(xs, "shape") \
            else len(xs)
        carry = init
        ys = []
        for t in range(n):
            carry, y = f(carry, None if xs is None else xs[t])
            ys.append(y)
        if not ys:
            return carry, None
        if isinstance(ys[0], tuple):
            stacked = tuple(
                self.stack([y[k] for y in ys]) for k in range(len(ys[0]))
            )
        else:
            stacked = self.stack(ys)
        return carry, stacked

    # -- contractions ---------------------------------------------------
    def matmul(self, a, b, out=None):
        if out is None:
            return self.xp.matmul(a, b)
        return self.xp.matmul(a, b, out=out)

    def einsum(self, expr: str, *ops, out=None):
        """``einsum`` with a memoized contraction path.

        The plan's contractions run thousands of times per second on the
        serve hot path; the optimal order is derived once per expression
        (or per expression+shape for 3+ operands) and replayed.
        """
        if not self.capabilities.einsum_paths:
            if out is None:
                return self.xp.einsum(expr, *ops)
            return self.xp.einsum(expr, *ops, out=out)
        key = expr if len(ops) == 2 else (
            expr, tuple(op.shape for op in ops)
        )
        path = self._einsum_paths.get(key)
        if path is None:
            path = self.xp.einsum_path(expr, *ops, optimize="optimal")[0]
            with self._einsum_lock:
                self._einsum_paths[key] = path
        if out is None:
            return self.xp.einsum(expr, *ops, optimize=path)
        return self.xp.einsum(expr, *ops, out=out, optimize=path)

    # -- linear algebra -------------------------------------------------
    def solve(self, a, b):
        return self.xp.linalg.solve(a, b)

    def inv(self, a):
        return self.xp.linalg.inv(a)

    def cholesky(self, a):
        return self.xp.linalg.cholesky(a)

    # -- host boundary --------------------------------------------------
    def to_numpy(self, a) -> _np.ndarray:
        """Materialize a backend array on the host as ``numpy.ndarray``."""
        return _np.asarray(a)

    def from_numpy(self, a: _np.ndarray):
        """Place a host array on this backend (no-op for numpy)."""
        return self.xp.asarray(a)

    def synchronize(self) -> None:
        """Block until queued device work is done (no-op on the host)."""

    def is_native(self, a) -> bool:
        """True when ``a`` is this backend's array type."""
        return isinstance(a, self.xp.ndarray)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class NumpyBackend(ArrayBackend):
    """The reference backend: host NumPy, in-place, cached einsum paths."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__(_np, BackendCapabilities(
            inplace=True, device="cpu", einsum_paths=True,
        ))

    def to_numpy(self, a) -> _np.ndarray:
        return a if isinstance(a, _np.ndarray) else _np.asarray(a)

    def from_numpy(self, a: _np.ndarray):
        return a


def _make_cupy_backend() -> ArrayBackend:
    try:
        import cupy
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'cupy' is not available: the cupy package is not "
            f"installed ({exc})"
        ) from None

    class CupyBackend(ArrayBackend):
        """CUDA arrays via CuPy: in-place like NumPy, device-resident."""

        name = "cupy"

        def __init__(self) -> None:
            super().__init__(cupy, BackendCapabilities(
                inplace=True, device="gpu", einsum_paths=True,
            ))

        def to_numpy(self, a) -> _np.ndarray:
            return cupy.asnumpy(a)

        def synchronize(self) -> None:
            cupy.cuda.get_current_stream().synchronize()

    return CupyBackend()


def _make_jax_backend() -> ArrayBackend:
    try:
        import jax
        import jax.numpy as jnp
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'jax' is not available: the jax package is not "
            f"installed ({exc})"
        ) from None

    # The equivalence contract is 1e-10 against the float64 loop
    # reference; jax defaults to float32, so the backend opts into x64
    # once at construction (before any array is built).
    jax.config.update("jax_enable_x64", True)

    class JaxBackend(ArrayBackend):
        """JAX arrays: immutable (``capabilities.inplace=False``), so the
        mutating engines refuse it cleanly; the functional kernels run on
        it via ``at_set``/``at_add`` and compile via ``jit``/``scan``."""

        name = "jax"

        def __init__(self) -> None:
            device = jax.default_backend()
            super().__init__(jnp, BackendCapabilities(
                inplace=False,
                device="gpu" if device in ("gpu", "tpu") else "cpu",
                einsum_paths=False,
                jit=True,
                scan=True,
            ))

        def index_add(self, a, indices, values, axis=0):
            if axis == 0:
                return a.at[indices].add(values)
            sl = [slice(None)] * a.ndim
            sl[axis] = indices
            return a.at[tuple(sl)].add(values)

        def at_set(self, a, idx, values):
            return a.at[idx].set(values)

        def at_add(self, a, idx, values):
            return a.at[idx].add(values)

        def jit(self, fn, static_argnums=()):
            return jax.jit(fn, static_argnums=static_argnums)

        def scan(self, f, init, xs=None, length=None):
            return jax.lax.scan(f, init, xs=xs, length=length)

        def to_numpy(self, a) -> _np.ndarray:
            return _np.asarray(a)

        def is_native(self, a) -> bool:
            return isinstance(a, jnp.ndarray)

    return JaxBackend()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKEND_FACTORIES = {
    "numpy": NumpyBackend,
    "cupy": _make_cupy_backend,
    "jax": _make_jax_backend,
}
_BACKENDS: dict[str, ArrayBackend] = {}
#: name -> the BackendUnavailable a failed probe raised.  A runtime that
#: is not installed stays not-installed for the life of the process, so
#: the (slow, exception-driven) import attempt runs at most once; every
#: later ``get_backend`` replays the memoized error.
_BACKEND_FAILURES: dict[str, BackendUnavailable] = {}
_REGISTRY_LOCK = threading.Lock()

#: The host backend is always available and instantiated eagerly — it is
#: the compilation substrate every plan builds on.
_HOST = NumpyBackend()
_BACKENDS["numpy"] = _HOST

#: Process-wide default, overridable via the REPRO_BACKEND env var.  A
#: bad env value is reported lazily (first use) so importing the package
#: never fails for commands that touch no kernel.
_default_backend_name = os.environ.get("REPRO_BACKEND", "numpy")
_default_backend_explicit = "REPRO_BACKEND" in os.environ


def host_backend() -> ArrayBackend:
    """The always-available NumPy backend (the compilation substrate)."""
    return _HOST


def registered_backends() -> tuple[str, ...]:
    """Names of every backend the registry knows (installed or not)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def available_backends() -> tuple[str, ...]:
    """Names of the backends whose runtime actually imports."""
    out = []
    for name in registered_backends():
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return tuple(out)


def backend_status() -> dict[str, dict]:
    """Probe every registered backend: ``{name: {available, detail}}``.

    Used by ``python -m repro engines``; probing never raises.
    """
    status = {}
    for name in registered_backends():
        try:
            backend = get_backend(name)
        except BackendUnavailable as exc:
            status[name] = {"available": False, "detail": str(exc)}
            continue
        xp = backend.xp
        version = getattr(xp, "__version__", None)
        if version is None:  # jax.numpy has no __version__
            import importlib

            version = getattr(importlib.import_module(name), "__version__",
                              "unknown")
        status[name] = {
            "available": True,
            "detail": (f"{name} {version}, device={backend.capabilities.device}, "
                       f"inplace={backend.capabilities.inplace}"),
        }
    return status


def default_backend_name() -> str:
    """The backend used when a call does not name one."""
    if _default_backend_name not in _BACKEND_FACTORIES:
        raise KeyError(
            f"REPRO_BACKEND={_default_backend_name!r} names an unknown "
            f"backend; known backends: {registered_backends()}"
        )
    return _default_backend_name


def default_backend_explicit() -> bool:
    """Whether the process default was pinned by the user."""
    return _default_backend_explicit


def set_default_backend(name: str | None) -> None:
    """Pin the process-wide default backend, or un-pin with ``None``
    (restoring the ``REPRO_BACKEND`` env var / built-in ``"numpy"``).

    The named backend must be registered *and* importable — pinning an
    uninstalled backend raises :class:`BackendUnavailable` eagerly rather
    than failing on first kernel call.
    """
    global _default_backend_name, _default_backend_explicit
    if name is None:
        _default_backend_name = os.environ.get("REPRO_BACKEND", "numpy")
        _default_backend_explicit = "REPRO_BACKEND" in os.environ
        return
    get_backend(name)  # validates registration + availability
    _default_backend_name = name
    _default_backend_explicit = True


def get_backend(backend: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend argument: instance, name, or None (the default).

    Raises :class:`KeyError` for unregistered names and
    :class:`BackendUnavailable` for registered-but-uninstalled runtimes.
    """
    if backend is None:
        backend = default_backend_name()
    if isinstance(backend, ArrayBackend):
        return backend
    cached = _BACKENDS.get(backend)
    if cached is not None:
        return cached
    failure = _BACKEND_FAILURES.get(backend)
    if failure is not None:
        raise failure
    factory = _BACKEND_FACTORIES.get(backend)
    if factory is None:
        raise KeyError(
            f"unknown backend {backend!r}; known backends: "
            f"{registered_backends()}"
        )
    try:
        instance = factory()
    except BackendUnavailable as exc:
        with _REGISTRY_LOCK:
            _BACKEND_FAILURES.setdefault(backend, exc)
        raise
    with _REGISTRY_LOCK:
        return _BACKENDS.setdefault(backend, instance)


# ---------------------------------------------------------------------------
# Namespace dispatch for the broadcasting spatial layer
# ---------------------------------------------------------------------------

#: type -> numpy-compatible namespace.  Host types are pre-seeded so the
#: overwhelmingly common all-numpy call is one dict hit per operand.
_NS_BY_TYPE: dict[type, object] = {
    _np.ndarray: _np,
    float: _np, int: _np, list: _np, tuple: _np, bool: _np,
    _np.float64: _np, _np.float32: _np, _np.int64: _np, _np.intp: _np,
}


def _resolve_namespace(cls: type):
    module = getattr(cls, "__module__", "") or ""
    root = module.split(".", 1)[0]
    if root == "cupy":
        return get_backend("cupy").xp
    if root in ("jax", "jaxlib"):
        # JAX arrays are immutable; the kernels that consult this
        # dispatch build their outputs with in-place writes, so jax
        # operands are materialized on the host instead (numpy coerces
        # them via __array__) — same behavior as before the shim.
        return _np
    return _np


def array_namespace(*arrays):
    """The numpy-compatible namespace serving these operands.

    The first array from a non-host *in-place* backend wins (mixing
    device arrays from two backends in one op is a caller bug numpy
    itself would reject); plain numbers, sequences, numpy arrays — and
    arrays from immutable-array backends like JAX, which the in-place
    kernels cannot build on directly — resolve to numpy.
    """
    for a in arrays:
        cls = a.__class__
        ns = _NS_BY_TYPE.get(cls)
        if ns is None:
            ns = _resolve_namespace(cls)
            _NS_BY_TYPE[cls] = ns
        if ns is not _np:
            return ns
    return _np


def to_host(a):
    """Materialize ``a`` on the host: numpy arrays pass through untouched,
    device arrays are transferred via their backend."""
    if isinstance(a, _np.ndarray) or not hasattr(a, "__array__"):
        return a
    ns = array_namespace(a)
    if ns is _np:
        return _np.asarray(a)
    for backend in _BACKENDS.values():
        if backend.xp is ns:
            return backend.to_numpy(a)
    return _np.asarray(a)


__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendUnavailable",
    "NumpyBackend",
    "array_namespace",
    "available_backends",
    "backend_status",
    "default_backend_explicit",
    "default_backend_name",
    "get_backend",
    "host_backend",
    "registered_backends",
    "set_default_backend",
    "to_host",
]
