"""GPU baseline model (GRiD-style batched dynamics).

GPUs hide memory latency with occupancy: per-task throughput ramps up with
batch size until enough blocks are resident, which the classic
latency-hiding curve ``throughput(b) = peak * b / (b + b50)`` captures.
Batch time is therefore::

    t(batch) = launch_overhead + (batch + b50) * task_seconds

Small batches pay the launch cost and starved occupancy (Dadu-RBD wins);
very large batches amortize everything and the big GPU overtakes —
reproducing both ends of Fig 17 and the batch-dependent speedups of
Fig 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platforms import GpuPlatform
from repro.dynamics.functions import RBDFunction
from repro.dynamics.opcount import OpCountParams, function_ops
from repro.model.robot import RobotModel

#: GPU libraries keep the robot generic too, but fuse kernels well;
#: overhead sits between the FPGA (1.0) and the CPU library.
SOFTWARE_OVERHEAD = 1.3


@dataclass
class GpuDynamicsModel:
    """Latency/throughput model for one (platform, robot) pair."""

    platform: GpuPlatform
    robot: RobotModel
    op_params: OpCountParams = OpCountParams()

    def task_ops(self, function: RBDFunction) -> float:
        return SOFTWARE_OVERHEAD * function_ops(
            self.robot, function, self.op_params, software=True
        )

    def task_seconds(self, function: RBDFunction) -> float:
        """Per-task time at full occupancy."""
        return self.task_ops(function) * self.platform.seconds_per_op

    def latency_seconds(self, function: RBDFunction) -> float:
        """Single-task latency: launch + a lone, occupancy-starved task
        (GRiD's weak spot)."""
        return self.batch_seconds(function, 1)

    def batch_seconds(self, function: RBDFunction, batch: int) -> float:
        return (
            self.platform.launch_overhead_s
            + (batch + self.platform.b50) * self.task_seconds(function)
        )

    def throughput_tasks_per_s(self, function: RBDFunction, batch: int) -> float:
        return batch / self.batch_seconds(function, batch)

    def peak_throughput_tasks_per_s(self, function: RBDFunction) -> float:
        return 1.0 / self.task_seconds(function)

    def batch_curve(
        self, function: RBDFunction, batches: tuple[int, ...]
    ) -> list[tuple[int, float]]:
        """(batch, seconds) pairs — the Fig 17 measurement."""
        return [(b, self.batch_seconds(function, b)) for b in batches]
