"""Hardware platform descriptors (the paper's Table II).

``seconds_per_op`` values are calibration constants: they map our shared
op-count model to wall time per platform and are fit once so the average
latency/throughput ratios of Section VI-A land on the paper's numbers (the
fit is checked by tests and reported by the benchmarks).  The structural
parameters (cores, SMs, launch overheads, bandwidth-style thread scaling)
drive every *shape* — batch curves, saturation, crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuPlatform:
    """A multicore CPU running a Pinocchio-style dynamics library."""

    name: str
    frequency_hz: float
    cores: int
    threads: int
    seconds_per_op: float          # single-thread time per model op
    serial_fraction: float         # Amdahl term of the batch loop
    contention: float              # per-extra-thread memory penalty
    power_w: float

    def thread_speedup(self, threads: int) -> float:
        """Memory-bottlenecked scaling (the Fig 2b curve)."""
        threads = max(1, min(threads, self.threads))
        return 1.0 / (
            self.serial_fraction
            + (1.0 - self.serial_fraction) / threads
            + self.contention * (threads - 1)
        )

    def best_threads(self) -> int:
        return max(
            range(1, self.threads + 1), key=self.thread_speedup
        )


@dataclass(frozen=True)
class GpuPlatform:
    """A CUDA GPU running a GRiD-style batched dynamics library.

    ``b50`` is the occupancy half-saturation batch: per-task throughput
    follows ``peak * batch / (batch + b50)`` (latency-hiding ramp), so
    batch time is ``launch + (batch + b50) * task_seconds``.
    """

    name: str
    frequency_hz: float
    sms: int
    b50: float                     # occupancy half-saturation batch size
    seconds_per_op: float          # per-op time at full occupancy
    launch_overhead_s: float       # kernel launch + host sync
    power_w: float


# --- Table II platforms ------------------------------------------------------

AGX_ORIN_CPU = CpuPlatform(
    name="AGX Orin CPU (12x A78AE @2.2GHz)",
    frequency_hz=2.2e9,
    cores=12,
    threads=12,
    seconds_per_op=4.79e-10,
    serial_fraction=0.03,
    contention=0.046,
    power_w=30.0,
)

I9_13900HX = CpuPlatform(
    name="i9-13900HX (@5.4GHz, 32 threads)",
    frequency_hz=5.4e9,
    cores=24,
    threads=32,
    seconds_per_op=1.69e-10,
    serial_fraction=0.02,
    contention=0.0226,
    power_w=140.0,
)

I7_7700 = CpuPlatform(
    name="i7-7700 (4 cores @3.6GHz)",
    frequency_hz=3.6e9,
    cores=4,
    threads=4,
    seconds_per_op=1.295e-10,
    serial_fraction=0.03,
    contention=0.062,
    power_w=65.0,
)

AGX_ORIN_GPU = GpuPlatform(
    name="AGX Orin GPU (2048-core Ampere @1.3GHz)",
    frequency_hz=1.3e9,
    sms=16,
    b50=64.0,
    seconds_per_op=1.028e-10,
    launch_overhead_s=18e-6,
    power_w=30.0,
)

RTX_4090M = GpuPlatform(
    name="RTX 4090 Mobile (76 SM @1.8GHz)",
    frequency_hz=1.8e9,
    sms=76,
    b50=750.0,
    seconds_per_op=5.81e-12,
    launch_overhead_s=9e-6,
    power_w=175.0,
)

RTX_2080 = GpuPlatform(
    name="RTX 2080 (46 SM @1.7GHz)",
    frequency_hz=1.7e9,
    sms=46,
    b50=20.0,
    seconds_per_op=1.612e-11,
    launch_overhead_s=8e-6,
    power_w=215.0,
)
