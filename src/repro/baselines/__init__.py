"""Baseline platform models: CPU (Pinocchio-like), GPU (GRiD-like),
Robomorphic FPGA, plus the paper's published anchor numbers."""

from repro.baselines import calibration
from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.gpu import GpuDynamicsModel
from repro.baselines.platforms import (
    AGX_ORIN_CPU,
    AGX_ORIN_GPU,
    I7_7700,
    I9_13900HX,
    RTX_2080,
    RTX_4090M,
    CpuPlatform,
    GpuPlatform,
)
from repro.baselines.robomorphic import RobomorphicModel

__all__ = [
    "AGX_ORIN_CPU",
    "AGX_ORIN_GPU",
    "CpuDynamicsModel",
    "CpuPlatform",
    "GpuDynamicsModel",
    "GpuPlatform",
    "I7_7700",
    "I9_13900HX",
    "RTX_2080",
    "RTX_4090M",
    "RobomorphicModel",
    "calibration",
]
