"""CPU baseline model (Pinocchio-style library).

Per-task time is the shared op count times the platform's calibrated
per-op speed, with a software overhead factor (a CPU library cannot bake
robot constants into the datapath the way the FPGA does).  Batched
throughput adds the memory-bottlenecked thread scaling of Fig 2b and a
work-distribution ramp: small batches cannot feed all threads, which is
exactly why the paper's Fig 16 CPU speedups *shrink* as the batch grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.platforms import CpuPlatform
from repro.dynamics.functions import RBDFunction
from repro.dynamics.opcount import OpCountParams, function_ops
from repro.model.robot import RobotModel

#: Extra work a general-purpose library does per model op (bookkeeping,
#: no constant folding, cache misses on the round trip).
SOFTWARE_OVERHEAD = 1.6

#: Tasks one thread grabs at a time when a batch is distributed.
TASKS_PER_GRAIN = 8


@dataclass
class CpuDynamicsModel:
    """Latency/throughput model for one (platform, robot) pair."""

    platform: CpuPlatform
    robot: RobotModel
    op_params: OpCountParams = OpCountParams()

    def task_ops(self, function: RBDFunction) -> float:
        return SOFTWARE_OVERHEAD * function_ops(
            self.robot, function, self.op_params, software=True
        )

    def latency_seconds(self, function: RBDFunction) -> float:
        """Single-thread, single-task latency (the Fig 15 left column)."""
        return self.task_ops(function) * self.platform.seconds_per_op

    def effective_threads(self, batch: int) -> int:
        """Threads a batch can actually feed (grain-limited)."""
        return max(1, min(self.platform.threads,
                          math.ceil(batch / TASKS_PER_GRAIN)))

    def batch_seconds(
        self, function: RBDFunction, batch: int, threads: int | None = None
    ) -> float:
        if threads is None:
            threads = self.effective_threads(batch)
        speedup = self.platform.thread_speedup(threads)
        return batch * self.latency_seconds(function) / speedup

    def throughput_tasks_per_s(
        self, function: RBDFunction, batch: int, threads: int | None = None
    ) -> float:
        return batch / self.batch_seconds(function, batch, threads)

    def multithread_curve(
        self, function: RBDFunction, batch: int, max_threads: int | None = None
    ) -> list[tuple[int, float]]:
        """(threads, relative time) pairs — the Fig 2b measurement."""
        max_threads = max_threads or self.platform.threads
        base = self.batch_seconds(function, batch, threads=1)
        return [
            (t, self.batch_seconds(function, batch, threads=t) / base)
            for t in range(1, max_threads + 1)
        ]
