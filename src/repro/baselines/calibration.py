"""Every number taken from the paper, in one place.

These are the anchors the baseline models are calibrated against and the
values the benchmark harness prints next to our measurements
(EXPERIMENTS.md records the comparison).  Nothing outside this module
hard-codes a paper result.
"""

from __future__ import annotations

# --- Section VI-A text ratios (3 robots x 6 functions, averaged) ------------
#: Ours / platform single-task latency (lower = we are faster).
LATENCY_RATIO_VS_AGX_CPU = (0.12, 0.29, 0.55)        # (min, avg, max)
LATENCY_RATIO_VS_I9 = (0.34, 0.82, 1.91)

#: Ours / platform throughput (higher = we are faster), 256-task batches.
THROUGHPUT_RATIO_VS_AGX_CPU = (8.1, 19.2, 43.6)
THROUGHPUT_RATIO_VS_AGX_GPU = (3.5, 7.2, 13.4)
THROUGHPUT_RATIO_VS_I9 = (4.1, 8.2, 20.2)
THROUGHPUT_RATIO_VS_RTX4090M = (0.5, 1.4, 2.8)

# --- Section VI-A anchors ----------------------------------------------------
#: Single-task diFD latency for iiwa (microseconds).
DIFD_IIWA_LATENCY_US_OURS = 0.76
DIFD_IIWA_LATENCY_US_ROBOMORPHIC = 0.61

# --- Fig 16: batched diFD speedups over prior work [12], [33] ----------------
#: batch -> (vs Robomorphic FPGA, vs i7-7700 CPU, vs RTX 2080 GPU).
FIG16_SPEEDUPS = {
    16: (7.0, 13.0, 11.3),
    32: (6.7, 11.1, 7.3),
    64: (6.4, 10.7, 4.8),
    128: (6.3, 10.3, 3.4),
}

# --- Fig 17: batched dFD vs GPUs ---------------------------------------------
#: The RTX 4090M overtakes Dadu-RBD beyond this batch size.
FIG17_CROSSOVER_BATCH = 512
FIG17_BATCHES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

# --- Section VI-B end-to-end application -------------------------------------
ENDTOEND_TASK_SPEEDUP = 11.2
ENDTOEND_CONTROL_FREQ_GAIN = 0.80          # +80%
#: Fig 2c: share of "Derivatives of Dynamics" in the application profile.
FIG2C_DERIVATIVES_SHARE = 0.2361
#: Fig 2b: multithreaded runtime stops improving beyond ~8 threads.
FIG2B_SATURATION_THREADS = 8

# --- Section VI-C resources / power / energy ---------------------------------
RESOURCE_DSP_UTILIZATION = 0.62
RESOURCE_FF_UTILIZATION = 0.17
RESOURCE_LUT_UTILIZATION = 0.54
POWER_RANGE_W = (6.2, 36.8)
POWER_DIFD_W = 31.2
ROBOMORPHIC_POWER_W = 9.6
#: Dadu-RBD diFD speed vs Robomorphic (same chip), energy and EDP ratios.
SPEED_RATIO_VS_ROBOMORPHIC = 6.6
ENERGY_RATIO_ROBOMORPHIC_OVER_OURS = 2.0
EDP_RATIO_VS_ROBOMORPHIC = 13.2

# --- Evaluation protocol -------------------------------------------------
LATENCY_TASKS = 128            # single-thread latency measurement load
THROUGHPUT_BATCH = 256         # batched throughput measurement load
