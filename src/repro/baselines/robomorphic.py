"""Robomorphic baseline model (Neuman et al., ASPLOS 2021).

Robomorphic accelerates exactly one function (diFD) with two large
latency-optimized cores — one for the forward sweep, one for the backward
sweep — coarsely pipelined against each other (the paper's Fig 4c).  Its
latency is excellent (0.61 us for iiwa at 56 MHz) but, with only two
pipeline stages and near-zero overlap inside a core, its initiation
interval is essentially the whole core latency, which is where Dadu-RBD's
6.3-7.0x batched speedup (Fig 16) comes from.  It also needs the host CPU
for Minv and the final products, which we fold into the per-task time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.calibration import (
    DIFD_IIWA_LATENCY_US_ROBOMORPHIC,
    ROBOMORPHIC_POWER_W,
)
from repro.core.config import ROBOMORPHIC_CLOCK_HZ
from repro.dynamics.functions import RBDFunction
from repro.dynamics.opcount import OpCountParams, function_ops
from repro.model.library import iiwa
from repro.model.robot import RobotModel


@dataclass
class RobomorphicModel:
    """Latency/throughput model of the Robomorphic FPGA design."""

    robot: RobotModel
    clock_hz: float = ROBOMORPHIC_CLOCK_HZ
    #: Fraction of a task's time hidden by the fwd/bwd core overlap.
    pipeline_overlap: float = 0.13
    power_w: float = ROBOMORPHIC_POWER_W

    SUPPORTED = frozenset({RBDFunction.DIFD})

    def __post_init__(self) -> None:
        # Anchor: iiwa diFD at 0.61 us; other robots scale with the op
        # count ratio (their methodology parameterizes the same datapath by
        # robot morphology).
        ref_ops = function_ops(iiwa(), RBDFunction.DIFD, OpCountParams())
        robot_ops = function_ops(self.robot, RBDFunction.DIFD, OpCountParams())
        self._latency_s = (
            DIFD_IIWA_LATENCY_US_ROBOMORPHIC * 1e-6 * robot_ops / ref_ops
        )

    def supports(self, function: RBDFunction) -> bool:
        return function in self.SUPPORTED

    def latency_seconds(self, function: RBDFunction) -> float:
        self._check(function)
        return self._latency_s

    def initiation_interval_seconds(self, function: RBDFunction) -> float:
        self._check(function)
        return self._latency_s * (1.0 - self.pipeline_overlap)

    def batch_seconds(self, function: RBDFunction, batch: int) -> float:
        self._check(function)
        return (
            self._latency_s
            + max(batch - 1, 0) * self.initiation_interval_seconds(function)
        )

    def throughput_tasks_per_s(self, function: RBDFunction, batch: int) -> float:
        return batch / self.batch_seconds(function, batch)

    def _check(self, function: RBDFunction) -> None:
        if not self.supports(function):
            raise ValueError(
                f"Robomorphic only implements diFD, not {function.value}"
            )
