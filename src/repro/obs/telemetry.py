"""Exportable telemetry: Counter/Gauge/Histogram/Summary + expositions.

A small Prometheus-flavoured metric facade.  The serving layer's
:class:`~repro.serve.metrics.MetricsRegistry` remains the ingest path —
it is tuned for lock-cheap recording on the request path — and this
module is the *export* shape: ``MetricsRegistry.telemetry()`` and
``DynamicsService.telemetry()`` project their internal state into a
:class:`Telemetry` registry, which renders either Prometheus text
exposition (``prometheus()``) or a JSON document (``to_json()``).

Families are typed (counter / gauge / histogram / summary) and samples
are keyed by a label set, so per-engine / per-backend / per-shard
splits come out as labelled series the way a scraper expects:

    repro_serve_batches_total{engine="compiled"} 42
    repro_request_latency_seconds{quantile="0.99"} 0.0042
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _labelset(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labelset: tuple, extra: dict | None = None) -> str:
    pairs = list(labelset)
    if extra:
        pairs += sorted((str(k), str(v)) for k, v in extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> "Counter":
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        return self

    def set(self, value: float) -> "Counter":
        """Set the absolute count (projection from an upstream
        accumulator that already did the summing)."""
        self.value = float(value)
        return self

    def expose(self, name: str, labelset: tuple) -> list[str]:
        return [f"{name}{_render_labels(labelset)} {_fmt(self.value)}"]

    def data(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> "Gauge":
        self.value = float(value)
        return self

    def inc(self, amount: float = 1.0) -> "Gauge":
        self.value += amount
        return self

    def dec(self, amount: float = 1.0) -> "Gauge":
        self.value -= amount
        return self

    def expose(self, name: str, labelset: tuple) -> list[str]:
        return [f"{name}{_render_labels(labelset)} {_fmt(self.value)}"]

    def data(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(self, buckets: tuple = ()) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, weight: int = 1) -> "Histogram":
        self.count += weight
        self.sum += value * weight
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += weight
        return self

    def expose(self, name: str, labelset: tuple) -> list[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative = count
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(labelset, {'le': _fmt(bound)})} "
                f"{cumulative}"
            )
        lines.append(
            f"{name}_bucket{_render_labels(labelset, {'le': '+Inf'})} "
            f"{self.count}"
        )
        lines.append(f"{name}_sum{_render_labels(labelset)} {_fmt(self.sum)}")
        lines.append(f"{name}_count{_render_labels(labelset)} {self.count}")
        return lines

    def data(self) -> dict:
        return {
            "buckets": {_fmt(b): c for b, c in zip(self.buckets, self.counts)},
            "count": self.count,
            "sum": self.sum,
        }


class Summary:
    """Pre-computed quantiles (projection of a latency reservoir)."""

    kind = "summary"

    def __init__(self) -> None:
        self.quantiles: dict[float, float] = {}
        self.count = 0
        self.sum = 0.0

    def set(self, quantiles: dict[float, float], count: int,
            total: float) -> "Summary":
        self.quantiles = {float(q): float(v) for q, v in quantiles.items()}
        self.count = int(count)
        self.sum = float(total)
        return self

    def expose(self, name: str, labelset: tuple) -> list[str]:
        lines = []
        for q in sorted(self.quantiles):
            lines.append(
                f"{name}{_render_labels(labelset, {'quantile': _fmt(q)})} "
                f"{repr(self.quantiles[q])}"
            )
        lines.append(f"{name}_sum{_render_labels(labelset)} {_fmt(self.sum)}")
        lines.append(f"{name}_count{_render_labels(labelset)} {self.count}")
        return lines

    def data(self) -> dict:
        return {
            "quantiles": {_fmt(q): v for q, v in self.quantiles.items()},
            "count": self.count,
            "sum": self.sum,
        }


@dataclass
class _Family:
    name: str
    kind: str
    help: str
    samples: dict = field(default_factory=dict)  # labelset -> metric


class Telemetry:
    """A registry of metric families with Prometheus/JSON expositions."""

    _TYPES = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram, "summary": Summary}

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _metric(self, kind: str, name: str, help: str, labels: dict,
                **ctor_kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        key = _labelset(labels)
        metric = family.samples.get(key)
        if metric is None:
            metric = family.samples[key] = (
                self._TYPES[kind](**ctor_kwargs)
            )
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._metric("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._metric("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "", *,
                  buckets: tuple = (), **labels) -> Histogram:
        return self._metric("histogram", name, help, labels,
                            buckets=buckets)

    def summary(self, name: str, help: str = "", **labels) -> Summary:
        return self._metric("summary", name, help, labels)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            full = f"{self.namespace}_{name}" if self.namespace else name
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            for labelset in sorted(family.samples):
                lines.extend(family.samples[labelset].expose(full, labelset))
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON document: family -> {type, help, samples: [{labels, ...}]}"""
        doc: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            doc[name] = {
                "type": family.kind,
                "help": family.help,
                "samples": [
                    {"labels": dict(labelset),
                     "value": family.samples[labelset].data()}
                    for labelset in sorted(family.samples)
                ],
            }
        return doc

    def json_text(self, indent: int = 1) -> str:
        return json.dumps(self.to_json(), indent=indent)
