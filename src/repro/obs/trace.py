"""Structured tracing: nested spans, per-request trace IDs, exporters.

The paper reads its design off per-stage timing breakdowns (pipeline
latency per function unit, batch makespan, Fig. 15 / Table I); the
reproduction's equivalent is a :class:`Tracer` that can follow one
request from ``DynamicsService.submit`` through the batcher's queue,
the shard executor, and down into the engine kernels — all stamped with
the request's trace ID so a single grep over the exported Chrome trace
reconstructs its life.

Design constraints:

* **Cross-thread continuation.**  A serve request is born on the caller
  thread, waits in the batcher, and executes on a shard thread.  Spans
  therefore carry explicit ``trace_id``/``parent_id`` fields; implicit
  nesting via a thread-local stack is only used *within* a thread
  (e.g. kernel sections nested under the shard's batch-execute span).
* **Retroactive recording.**  Queue-wait is only known when the batch
  flushes, so :meth:`Tracer.record` accepts a start timestamp measured
  earlier (same ``time.perf_counter`` clock) and books the span after
  the fact.
* **Bounded memory.**  Finished spans live in a ring buffer; overflow
  increments ``dropped`` instead of growing without limit.

Exporters: :meth:`Tracer.chrome_trace` emits the ``chrome://tracing`` /
Perfetto JSON array format ("X" complete events plus "M" thread-name
metadata); :meth:`Tracer.summary` aggregates a flat per-span-name
profile for terminal output.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Span:
    """One timed section, possibly nested, possibly tied to a trace."""

    name: str
    span_id: int
    trace_id: str | None
    parent_id: int | None
    start_s: float
    end_s: float = 0.0
    thread_id: int = 0
    thread_name: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


class _ActiveSpan:
    """Mutable in-flight span handle (context-manager form)."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def set(self, **args) -> None:
        """Attach key/value annotations to the span."""
        self.span.args.update(args)

    @property
    def trace_id(self) -> str | None:
        return self.span.trace_id

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.span.args.setdefault("error", repr(exc))
        self.tracer._finish(self.span)


class Tracer:
    """Collect nested spans across threads; export Chrome trace / summary.

    All timestamps use ``time.perf_counter`` (the same clock the engine
    profiling hooks use), re-based to the tracer's construction time so
    exported traces start near zero.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.epoch_s = time.perf_counter()
        self.dropped = 0
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._capacity = capacity
        self._lock = threading.Lock()
        self._local = threading.local()
        self._trace_counter = itertools.count(1)
        self._span_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def new_trace_id(self) -> str:
        """Mint a process-unique request trace ID."""
        return f"t{next(self._trace_counter):06x}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, *, trace_id: str | None = None,
             args: dict | None = None) -> _ActiveSpan:
        """Open a span as a context manager, nested under this thread's
        current span.  ``trace_id`` defaults to the enclosing span's."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._span_counter),
            trace_id=trace_id,
            parent_id=parent.span_id if parent else None,
            start_s=time.perf_counter(),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            args=dict(args) if args else {},
        )
        stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:          # tolerate out-of-order exits
            stack.remove(span)
        self._append(span)

    def record(self, name: str, start_s: float, duration_s: float, *,
               trace_id: str | None = None, parent_id: int | None = None,
               inherit: bool = False, args: dict | None = None) -> Span:
        """Book an already-measured interval (retroactive span).

        ``start_s`` must come from ``time.perf_counter``.  With
        ``inherit=True`` the span adopts this thread's current open span
        as parent (and its trace ID, unless one is given) — how engine
        kernel sections end up nested under the shard's batch span.
        """
        if inherit:
            parent = self.current_span()
            if parent is not None:
                if parent_id is None:
                    parent_id = parent.span_id
                if trace_id is None:
                    trace_id = parent.trace_id
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._span_counter),
            trace_id=trace_id,
            parent_id=parent_id,
            start_s=start_s,
            end_s=start_s + max(duration_s, 0.0),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            args=dict(args) if args else {},
        )
        self._append(span)
        return span

    def _append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._capacity:
                self.dropped += 1
            self._spans.append(span)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """All finished spans stamped with ``trace_id``, in start order.

        A span matches if it carries the ID directly or lists it in an
        ``args["trace_ids"]`` membership annotation (batch-level spans
        cover every request coalesced into the batch).
        """
        out = [
            s for s in self.spans()
            if s.trace_id == trace_id
            or trace_id in s.args.get("trace_ids", ())
        ]
        out.sort(key=lambda s: s.start_s)
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def chrome_trace(self) -> list[dict]:
        """Events in the Chrome trace ("X" complete-event) JSON format."""
        pid = os.getpid()
        spans = self.spans()
        events: list[dict] = []
        seen_threads: dict[int, str] = {}
        for s in spans:
            if s.thread_id not in seen_threads:
                seen_threads[s.thread_id] = s.thread_name
        for tid, tname in sorted(seen_threads.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname or f"thread-{tid}"},
            })
        for s in spans:
            args = dict(s.args)
            if s.trace_id is not None:
                args["trace_id"] = s.trace_id
            events.append({
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": (s.start_s - self.epoch_s) * 1e6,
                "dur": s.duration_s * 1e6,
                "pid": pid,
                "tid": s.thread_id,
                "args": args,
            })
        return events

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome-trace JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace(), indent=1))
        return path

    def summary(self) -> dict:
        """Flat per-span-name aggregate: count, total/mean/max seconds."""
        by_name: dict[str, dict] = {}
        traces: set[str] = set()
        spans = self.spans()
        for s in spans:
            if s.trace_id is not None:
                traces.add(s.trace_id)
            row = by_name.setdefault(
                s.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += s.duration_s
            row["max_s"] = max(row["max_s"], s.duration_s)
        for row in by_name.values():
            row["mean_s"] = row["total_s"] / row["count"]
        return {
            "spans": len(spans),
            "traces": len(traces),
            "dropped": self.dropped,
            "by_name": dict(sorted(
                by_name.items(), key=lambda kv: -kv[1]["total_s"]
            )),
        }


def format_summary(summary: dict) -> str:
    """Render :meth:`Tracer.summary` as an aligned terminal table."""
    lines = [
        f"spans={summary['spans']} traces={summary['traces']}"
        f" dropped={summary['dropped']}",
        f"{'span':<40} {'count':>7} {'total_ms':>10} "
        f"{'mean_us':>10} {'max_us':>10}",
    ]
    for name, row in summary["by_name"].items():
        lines.append(
            f"{name:<40} {row['count']:>7} {row['total_s'] * 1e3:>10.3f} "
            f"{row['mean_s'] * 1e6:>10.1f} {row['max_s'] * 1e6:>10.1f}"
        )
    return "\n".join(lines)
