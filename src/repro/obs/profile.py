"""Kernel-time profiling: per-(robot, kernel) and per-level breakdowns.

The accelerator paper's cost model is built from per-stage timings —
each recursion level of RNEA/ABA occupies the pipeline for a known
cycle count.  The host-side analogue is a :class:`KernelProfiler` that
the engine layer feeds through :mod:`repro.obs.hooks`: every plan
kernel sweep (``transforms``, ``rnea``, ``aba``, ``mminvgen``,
``rnea_derivatives``), the contact KKT/Schur sections, rollout steps,
and the engine dispatch itself record ``(robot, kernel, seconds,
rows)`` tuples, optionally annotated with the recursion level index.

The profiler is additive and mergeable: process-pool workers run their
own instance and ship :meth:`snapshot` dicts back with the chunk
results, which the parent folds in with :meth:`merge` — the same
mechanism a distributed deployment would use.
"""

from __future__ import annotations

import threading


class KernelStat:
    """Accumulated timing for one (robot, kernel) pair."""

    __slots__ = ("calls", "total_s", "max_s", "rows", "levels")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.rows = 0
        #: level index -> [calls, total_s]; populated only in per-level
        #: mode and only by kernels that sweep recursion levels.
        self.levels: dict[int, list] = {}

    def add(self, seconds: float, rows: int) -> None:
        self.calls += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)
        self.rows += rows

    def add_level(self, level: int, seconds: float) -> None:
        slot = self.levels.setdefault(level, [0, 0.0])
        slot[0] += 1
        slot[1] += seconds


class KernelProfiler:
    """Thread-safe accumulator for engine kernel timings.

    ``per_level=True`` additionally records each recursion level's share
    inside the level-swept kernels (rnea/aba) — more overhead, finer
    answer to "which depth of the iiwa tree dominates".
    """

    def __init__(self, per_level: bool = False) -> None:
        self.per_level = bool(per_level)
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, str], KernelStat] = {}

    # ------------------------------------------------------------------
    # Recording (called from repro.obs.hooks on the hot path)
    # ------------------------------------------------------------------

    def record(self, robot: str, kernel: str, seconds: float,
               rows: int = 1) -> None:
        key = (robot, kernel)
        with self._lock:
            stat = self._stats.get(key)
            if stat is None:
                stat = self._stats[key] = KernelStat()
            stat.add(seconds, rows)

    def record_level(self, robot: str, kernel: str, level: int,
                     seconds: float) -> None:
        key = (robot, kernel)
        with self._lock:
            stat = self._stats.get(key)
            if stat is None:
                stat = self._stats[key] = KernelStat()
            stat.add_level(level, seconds)

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------

    def breakdown(self) -> dict[tuple[str, str], dict]:
        """(robot, kernel) -> {calls, total_s, mean_s, max_s, rows,
        levels}, ordered by descending total time."""
        with self._lock:
            items = [
                (key, {
                    "calls": stat.calls,
                    "total_s": stat.total_s,
                    "mean_s": stat.total_s / stat.calls if stat.calls else 0.0,
                    "max_s": stat.max_s,
                    "rows": stat.rows,
                    "levels": {
                        lvl: {"calls": c, "total_s": t}
                        for lvl, (c, t) in sorted(stat.levels.items())
                    },
                })
                for key, stat in self._stats.items()
            ]
        items.sort(key=lambda kv: -kv[1]["total_s"])
        return dict(items)

    def snapshot(self) -> dict:
        """JSON-serializable form of :meth:`breakdown` (keys joined as
        ``"robot/kernel"``) — the wire format process workers ship back
        and benches attach to their ``BENCH_*.json``."""
        return {
            "per_level": self.per_level,
            "kernels": {
                f"{robot}/{kernel}": row
                for (robot, kernel), row in self.breakdown().items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another profiler (e.g. a process
        worker) into this one."""
        kernels = snapshot.get("kernels", {})
        with self._lock:
            for key, row in kernels.items():
                robot, _, kernel = key.partition("/")
                stat = self._stats.get((robot, kernel))
                if stat is None:
                    stat = self._stats[(robot, kernel)] = KernelStat()
                stat.calls += int(row.get("calls", 0))
                stat.total_s += float(row.get("total_s", 0.0))
                stat.max_s = max(stat.max_s, float(row.get("max_s", 0.0)))
                stat.rows += int(row.get("rows", 0))
                for lvl, lrow in row.get("levels", {}).items():
                    slot = stat.levels.setdefault(int(lvl), [0, 0.0])
                    slot[0] += int(lrow.get("calls", 0))
                    slot[1] += float(lrow.get("total_s", 0.0))

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()


def format_breakdown(breakdown: dict) -> str:
    """Render :meth:`KernelProfiler.breakdown` as an aligned table.

    Accepts either the tuple-keyed breakdown or the string-keyed
    :meth:`~KernelProfiler.snapshot` ``kernels`` dict.
    """
    lines = [
        f"{'robot':<18} {'kernel':<24} {'calls':>7} {'rows':>9} "
        f"{'total_ms':>10} {'mean_us':>10}"
    ]
    for key, row in breakdown.items():
        if isinstance(key, tuple):
            robot, kernel = key
        else:
            robot, _, kernel = key.partition("/")
        lines.append(
            f"{robot:<18} {kernel:<24} {row['calls']:>7} {row['rows']:>9} "
            f"{row['total_s'] * 1e3:>10.3f} {row['mean_s'] * 1e6:>10.1f}"
        )
        for lvl, lrow in row.get("levels", {}).items():
            mean_us = (
                lrow["total_s"] / lrow["calls"] * 1e6 if lrow["calls"] else 0.0
            )
            lines.append(
                f"{'':<18} {f'  level {lvl}':<24} {lrow['calls']:>7} "
                f"{'':>9} {lrow['total_s'] * 1e3:>10.3f} {mean_us:>10.1f}"
            )
    return "\n".join(lines)
