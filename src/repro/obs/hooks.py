"""Process-global instrumentation switchboard for the engine hot path.

The engine kernels (:mod:`repro.dynamics.plan`, contact solves, rollout
steps) are the innermost loops of the whole system; they cannot afford
an attribute-lookup-and-dict-check tax per call when nobody is
profiling.  This module therefore keeps the gate as cheap as possible:

* ``enabled`` / ``per_level`` are module-level booleans; the kernels
  read them with one module-attribute load.
* :func:`kernel_begin` returns ``None`` when disabled — the matching
  :func:`kernel_end` is then a single ``is None`` test.  The disabled
  cost of an instrumented section is two function calls and one branch.
* Per-level timing inside the recursion sweeps is gated on
  :func:`level_begin` returning ``None`` unless a profiler explicitly
  asked for level resolution (it multiplies the record volume by tree
  depth).

Installation is explicit and global (one profiler/tracer pair per
process): :func:`install` wires a :class:`~repro.obs.profile.KernelProfiler`
and/or a :class:`~repro.obs.trace.Tracer`; :func:`uninstall` restores
the zero-cost state.  The :func:`profiled` context manager wraps the
common enable-run-snapshot-disable pattern.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter as _now

#: Fast gate read by the engine kernels.  True iff a profiler or tracer
#: is installed.
enabled: bool = False
#: Fast gate for per-level records inside recursion sweeps.
per_level: bool = False

_profiler = None
_tracer = None
_lock = threading.Lock()


def install(profiler=None, tracer=None) -> None:
    """Install a profiler and/or tracer as the process-global sinks.

    Passing ``None`` for either leaves that sink uninstalled;
    re-installing replaces both (call :func:`uninstall` first if you
    want to be explicit).
    """
    global _profiler, _tracer, enabled, per_level
    with _lock:
        _profiler = profiler
        _tracer = tracer
        enabled = profiler is not None or tracer is not None
        per_level = bool(profiler is not None
                         and getattr(profiler, "per_level", False))


def uninstall() -> None:
    """Remove any installed sinks; instrumentation reverts to no-ops."""
    global _profiler, _tracer, enabled, per_level
    with _lock:
        _profiler = None
        _tracer = None
        enabled = False
        per_level = False


def active_profiler():
    return _profiler


def active_tracer():
    return _tracer


@contextmanager
def profiled(profiler=None, tracer=None):
    """Enable instrumentation for a ``with`` block, then restore.

    Yields the profiler (a fresh :class:`KernelProfiler` if none is
    given).  Not reentrant — sinks are process-global.
    """
    from .profile import KernelProfiler

    prof = profiler if profiler is not None else KernelProfiler()
    prev = (_profiler, _tracer)
    install(profiler=prof, tracer=tracer)
    try:
        yield prof
    finally:
        install(profiler=prev[0], tracer=prev[1])


# ----------------------------------------------------------------------
# Hot-path hooks
# ----------------------------------------------------------------------

def kernel_begin():
    """Start a kernel section; returns ``None`` when instrumentation is
    off (making the matching :func:`kernel_end` a no-op)."""
    return _now() if enabled else None


def kernel_end(t0, robot: str, kernel: str, rows: int = 1,
               args: dict | None = None) -> None:
    """Close a kernel section opened by :func:`kernel_begin`.

    Feeds the profiler's (robot, kernel) accumulator and — when a tracer
    is installed — books a span nested under the calling thread's
    current open span (so kernels appear inside the shard's
    batch-execute span with its trace ID).
    """
    if t0 is None:
        return
    duration = _now() - t0
    prof = _profiler
    if prof is not None:
        prof.record(robot, kernel, duration, rows)
    tracer = _tracer
    if tracer is not None:
        span_args = {"rows": rows}
        if args:
            span_args.update(args)
        tracer.record(f"{robot}.{kernel}", t0, duration,
                      inherit=True, args=span_args)


def level_begin():
    """Start a per-level section; ``None`` unless level profiling is on."""
    return _now() if per_level else None


def level_end(t0, robot: str, kernel: str, level: int) -> None:
    """Close a per-level section (profiler only — levels are too
    fine-grained to trace as spans)."""
    if t0 is None:
        return
    prof = _profiler
    if prof is not None:
        prof.record_level(robot, kernel, level, _now() - t0)
