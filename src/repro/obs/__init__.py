"""repro.obs — tracing, kernel profiling, and exportable telemetry.

Three cooperating pieces, all disabled by default:

* :class:`Tracer` — nested spans with per-request trace IDs, propagated
  from ``DynamicsService.submit``/``submit_rollout`` through the
  batcher, shard dispatch, and engine kernels; exports Chrome-trace
  JSON (``chrome://tracing`` / Perfetto) and a flat summary.
* :class:`KernelProfiler` — per-(robot, kernel) and opt-in per-level
  timing fed by hooks inside the execution-plan kernels, the batched
  contact solve, the rollout step loop, and process-pool workers
  (worker snapshots merge into the parent).
* :class:`Telemetry` — Counter/Gauge/Histogram/Summary facade with
  Prometheus text and JSON expositions; ``MetricsRegistry.telemetry()``
  and ``DynamicsService.telemetry()`` project serving state into it.

Hot-path gating lives in :mod:`repro.obs.hooks`; ``install()`` /
``uninstall()`` wire the process-global sinks the engine layer checks.
"""

from . import hooks
from .hooks import install, uninstall, profiled
from .profile import KernelProfiler, format_breakdown
from .telemetry import Counter, Gauge, Histogram, Summary, Telemetry
from .trace import Span, Tracer, format_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "Span",
    "Summary",
    "Telemetry",
    "Tracer",
    "format_breakdown",
    "format_summary",
    "hooks",
    "install",
    "profiled",
    "uninstall",
]
