"""Batched trajectory rollouts with engine-native contact dynamics.

The paper's headline applications — MPC sampling, trajectory
optimization, the Fig 13 RK4-with-sensitivities workload — consume
dynamics as *trajectories*, and its motivating robots are legged, so
those trajectories are contact-constrained.  This subsystem simulates
whole batches of trajectories as ``(n, T, ...)`` slabs on the existing
engine/plan/backend stack:

* :class:`RolloutEngine` / :class:`RolloutPlan`
  (:mod:`repro.rollout.engine`) — Euler / semi-implicit / RK4
  integrators advancing the whole batch per step, per-step contact-mode
  masks solved inside one batched KKT factorization
  (:mod:`repro.dynamics.contact_batch`), optional exact discrete
  ``A``/``B`` sensitivity propagation, and per-(model, scheme, engine,
  backend) plans with preallocated trajectory workspaces (memoized in
  :func:`rollout_plan_for` and the serve artifact cache).
* Rollout-as-a-service — ``DynamicsService.submit_rollout`` batches
  whole-trajectory requests with horizon-aware flush budgets and
  horizon-weighted shard placement (:mod:`repro.serve`).
* :func:`repro.rollout.bench.run_rollout_bench` — batched-slab vs
  per-task-stepping throughput (``python -m repro rollout-bench``,
  ``benchmarks/bench_rollout.py``).

Consumers: :func:`repro.apps.integrators.batch_rollout` (the batched
integrator API), the iLQR forward pass (:mod:`repro.apps.trajopt`
batches its line-search fan), and
:class:`repro.apps.mpc.PredictiveSamplingMPC` (sampling MPC over rollout
slabs — the Monte-Carlo / RL-style workload class).
"""

from repro.rollout.engine import (
    SCHEMES,
    RolloutEngine,
    RolloutPlan,
    RolloutResult,
    RolloutWorkspace,
    TaskTrajectory,
    concat_windows,
    rollout_plan_for,
)

__all__ = [
    "SCHEMES",
    "RolloutEngine",
    "RolloutPlan",
    "concat_windows",
    "RolloutResult",
    "RolloutWorkspace",
    "TaskTrajectory",
    "rollout_plan_for",
]
