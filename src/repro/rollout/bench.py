"""Rollout benchmark: batched ``(n, T)`` slabs vs per-task stepping.

Two workloads, mirroring the paper's application mix:

* ``serial`` — free RK4 rollouts on the iiwa arm (the Fig 13 shape:
  serial in time, parallel across sampling points);
* ``quadruped_contact`` — semi-implicit rollouts on HyQ with two feet in
  contact (the legged-MPC shape: every step is a constrained FD).

The per-task baseline steps each trajectory with the scalar kernels —
the loop ``repro.apps.integrators`` ran before the rollout subsystem —
timed on a task subsample and scaled to the full batch (stated in the
emitted rows as ``baseline_tasks_measured``).  Used by
``python -m repro rollout-bench`` and ``benchmarks/bench_rollout.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dynamics.contact import ContactPoint, constrained_forward_dynamics
from repro.dynamics.functions import forward_dynamics
from repro.model.library import load_robot
from repro.rollout import RolloutEngine

#: Acceptance target at batch 256 (and the CI smoke floor).
SPEEDUP_TARGET = 5.0
SPEEDUP_FLOOR = 1.0


def _workload(name: str):
    """(robot, scheme, contacts) for a named workload."""
    if name == "serial":
        return "iiwa", "rk4", None
    if name == "quadruped_contact":
        model = load_robot("hyq")
        feet = [
            ContactPoint(model.link_index(link), np.array([0.0, 0.0, -0.35]))
            for link in ("lf_kfe", "rh_kfe")
        ]
        return "hyq", "semi_implicit", feet
    raise ValueError(f"unknown workload {name!r}")


def _scalar_rollout(model, q0, qd0, controls, dt, scheme, contacts):
    """Per-task reference stepping with the scalar kernels."""
    q, qd = q0.copy(), qd0.copy()
    for t in range(controls.shape[0]):
        tau = controls[t]
        if contacts:
            qdd = constrained_forward_dynamics(model, q, qd, tau,
                                               contacts).qdd
            qd = qd + dt * qdd
            q = model.integrate(q, dt * qd)
        elif scheme == "rk4":
            from repro.apps.integrators import State, rk4_step

            state = rk4_step(model, State(q, qd), tau, dt)
            q, qd = state.q, state.qd
        else:
            qdd = forward_dynamics(model, q, qd, tau)
            qd = qd + dt * qdd
            q = model.integrate(q, dt * qd)
    return q, qd


def run_rollout_bench(
    workload: str = "serial",
    batch: int = 256,
    horizon: int = 16,
    engine: str = "compiled",
    baseline_tasks: int = 8,
    dt: float = 1e-3,
    seed: int = 0,
) -> dict:
    """Time one workload; returns a flat result row.

    The batched side simulates the whole ``(batch, horizon)`` slab via
    :class:`~repro.rollout.RolloutEngine`; the baseline steps
    ``min(baseline_tasks, batch)`` tasks with the scalar kernels and is
    scaled to the full batch.
    """
    robot, scheme, contacts = _workload(workload)
    model = load_robot(robot)
    rng = np.random.default_rng(seed)
    q0 = np.stack([model.random_q(rng) for _ in range(batch)])
    qd0 = 0.2 * rng.normal(size=(batch, model.nv))
    controls = 0.1 * rng.normal(size=(batch, horizon, model.nv))

    rollout_engine = RolloutEngine(scheme, engine=engine)
    rollout_engine.rollout(model, q0, qd0, controls, dt=dt,
                           contacts=contacts)              # warm-up
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        rollout_engine.rollout(model, q0, qd0, controls, dt=dt,
                               contacts=contacts)
        best = min(best, time.perf_counter() - t0)

    measured = min(baseline_tasks, batch)
    _scalar_rollout(model, q0[0], qd0[0], controls[0], dt, scheme,
                    contacts)                              # warm-up
    t0 = time.perf_counter()
    for k in range(measured):
        _scalar_rollout(model, q0[k], qd0[k], controls[k], dt, scheme,
                        contacts)
    baseline = (time.perf_counter() - t0) * (batch / measured)

    return {
        "workload": workload,
        "robot": robot,
        "scheme": scheme,
        "engine": engine,
        "backend": "numpy",
        "batch": batch,
        "horizon": horizon,
        "contacts": 0 if not contacts else len(contacts),
        "baseline_tasks_measured": measured,
        "per_task_s": baseline,
        "batched_s": best,
        "speedup": baseline / best,
        "steps_per_s": batch * horizon / best,
    }


def format_rollout_table(rows: list[dict]):
    """Render the result rows as a reporting table."""
    from repro.reporting import Table

    table = Table(
        "rollout: batched slab vs per-task stepping",
        ["workload", "batch", "T", "per-task (ms)", "batched (ms)",
         "speedup", "steps/s"],
    )
    for row in rows:
        table.add_row(
            row["workload"], row["batch"], row["horizon"],
            row["per_task_s"] * 1e3, row["batched_s"] * 1e3,
            row["speedup"], row["steps_per_s"],
        )
    return table


__all__ = [
    "SPEEDUP_FLOOR",
    "SPEEDUP_TARGET",
    "format_rollout_table",
    "run_rollout_bench",
]
