"""Batched trajectory rollouts on the engine/plan/backend stack.

A rollout advances a whole batch of robots through ``T`` integrator
steps: every step issues *batched* dynamics calls (free or
contact-constrained) through a registered execution engine, so the
``(n, T, ...)`` trajectory slab costs ``T`` engine calls instead of
``n * T`` scalar ones — the paper's Fig 13 workload shape (serial in
time, embarrassingly parallel across sampling points), lifted onto the
host engines.

* :class:`RolloutPlan` — the per-``(model, scheme, engine, backend)``
  compiled object (memoized by :func:`rollout_plan_for`, also reachable
  through the serve artifact cache): resolved engine instance, the host
  execution plan for the contact kinematics, and per-thread preallocated
  trajectory workspaces.
* :class:`RolloutEngine` — the user-facing facade: pick a scheme
  (``"euler"``, ``"semi_implicit"``, ``"rk4"``), an engine and a
  backend once, then roll out arbitrary models/batches.
* Contact dynamics are engine-native (:mod:`repro.dynamics.contact_batch`):
  per-step contact modes are ``(n, c)`` masks applied inside the shared
  batched KKT solve, so tasks in different modes share one factorization.
  ``contact_mask`` may be static, per-step, per-task-per-step, a
  callable, or ``"ground"`` (activate when the point's world height
  drops below a threshold).
* Optional sensitivity propagation reuses the paired-derivative kernels
  (``dfd_batch``): exact discrete ``A``/``B`` per step for the Euler
  schemes, chained stage Jacobians for RK4 — the batched mirror of
  :mod:`repro.apps.integrators`' sensitivity steps.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

from repro.backend import get_backend, host_backend, to_host
from repro.dynamics.contact import ContactPoint
from repro.dynamics.contact_batch import (
    batch_constrained_fd,
    batch_contact_positions,
)
from repro.dynamics.engine import Engine, get_engine, normalize_f_ext
from repro.dynamics.plan import plan_for
from repro.model.robot import RobotModel
from repro.obs import hooks as _obs

#: Host namespace via the backend shim.
np = host_backend().xp

#: Integration schemes and their FD evaluations per step.
SCHEMES: dict[str, int] = {"euler": 1, "semi_implicit": 1, "rk4": 4}


@dataclass
class TaskTrajectory:
    """One task's slice of a batched rollout (the serve fan-out unit)."""

    qs: np.ndarray                    # (T+1, nv)
    qds: np.ndarray                   # (T+1, nv)
    controls: np.ndarray | None       # (T, nv) realized controls
    forces: np.ndarray | None         # (T, 3c) contact forces
    active: np.ndarray | None         # (T, c) applied contact modes
    a_matrices: np.ndarray | None = None   # (T, 2nv, 2nv) sensitivities
    b_matrices: np.ndarray | None = None   # (T, 2nv, nv)


@dataclass
class RolloutResult:
    """A batch of trajectories as ``(n, T, ...)`` slabs."""

    qs: np.ndarray                    # (n, T+1, nv)
    qds: np.ndarray                   # (n, T+1, nv)
    controls: np.ndarray | None       # (n, T, nv) realized controls
    forces: np.ndarray | None         # (n, T, 3c)
    active: np.ndarray | None         # (n, T, c) bool
    a_matrices: np.ndarray | None     # (n, T, 2nv, 2nv) sensitivities
    b_matrices: np.ndarray | None     # (n, T, 2nv, nv)
    scheme: str
    dt: float
    engine: str
    backend: str

    @property
    def batch(self) -> int:
        return self.qs.shape[0]

    @property
    def horizon(self) -> int:
        return self.qs.shape[1] - 1

    def task(self, k: int) -> TaskTrajectory:
        """Per-task view (used by the serve layer's result fan-out)."""
        pick = lambda a: None if a is None else a[k]
        return TaskTrajectory(
            qs=self.qs[k], qds=self.qds[k], controls=pick(self.controls),
            forces=pick(self.forces), active=pick(self.active),
            a_matrices=pick(self.a_matrices),
            b_matrices=pick(self.b_matrices),
        )


class RolloutWorkspace:
    """Per-thread trajectory slabs, grown monotonically.

    Steady-state rollouts of one shape never reallocate the big
    ``(n, T+1, nv)`` stacks — the rollout-level mirror of
    :class:`repro.dynamics.plan.PlanWorkspace`.
    """

    def __init__(self) -> None:
        self.n = 0
        self.t = 0
        self.nv = 0
        self.c = -1

    def ensure(self, n: int, t: int, nv: int, c: int) -> "RolloutWorkspace":
        if n > self.n or t > self.t or nv > self.nv:
            self.n = max(n, self.n)
            self.t = max(t, self.t)
            self.nv = max(nv, self.nv)
            shape = (self.n, self.t + 1, self.nv)
            self.qs = np.zeros(shape)
            self.qds = np.zeros(shape)
            self.us = np.zeros((self.n, self.t, self.nv))
            self.c = -1                 # force contact slab refresh
        if c > 0 and c > self.c:
            self.c = c
            self.forces = np.zeros((self.n, self.t, 3 * c))
            self.active = np.zeros((self.n, self.t, c), dtype=bool)
        return self

    def nbytes(self) -> int:
        total = self.qs.nbytes + self.qds.nbytes + self.us.nbytes
        if self.c > 0:
            total += self.forces.nbytes + self.active.nbytes
        return total


class RolloutPlan:
    """Rollout execution state for one (model, scheme, engine, backend).

    Holds no reference back to the :class:`RobotModel` (the memo cache is
    weak over models); every public method takes the model explicitly.
    """

    def __init__(self, model: RobotModel, scheme: str,
                 engine: Engine, backend_name: str) -> None:
        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}"
            )
        self.scheme = scheme
        self.engine = engine
        self.backend_name = backend_name
        self.robot_name = model.name
        self.nv = model.nv
        #: Host execution plan driving the batched contact kinematics.
        self.xplan = plan_for(model)
        self._tls = threading.local()

    def workspace(self, n: int, t: int, c: int) -> RolloutWorkspace:
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = RolloutWorkspace()
            self._tls.ws = ws
        return ws.ensure(n, t, self.nv, c)

    # ------------------------------------------------------------------
    # Stepping primitives
    # ------------------------------------------------------------------

    def _fd(self, model, q, qd, tau, f_ext, contacts, active):
        """One batched (constrained) FD evaluation: (qdd, forces)."""
        if contacts:
            res = batch_constrained_fd(
                model, q, qd, tau, contacts, f_ext=f_ext, active=active,
                engine=self.engine, plan=self.xplan,
            )
            return res.qdd, res.contact_forces
        return to_host(self.engine.fd_batch(model, q, qd, tau, f_ext)), None

    def _resolve_mask(self, model, contact_mask, contacts, t, t_steps,
                      q, qd, ground_height: float):
        """The ``(n, c)`` active mask for step ``t`` (None = all active).

        Array masks accept shapes ``(c,)`` (static), ``(T, c)`` (shared
        schedule), ``(n, c)`` (static per task) and ``(n, T, c)``; when
        ``n == T`` makes a 2-D mask ambiguous, the schedule reading
        wins — pass ``(n, 1, c)`` to force the per-task reading.
        """
        n, c = q.shape[0], len(contacts)
        if contact_mask is None:
            return None
        if isinstance(contact_mask, str):
            if contact_mask != "ground":
                raise ValueError(
                    f"unknown contact mode {contact_mask!r}; the only named "
                    "mode is 'ground'"
                )
            heights = batch_contact_positions(
                model, q, contacts, self.xplan
            )[:, :, 2]
            return heights <= ground_height
        if callable(contact_mask):
            mask = np.asarray(contact_mask(t, q, qd), dtype=bool)
            return np.broadcast_to(mask, (n, c))
        mask = np.asarray(contact_mask, dtype=bool)
        if mask.ndim <= 1:
            return np.broadcast_to(mask, (n, c))
        if mask.ndim == 2:
            if mask.shape == (t_steps, c):     # shared schedule
                return np.broadcast_to(mask[t], (n, c))
            if mask.shape == (n, c):           # static per-task modes
                return mask
        elif mask.ndim == 3 and mask.shape in ((n, t_steps, c),
                                               (1, t_steps, c),
                                               (n, 1, c)):
            sub = mask[:, min(t, mask.shape[1] - 1)]
            return np.broadcast_to(sub, (n, c))
        raise ValueError(
            f"contact_mask shape {mask.shape} is not one of (c,), "
            f"({t_steps}, c), ({n}, c), ({n}, {t_steps}, c) for "
            f"n={n}, T={t_steps}, c={c}"
        )

    # ------------------------------------------------------------------
    # The rollout loop
    # ------------------------------------------------------------------

    def rollout(
        self,
        model: RobotModel,
        q0: np.ndarray,
        qd0: np.ndarray,
        controls: np.ndarray | None = None,
        *,
        dt: float,
        horizon: int | None = None,
        policy=None,
        contacts: list[ContactPoint] | None = None,
        contact_mask=None,
        ground_height: float = 0.0,
        f_ext: dict[int, np.ndarray] | None = None,
        sensitivities: bool = False,
    ) -> RolloutResult:
        """Simulate the batch; see :meth:`RolloutEngine.rollout`."""
        q = np.atleast_2d(np.asarray(q0, dtype=float)).copy()
        qd = np.atleast_2d(np.asarray(qd0, dtype=float)).copy()
        n, nv = q.shape
        if qd.shape != (n, nv):
            raise ValueError(
                f"qd0 must have shape {(n, nv)}, got {qd.shape}"
            )
        if policy is None:
            if controls is None:
                raise ValueError("pass controls or a policy")
            controls = np.asarray(controls, dtype=float)
            if controls.ndim == 2:    # (T, nv) shared by every task
                controls = np.broadcast_to(
                    controls, (n,) + controls.shape
                )
            if controls.ndim != 3 or controls.shape[0] != n \
                    or controls.shape[2] != nv:
                raise ValueError(
                    f"controls must have shape (T, {nv}) or ({n}, T, {nv}),"
                    f" got {controls.shape}"
                )
            t_steps = controls.shape[1]
            if horizon is not None and horizon != t_steps:
                raise ValueError(
                    f"horizon {horizon} does not match controls ({t_steps})"
                )
        else:
            if horizon is None:
                raise ValueError("a policy rollout needs an explicit horizon")
            t_steps = horizon
        contacts = list(contacts) if contacts else None
        c = len(contacts) if contacts else 0
        if sensitivities and contacts:
            raise ValueError(
                "sensitivity propagation through contact dynamics is not "
                "supported; roll out free dynamics or drop sensitivities"
            )
        fe = normalize_f_ext(f_ext, n)

        # Open-loop free-dynamics rollouts on a scan-capable engine fold
        # the whole (n, T) slab into one compiled program instead of T
        # per-step engine calls (ROADMAP item 1's trajectory fusion).
        if (policy is None and not contacts and not sensitivities
                and fe is None
                and getattr(self.engine, "supports_fused_rollout",
                            None) is not None
                and self.engine.supports_fused_rollout(model, self.scheme)):
            t0 = _obs.kernel_begin()
            qs_f, qds_f = self.engine.fused_rollout(
                model, q, qd, controls, dt=dt, scheme=self.scheme,
            )
            _obs.kernel_end(
                t0, model.name, f"rollout.fused[{self.scheme}]",
                n * t_steps, args={"horizon": t_steps, "batch": n},
            )
            return RolloutResult(
                qs=qs_f, qds=qds_f,
                controls=np.array(controls, dtype=float),
                forces=None, active=None,
                a_matrices=None, b_matrices=None,
                scheme=self.scheme, dt=dt,
                engine=self.engine.name, backend=self.backend_name,
            )

        ws = self.workspace(n, t_steps, c)
        qs, qds = ws.qs[:n, :t_steps + 1], ws.qds[:n, :t_steps + 1]
        us = ws.us[:n, :t_steps]
        # The workspace slabs grow monotonically; slice down to this
        # call's contact width (a previous rollout may have been wider).
        forces = ws.forces[:n, :t_steps, :3 * c] if contacts else None
        active_rec = ws.active[:n, :t_steps, :c] if contacts else None
        a_out = np.zeros((n, t_steps, 2 * nv, 2 * nv)) if sensitivities \
            else None
        b_out = np.zeros((n, t_steps, 2 * nv, nv)) if sensitivities else None
        qs[:, 0] = q
        qds[:, 0] = qd

        t0 = _obs.kernel_begin()
        for t in range(t_steps):
            st = _obs.kernel_begin()
            tau = policy(t, q, qd) if policy is not None else controls[:, t]
            tau = np.asarray(tau, dtype=float)
            us[:, t] = tau
            active = None
            if contacts:
                active = self._resolve_mask(
                    model, contact_mask, contacts, t, t_steps, q, qd,
                    ground_height,
                )
                active_rec[:, t] = True if active is None else active
            if sensitivities:
                q, qd = self._step_with_sensitivities(
                    model, q, qd, tau, fe, dt,
                    a_out[:, t], b_out[:, t],
                )
            else:
                q, qd, f_t = self._step(
                    model, q, qd, tau, fe, dt, contacts, active
                )
                if contacts:
                    forces[:, t] = f_t
            qs[:, t + 1] = q
            qds[:, t + 1] = qd
            _obs.kernel_end(st, model.name, f"rollout.step[{self.scheme}]",
                            n, args={"t": t})
        _obs.kernel_end(
            t0, model.name, f"rollout[{self.scheme}]", n * t_steps,
            args={"horizon": t_steps, "batch": n},
        )

        return RolloutResult(
            qs=qs.copy(), qds=qds.copy(), controls=us.copy(),
            forces=None if forces is None else forces.copy(),
            active=None if active_rec is None else active_rec.copy(),
            a_matrices=a_out, b_matrices=b_out,
            scheme=self.scheme, dt=dt,
            engine=self.engine.name, backend=self.backend_name,
        )

    # ------------------------------------------------------------------
    # Windowed (streaming) rollouts
    # ------------------------------------------------------------------

    @staticmethod
    def _window_mask(contact_mask, t0: int, t1: int, t_steps: int, c: int):
        """Slice a contact mask down to the window ``[t0, t1)``.

        Stepping is Markovian, so a windowed rollout is just the full
        step loop partitioned — but per-schedule masks are indexed by
        absolute step, so the window must see its own slice (callables
        are re-based onto absolute time).  Shapes follow
        :meth:`_resolve_mask`; the ``(T, c)``-vs-``(n, c)`` ambiguity
        resolves the same way (schedule reading wins).
        """
        if contact_mask is None or isinstance(contact_mask, str):
            return contact_mask
        if callable(contact_mask):
            return lambda t, q, qd: contact_mask(t0 + t, q, qd)
        mask = np.asarray(contact_mask, dtype=bool)
        if mask.ndim == 2 and mask.shape == (t_steps, c):
            return mask[t0:t1]
        if mask.ndim == 3 and mask.shape[1] == t_steps:
            return mask[:, t0:t1]
        return mask                     # static shapes pass through

    def rollout_windows(
        self,
        model: RobotModel,
        q0: np.ndarray,
        qd0: np.ndarray,
        controls: np.ndarray,
        *,
        dt: float,
        window: int,
        contacts: list[ContactPoint] | None = None,
        contact_mask=None,
        ground_height: float = 0.0,
        f_ext: dict[int, np.ndarray] | None = None,
        cancelled=None,
    ):
        """Generator yielding ``(t0, t1, RolloutResult)`` per window of
        ``window`` knots, carrying the batch state between windows.

        Because every integrator step depends only on the current state,
        the concatenated windows are *bitwise* equal to one uninterrupted
        :meth:`rollout` — including the fused-scan path, which each
        eligible window takes independently.  This is the serving tier's
        streaming primitive: a consumer sees the first ``window`` knots
        after ``window`` steps of work instead of after the whole
        horizon, and ``cancelled()`` (checked between windows) abandons
        the unsimulated tail, freeing the engine.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        q = np.atleast_2d(np.asarray(q0, dtype=float))
        qd = np.atleast_2d(np.asarray(qd0, dtype=float))
        controls = np.asarray(controls, dtype=float)
        if controls.ndim == 2:
            controls = np.broadcast_to(
                controls, (q.shape[0],) + controls.shape
            )
        t_steps = controls.shape[1]
        c = len(contacts) if contacts else 0
        for t0 in range(0, t_steps, window):
            t1 = min(t0 + window, t_steps)
            result = self.rollout(
                model, q, qd, controls[:, t0:t1], dt=dt,
                contacts=contacts,
                contact_mask=self._window_mask(
                    contact_mask, t0, t1, t_steps, c
                ),
                ground_height=ground_height, f_ext=f_ext,
            )
            yield t0, t1, result
            if t1 < t_steps and cancelled is not None and cancelled():
                return
            q, qd = result.qs[:, -1], result.qds[:, -1]

    def _step(self, model, q, qd, tau, fe, dt, contacts, active):
        """One integrator step; returns (q+, qd+, step forces)."""
        if self.scheme == "rk4":
            return self._rk4_step(model, q, qd, tau, fe, dt, contacts,
                                  active)
        qdd, f_t = self._fd(model, q, qd, tau, fe, contacts, active)
        if self.scheme == "euler":
            q_new = model.batch_integrate(q, dt * qd)
            qd_new = qd + dt * qdd
        else:                          # semi-implicit (integrators.euler_step)
            qd_new = qd + dt * qdd
            q_new = model.batch_integrate(q, dt * qd_new)
        return q_new, qd_new, f_t

    def _rk4_step(self, model, q, qd, tau, fe, dt, contacts, active):
        """Classic RK4 (contact mode frozen over the four stages)."""
        k1_dqd, f_t = self._fd(model, q, qd, tau, fe, contacts, active)
        k1_dq = qd
        q2 = model.batch_integrate(q, 0.5 * dt * k1_dq)
        qd2 = qd + 0.5 * dt * k1_dqd
        k2_dqd, _ = self._fd(model, q2, qd2, tau, fe, contacts, active)
        q3 = model.batch_integrate(q, 0.5 * dt * qd2)
        qd3 = qd + 0.5 * dt * k2_dqd
        k3_dqd, _ = self._fd(model, q3, qd3, tau, fe, contacts, active)
        q4 = model.batch_integrate(q, dt * qd3)
        qd4 = qd + dt * k3_dqd
        k4_dqd, _ = self._fd(model, q4, qd4, tau, fe, contacts, active)
        dq = dt / 6.0 * (k1_dq + 2 * qd2 + 2 * qd3 + qd4)
        dqd = dt / 6.0 * (k1_dqd + 2 * k2_dqd + 2 * k3_dqd + k4_dqd)
        return model.batch_integrate(q, dq), qd + dqd, f_t

    # ------------------------------------------------------------------
    # Sensitivity propagation (paired-derivative kernels)
    # ------------------------------------------------------------------

    def _step_with_sensitivities(self, model, q, qd, tau, fe, dt,
                                 a_t, b_t):
        nv = self.nv
        if self.scheme == "rk4":
            return self._rk4_sensitivity_step(model, q, qd, tau, fe, dt,
                                              a_t, b_t)
        qdd, dq_j, dqd_j, minv = self.engine.dfd_batch(model, q, qd, tau, fe)
        qdd, dq_j, dqd_j, minv = (
            to_host(qdd), to_host(dq_j), to_host(dqd_j), to_host(minv)
        )
        eye = np.eye(nv)
        if self.scheme == "euler":
            a_t[:, :nv, :nv] = eye
            a_t[:, :nv, nv:] = dt * eye
            a_t[:, nv:, :nv] = dt * dq_j
            a_t[:, nv:, nv:] = eye + dt * dqd_j
            b_t[:, nv:, :] = dt * minv
            q_new = model.batch_integrate(q, dt * qd)
            qd_new = qd + dt * qdd
        else:                          # semi-implicit, the Fig 2c shape
            a_t[:, nv:, :nv] = dt * dq_j
            a_t[:, nv:, nv:] = eye + dt * dqd_j
            a_t[:, :nv, :nv] = eye + dt * dt * dq_j
            a_t[:, :nv, nv:] = dt * (eye + dt * dqd_j)
            b_t[:, nv:, :] = dt * minv
            b_t[:, :nv, :] = dt * dt * minv
            qd_new = qd + dt * qdd
            q_new = model.batch_integrate(q, dt * qd_new)
        return q_new, qd_new

    def _f_with_jac(self, model, q, qd, tau, fe):
        nv = self.nv
        n = q.shape[0]
        qdd, dq_j, dqd_j, minv = self.engine.dfd_batch(model, q, qd, tau, fe)
        qdd, dq_j, dqd_j, minv = (
            to_host(qdd), to_host(dq_j), to_host(dqd_j), to_host(minv)
        )
        dx = np.concatenate([qd, qdd], axis=1)
        jx = np.zeros((n, 2 * nv, 2 * nv))
        jx[:, :nv, nv:] = np.eye(nv)
        jx[:, nv:, :nv] = dq_j
        jx[:, nv:, nv:] = dqd_j
        ju = np.zeros((n, 2 * nv, nv))
        ju[:, nv:, :] = minv
        return dx, jx, ju

    def _rk4_sensitivity_step(self, model, q, qd, tau, fe, dt, a_t, b_t):
        """Batched mirror of :func:`repro.apps.integrators.rk4_sensitivity_step`."""
        nv = self.nv
        identity = np.eye(2 * nv)
        k1, j1x, j1u = self._f_with_jac(model, q, qd, tau, fe)
        q2 = model.batch_integrate(q, 0.5 * dt * k1[:, :nv])
        qd2 = qd + 0.5 * dt * k1[:, nv:]
        k2, j2x, j2u = self._f_with_jac(model, q2, qd2, tau, fe)
        q3 = model.batch_integrate(q, 0.5 * dt * k2[:, :nv])
        qd3 = qd + 0.5 * dt * k2[:, nv:]
        k3, j3x, j3u = self._f_with_jac(model, q3, qd3, tau, fe)
        q4 = model.batch_integrate(q, dt * k3[:, :nv])
        qd4 = qd + dt * k3[:, nv:]
        k4, j4x, j4u = self._f_with_jac(model, q4, qd4, tau, fe)

        d1x, d1u = j1x, j1u
        d2x = j2x @ (identity + 0.5 * dt * d1x)
        d2u = j2u + 0.5 * dt * (j2x @ d1u)
        d3x = j3x @ (identity + 0.5 * dt * d2x)
        d3u = j3u + 0.5 * dt * (j3x @ d2u)
        d4x = j4x @ (identity + dt * d3x)
        d4u = j4u + dt * (j4x @ d3u)

        dx = dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        a_t[:] = identity + dt / 6.0 * (d1x + 2 * d2x + 2 * d3x + d4x)
        b_t[:] = dt / 6.0 * (d1u + 2 * d2u + 2 * d3u + d4u)
        return (model.batch_integrate(q, dx[:, :nv]), qd + dx[:, nv:])

    def describe(self) -> dict:
        return {
            "robot": self.robot_name,
            "scheme": self.scheme,
            "engine": self.engine.name,
            "backend": self.backend_name,
            "fd_per_step": SCHEMES[self.scheme],
        }

    def __repr__(self) -> str:
        return (f"RolloutPlan({self.robot_name!r}, scheme={self.scheme!r}, "
                f"engine={self.engine.name!r}, "
                f"backend={self.backend_name!r})")


def concat_windows(windows: list[RolloutResult]) -> RolloutResult:
    """Reassemble windowed rollout slices into one :class:`RolloutResult`.

    Each window's ``qs``/``qds`` carry their own initial state in row 0
    (duplicating the previous window's final state), so concatenation
    drops the leading row of every window after the first.  The result is
    bitwise equal to the uninterrupted rollout the windows partition.
    """
    if not windows:
        raise ValueError("no windows to concatenate")
    first = windows[0]

    def cat(pick, skip_first_row: bool):
        parts = [pick(w) for w in windows]
        if any(p is None for p in parts):
            return None
        if skip_first_row:
            parts = [parts[0]] + [p[:, 1:] for p in parts[1:]]
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)

    return RolloutResult(
        qs=cat(lambda w: w.qs, True),
        qds=cat(lambda w: w.qds, True),
        controls=cat(lambda w: w.controls, False),
        forces=cat(lambda w: w.forces, False),
        active=cat(lambda w: w.active, False),
        a_matrices=None, b_matrices=None,
        scheme=first.scheme, dt=first.dt,
        engine=first.engine, backend=first.backend,
    )


# ---------------------------------------------------------------------------
# Memoization (shared with the serve artifact cache)
# ---------------------------------------------------------------------------

_ROLLOUT_PLANS: "weakref.WeakKeyDictionary[RobotModel, dict]" = (
    weakref.WeakKeyDictionary()
)
_ROLLOUT_LOCK = threading.Lock()


def rollout_plan_for(
    model: RobotModel,
    scheme: str = "semi_implicit",
    engine: str | Engine | None = None,
    backend: str | None = None,
) -> RolloutPlan:
    """The memoized :class:`RolloutPlan` for this combination.

    Keyed per (model, scheme, engine name, backend name) — weakly over
    models, like :func:`repro.dynamics.plan.plan_for`; the serve artifact
    cache resolves shard rollout plans through here.
    """
    eng = get_engine(engine)
    backend_name = get_backend(backend).name
    key = (scheme, eng.name, backend_name)
    plans = _ROLLOUT_PLANS.get(model)
    if plans is not None:
        plan = plans.get(key)
        if plan is not None:
            return plan
    with _ROLLOUT_LOCK:
        plans = _ROLLOUT_PLANS.get(model)
        if plans is None:
            plans = {}
            _ROLLOUT_PLANS[model] = plans
        plan = plans.get(key)
        if plan is None:
            plan = RolloutPlan(model, scheme, eng, backend_name)
            plans[key] = plan
    return plan


class RolloutEngine:
    """Batched trajectory simulator over a scheme/engine/backend choice.

    ``RolloutEngine("rk4", engine="compiled").rollout(model, q0, qd0,
    controls, dt=1e-3)`` simulates the whole ``(n, T)`` slab; see
    :meth:`rollout`.
    """

    def __init__(self, scheme: str = "semi_implicit",
                 engine: str | Engine | None = None,
                 backend: str | None = None) -> None:
        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}"
            )
        self.scheme = scheme
        self.engine = engine
        self.backend = backend

    def plan(self, model: RobotModel) -> RolloutPlan:
        return rollout_plan_for(model, self.scheme, self.engine, self.backend)

    def rollout(
        self,
        model: RobotModel,
        q0: np.ndarray,
        qd0: np.ndarray,
        controls: np.ndarray | None = None,
        *,
        dt: float,
        horizon: int | None = None,
        policy=None,
        contacts: list[ContactPoint] | None = None,
        contact_mask=None,
        ground_height: float = 0.0,
        f_ext: dict[int, np.ndarray] | None = None,
        sensitivities: bool = False,
    ) -> RolloutResult:
        """Simulate ``(n, T)`` trajectories as one batched slab.

        ``q0``/``qd0`` are ``(n, nv)`` (or ``(nv,)`` for a single task);
        ``controls`` is ``(n, T, nv)``, or ``(T, nv)`` shared across the
        batch; alternatively pass ``policy(t, q, qd) -> (n, nv)`` with an
        explicit ``horizon`` for closed-loop rollouts.  ``contacts``
        switches every step to the batched constrained dynamics, with
        ``contact_mask`` choosing per-task contact modes per step
        (``None`` = always active, an array, a callable, or
        ``"ground"``).  ``sensitivities=True`` additionally propagates
        exact discrete ``A``/``B`` linearizations via the paired
        derivative kernels (free dynamics only).
        """
        return self.plan(model).rollout(
            model, q0, qd0, controls, dt=dt, horizon=horizon, policy=policy,
            contacts=contacts, contact_mask=contact_mask,
            ground_height=ground_height, f_ext=f_ext,
            sensitivities=sensitivities,
        )

    def rollout_windows(self, model: RobotModel, q0, qd0, controls, *,
                        dt: float, window: int, contacts=None,
                        contact_mask=None, ground_height: float = 0.0,
                        f_ext=None, cancelled=None):
        """Stream the rollout per window of ``window`` knots; see
        :meth:`RolloutPlan.rollout_windows`."""
        return self.plan(model).rollout_windows(
            model, q0, qd0, controls, dt=dt, window=window,
            contacts=contacts, contact_mask=contact_mask,
            ground_height=ground_height, f_ext=f_ext, cancelled=cancelled,
        )


__all__ = [
    "RolloutEngine",
    "RolloutPlan",
    "RolloutResult",
    "RolloutWorkspace",
    "SCHEMES",
    "TaskTrajectory",
    "concat_windows",
    "rollout_plan_for",
]
