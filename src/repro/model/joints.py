"""Joint models.

Every joint exposes a *constant* motion subspace ``S`` (6 x nv) and a
configuration-dependent joint transform ``X_J(q)`` with the defining
property used throughout the derivative algorithms::

    X_J(q [+] delta) ~= exp(-crm(S @ delta)) @ X_J(q)

i.e. tangent increments act in the child frame.  Multi-DOF joints use
rotation-vector coordinates so ``len(q) == nv`` for the whole robot, which is
also the representation the paper's hardware streams (it consumes
``q, sin q, cos q`` directly).

Planar joints are intentionally absent: they are the one Featherstone joint
whose natural ``S`` is configuration-dependent, so we model planar bases as
prismatic-prismatic-revolute composites (see ``repro.model.library``); the
paper only uses the planar type as a resource optimization for Tiago's root.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.spatial.motion import crm
from repro.spatial.so3 import exp_so3, log_so3, skew
from repro.spatial.transforms import rot, spatial_transform, xlt


@dataclass(frozen=True)
class JointCostProfile:
    """Structural cost metadata consumed by the accelerator cost model.

    ``x_mults`` counts the multiplications needed to refresh ``X_J`` (the
    paper counts 8 for a revolute joint: 12 varying elements holding 8
    distinct ``c*sin q`` / ``c*cos q`` products).  ``trig_pairs`` is the
    number of (sin, cos) evaluations the Global Trigonometric Module must
    supply, and ``s_one_hot`` marks the common case where multiplying by
    ``S`` degenerates to a row/column selection.
    """

    nv: int
    trig_pairs: int
    x_mults: int
    s_one_hot: bool


class Joint(ABC):
    """Base class for all joint types."""

    #: degrees of freedom (columns of S); equals the length of this joint's
    #: slice of q and qd.
    nv: int

    #: True when qd is the plain time-derivative of q (integrate == q + dq).
    #: Spherical/floating joints use quasi-velocities (body-frame twists)
    #: instead, which changes the form of the Lagrangian equations.
    coordinate_velocity: bool = True

    @abstractmethod
    def motion_subspace(self) -> np.ndarray:
        """The constant 6 x nv motion subspace ``S``."""

    @abstractmethod
    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        """The 6x6 transform ``X_J(q)`` (child coords <- pre-joint coords)."""

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        """``X_J`` for a whole task batch: ``(n, nv)`` -> ``(n, 6, 6)``.

        The base implementation loops over tasks; concrete joints override
        it with a broadcast construction so the vectorized engine's
        per-link step costs one array op instead of ``n`` Python calls.
        """
        q = np.asarray(q, dtype=float)
        return np.stack([self.joint_transform(q[k]) for k in range(q.shape[0])])

    @abstractmethod
    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        """Configuration update ``q [+] dq`` consistent with the tangent
        convention in the module docstring."""

    @abstractmethod
    def cost_profile(self) -> JointCostProfile:
        """Structural costs for the hardware model."""

    def neutral(self) -> np.ndarray:
        """The zero configuration."""
        return np.zeros(self.nv)

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A random configuration suitable for tests/benchmarks."""
        return rng.uniform(-1.0, 1.0, size=self.nv)

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def structural_signature(self) -> str:
        """A string identifying the joint *type* (used to detect symmetric
        branches that can share one hardware branch array)."""
        return self.type_name


def _unit_axis(axis: np.ndarray) -> np.ndarray:
    axis = np.asarray(axis, dtype=float)
    norm = float(np.linalg.norm(axis))
    if norm < 1e-12:
        raise ModelError("joint axis must be non-zero")
    return axis / norm


def _se3_exp(delta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """SE(3) exponential of a twist ``delta = [w; v]``.

    Returns (R, p): the displacement rotation and translation such that the
    frame moves by ``delta`` expressed in its own (body) coordinates.
    """
    w = np.asarray(delta[:3], dtype=float)
    v = np.asarray(delta[3:], dtype=float)
    theta = float(np.linalg.norm(w))
    r = exp_so3(w)
    k = skew(w)
    if theta < 1e-8:
        v_mat = np.eye(3) + 0.5 * k + (k @ k) / 6.0
    else:
        v_mat = (
            np.eye(3)
            + (1.0 - np.cos(theta)) / theta**2 * k
            + (theta - np.sin(theta)) / theta**3 * (k @ k)
        )
    return r, v_mat @ v


class RevoluteJoint(Joint):
    """1-DOF rotation about a unit axis through the joint-frame origin."""

    nv = 1

    def __init__(self, axis: np.ndarray = (0.0, 0.0, 1.0)) -> None:
        self.axis = _unit_axis(np.asarray(axis, dtype=float))

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 1))
        s[:3, 0] = self.axis
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        # E = exp(skew(axis)*q).T: coordinate transform into the rotated frame.
        return rot(exp_so3(self.axis * float(q[0])).T)

    def joint_transform_trig(self, sin_q: float, cos_q: float) -> np.ndarray:
        """Build ``X_J`` from precomputed sin/cos (the accelerator path)."""
        k = skew(self.axis)
        e = np.eye(3) + sin_q * k + (1.0 - cos_q) * (k @ k)
        return rot(e.T)

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        e = exp_so3(self.axis * q)          # (n, 3, 3)
        return rot(np.swapaxes(e, -1, -2))

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def random(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-np.pi, np.pi, size=1)

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=1, trig_pairs=1, x_mults=8, s_one_hot=True)

    def structural_signature(self) -> str:
        # Axis sign does not change hardware structure (the paper shares
        # mirrored legs whose parameters "differ only in sign").
        return f"R[{np.argmax(np.abs(self.axis))}]"


class PrismaticJoint(Joint):
    """1-DOF translation along a unit axis."""

    nv = 1

    def __init__(self, axis: np.ndarray = (0.0, 0.0, 1.0)) -> None:
        self.axis = _unit_axis(np.asarray(axis, dtype=float))

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 1))
        s[3:, 0] = self.axis
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        return xlt(self.axis * float(q[0]))

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        return xlt(self.axis * np.asarray(q, dtype=float))

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=1, trig_pairs=0, x_mults=3, s_one_hot=True)

    def structural_signature(self) -> str:
        return f"P[{np.argmax(np.abs(self.axis))}]"


class HelicalJoint(Joint):
    """1-DOF screw: rotation about an axis with coupled translation (pitch)."""

    nv = 1

    def __init__(self, axis: np.ndarray = (0.0, 0.0, 1.0), pitch: float = 0.1) -> None:
        self.axis = _unit_axis(np.asarray(axis, dtype=float))
        self.pitch = float(pitch)

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 1))
        s[:3, 0] = self.axis
        s[3:, 0] = self.pitch * self.axis
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        angle = float(q[0])
        e = exp_so3(self.axis * angle).T
        return rot(e) @ xlt(self.axis * self.pitch * angle)

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        e = np.swapaxes(exp_so3(self.axis * q), -1, -2)
        return rot(e) @ xlt(self.axis * self.pitch * q)

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=1, trig_pairs=1, x_mults=12, s_one_hot=False)


class CylindricalJoint(Joint):
    """2-DOF: rotation about and translation along the same axis."""

    nv = 2

    def __init__(self, axis: np.ndarray = (0.0, 0.0, 1.0)) -> None:
        self.axis = _unit_axis(np.asarray(axis, dtype=float))

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 2))
        s[:3, 0] = self.axis
        s[3:, 1] = self.axis
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        e = exp_so3(self.axis * float(q[0])).T
        return rot(e) @ xlt(self.axis * float(q[1]))

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        e = np.swapaxes(exp_so3(self.axis * q[:, :1]), -1, -2)
        return rot(e) @ xlt(self.axis * q[:, 1:2])

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=2, trig_pairs=1, x_mults=12, s_one_hot=True)


class SphericalJoint(Joint):
    """3-DOF ball joint; q is a rotation vector (child relative to parent)."""

    nv = 3
    coordinate_velocity = False

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 3))
        s[:3, :] = np.eye(3)
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        return rot(exp_so3(np.asarray(q, dtype=float)).T)

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        e = exp_so3(np.asarray(q, dtype=float))
        return rot(np.swapaxes(e, -1, -2))

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        r_new = exp_so3(np.asarray(q, dtype=float)) @ exp_so3(np.asarray(dq, dtype=float))
        return log_so3(r_new)

    def random(self, rng: np.random.Generator) -> np.ndarray:
        w = rng.normal(size=3)
        w /= max(np.linalg.norm(w), 1e-12)
        return w * rng.uniform(0.0, 2.0)

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=3, trig_pairs=3, x_mults=24, s_one_hot=True)


class Translation3Joint(Joint):
    """3-DOF free translation."""

    nv = 3

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros((6, 3))
        s[3:, :] = np.eye(3)
        return s

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        return xlt(np.asarray(q, dtype=float))

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        return xlt(np.asarray(q, dtype=float))

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=3, trig_pairs=0, x_mults=9, s_one_hot=True)


class FloatingJoint(Joint):
    """6-DOF free motion; q = [rotation vector (3); position (3)].

    Velocity coordinates are the child-frame spatial velocity ``[w; v]``.
    The paper optionally splits this joint into spherical + translation3 at
    the hardware level (section V-C5); see ``topology.split_floating_base``.
    """

    nv = 6
    coordinate_velocity = False

    def motion_subspace(self) -> np.ndarray:
        return np.eye(6)

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        r = exp_so3(q[:3])
        return spatial_transform(r.T, q[3:])

    def batch_joint_transform(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        r = exp_so3(q[:, :3])
        return spatial_transform(np.swapaxes(r, -1, -2), q[:, 3:])

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        dq = np.asarray(dq, dtype=float)
        r = exp_so3(q[:3])
        r_d, p_d = _se3_exp(dq)
        r_new = r @ r_d
        p_new = q[3:] + r @ p_d
        return np.concatenate([log_so3(r_new), p_new])

    def random(self, rng: np.random.Generator) -> np.ndarray:
        w = rng.normal(size=3)
        w /= max(np.linalg.norm(w), 1e-12)
        rv = w * rng.uniform(0.0, 2.0)
        p = rng.uniform(-1.0, 1.0, size=3)
        return np.concatenate([rv, p])

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=6, trig_pairs=3, x_mults=42, s_one_hot=True)


class ScrewJoint(Joint):
    """1-DOF motion along an arbitrary unit screw ``S`` (axis need not pass
    through the joint-frame origin).

    This is the joint type produced by tree re-rooting (reversing a revolute
    or prismatic edge conjugates its axis by a fixed transform); see
    ``repro.model.topology.reroot``.
    """

    nv = 1

    def __init__(self, screw: np.ndarray) -> None:
        screw = np.asarray(screw, dtype=float)
        if screw.shape != (6,):
            raise ModelError("screw must be a 6-vector")
        ang = np.linalg.norm(screw[:3])
        lin = np.linalg.norm(screw[3:])
        if ang < 1e-12 and lin < 1e-12:
            raise ModelError("screw must be non-zero")
        # Normalize: unit angular part when present, else unit linear part.
        self.screw = screw / (ang if ang >= 1e-12 else lin)

    def motion_subspace(self) -> np.ndarray:
        return self.screw.reshape(6, 1)

    def joint_transform(self, q: np.ndarray) -> np.ndarray:
        # X_J(q) = exp(-crm(S) q); computed via the SE(3) closed form to
        # avoid a 6x6 matrix exponential.
        delta = self.screw * float(q[0])
        r_d, p_d = _se3_exp(delta)
        # X for a child frame displaced by (r_d, p_d): E = r_d.T, r = p_d.
        return spatial_transform(r_d.T, p_d)

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        return q + dq

    def cost_profile(self) -> JointCostProfile:
        return JointCostProfile(nv=1, trig_pairs=1, x_mults=16, s_one_hot=False)

    def structural_signature(self) -> str:
        return "S*"


def crm_subspace(joint: Joint) -> np.ndarray:
    """``crm`` of each column of the joint's motion subspace, stacked.

    Convenience for derivative code; shape (nv, 6, 6).
    """
    s = joint.motion_subspace()
    return np.stack([crm(s[:, k]) for k in range(joint.nv)])
