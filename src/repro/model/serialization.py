"""Robot model serialization (JSON-compatible dictionaries).

Lets users define robots in plain data files instead of Python (the role
URDF plays for the original system) and round-trips every joint type in
this package.  See ``RobotModel`` docs for the tree conventions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.model.joints import (
    CylindricalJoint,
    FloatingJoint,
    HelicalJoint,
    Joint,
    PrismaticJoint,
    RevoluteJoint,
    ScrewJoint,
    SphericalJoint,
    Translation3Joint,
)
from repro.model.link import Link
from repro.model.robot import RobotModel
from repro.spatial.inertia import SpatialInertia

_SIMPLE_JOINTS = {
    "spherical": SphericalJoint,
    "translation3": Translation3Joint,
    "floating": FloatingJoint,
}


def joint_to_dict(joint: Joint) -> dict:
    """Serialize one joint."""
    if isinstance(joint, RevoluteJoint):
        return {"type": "revolute", "axis": joint.axis.tolist()}
    if isinstance(joint, PrismaticJoint):
        return {"type": "prismatic", "axis": joint.axis.tolist()}
    if isinstance(joint, HelicalJoint):
        return {
            "type": "helical",
            "axis": joint.axis.tolist(),
            "pitch": joint.pitch,
        }
    if isinstance(joint, CylindricalJoint):
        return {"type": "cylindrical", "axis": joint.axis.tolist()}
    if isinstance(joint, ScrewJoint):
        return {"type": "screw", "screw": joint.screw.tolist()}
    for name, cls in _SIMPLE_JOINTS.items():
        if isinstance(joint, cls):
            return {"type": name}
    raise ModelError(f"cannot serialize joint type {joint.type_name}")


def joint_from_dict(data: dict) -> Joint:
    """Deserialize one joint."""
    kind = data.get("type")
    if kind == "revolute":
        return RevoluteJoint(np.asarray(data["axis"], dtype=float))
    if kind == "prismatic":
        return PrismaticJoint(np.asarray(data["axis"], dtype=float))
    if kind == "helical":
        return HelicalJoint(
            np.asarray(data["axis"], dtype=float), pitch=float(data["pitch"])
        )
    if kind == "cylindrical":
        return CylindricalJoint(np.asarray(data["axis"], dtype=float))
    if kind == "screw":
        return ScrewJoint(np.asarray(data["screw"], dtype=float))
    if kind in _SIMPLE_JOINTS:
        return _SIMPLE_JOINTS[kind]()
    raise ModelError(f"unknown joint type {kind!r}")


def robot_to_dict(model: RobotModel) -> dict:
    """Serialize a robot model to a JSON-compatible dict."""
    links = []
    for link in model.links:
        links.append({
            "name": link.name,
            "parent": link.parent,
            "joint": joint_to_dict(link.joint),
            "inertia": {
                "mass": link.inertia.mass,
                "com": link.inertia.com.tolist(),
                "inertia_com": link.inertia.inertia_com.tolist(),
            },
            "x_tree": np.asarray(link.x_tree).tolist(),
        })
    return {
        "name": model.name,
        "gravity": model.gravity.tolist(),
        "links": links,
    }


def robot_from_dict(data: dict) -> RobotModel:
    """Deserialize a robot model."""
    links = []
    for entry in data["links"]:
        inertia_data = entry["inertia"]
        if inertia_data["mass"] == 0.0:
            inertia = SpatialInertia.zero()
        else:
            inertia = SpatialInertia(
                mass=float(inertia_data["mass"]),
                com=np.asarray(inertia_data["com"], dtype=float),
                inertia_com=np.asarray(inertia_data["inertia_com"], dtype=float),
            )
        links.append(
            Link(
                name=entry["name"],
                parent=int(entry["parent"]),
                joint=joint_from_dict(entry["joint"]),
                inertia=inertia,
                x_tree=np.asarray(entry["x_tree"], dtype=float),
            )
        )
    return RobotModel(
        links,
        name=data.get("name", "robot"),
        gravity=np.asarray(data["gravity"], dtype=float),
    )


def save_robot(model: RobotModel, path: str | Path) -> None:
    """Write a robot model to a JSON file."""
    Path(path).write_text(json.dumps(robot_to_dict(model), indent=2))


def load_robot_file(path: str | Path) -> RobotModel:
    """Read a robot model from a JSON file."""
    return robot_from_dict(json.loads(Path(path).read_text()))
