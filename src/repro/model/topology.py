"""Topology analysis and rewriting (Section V-C of the paper).

Four capabilities live here:

* **branch decomposition** — split the tree into the root segment plus
  branch segments, the unit the Structure-Adaptive Pipelines organize
  hardware around (Fig 11);
* **level scheduling** — group links by tree depth so independent
  branches advance together (the wavefront the multifunctional pipelines
  keep busy across branches; :func:`level_schedule`), the schedule the
  compiled execution plans in :mod:`repro.dynamics.plan` are built on;
* **symmetry detection** — find structurally-identical sibling branches that
  one hardware branch array can serve by time-division multiplexing
  (Spot's legs, Atlas's arms/legs);
* **tree rewriting** — :func:`reroot` moves the floating base to an interior
  link to reduce/balance tree depth (Atlas: 11 -> 9, Fig 11c), and
  :func:`split_floating_base` replaces the 6-DOF virtual joint by
  translation + spherical joints (Section V-C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.model.joints import (
    FloatingJoint,
    Joint,
    SphericalJoint,
    Translation3Joint,
    ScrewJoint,
)
from repro.model.link import Link
from repro.model.robot import RobotModel
from repro.spatial.inertia import SpatialInertia
from repro.spatial.so3 import log_so3
from repro.spatial.transforms import (
    inverse_transform,
    transform_rotation,
    transform_translation,
)


# ----------------------------------------------------------------------
# Branch decomposition
# ----------------------------------------------------------------------


@dataclass
class Branch:
    """A maximal unary chain of links (one pipeline branch array)."""

    index: int
    links: list[int]                 # ordered from shallowest to deepest
    parent_branch: int | None        # branch holding this branch's parent link
    is_root: bool = False

    @property
    def size(self) -> int:
        return len(self.links)


@dataclass
class BranchDecomposition:
    """The SAP view of a robot: a root segment plus branch segments."""

    model: RobotModel
    branches: list[Branch] = field(default_factory=list)

    @property
    def root_branch(self) -> Branch:
        return self.branches[0]

    def branch_of_link(self, link: int) -> Branch:
        for branch in self.branches:
            if link in branch.links:
                return branch
        raise ModelError(f"link {link} not found in any branch")

    def child_branches(self, branch: Branch) -> list[Branch]:
        return [b for b in self.branches if b.parent_branch == branch.index]

    def max_branch_depth(self) -> int:
        """Tree depth counted in links (the paper's Fig 11c depth)."""
        return self.model.max_depth()


def decompose(model: RobotModel) -> BranchDecomposition:
    """Split ``model`` into its root segment and branch segments.

    A segment ends where a link has more than one child; each child then
    starts a new branch.  The root segment is always branch 0.
    """
    decomposition = BranchDecomposition(model)
    roots = [i for i in range(model.nb) if model.parent(i) < 0]
    if len(roots) != 1:
        raise ModelError("expected exactly one world-attached link")

    def walk(start: int, parent_branch: int | None, is_root: bool) -> None:
        links = [start]
        current = start
        while True:
            kids = model.children(current)
            if len(kids) == 1:
                current = kids[0]
                links.append(current)
            else:
                break
        branch = Branch(
            index=len(decomposition.branches),
            links=links,
            parent_branch=parent_branch,
            is_root=is_root,
        )
        decomposition.branches.append(branch)
        for kid in model.children(links[-1]):
            walk(kid, branch.index, False)

    walk(roots[0], None, True)
    return decomposition


# ----------------------------------------------------------------------
# Level scheduling
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Level:
    """All links at one tree depth.

    Links in a level are mutually independent (none is an ancestor of
    another), so a forward recursion may process a whole level as one
    fused array operation once every shallower level is done, and a
    backward recursion symmetrically — the host-side analogue of the
    paper's pipelines keeping every stage busy across branches.
    """

    depth: int
    links: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.links)


def level_schedule(model: RobotModel) -> list[Level]:
    """Group links by depth into a parent-before-child wavefront schedule.

    Every link appears in exactly one level; a link's parent always sits
    in a strictly shallower level (``depth(parent) == depth(link) - 1``),
    so processing levels in order satisfies every recursion dependency
    while fusing independent branches — Atlas's two arms and two legs
    advance in the same level steps.  The reverse order is the valid
    schedule for backward sweeps.
    """
    by_depth: dict[int, list[int]] = {}
    for i in range(model.nb):
        by_depth.setdefault(model.depth(i), []).append(i)
    return [
        Level(depth=d, links=tuple(by_depth[d])) for d in sorted(by_depth)
    ]


# ----------------------------------------------------------------------
# Symmetry detection
# ----------------------------------------------------------------------


def branch_signature(model: RobotModel, branch: Branch) -> tuple:
    """Structural signature of a branch: joint types down the chain plus the
    joint types of the whole subtree hanging below it.  Two branches with
    equal signatures can share one hardware branch array (their parameters
    may differ only in value/sign, which the paper's multiplexed arrays
    handle)."""
    return _chain_signature(model, branch)


def symmetric_branch_groups(model: RobotModel) -> list[list[Branch]]:
    """Group non-root branches by structural signature.

    Returns groups sorted by (descending size, first link) so callers get a
    stable ordering; singleton groups are included.
    """
    decomposition = decompose(model)
    groups: dict[tuple, list[Branch]] = {}
    for branch in decomposition.branches:
        if branch.is_root:
            continue
        key = _chain_signature(model, branch)
        groups.setdefault(key, []).append(branch)
    ordered = sorted(
        groups.values(), key=lambda g: (-len(g), g[0].links[0])
    )
    return ordered


def _chain_signature(model: RobotModel, branch: Branch) -> tuple:
    parts = tuple(model.joint(link).structural_signature() for link in branch.links)
    # Branches are only mergeable when their whole subtrees match; encode
    # the subtree shape (sizes + joint types below the chain tip).
    tip = branch.links[-1]
    below = tuple(
        model.joint(j).structural_signature() for j in model.subtree_strict(tip)
    )
    return parts, below


# ----------------------------------------------------------------------
# Re-rooting (Fig 11c)
# ----------------------------------------------------------------------


def _reverse_joint(joint: Joint, x_tree: np.ndarray) -> Joint:
    """The joint seen from the other side of the edge.

    For a 1-DOF joint with ``X_J(q) = exp(-crm(S) q)`` the reversed edge has
    ``X_J'(q) = exp(-crm(S') q)`` with ``S' = -(x_tree^{-1} S)`` (conjugating
    the screw by the fixed placement); the coordinate value q is preserved.
    """
    if joint.nv != 1:
        raise ModelError(
            f"cannot reverse a {joint.type_name}: only 1-DOF joints are "
            "supported on a re-rooting path"
        )
    s = joint.motion_subspace()[:, 0]
    s_new = -(inverse_transform(x_tree) @ s)
    return ScrewJoint(s_new)


def reroot(model: RobotModel, new_root: str | int) -> RobotModel:
    """Move the floating base to ``new_root`` (a link name or index).

    The robot's physical structure is unchanged; only the virtual 6-DOF
    joint's attachment moves and the edges on the old-root -> new-root path
    are reversed (becoming :class:`ScrewJoint`).  Use
    :func:`map_state_to_rerooted` to translate configurations.
    """
    root_index = model.link_index(new_root) if isinstance(new_root, str) else new_root
    if not isinstance(model.joint(0), FloatingJoint):
        raise ModelError("reroot requires a floating-base robot (link 0)")
    if root_index == 0:
        return model

    # Path from old root to new root.
    path = model.ancestors(root_index) + [root_index]
    if path[0] != 0:
        raise ModelError("new root must be connected to the floating base")

    # New parent map: reverse edges along the path, keep everything else.
    new_parent: dict[int, int] = {}
    new_joint: dict[int, Joint] = {}
    new_x_tree: dict[int, np.ndarray] = {}
    for i in range(model.nb):
        new_parent[i] = model.parent(i)
        new_joint[i] = model.joint(i)
        new_x_tree[i] = model.links[i].x_tree
    # The new root carries the floating joint, attached to the world.
    new_parent[root_index] = -1
    new_joint[root_index] = FloatingJoint()
    new_x_tree[root_index] = np.eye(6)
    # Reverse each edge on the path: child becomes the parent.
    for parent_link, child_link in zip(path[:-1], path[1:]):
        original = model.links[child_link]
        new_parent[parent_link] = child_link
        new_joint[parent_link] = _reverse_joint(original.joint, original.x_tree)
        new_x_tree[parent_link] = inverse_transform(original.x_tree)

    # Renumber with a DFS from the new root so parents precede children.
    order: list[int] = []

    def visit(i: int) -> None:
        order.append(i)
        kids = [j for j in range(model.nb) if new_parent[j] == i]
        for j in sorted(kids):
            visit(j)

    visit(root_index)
    renumber = {old: new for new, old in enumerate(order)}
    links: list[Link] = []
    for old in order:
        parent_old = new_parent[old]
        links.append(
            Link(
                name=model.links[old].name,
                parent=-1 if parent_old < 0 else renumber[parent_old],
                joint=new_joint[old],
                inertia=model.links[old].inertia,
                x_tree=new_x_tree[old],
            )
        )
    return RobotModel(links, name=f"{model.name}@{model.links[root_index].name}",
                      gravity=model.gravity)


def map_state_to_rerooted(
    original: RobotModel,
    rerooted: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Translate (q, qd) of ``original`` into the rerooted coordinates.

    Uses forward kinematics to place the new base, keeps 1-DOF coordinates
    (reversed edges preserve their q), and maps the base twist.
    """
    from repro.dynamics.kinematics import forward_kinematics

    fk = forward_kinematics(original, q, qd)
    q_new = np.zeros(rerooted.nv)
    qd_new = np.zeros(rerooted.nv)
    for new_index in range(rerooted.nb):
        name = rerooted.links[new_index].name
        old_index = original.link_index(name)
        sl_new = rerooted.dof_slice(new_index)
        if isinstance(rerooted.joint(new_index), FloatingJoint):
            x_world = fk.world_transforms[old_index]  # ^iX_0
            e = transform_rotation(x_world)
            r = transform_translation(x_world)
            q_new[sl_new] = np.concatenate([log_so3(e.T), r])
            qd_new[sl_new] = fk.velocities[old_index]
        else:
            # Reversed or untouched joints keep their original coordinates;
            # a reversed edge stores the q of the link that owned the joint
            # before (its old child).  The edge (parent, link) is reversed
            # exactly when the original tree had it the other way around.
            owner = old_index
            if rerooted.parent(new_index) >= 0:
                parent_name = rerooted.links[rerooted.parent(new_index)].name
                old_parent = original.link_index(parent_name)
                if original.parent(old_parent) == old_index:
                    owner = old_parent
            sl_old = original.dof_slice(owner)
            q_new[sl_new] = q[sl_old]
            qd_new[sl_new] = qd[sl_old]
    return q_new, qd_new


# ----------------------------------------------------------------------
# Floating-base splitting (Section V-C5)
# ----------------------------------------------------------------------


def split_floating_base(model: RobotModel) -> RobotModel:
    """Replace the floating 6-DOF root joint by translation3 + spherical.

    The paper does this to halve the root submodule's complexity.  The
    translation link is massless; the spherical link keeps the base inertia.
    """
    if not isinstance(model.joint(0), FloatingJoint):
        raise ModelError("split_floating_base requires a floating-base robot")
    base = model.links[0]
    links: list[Link] = [
        Link(
            name=f"{base.name}_trans",
            parent=-1,
            joint=Translation3Joint(),
            inertia=SpatialInertia.zero(),
            x_tree=base.x_tree,
        ),
        Link(
            name=base.name,
            parent=0,
            joint=SphericalJoint(),
            inertia=base.inertia,
            x_tree=np.eye(6),
        ),
    ]
    for i in range(1, model.nb):
        old = model.links[i]
        links.append(
            Link(
                name=old.name,
                parent=old.parent + 1,
                joint=old.joint,
                inertia=old.inertia,
                x_tree=old.x_tree,
            )
        )
    return RobotModel(links, name=f"{model.name}-split", gravity=model.gravity)


def map_state_to_split(
    original: RobotModel,
    split: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Translate floating-base (q, qd) into split translation+spherical
    coordinates."""
    from repro.spatial.so3 import exp_so3

    rv, p = q[:3], q[3:6]
    w, v = qd[:3], qd[3:6]
    rot_world = exp_so3(rv)  # base axes in world
    q_new = np.concatenate([p, rv, q[6:]])
    # Translation joint velocity is expressed before the rotation: the
    # translation link frame stays world-aligned, so qd_t = R @ v.
    qd_new = np.concatenate([rot_world @ v, w, qd[6:]])
    return q_new, qd_new
