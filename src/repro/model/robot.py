"""The robot model: a topological tree of links (Section II of the paper).

Links are indexed ``0 .. nb-1`` with the invariant ``parent(i) < i`` (the
world is ``-1``); this matches the paper's ``lambda_i`` ordering and makes
every forward loop a single left-to-right sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.model.joints import Joint
from repro.model.link import Link
from repro.spatial.inertia import SpatialInertia
from repro.spatial.so3 import is_rotation
from repro.spatial.transforms import spatial_transform

GRAVITY = 9.80665


@dataclass(frozen=True)
class DofLayout:
    """Mapping from links to slices of the stacked q / qd vectors."""

    offsets: tuple[int, ...]
    counts: tuple[int, ...]

    def slice_of(self, link_index: int) -> slice:
        start = self.offsets[link_index]
        return slice(start, start + self.counts[link_index])


class RobotModel:
    """An open-chain rigid body system described as a topological tree."""

    def __init__(self, links: list[Link], name: str = "robot",
                 gravity: np.ndarray | None = None) -> None:
        if not links:
            raise ModelError("robot must have at least one link")
        for i, link in enumerate(links):
            if not (-1 <= link.parent < i):
                raise ModelError(
                    f"link {i} ({link.name!r}) has parent {link.parent}; "
                    "parents must precede children (world is -1)"
                )
        names = [link.name for link in links]
        if len(set(names)) != len(names):
            raise ModelError("link names must be unique")
        self.name = name
        self.links = list(links)
        self.gravity = (
            np.array([0.0, 0.0, 0.0, 0.0, 0.0, -GRAVITY])
            if gravity is None
            else np.asarray(gravity, dtype=float)
        )
        offsets: list[int] = []
        counts: list[int] = []
        total = 0
        for link in links:
            offsets.append(total)
            counts.append(link.joint.nv)
            total += link.joint.nv
        self._layout = DofLayout(tuple(offsets), tuple(counts))
        self._nv = total
        self._children: list[list[int]] = [[] for _ in links]
        for i, link in enumerate(links):
            if link.parent >= 0:
                self._children[link.parent].append(i)
        self._subtrees = self._compute_subtrees()
        self._depths = self._compute_depths()
        self._validate_masses()

    # ------------------------------------------------------------------
    # Basic shape queries
    # ------------------------------------------------------------------

    @property
    def nb(self) -> int:
        """Number of links/joints (the paper's NB)."""
        return len(self.links)

    @property
    def nv(self) -> int:
        """Total degrees of freedom (the paper's N)."""
        return self._nv

    @property
    def layout(self) -> DofLayout:
        return self._layout

    def joint(self, i: int) -> Joint:
        return self.links[i].joint

    def parent(self, i: int) -> int:
        return self.links[i].parent

    def children(self, i: int) -> list[int]:
        return list(self._children[i])

    def dof_slice(self, i: int) -> slice:
        """Slice of q / qd owned by link i's joint."""
        return self._layout.slice_of(i)

    def link_index(self, name: str) -> int:
        for i, link in enumerate(self.links):
            if link.name == name:
                return i
        raise ModelError(f"no link named {name!r}")

    # ------------------------------------------------------------------
    # Topology queries (tree(i), treee(i), depth, ancestors)
    # ------------------------------------------------------------------

    def subtree(self, i: int) -> list[int]:
        """The paper's ``tree(i)``: all links in the subtree rooted at i
        (including i), in increasing index order."""
        return list(self._subtrees[i])

    def subtree_strict(self, i: int) -> list[int]:
        """The paper's ``treee(i) = tree(i) \\ i``."""
        return [j for j in self._subtrees[i] if j != i]

    def ancestors(self, i: int) -> list[int]:
        """Links on the path from the root down to i, excluding i."""
        out: list[int] = []
        j = self.links[i].parent
        while j >= 0:
            out.append(j)
            j = self.links[j].parent
        out.reverse()
        return out

    def supporting_dofs(self, i: int) -> list[int]:
        """DOF indices of all joints on the root-to-i path (inclusive).

        These are exactly the columns that can be non-zero in the
        derivative matrices of link i — the paper's incremental column
        vectors (Fig 7b).
        """
        dofs: list[int] = []
        for j in self.ancestors(i) + [i]:
            sl = self.dof_slice(j)
            dofs.extend(range(sl.start, sl.stop))
        return dofs

    def depth(self, i: int) -> int:
        """Number of joints on the path from the world to link i (>= 1)."""
        return self._depths[i]

    def max_depth(self) -> int:
        return max(self._depths)

    def leaves(self) -> list[int]:
        return [i for i in range(self.nb) if not self._children[i]]

    def is_serial_chain(self) -> bool:
        return all(len(self._children[i]) <= 1 for i in range(self.nb))

    # ------------------------------------------------------------------
    # Configuration helpers
    # ------------------------------------------------------------------

    def neutral_q(self) -> np.ndarray:
        q = np.zeros(self.nv)
        for i, link in enumerate(self.links):
            q[self.dof_slice(i)] = link.joint.neutral()
        return q

    def random_q(self, rng: np.random.Generator) -> np.ndarray:
        q = np.zeros(self.nv)
        for i, link in enumerate(self.links):
            q[self.dof_slice(i)] = link.joint.random(rng)
        return q

    def random_state(
        self, rng: np.random.Generator, velocity_scale: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """A random (q, qd) pair."""
        return self.random_q(rng), rng.normal(scale=velocity_scale, size=self.nv)

    def integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        """Per-joint manifold update ``q [+] dq``."""
        q = np.asarray(q, dtype=float)
        dq = np.asarray(dq, dtype=float)
        out = np.empty_like(q)
        for i, link in enumerate(self.links):
            sl = self.dof_slice(i)
            out[sl] = link.joint.integrate(q[sl], dq[sl])
        return out

    def batch_integrate(self, q: np.ndarray, dq: np.ndarray) -> np.ndarray:
        """Manifold update ``q [+] dq`` for a task batch: ``(n, nv)``.

        Joints with plain coordinate velocities (``coordinate_velocity``,
        i.e. ``integrate == q + dq``) update in one whole-batch addition;
        quasi-velocity joints (spherical/floating) fall back to their
        per-task exponential maps on just their own q slice.
        """
        q = np.atleast_2d(np.asarray(q, dtype=float))
        dq = np.atleast_2d(np.asarray(dq, dtype=float))
        out = q + dq
        for i, link in enumerate(self.links):
            if link.joint.coordinate_velocity:
                continue
            sl = self.dof_slice(i)
            for k in range(q.shape[0]):
                out[k, sl] = link.joint.integrate(q[k, sl], dq[k, sl])
        return out

    def motion_subspaces(self) -> list[np.ndarray]:
        """All S_i, indexable by link."""
        return [link.joint.motion_subspace() for link in self.links]

    def parent_transforms(self, q: np.ndarray) -> list[np.ndarray]:
        """All ``^iX_lambda(q_i)``, indexable by link."""
        q = np.asarray(q, dtype=float)
        return [
            link.parent_transform(q[self.dof_slice(i)])
            for i, link in enumerate(self.links)
        ]

    def batch_parent_transforms(self, q: np.ndarray) -> list[np.ndarray]:
        """All ``^iX_lambda`` for a task batch: ``(n, nv)`` -> per-link
        ``(n, 6, 6)`` stacks.

        This is the shared front of every batched Table-I kernel — the
        engine computes it once per batch and reuses it across the bias,
        Minv and derivative recursions.
        """
        q = np.atleast_2d(np.asarray(q, dtype=float))
        return [
            link.batch_parent_transform(q[:, self.dof_slice(i)])
            for i, link in enumerate(self.links)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _compute_subtrees(self) -> list[tuple[int, ...]]:
        subtree_sets: list[list[int]] = [[i] for i in range(self.nb)]
        for i in range(self.nb - 1, -1, -1):
            parent = self.links[i].parent
            if parent >= 0:
                subtree_sets[parent].extend(subtree_sets[i])
        return [tuple(sorted(s)) for s in subtree_sets]

    def _compute_depths(self) -> list[int]:
        depths = [0] * self.nb
        for i, link in enumerate(self.links):
            depths[i] = 1 if link.parent < 0 else depths[link.parent] + 1
        return depths

    def _validate_masses(self) -> None:
        # Massless intermediate links are fine (composite joints); every
        # leaf subtree must still carry some mass or the mass matrix would
        # be singular.
        for leaf in self.leaves():
            chain_mass = self.links[leaf].inertia.mass
            j = leaf
            while chain_mass == 0.0 and self.links[j].parent >= 0:
                j = self.links[j].parent
                chain_mass += self.links[j].inertia.mass
            if chain_mass <= 0.0:
                raise ModelError(
                    f"leaf link {self.links[leaf].name!r} has a massless "
                    "supporting chain; the mass matrix would be singular"
                )

    def __repr__(self) -> str:
        return f"RobotModel({self.name!r}, nb={self.nb}, nv={self.nv})"


class RobotBuilder:
    """Incremental construction of a :class:`RobotModel` by link names."""

    def __init__(self, name: str = "robot") -> None:
        self._name = name
        self._links: list[Link] = []
        self._index: dict[str, int] = {}

    def add_link(
        self,
        name: str,
        parent: str | None,
        joint: Joint,
        inertia: SpatialInertia,
        *,
        translation: np.ndarray | None = None,
        rotation: np.ndarray | None = None,
        x_tree: np.ndarray | None = None,
    ) -> "RobotBuilder":
        """Append a link.

        The fixed parent-to-joint placement can be given either as an
        explicit ``x_tree`` transform or as ``rotation`` (3x3, parent->joint
        coordinate transform) plus ``translation`` (joint origin in parent
        coordinates).
        """
        if name in self._index:
            raise ModelError(f"duplicate link name {name!r}")
        if parent is None:
            parent_index = -1
        else:
            if parent not in self._index:
                raise ModelError(f"unknown parent link {parent!r}")
            parent_index = self._index[parent]
        if x_tree is None:
            e = np.eye(3) if rotation is None else np.asarray(rotation, dtype=float)
            if not is_rotation(e):
                raise ModelError(f"link {name!r}: rotation is not orthonormal")
            r = np.zeros(3) if translation is None else np.asarray(translation, dtype=float)
            x_tree = spatial_transform(e, r)
        elif translation is not None or rotation is not None:
            raise ModelError("pass either x_tree or rotation/translation, not both")
        self._index[name] = len(self._links)
        self._links.append(Link(name, parent_index, joint, inertia, x_tree))
        return self

    def build(self, gravity: np.ndarray | None = None) -> RobotModel:
        return RobotModel(self._links, name=self._name, gravity=gravity)
