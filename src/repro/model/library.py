"""Predefined robot models.

The paper evaluates on LBR iiwa, HyQ and Atlas (matching Pinocchio's and
GRiD's benchmark set) and illustrates SAPs with Tiago, Spot-arm and a
quadruped-with-arm (Fig 3).  We do not ship the vendors' URDFs; parameters
here are synthetic but physically valid (positive-definite inertias,
realistic masses and link lengths) with the *exact paper topologies* —
which is what every algorithm and cost model in this package depends on.
The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.model.joints import FloatingJoint, PrismaticJoint, RevoluteJoint
from repro.model.robot import RobotBuilder, RobotModel
from repro.spatial.inertia import SpatialInertia
from repro.spatial.random import random_inertia

X_AXIS = np.array([1.0, 0.0, 0.0])
Y_AXIS = np.array([0.0, 1.0, 0.0])
Z_AXIS = np.array([0.0, 0.0, 1.0])


def rod_inertia(mass: float, length: float, radius: float = 0.05,
                axis: np.ndarray = Z_AXIS) -> SpatialInertia:
    """Inertia of a solid cylinder of given mass/length lying along ``axis``
    with its base at the link origin (com at half length)."""
    axis = np.asarray(axis, dtype=float)
    trans = mass * (3.0 * radius**2 + length**2) / 12.0
    axial = mass * radius**2 / 2.0
    # Principal frame: axial moment along `axis`.
    if abs(axis[2]) > 0.9:
        inertia_c = np.diag([trans, trans, axial])
    elif abs(axis[1]) > 0.9:
        inertia_c = np.diag([trans, axial, trans])
    else:
        inertia_c = np.diag([axial, trans, trans])
    return SpatialInertia(mass, axis * (length / 2.0), inertia_c)


def box_inertia(mass: float, size: np.ndarray,
                com: np.ndarray | None = None) -> SpatialInertia:
    """Inertia of a solid box with side lengths ``size``."""
    sx, sy, sz = np.asarray(size, dtype=float)
    inertia_c = np.diag(
        [
            mass * (sy**2 + sz**2) / 12.0,
            mass * (sx**2 + sz**2) / 12.0,
            mass * (sx**2 + sy**2) / 12.0,
        ]
    )
    return SpatialInertia(mass, np.zeros(3) if com is None else com, inertia_c)


# ----------------------------------------------------------------------
# Simple chains (tests, examples)
# ----------------------------------------------------------------------


def pendulum(length: float = 1.0, mass: float = 1.0) -> RobotModel:
    """A single pendulum rotating about the world y axis."""
    builder = RobotBuilder("pendulum")
    builder.add_link("bob", None, RevoluteJoint(Y_AXIS),
                     rod_inertia(mass, length))
    return builder.build()


def double_pendulum(lengths: tuple[float, float] = (1.0, 0.8),
                    masses: tuple[float, float] = (1.0, 0.7)) -> RobotModel:
    """A planar double pendulum (both joints about y)."""
    builder = RobotBuilder("double_pendulum")
    builder.add_link("upper", None, RevoluteJoint(Y_AXIS),
                     rod_inertia(masses[0], lengths[0]))
    builder.add_link("lower", "upper", RevoluteJoint(Y_AXIS),
                     rod_inertia(masses[1], lengths[1]),
                     translation=np.array([0.0, 0.0, lengths[0]]))
    return builder.build()


def serial_chain(n: int, seed: int = 0, link_length: float = 0.3) -> RobotModel:
    """An n-link serial arm with deterministic random (valid) inertias and
    alternating z/y joint axes — the generic fixed-base test robot."""
    rng = np.random.default_rng(seed)
    builder = RobotBuilder(f"chain{n}")
    parent = None
    for i in range(n):
        axis = Z_AXIS if i % 2 == 0 else Y_AXIS
        name = f"link{i}"
        builder.add_link(
            name, parent, RevoluteJoint(axis), random_inertia(rng),
            translation=None if parent is None else np.array([0.0, 0.0, link_length]),
        )
        parent = name
    return builder.build()


def random_tree(nb: int, seed: int = 0, floating: bool = False) -> RobotModel:
    """A random topology tree with valid inertias (property-test robot)."""
    rng = np.random.default_rng(seed)
    builder = RobotBuilder(f"tree{nb}-{seed}")
    names: list[str] = []
    for i in range(nb):
        name = f"n{i}"
        if i == 0:
            parent = None
            joint = FloatingJoint() if floating else RevoluteJoint(Z_AXIS)
        else:
            parent = names[int(rng.integers(0, i))]
            axis = [X_AXIS, Y_AXIS, Z_AXIS][int(rng.integers(0, 3))]
            joint = RevoluteJoint(axis)
        builder.add_link(
            name, parent, joint, random_inertia(rng),
            translation=rng.uniform(-0.3, 0.3, size=3) if parent else None,
        )
        names.append(name)
    return builder.build()


# ----------------------------------------------------------------------
# Paper evaluation robots
# ----------------------------------------------------------------------


def iiwa() -> RobotModel:
    """KUKA LBR iiwa: 7-DOF serial arm, fixed base (NB=7, N=7)."""
    masses = [4.0, 4.0, 3.0, 2.7, 1.7, 1.8, 0.3]
    offsets = [0.1575, 0.2025, 0.2045, 0.2155, 0.1845, 0.2155, 0.081]
    axes = [Z_AXIS, Y_AXIS, Z_AXIS, -Y_AXIS, Z_AXIS, Y_AXIS, Z_AXIS]
    builder = RobotBuilder("iiwa")
    parent = None
    for i in range(7):
        name = f"link{i + 1}"
        builder.add_link(
            name, parent, RevoluteJoint(axes[i]),
            rod_inertia(masses[i], offsets[i], radius=0.06),
            translation=None if parent is None
            else np.array([0.0, 0.0, offsets[i - 1]]),
        )
        parent = name
    return builder.build()


def _add_leg(builder: RobotBuilder, body: str, prefix: str,
             hip_position: np.ndarray, masses: tuple[float, float, float],
             segment: float, mirror: float) -> None:
    """One 3-DOF leg: hip abduction (x), hip flexion (y), knee (y)."""
    builder.add_link(
        f"{prefix}_haa", body, RevoluteJoint(X_AXIS * mirror),
        rod_inertia(masses[0], 0.08, radius=0.05, axis=X_AXIS),
        translation=hip_position,
    )
    builder.add_link(
        f"{prefix}_hfe", f"{prefix}_haa", RevoluteJoint(Y_AXIS),
        rod_inertia(masses[1], segment, radius=0.04, axis=-Z_AXIS),
        translation=np.array([0.0, mirror * 0.08, 0.0]),
    )
    builder.add_link(
        f"{prefix}_kfe", f"{prefix}_hfe", RevoluteJoint(Y_AXIS),
        rod_inertia(masses[2], segment, radius=0.03, axis=-Z_AXIS),
        translation=np.array([0.0, 0.0, -segment]),
    )


def hyq() -> RobotModel:
    """HyQ: floating base + four 3-DOF legs (NB=13, N=18)."""
    builder = RobotBuilder("hyq")
    builder.add_link("trunk", None, FloatingJoint(),
                     box_inertia(60.0, np.array([1.0, 0.45, 0.25])))
    leg_masses = (2.9, 4.0, 1.2)
    for prefix, sx, sy in (("lf", 1, 1), ("rf", 1, -1),
                           ("lh", -1, 1), ("rh", -1, -1)):
        hip = np.array([0.37 * sx, 0.21 * sy, 0.0])
        _add_leg(builder, "trunk", prefix, hip, leg_masses, 0.35, float(sy))
    return builder.build()


def _add_arm(builder: RobotBuilder, base: str, prefix: str, n_joints: int,
             masses: list[float], segment: float,
             mount: np.ndarray) -> None:
    """A serial arm with alternating z/y axes."""
    parent = base
    for i in range(n_joints):
        axis = Z_AXIS if i % 2 == 0 else Y_AXIS
        name = f"{prefix}{i + 1}"
        builder.add_link(
            name, parent, RevoluteJoint(axis),
            rod_inertia(masses[i], segment, radius=0.04),
            translation=mount if i == 0 else np.array([0.0, 0.0, segment]),
        )
        parent = name


def quadruped_arm() -> RobotModel:
    """The paper's Fig 3 robot: quadruped body + 4x3-DOF legs + 6-DOF arm.

    NB = 19 links, N = 24 DOF (including the 6-DOF floating base), exactly
    the configuration Section V-B sizes the architecture for.
    """
    builder = RobotBuilder("quadruped_arm")
    builder.add_link("body", None, FloatingJoint(),
                     box_inertia(20.0, np.array([0.7, 0.35, 0.2])))
    leg_masses = (2.0, 1.5, 0.8)
    for prefix, sx, sy in (("leg1", 1, 1), ("leg2", 1, -1),
                           ("leg3", -1, 1), ("leg4", -1, -1)):
        hip = np.array([0.28 * sx, 0.17 * sy, 0.0])
        _add_leg(builder, "body", prefix, hip, leg_masses, 0.28, float(sy))
    _add_arm(builder, "body", "arm", 6,
             [2.5, 2.0, 1.5, 1.0, 0.7, 0.4], 0.25,
             np.array([0.3, 0.0, 0.12]))
    return builder.build()


def spot_arm() -> RobotModel:
    """Spot-arm (Fig 11b): same topology class as :func:`quadruped_arm`
    with Spot-like parameters."""
    builder = RobotBuilder("spot_arm")
    builder.add_link("body", None, FloatingJoint(),
                     box_inertia(27.0, np.array([0.85, 0.24, 0.18])))
    leg_masses = (1.9, 2.3, 0.9)
    for prefix, sx, sy in (("fl", 1, 1), ("fr", 1, -1),
                           ("hl", -1, 1), ("hr", -1, -1)):
        hip = np.array([0.29 * sx, 0.11 * sy, 0.0])
        _add_leg(builder, "body", prefix, hip, leg_masses, 0.32, float(sy))
    _add_arm(builder, "body", "arm", 6,
             [2.0, 1.6, 1.2, 0.9, 0.6, 0.35], 0.22,
             np.array([0.29, 0.0, 0.1]))
    return builder.build()


def atlas() -> RobotModel:
    """Atlas humanoid (Fig 11c): floating pelvis, 3-joint torso chain, head,
    two 7-DOF arms off the torso, two 6-DOF legs off the pelvis.

    NB = 31, N = 36.  With the pelvis as root the tree depth is 11
    (pelvis + 3 torso + 7 arm); re-rooting at torso2 balances it to 9 —
    the paper's Fig 11c optimization (see ``topology.reroot``).
    """
    builder = RobotBuilder("atlas")
    builder.add_link("pelvis", None, FloatingJoint(),
                     box_inertia(18.0, np.array([0.35, 0.3, 0.2])))
    torso_axes = [Z_AXIS, Y_AXIS, X_AXIS]
    torso_masses = [6.0, 7.0, 14.0]
    parent = "pelvis"
    for i, name in enumerate(("torso1", "torso2", "torso3")):
        builder.add_link(
            name, parent, RevoluteJoint(torso_axes[i]),
            box_inertia(torso_masses[i], np.array([0.25, 0.3, 0.15])),
            translation=np.array([0.0, 0.0, 0.12]),
        )
        parent = name
    builder.add_link("head", "torso3", RevoluteJoint(Y_AXIS),
                     box_inertia(1.5, np.array([0.15, 0.15, 0.2])),
                     translation=np.array([0.0, 0.0, 0.35]))
    arm_masses = [3.5, 3.0, 2.5, 2.0, 1.5, 1.0, 0.5]
    for prefix, sy in (("l_arm", 1.0), ("r_arm", -1.0)):
        _add_arm(builder, "torso3", prefix, 7, arm_masses, 0.2,
                 np.array([0.0, sy * 0.25, 0.25]))
    leg_masses = [5.0, 4.0, 4.5, 3.5, 2.0, 1.5]
    leg_axes = [Z_AXIS, X_AXIS, Y_AXIS, Y_AXIS, Y_AXIS, X_AXIS]
    for prefix, sy in (("l_leg", 1.0), ("r_leg", -1.0)):
        parent = "pelvis"
        for i in range(6):
            name = f"{prefix}{i + 1}"
            builder.add_link(
                name, parent, RevoluteJoint(leg_axes[i]),
                rod_inertia(leg_masses[i], 0.3, radius=0.06, axis=-Z_AXIS),
                translation=np.array([0.0, sy * 0.12, -0.05]) if i == 0
                else np.array([0.0, 0.0, -0.3]),
            )
            parent = name
    return builder.build()


def tiago() -> RobotModel:
    """Tiago (Fig 11a): 3-DOF mobile base + 7-DOF arm, linear topology.

    The planar base is modelled as prismatic(x) + prismatic(y) + revolute(z)
    with massless intermediate links (constant motion subspaces; see
    ``repro.model.joints`` docstring); NB = 10, N = 10.
    """
    builder = RobotBuilder("tiago")
    builder.add_link("base_x", None, PrismaticJoint(X_AXIS),
                     SpatialInertia.zero())
    builder.add_link("base_y", "base_x", PrismaticJoint(Y_AXIS),
                     SpatialInertia.zero())
    builder.add_link("base", "base_y", RevoluteJoint(Z_AXIS),
                     box_inertia(30.0, np.array([0.5, 0.5, 0.3])))
    _add_arm(builder, "base", "arm", 7,
             [2.8, 2.6, 2.2, 1.8, 1.3, 0.9, 0.4], 0.2,
             np.array([0.1, 0.0, 0.6]))
    return builder.build()


#: Name -> constructor for every predefined robot (CLI/bench convenience).
ROBOT_REGISTRY = {
    "pendulum": pendulum,
    "double_pendulum": double_pendulum,
    "iiwa": iiwa,
    "hyq": hyq,
    "atlas": atlas,
    "quadruped_arm": quadruped_arm,
    "spot_arm": spot_arm,
    "tiago": tiago,
}


#: Memoized models, keyed by registry name.  Library models are built once
#: per process and shared: :class:`RobotModel` exposes no mutation API after
#: construction, so callers treat the returned instance as immutable (the
#: same contract as a compiled FPGA bitstream).  Use ``fresh=True`` for a
#: private, independently-built copy.
_ROBOT_CACHE: dict[str, RobotModel] = {}


def load_robot(name: str, *, fresh: bool = False) -> RobotModel:
    """Instantiate a predefined robot by name.

    Repeat calls with the same ``name`` return the *same* (shared,
    effectively immutable) :class:`RobotModel` instance, so hot serving
    paths never re-derive the tree, DOF layout or inertia validation.
    Pass ``fresh=True`` to force a new build (e.g. to mutate link
    parameters experimentally).
    """
    if name not in ROBOT_REGISTRY:
        known = ", ".join(sorted(ROBOT_REGISTRY))
        raise KeyError(f"unknown robot {name!r}; known robots: {known}")
    if fresh:
        return ROBOT_REGISTRY[name]()
    if name not in _ROBOT_CACHE:
        _ROBOT_CACHE[name] = ROBOT_REGISTRY[name]()
    return _ROBOT_CACHE[name]


def clear_robot_cache() -> None:
    """Drop all memoized library models (mainly for tests)."""
    _ROBOT_CACHE.clear()
