"""Link description: one rigid body plus the joint connecting it to its parent."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.model.joints import Joint
from repro.spatial.inertia import SpatialInertia
from repro.spatial.transforms import is_spatial_transform


@dataclass
class Link:
    """One link of the robot tree.

    ``x_tree`` is the fixed transform from the parent link frame to this
    link's joint frame (Featherstone's ``XT(i)``); the full parent-to-link
    transform is ``X_J(q_i) @ x_tree``.
    """

    name: str
    parent: int                      # parent link index; -1 attaches to world
    joint: Joint
    inertia: SpatialInertia
    x_tree: np.ndarray = field(default_factory=lambda: np.eye(6))

    def __post_init__(self) -> None:
        self.x_tree = np.asarray(self.x_tree, dtype=float)
        if not is_spatial_transform(self.x_tree):
            raise ModelError(f"link {self.name!r}: x_tree is not a Plücker transform")

    def parent_transform(self, q: np.ndarray) -> np.ndarray:
        """``^iX_lambda(q_i)`` — the motion transform from parent to link."""
        return self.joint.joint_transform(q) @ self.x_tree

    def batch_parent_transform(self, q: np.ndarray) -> np.ndarray:
        """``^iX_lambda`` for a whole task batch: ``(n, nv_i)`` -> ``(n, 6, 6)``."""
        return self.joint.batch_joint_transform(q) @ self.x_tree
