"""Applications built on the dynamics substrate and the accelerator model."""

from repro.apps.integrators import (
    LinearizedStep,
    State,
    euler_sensitivity_step,
    euler_step,
    rk4_sensitivity_step,
    rk4_step,
    rollout,
)
from repro.apps.mpc import (
    EndToEndModel,
    IterationBreakdown,
    TaskMix,
    multithread_profile,
)
from repro.apps.osc import TaskSpaceController
from repro.apps.trajopt import ILQRResult, QuadraticCost, ilqr, total_cost
from repro.apps.workloads import (
    mpc_sample_points,
    random_requests,
    sinusoidal_trajectory,
)

__all__ = [
    "EndToEndModel",
    "ILQRResult",
    "IterationBreakdown",
    "LinearizedStep",
    "QuadraticCost",
    "State",
    "TaskMix",
    "TaskSpaceController",
    "euler_sensitivity_step",
    "euler_step",
    "ilqr",
    "mpc_sample_points",
    "multithread_profile",
    "random_requests",
    "rk4_sensitivity_step",
    "rk4_step",
    "rollout",
    "sinusoidal_trajectory",
    "total_cost",
]
