"""Trajectory optimization (iLQR) on the dynamics substrate.

The "LQ Approximation" phase — linearizing the dynamics along the current
trajectory with dFD — is the dominant, batch-parallel workload of Fig 2c;
the backward Riccati sweep is the serial remainder.  This module is both a
usable optimizer (see ``examples/trajectory_optimization.py``) and the
source of the task mix the end-to-end model (Section VI-B) prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.integrators import (
    _SCHEME_OF_METHOD,
    LinearizedStep,
    State,
    euler_sensitivity_step,
    euler_step,
)
from repro.model.robot import RobotModel


@dataclass
class QuadraticCost:
    """Tracking cost: sum_k |x_k - x_goal|_Q + |u_k|_R + terminal |.|_Qf."""

    q_weight: np.ndarray
    r_weight: np.ndarray
    terminal_weight: np.ndarray
    goal_q: np.ndarray
    goal_qd: np.ndarray

    @staticmethod
    def for_goal(
        model: RobotModel,
        goal_q: np.ndarray,
        position_weight: float = 10.0,
        velocity_weight: float = 1.0,
        control_weight: float = 1e-3,
        terminal_scale: float = 50.0,
    ) -> "QuadraticCost":
        nv = model.nv
        q_diag = np.concatenate(
            [np.full(nv, position_weight), np.full(nv, velocity_weight)]
        )
        return QuadraticCost(
            q_weight=np.diag(q_diag),
            r_weight=control_weight * np.eye(nv),
            terminal_weight=terminal_scale * np.diag(q_diag),
            goal_q=np.asarray(goal_q, dtype=float),
            goal_qd=np.zeros(nv),
        )

    def state_error(self, model: RobotModel, state: State) -> np.ndarray:
        # Tangent-space error (valid for the revolute-chain robots the
        # examples optimize; multi-DOF joints would need a log map).
        return np.concatenate(
            [state.q - self.goal_q, state.qd - self.goal_qd]
        )

    def stage(self, model: RobotModel, state: State, u: np.ndarray) -> float:
        err = self.state_error(model, state)
        return float(err @ self.q_weight @ err + u @ self.r_weight @ u)

    def terminal(self, model: RobotModel, state: State) -> float:
        err = self.state_error(model, state)
        return float(err @ self.terminal_weight @ err)


@dataclass
class ILQRResult:
    """Optimizer output."""

    controls: list[np.ndarray]
    states: list[State]
    cost_trace: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False


def total_cost(
    model: RobotModel,
    cost: QuadraticCost,
    states: list[State],
    controls: list[np.ndarray],
) -> float:
    value = sum(
        cost.stage(model, s, u) for s, u in zip(states[:-1], controls)
    )
    return value + cost.terminal(model, states[-1])


def ilqr(
    model: RobotModel,
    cost: QuadraticCost,
    initial: State,
    horizon: int,
    dt: float,
    *,
    max_iterations: int = 30,
    tolerance: float = 1e-6,
    regularization: float = 1e-6,
    initial_controls: list[np.ndarray] | None = None,
    linearize=euler_sensitivity_step,
    step=euler_step,
) -> ILQRResult:
    """Iterative LQR with line search.

    Each iteration runs the LQ Approximation (one dFD-based linearization
    per knot — the batch-parallel accelerator workload) and a serial
    backward Riccati sweep, matching the application profile of Fig 2.
    """
    nv = model.nv
    controls = (
        [np.zeros(nv) for _ in range(horizon)]
        if initial_controls is None
        else [np.asarray(u, dtype=float).copy() for u in initial_controls]
    )
    states = _rollout(model, initial, controls, dt, step)
    cost_now = total_cost(model, cost, states, controls)
    trace = [cost_now]

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # --- LQ approximation: one batched dFD over all knots ---
        linear = _linearize_knots(model, states, controls, dt, linearize)
        # --- Backward Riccati sweep (serial) ---
        v_x = 2.0 * cost.terminal_weight @ cost.state_error(model, states[-1])
        v_xx = 2.0 * cost.terminal_weight
        gains: list[tuple[np.ndarray, np.ndarray]] = [None] * horizon
        for k in range(horizon - 1, -1, -1):
            a, b = linear[k].a_matrix, linear[k].b_matrix
            err = cost.state_error(model, states[k])
            l_x = 2.0 * cost.q_weight @ err
            l_u = 2.0 * cost.r_weight @ controls[k]
            q_x = l_x + a.T @ v_x
            q_u = l_u + b.T @ v_x
            q_xx = 2.0 * cost.q_weight + a.T @ v_xx @ a
            q_ux = b.T @ v_xx @ a
            q_uu = 2.0 * cost.r_weight + b.T @ v_xx @ b
            q_uu_reg = q_uu + regularization * np.eye(nv)
            k_ff = -np.linalg.solve(q_uu_reg, q_u)
            k_fb = -np.linalg.solve(q_uu_reg, q_ux)
            gains[k] = (k_ff, k_fb)
            v_x = q_x + k_fb.T @ q_uu @ k_ff + k_fb.T @ q_u + q_ux.T @ k_ff
            v_xx = q_xx + k_fb.T @ q_uu @ k_fb + k_fb.T @ q_ux + q_ux.T @ k_fb
            v_xx = (v_xx + v_xx.T) / 2.0

        # --- Forward pass: the line-search fan as one batched rollout ---
        improved, new_states, new_controls, new_cost = _line_search(
            model, cost, initial, states, controls, gains, horizon, dt,
            step, cost_now,
        )
        if not improved:
            break
        relative_drop = (cost_now - new_cost) / max(abs(cost_now), 1e-12)
        states, controls, cost_now = new_states, new_controls, new_cost
        trace.append(cost_now)
        if relative_drop < tolerance:
            converged = True
            break

    return ILQRResult(
        controls=controls,
        states=states,
        cost_trace=trace,
        iterations=iteration,
        converged=converged or len(trace) > 1,
    )


#: Line-search step sizes, largest first (the serial search tried them
#: in this order and took the first improvement).
_ALPHAS = (1.0, 0.5, 0.25, 0.1, 0.03)


def _linearize_knots(model, states, controls, dt, linearize):
    """LQ approximation along the trajectory — one dFD per knot.

    For the default :func:`euler_sensitivity_step` the knots are
    independent, so all of them run as one batched dFD call (the Fig 2c
    "LQ Approximation" batch); custom linearizers keep the per-knot loop.
    """
    horizon = len(controls)
    if linearize is not euler_sensitivity_step:
        return [
            linearize(model, states[k], controls[k], dt)
            for k in range(horizon)
        ]
    from repro.dynamics.batch import BatchStates, batch_fd_derivatives

    nv = model.nv
    qs = np.stack([s.q for s in states[:horizon]])
    qds = np.stack([s.qd for s in states[:horizon]])
    us = np.stack(controls)
    deriv = batch_fd_derivatives(model, BatchStates(qs, qds), us)
    eye = np.eye(nv)
    out = []
    for k in range(horizon):
        dq, dqd = deriv.dqdd_dq[k], deriv.dqdd_dqd[k]
        minv = deriv.dqdd_dtau[k]
        a = np.eye(2 * nv)
        a[nv:, :nv] = dt * dq
        a[nv:, nv:] += dt * dqd
        a[:nv, :nv] += dt * dt * dq
        a[:nv, nv:] = dt * (eye + dt * dqd)
        b = np.zeros((2 * nv, nv))
        b[nv:, :] = dt * minv
        b[:nv, :] = dt * dt * minv
        qd_new = qds[k] + dt * deriv.qdd[k]
        out.append(LinearizedStep(
            State(model.integrate(qs[k], dt * qd_new), qd_new), a, b
        ))
    return out


def _line_search(model, cost, initial, states, controls, gains, horizon,
                 dt, step, cost_now):
    """Backtracking line search over the feedback-corrected rollout.

    The built-in steps evaluate *every* step size at once: one batched
    closed-loop rollout whose policy applies each row's ``alpha`` — the
    candidate trajectories that the serial search walked one by one.
    The accepted candidate is still the first improving ``alpha`` in
    descending order, so results match the serial search.
    """
    scheme = _SCHEME_OF_METHOD.get(step)
    if scheme is None:
        for alpha in _ALPHAS:
            new_controls = []
            state = initial
            new_states = [state]
            for k in range(horizon):
                k_ff, k_fb = gains[k]
                dx = np.concatenate(
                    [state.q - states[k].q, state.qd - states[k].qd]
                )
                u = controls[k] + alpha * k_ff + k_fb @ dx
                new_controls.append(u)
                state = step(model, state, u, dt)
                new_states.append(state)
            new_cost = total_cost(model, cost, new_states, new_controls)
            if new_cost < cost_now - 1e-12:
                return True, new_states, new_controls, new_cost
        return False, states, controls, cost_now

    from repro.rollout import RolloutEngine

    alphas = np.asarray(_ALPHAS)

    def policy(k, q, qd):
        k_ff, k_fb = gains[k]
        dx = np.concatenate(
            [q - states[k].q, qd - states[k].qd], axis=1
        )
        return controls[k] + alphas[:, None] * k_ff + dx @ k_fb.T

    result = RolloutEngine(scheme).rollout(
        model, np.tile(initial.q, (len(alphas), 1)),
        np.tile(initial.qd, (len(alphas), 1)),
        policy=policy, horizon=horizon, dt=dt,
    )
    for i in range(len(alphas)):
        cand_states = [
            State(result.qs[i, t], result.qds[i, t])
            for t in range(horizon + 1)
        ]
        cand_controls = [result.controls[i, t] for t in range(horizon)]
        new_cost = total_cost(model, cost, cand_states, cand_controls)
        if new_cost < cost_now - 1e-12:
            return True, cand_states, cand_controls, new_cost
    return False, states, controls, cost_now


def _rollout(model, initial, controls, dt, step):
    # integrators.rollout routes built-in steps through the batched
    # rollout subsystem and falls back to serial stepping for custom ones.
    from repro.apps.integrators import rollout as _batched_rollout

    return _batched_rollout(model, initial, list(controls), dt, step)
