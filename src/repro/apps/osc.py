"""Task-space control on the dynamics substrate.

A classic consumer of exactly the functions the accelerator serves: the
controller needs the bias forces / gravity terms, the Jacobians, and
(optionally) ``Minv`` every cycle — the ">100 Hz control methods" band of
the paper's Fig 1.

The default law is the passivity-based task-space PD with gravity
compensation (Takegaki-Arimoto)::

    tau = J^T Kp (x* - x) - Kd qd + g(q)

which is provably stable for reachable static targets.  Setting
``inertia_weighting=True`` switches to the operational-space form that
shapes the task inertia with ``Lambda = (J Minv J^T)^-1`` — faster when
well-conditioned, but sensitive near kinematic singularities (the classic
trade-off, observable in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamics.contact import ContactPoint, contact_jacobian
from repro.dynamics.kinematics import forward_kinematics
from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import gravity_torques, rnea
from repro.model.robot import RobotModel


@dataclass
class TaskSpaceController:
    """PD control of a point on a link, mapped through the Jacobian."""

    model: RobotModel
    link: int
    point_local: np.ndarray = field(default_factory=lambda: np.zeros(3))
    kp: float = 100.0
    #: Joint-space damping *rate* (1/s).  Applied as ``-kd * M(q) * qd`` so
    #: every joint is damped at the same rate regardless of its inertia —
    #: constant per-joint damping would make light wrist joints (inertia
    #: ~1e-4 kg m^2) numerically explosive to integrate.
    kd: float = 8.0
    inertia_weighting: bool = False
    regularization: float = 1e-2

    def torques(
        self, q: np.ndarray, qd: np.ndarray, target_world: np.ndarray
    ) -> np.ndarray:
        qd = np.asarray(qd, dtype=float)
        contact = ContactPoint(self.link, self.point_local)
        jac = contact_jacobian(self.model, q, [contact])
        fk = forward_kinematics(self.model, q)
        rotation = fk.link_rotation(self.link)
        world_point = fk.link_position(self.link) + rotation @ self.point_local
        error = np.asarray(target_world, dtype=float) - world_point

        from repro.dynamics.crba import crba

        mass = crba(self.model, q)
        damping_torque = -self.kd * (mass @ qd)
        if self.inertia_weighting:
            minv = mass_matrix_inverse(self.model, q)
            lambda_inv = (
                jac @ minv @ jac.T + self.regularization * np.eye(3)
            )
            force = np.linalg.solve(lambda_inv, self.kp * error)
            feedforward = rnea(self.model, q, qd, np.zeros(self.model.nv))
        else:
            force = self.kp * error
            feedforward = gravity_torques(self.model, q)
        return jac.T @ force + damping_torque + feedforward

    def tracking_error(
        self, q: np.ndarray, target_world: np.ndarray
    ) -> float:
        fk = forward_kinematics(self.model, q)
        rotation = fk.link_rotation(self.link)
        world_point = fk.link_position(self.link) + rotation @ self.point_local
        return float(np.linalg.norm(target_world - world_point))
