"""Numerical integration of robot dynamics, with sensitivities.

The 4th-order Runge-Kutta step with sensitivity propagation is the paper's
canonical partially-serial workload (Fig 13): each sampling point issues
four dynamics+derivative evaluations that must run in order, while points
are independent of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.derivatives import fd_derivatives
from repro.dynamics.functions import forward_dynamics
from repro.model.robot import RobotModel


@dataclass
class State:
    """Robot state (q on the configuration manifold, qd in the tangent)."""

    q: np.ndarray
    qd: np.ndarray


def euler_step(
    model: RobotModel, state: State, tau: np.ndarray, dt: float
) -> State:
    """Semi-implicit Euler (baseline integrator)."""
    qdd = forward_dynamics(model, state.q, state.qd, tau)
    qd_new = state.qd + dt * qdd
    q_new = model.integrate(state.q, dt * qd_new)
    return State(q_new, qd_new)


def rk4_step(
    model: RobotModel, state: State, tau: np.ndarray, dt: float
) -> State:
    """Classic RK4 on the (q, qd) dynamics — 4 serial FD calls."""

    def f(q: np.ndarray, qd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return qd, forward_dynamics(model, q, qd, tau)

    k1_dq, k1_dqd = f(state.q, state.qd)
    k2_dq, k2_dqd = f(
        model.integrate(state.q, 0.5 * dt * k1_dq), state.qd + 0.5 * dt * k1_dqd
    )
    k3_dq, k3_dqd = f(
        model.integrate(state.q, 0.5 * dt * k2_dq), state.qd + 0.5 * dt * k2_dqd
    )
    k4_dq, k4_dqd = f(
        model.integrate(state.q, dt * k3_dq), state.qd + dt * k3_dqd
    )
    dq = dt / 6.0 * (k1_dq + 2 * k2_dq + 2 * k3_dq + k4_dq)
    dqd = dt / 6.0 * (k1_dqd + 2 * k2_dqd + 2 * k3_dqd + k4_dqd)
    return State(model.integrate(state.q, dq), state.qd + dqd)


@dataclass
class LinearizedStep:
    """Discrete-time linearization x+ = A x + B u around a step."""

    state: State
    a_matrix: np.ndarray      # 2nv x 2nv
    b_matrix: np.ndarray      # 2nv x nv


def euler_sensitivity_step(
    model: RobotModel, state: State, tau: np.ndarray, dt: float
) -> LinearizedStep:
    """Euler step plus exact discrete A, B from the dFD derivatives.

    This is the "Derivatives of Dynamics" task of Fig 2c: one dFD call per
    sampling point.
    """
    nv = model.nv
    deriv = fd_derivatives(model, state.q, state.qd, tau)
    qd_new = state.qd + dt * deriv.qdd
    q_new = model.integrate(state.q, dt * qd_new)
    a_matrix = np.eye(2 * nv)
    # d(qd+)/d(q, qd)
    a_matrix[nv:, :nv] = dt * deriv.dqdd_dq
    a_matrix[nv:, nv:] += dt * deriv.dqdd_dqd
    # d(q+)/d(q, qd) = I + dt * d(qd+)/d(q, qd)
    a_matrix[:nv, :nv] += dt * dt * deriv.dqdd_dq
    a_matrix[:nv, nv:] = dt * (np.eye(nv) + dt * deriv.dqdd_dqd)
    b_matrix = np.zeros((2 * nv, nv))
    b_matrix[nv:, :] = dt * deriv.dqdd_dtau
    b_matrix[:nv, :] = dt * dt * deriv.dqdd_dtau
    return LinearizedStep(State(q_new, qd_new), a_matrix, b_matrix)


def rk4_sensitivity_step(
    model: RobotModel, state: State, tau: np.ndarray, dt: float
) -> LinearizedStep:
    """RK4 step with chained sensitivity propagation.

    Issues four *serial* dFD evaluations (the k_i points depend on each
    other) — exactly the task graph the paper's Fig 13 schedules.
    """
    nv = model.nv
    identity = np.eye(2 * nv)

    def f_with_jac(q, qd):
        deriv = fd_derivatives(model, q, qd, tau)
        dx = np.concatenate([qd, deriv.qdd])
        jac_x = np.zeros((2 * nv, 2 * nv))
        jac_x[:nv, nv:] = np.eye(nv)
        jac_x[nv:, :nv] = deriv.dqdd_dq
        jac_x[nv:, nv:] = deriv.dqdd_dqd
        jac_u = np.zeros((2 * nv, nv))
        jac_u[nv:, :] = deriv.dqdd_dtau
        return dx, jac_x, jac_u

    q0, qd0 = state.q, state.qd
    k1, j1x, j1u = f_with_jac(q0, qd0)
    s1 = State(model.integrate(q0, 0.5 * dt * k1[:nv]), qd0 + 0.5 * dt * k1[nv:])
    k2, j2x, j2u = f_with_jac(s1.q, s1.qd)
    s2 = State(model.integrate(q0, 0.5 * dt * k2[:nv]), qd0 + 0.5 * dt * k2[nv:])
    k3, j3x, j3u = f_with_jac(s2.q, s2.qd)
    s3 = State(model.integrate(q0, dt * k3[:nv]), qd0 + dt * k3[nv:])
    k4, j4x, j4u = f_with_jac(s3.q, s3.qd)

    # Chain the stage Jacobians.
    d1x, d1u = j1x, j1u
    d2x = j2x @ (identity + 0.5 * dt * d1x)
    d2u = j2u + 0.5 * dt * j2x @ d1u
    d3x = j3x @ (identity + 0.5 * dt * d2x)
    d3u = j3u + 0.5 * dt * j3x @ d2u
    d4x = j4x @ (identity + dt * d3x)
    d4u = j4u + dt * j4x @ d3u

    dx = dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
    a_matrix = identity + dt / 6.0 * (d1x + 2 * d2x + 2 * d3x + d4x)
    b_matrix = dt / 6.0 * (d1u + 2 * d2u + 2 * d3u + d4u)
    new_state = State(model.integrate(q0, dx[:nv]), qd0 + dx[nv:])
    return LinearizedStep(new_state, a_matrix, b_matrix)


#: Scalar step function -> the batched rollout scheme it corresponds to.
_SCHEME_OF_METHOD = {euler_step: "semi_implicit", rk4_step: "rk4"}


def rollout(
    model: RobotModel,
    initial: State,
    controls: list[np.ndarray],
    dt: float,
    method=rk4_step,
) -> list[State]:
    """Integrate a control sequence; returns states including the initial.

    The built-in methods (:func:`euler_step`, :func:`rk4_step`) execute
    through the batched rollout subsystem (:mod:`repro.rollout`) as a
    batch of one — same trajectory, engine-native kernels; custom step
    functions fall back to the serial per-step loop.
    """
    scheme = _SCHEME_OF_METHOD.get(method)
    if scheme is None or len(controls) == 0:
        states = [initial]
        for tau in controls:
            states.append(method(model, states[-1], tau, dt))
        return states
    from repro.rollout import RolloutEngine

    result = RolloutEngine(scheme).rollout(
        model, initial.q, initial.qd, np.asarray(controls, dtype=float),
        dt=dt,
    )
    return [
        State(result.qs[0, t], result.qds[0, t])
        for t in range(len(controls) + 1)
    ]


def batch_rollout(
    model: RobotModel,
    q0: np.ndarray,
    qd0: np.ndarray,
    controls: np.ndarray,
    dt: float,
    scheme: str = "rk4",
    engine=None,
    **kwargs,
):
    """Roll out a whole ``(n, T)`` batch of trajectories as one slab.

    Thin convenience over :class:`repro.rollout.RolloutEngine` — the
    batched replacement for calling :func:`rollout` per task.  Extra
    keyword arguments (``contacts``, ``contact_mask``, ``policy``,
    ``sensitivities``, ...) pass through to
    :meth:`repro.rollout.RolloutEngine.rollout`.
    """
    from repro.rollout import RolloutEngine

    return RolloutEngine(scheme, engine=engine).rollout(
        model, q0, qd0, controls, dt=dt, **kwargs
    )
