"""Workload generators for benchmarks and examples."""

from __future__ import annotations

import numpy as np

from repro.core.functions import TaskRequest
from repro.dynamics.functions import RBDFunction
from repro.model.robot import RobotModel


def random_requests(
    model: RobotModel,
    function: RBDFunction,
    count: int,
    seed: int = 0,
    velocity_scale: float = 1.0,
) -> list[TaskRequest]:
    """A batch of random task requests (the paper's batched-task load)."""
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        q, qd = model.random_state(rng, velocity_scale)
        requests.append(
            TaskRequest(
                function=function,
                q=q,
                qd=qd,
                qdd_or_tau=rng.normal(size=model.nv),
            )
        )
    return requests


def sinusoidal_trajectory(
    model: RobotModel,
    steps: int,
    dt: float = 0.01,
    amplitude: float = 0.6,
    seed: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """A smooth joint-space reference trajectory: (q, qd) per step.

    Per-joint sinusoids with random phases — the classic exercise signal
    for dynamics benchmarks.
    """
    rng = np.random.default_rng(seed)
    phase = rng.uniform(0.0, 2 * np.pi, size=model.nv)
    freq = rng.uniform(0.5, 1.5, size=model.nv)
    base = model.neutral_q()
    out = []
    for k in range(steps):
        t = k * dt
        offset = amplitude * np.sin(2 * np.pi * freq * t + phase)
        rate = amplitude * 2 * np.pi * freq * np.cos(2 * np.pi * freq * t + phase)
        out.append((model.integrate(base, offset), rate))
    return out


def poisson_arrival_times(
    rate_rps: float, count: int, seed: int = 0
) -> np.ndarray:
    """Arrival times (seconds from t=0) of a Poisson request stream.

    The open-loop service workload: ``count`` independent requests with
    exponential inter-arrival gaps at ``rate_rps`` requests/second —
    what a fleet of uncoordinated MPC hosts looks like to the service.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=count)
    return np.cumsum(gaps)


def chain_inputs(
    model: RobotModel,
    chain_length: int,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked ``(qs, qds, us)`` inputs for one serial request chain
    (e.g. the 4 RK4 sensitivity stages of one sampling point)."""
    rng = np.random.default_rng(seed)
    qs, qds = [], []
    for _ in range(chain_length):
        q, qd = model.random_state(rng)
        qs.append(q)
        qds.append(qd)
    return (np.stack(qs), np.stack(qds),
            rng.normal(size=(chain_length, model.nv)))


def mpc_sample_points(
    model: RobotModel,
    horizon_s: float = 1.0,
    control_hz: float = 100.0,
) -> int:
    """Sampling points of one MPC solve (the paper's sizing argument for
    batch 256: ~1 s horizon at 10 ms steps -> ~100 points)."""
    del model
    return int(round(horizon_s * control_hz))
