"""End-to-end application model (Section VI-B, Fig 2) and sampling MPC.

The paper's demo is a quadruped+arm robot in Webots controlled by an
OCS2-style MPC whose inner loop is dominated by dynamics calls.  This
module prices one control iteration from its task mix, on (a) a multicore
CPU alone and (b) a CPU with Dadu-RBD offloading the three supported task
kinds — forward dynamics, inverse of the mass matrix, and derivatives of
dynamics (dFD) — while the CPU overlaps the rest.

:class:`PredictiveSamplingMPC` is the *executable* counterpart: a
sampling-based controller (predictive sampling / MPPI-lite) whose inner
loop is exactly the batched-rollout workload — ``n`` perturbed control
sequences simulated as one ``(n, T)`` slab per control step through
:mod:`repro.rollout`, contacts included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.platforms import CpuPlatform
from repro.core.accelerator import DaduRBD
from repro.dynamics.functions import RBDFunction
from repro.model.robot import RobotModel


@dataclass(frozen=True)
class TaskMix:
    """Dynamics calls of one MPC iteration (counts per iteration).

    Defaults follow the paper's setup: ~100 sampling points (1 s horizon at
    a 10 ms step, Section VI-A sizing) with one rollout FD, one Minv and
    one dFD-based linearization per point, plus the serial solver part
    expressed as a fraction of the iteration.
    """

    sample_points: int = 100
    #: RK4 stages in the forward and feasibility rollouts.
    fd_per_point: int = 8
    #: One Minv per RK4 stage of the sensitivity propagation.
    minv_per_point: int = 4
    #: One dFD linearization per knot (the Fig 2c "Derivatives" slice).
    dfd_per_point: int = 1
    #: Fraction of the CPU-only iteration that is *not* dynamics work
    #: (Riccati sweep, QP solve, bookkeeping) and cannot be offloaded.
    other_fraction: float = 0.5

    def counts(self) -> dict[RBDFunction, int]:
        return {
            RBDFunction.FD: self.sample_points * self.fd_per_point,
            RBDFunction.MINV: self.sample_points * self.minv_per_point,
            RBDFunction.DFD: self.sample_points * self.dfd_per_point,
        }


@dataclass
class IterationBreakdown:
    """Time of one control iteration, split by component (seconds)."""

    offloadable: dict[RBDFunction, float] = field(default_factory=dict)
    other: float = 0.0

    @property
    def offloadable_total(self) -> float:
        return sum(self.offloadable.values())

    @property
    def total(self) -> float:
        return self.offloadable_total + self.other

    def shares(self) -> dict[str, float]:
        """Fig 2c-style breakdown (fractions of the iteration)."""
        out = {
            f"{fn.value}": t / self.total for fn, t in self.offloadable.items()
        }
        out["other"] = self.other / self.total
        return out


class EndToEndModel:
    """CPU-only vs CPU+Dadu-RBD control-loop timing (Section VI-B)."""

    def __init__(
        self,
        robot: RobotModel,
        cpu: CpuPlatform,
        accelerator: DaduRBD,
        mix: TaskMix | None = None,
        cpu_threads: int = 4,
    ) -> None:
        self.robot = robot
        self.cpu_model = CpuDynamicsModel(cpu, robot)
        self.accelerator = accelerator
        self.mix = mix or TaskMix()
        self.cpu_threads = cpu_threads

    # ------------------------------------------------------------------

    def cpu_breakdown(self) -> IterationBreakdown:
        """One iteration on the CPU alone (the Fig 2c profile)."""
        breakdown = IterationBreakdown()
        for fn, count in self.mix.counts().items():
            breakdown.offloadable[fn] = self.cpu_model.batch_seconds(
                fn, count, threads=self.cpu_threads
            )
        dyn = breakdown.offloadable_total
        breakdown.other = (
            dyn * self.mix.other_fraction / (1.0 - self.mix.other_fraction)
        )
        return breakdown

    def accelerated_seconds(self) -> dict[RBDFunction, float]:
        """The offloaded batches on Dadu-RBD."""
        return {
            fn: self.accelerator.batch_seconds(fn, count)
            for fn, count in self.mix.counts().items()
        }

    def task_speedup(self, threads: int = 1) -> float:
        """Speedup on the supported tasks alone (paper: 11.2x).

        The paper quotes this against the plain (single-thread) library
        execution of those tasks; the control-frequency comparison below is
        the one made against the 4-thread implementation.
        """
        cpu_time = sum(
            self.cpu_model.batch_seconds(fn, count, threads=threads)
            for fn, count in self.mix.counts().items()
        )
        acc_time = sum(self.accelerated_seconds().values())
        return cpu_time / acc_time

    def control_frequency_gain(self) -> float:
        """Relative control-frequency increase (paper: +80%).

        With the accelerator, the CPU computes the non-offloadable part
        while Dadu-RBD crunches the dynamics batches; the iteration ends
        when both are done, plus the (serial) result integration.
        """
        cpu_only = self.cpu_breakdown()
        acc_time = sum(self.accelerated_seconds().values())
        overlapped = max(cpu_only.other, acc_time)
        serial_tail = 0.1 * cpu_only.other       # result integration
        accelerated_total = overlapped + serial_tail
        return cpu_only.total / accelerated_total - 1.0

    def control_frequency_hz(self, accelerated: bool) -> float:
        cpu_only = self.cpu_breakdown()
        if not accelerated:
            return 1.0 / cpu_only.total
        gain = self.control_frequency_gain()
        return (1.0 + gain) / cpu_only.total


class PredictiveSamplingMPC:
    """Sampling-based MPC on batched rollouts (predictive sampling).

    Each control step perturbs the nominal control sequence with ``n``
    Gaussian samples, simulates all of them as one ``(n, T)`` rollout
    slab (:class:`repro.rollout.RolloutEngine` — engine-native, contacts
    supported), scores them with a trajectory cost, and keeps the best
    sequence as the new nominal (receding horizon).  This is the
    Monte-Carlo / RL-style rollout workload the batched substrate opens:
    one control step = one batched rollout instead of ``n * T`` scalar
    dynamics calls.

    ``cost`` is a callable ``cost(qs, qds, us) -> (n,)`` over the slabs
    (``qs``/``qds`` of shape ``(n, T+1, nv)``, ``us`` ``(n, T, nv)``).
    """

    def __init__(
        self,
        model: RobotModel,
        cost,
        horizon: int,
        dt: float,
        n_samples: int = 32,
        noise: float = 0.3,
        scheme: str = "semi_implicit",
        engine=None,
        contacts=None,
        contact_mask=None,
        seed: int = 0,
    ) -> None:
        from repro.rollout import RolloutEngine

        if n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        self.model = model
        self.cost = cost
        self.horizon = horizon
        self.dt = dt
        self.n_samples = n_samples
        self.noise = noise
        self.contacts = contacts
        self.contact_mask = contact_mask
        self._rollout = RolloutEngine(scheme, engine=engine)
        self._rng = np.random.default_rng(seed)
        self._nominal = np.zeros((horizon, model.nv))

    def plan(self, q: np.ndarray, qd: np.ndarray):
        """One MPC iteration from state ``(q, qd)``.

        Returns ``(u0, info)``: the first control of the winning sequence
        and a dict with the winning cost, the per-sample costs and the
        batched :class:`~repro.rollout.RolloutResult`.
        """
        n, t_steps, nv = self.n_samples, self.horizon, self.model.nv
        candidates = self._nominal + self._rng.normal(
            scale=self.noise, size=(n, t_steps, nv)
        )
        candidates[0] = self._nominal          # always keep the incumbent
        result = self._rollout.rollout(
            self.model,
            np.broadcast_to(np.asarray(q, dtype=float), (n, nv)),
            np.broadcast_to(np.asarray(qd, dtype=float), (n, nv)),
            candidates, dt=self.dt, contacts=self.contacts,
            contact_mask=self.contact_mask,
        )
        costs = np.asarray(
            self.cost(result.qs, result.qds, candidates), dtype=float
        )
        best = int(np.argmin(costs))
        winner = candidates[best]
        # Receding horizon: shift and repeat the last control.
        self._nominal = np.vstack([winner[1:], winner[-1:]])
        info = {
            "cost": float(costs[best]),
            "costs": costs,
            "best": best,
            "rollout": result,
        }
        return winner[0], info


def multithread_profile(
    robot: RobotModel,
    cpu: CpuPlatform,
    mix: TaskMix | None = None,
    max_threads: int = 12,
) -> list[tuple[int, float]]:
    """Fig 2b: relative iteration time vs thread count on the CPU.

    The parallelizable part (LQ approximation: the dynamics batches)
    scales with the platform's thread curve; the serial remainder does not.
    """
    mix = mix or TaskMix()
    cpu_model = CpuDynamicsModel(cpu, robot)
    single = sum(
        cpu_model.batch_seconds(fn, count, threads=1)
        for fn, count in mix.counts().items()
    )
    other = single * mix.other_fraction / (1.0 - mix.other_fraction)
    base = single + other
    out = []
    for threads in range(1, max_threads + 1):
        speedup = cpu.thread_speedup(threads)
        out.append((threads, (single / speedup + other) / base))
    return out
