"""Walkthrough: dynamics-as-a-service with the repro.serve runtime.

The paper's accelerator earns its throughput from batched workloads that
keep the multifunctional pipelines full (Fig 15-17).  A service facing
many independent robots has to build those batches on the fly: this
example stands up a :class:`repro.serve.DynamicsService`, pushes an
open-loop Poisson load and a closed-loop MPC client through it, and
prints the service-level latency/throughput picture.

Batched execution: once the batcher has coalesced a batch, the shard
evaluates it with the ``"compiled"`` engine — level-scheduled kernels
over the robot's cached execution plan (:mod:`repro.dynamics.plan`), so
a 256-task batch costs one sweep per tree *depth level* with all
independent branches fused, on a preallocated workspace.  Pass
``engine="vectorized"`` (per-link batch kernels) or ``engine="loop"``
(per-task reference) to :class:`~repro.serve.DynamicsService` to
compare; results are identical to 1e-10 and the serving engine is
recorded per batch in the metrics (see ``benchmarks/bench_plan.py`` and
``benchmarks/bench_engine.py``).

Run with ``PYTHONPATH=src python examples/serving.py``.
"""

import numpy as np

from repro.apps.workloads import chain_inputs
from repro.dynamics.functions import RBDFunction, evaluate
from repro.model.library import load_robot
from repro.serve import (
    BatchPolicy,
    ClosedLoopClient,
    DynamicsService,
    OpenLoopClient,
)

ROBOT = "iiwa"


def main() -> None:
    model = load_robot(ROBOT)

    # 1. Stand the service up: batches of up to 64 same-(robot, function)
    #    requests, flushed after at most 1 ms; two modeled accelerator
    #    shards behind a least-loaded dispatcher.
    policy = BatchPolicy(max_batch=64, max_wait_s=1e-3, max_pending=8192)
    with DynamicsService(policy, n_shards=2, shard_policy="least_loaded",
                         warm_robots=[ROBOT]) as service:
        # 2. A single request round trip: futures resolve to ServeResult.
        rng = np.random.default_rng(0)
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        result = service.submit(ROBOT, RBDFunction.FD, q, qd, tau).result(
            timeout=10.0
        )
        direct = evaluate(model, RBDFunction.FD, q, qd, tau)
        print(f"single FD request: batch_size={result.batch_size}, "
              f"shard={result.shard}, "
              f"modeled latency {result.modeled_latency_s * 1e6:.2f} us, "
              f"max |serve - direct| = "
              f"{np.max(np.abs(result.value - direct)):.2e}")

        # 2b. A deadline-bound client: urgent=True skips the batcher and
        #     dispatches immediately (no max_wait_s coalescing delay).
        urgent = service.submit(ROBOT, RBDFunction.FD, q, qd, tau,
                                urgent=True).result(timeout=10.0)
        print(f"urgent FD request: batch_size={urgent.batch_size} "
              f"(bypassed the batcher), engine={urgent.engine}")

        # 3. A serial chain (the 4 RK4 sensitivity stages of one sampling
        #    point): executes in order on one shard, timed with chained
        #    jobs (Fig 13).
        qs, qds, taus = chain_inputs(model, chain_length=4, seed=3)
        chain = service.submit_chain(ROBOT, RBDFunction.FD, qs, qds, taus)
        chain_result = chain[-1].result(timeout=10.0)
        chain_us = service.config.cycles_to_seconds(
            chain_result.modeled_makespan_cycles) * 1e6
        print(f"RK4-style chain of 4: modeled makespan {chain_us:.2f} us "
              f"(serialized stages, vs {result.modeled_latency_s * 1e6:.2f} "
              f"us for one pipelined task)")

        # 4. Open-loop Poisson load: 400 independent FD requests arriving
        #    at 20 kHz (time compressed) — the batcher coalesces them.
        open_report = OpenLoopClient(
            service, ROBOT, RBDFunction.FD, rate_rps=20_000.0, seed=1
        ).run(400, time_scale=0.0)
        print(f"open-loop: {open_report.completed}/{open_report.submitted} "
              f"completed, mean latency "
              f"{open_report.mean_latency_s * 1e3:.2f} ms")

        # 5. A closed-loop MPC client: submit FD, wait, integrate, repeat.
        closed_report = ClosedLoopClient(service, ROBOT, dt=0.01,
                                         seed=2).run(25)
        print(f"closed-loop: {closed_report.completed} control steps, "
              f"mean round trip "
              f"{closed_report.mean_latency_s * 1e3:.2f} ms")

        # 6. The service-level scoreboard.
        stats = service.stats()
        print("\nservice stats:")
        for key in ("completed", "accepted", "rejected", "urgent",
                    "flushed_full", "flushed_timeout",
                    "mean_batch_occupancy", "cache_hits", "cache_misses",
                    "engine", "engine_batches"):
            print(f"  {key:22s} {stats[key]}")
        print(f"  modeled throughput     "
              f"{stats['modeled_throughput_rps'] / 1e6:.2f} Mtasks/s")


if __name__ == "__main__":
    main()
