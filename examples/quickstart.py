#!/usr/bin/env python
"""Quickstart: configure Dadu-RBD for a robot and run every function.

Builds the accelerator model for the KUKA iiwa (like flashing the FPGA
bitstream once per robot), pushes one task of each Table-I function
through it, verifies the outputs against the reference algorithms, and
prints the timing/resource/power profile of the build.
"""

import numpy as np

from repro.core import DaduRBD, TaskRequest
from repro.dynamics import (
    inverse_dynamics,
    mass_matrix,
    mass_matrix_inverse,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa


def main() -> None:
    robot = iiwa()
    accelerator = DaduRBD(robot)
    print(accelerator.describe())
    print()

    rng = np.random.default_rng(42)
    q, qd = robot.random_state(rng)
    qdd = rng.normal(size=robot.nv)
    tau = inverse_dynamics(robot, q, qd, qdd)

    requests = {
        RBDFunction.ID: TaskRequest(RBDFunction.ID, q, qd, qdd),
        RBDFunction.FD: TaskRequest(RBDFunction.FD, q, qd, tau),
        RBDFunction.M: TaskRequest(RBDFunction.M, q),
        RBDFunction.MINV: TaskRequest(RBDFunction.MINV, q),
        RBDFunction.DID: TaskRequest(RBDFunction.DID, q, qd, qdd),
        RBDFunction.DFD: TaskRequest(RBDFunction.DFD, q, qd, tau),
        RBDFunction.DIFD: TaskRequest(
            RBDFunction.DIFD, q, qd, qdd, minv=mass_matrix_inverse(robot, q)
        ),
    }

    from repro.dynamics import fd_derivatives, rnea_derivatives

    did_ref = rnea_derivatives(robot, q, qd, qdd)
    dfd_ref = fd_derivatives(robot, q, qd, tau)
    references = {
        RBDFunction.ID: tau,
        RBDFunction.FD: qdd,
        RBDFunction.M: mass_matrix(robot, q),
        RBDFunction.MINV: mass_matrix_inverse(robot, q),
        RBDFunction.DID: did_ref.dtau_dq,
        RBDFunction.DFD: dfd_ref.dqdd_dq,
        RBDFunction.DIFD: dfd_ref.dqdd_dq,
    }

    header = (
        f"{'function':6s} {'latency(us)':>12s} {'thr(M/s)':>9s} "
        f"{'power(W)':>9s} {'max |err|':>10s}"
    )
    print(header)
    print("-" * len(header))
    for function, request in requests.items():
        result = accelerator.run(request)
        latency_us = accelerator.config.cycles_to_seconds(
            result.latency_cycles
        ) * 1e6
        throughput = accelerator.throughput_tasks_per_s(function, 256) / 1e6
        power = accelerator.power_w(function)
        value = result.value
        if hasattr(value, "dqdd_dq"):
            value = value.dqdd_dq
        elif hasattr(value, "dtau_dq"):
            value = value.dtau_dq
        err = float(np.abs(np.asarray(value) - references[function]).max())
        print(f"{function.value:6s} {latency_us:12.2f} {throughput:9.2f} "
              f"{power:9.1f} {err:10.2e}")

    # The round trip FD(ID(qdd)) == qdd through the accelerator numerics.
    fd_result = accelerator.compute(requests[RBDFunction.FD])
    print()
    print("round trip |FD(ID(qdd)) - qdd|:",
          f"{np.abs(fd_result - qdd).max():.2e}",
          "(fixed-point + Taylor-trig datapath)")


if __name__ == "__main__":
    main()
