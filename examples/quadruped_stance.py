#!/usr/bin/env python
"""Quadruped stance: contact-constrained dynamics on HyQ.

The paper's headline robots are legged; their MPC formulations solve
contact-constrained dynamics built exactly from the accelerator's outputs
(Minv, bias forces, Jacobians).  This example plants HyQ's four feet,
solves the constrained forward dynamics, and checks that the contact
forces carry the robot's weight.
"""

import numpy as np

from repro.dynamics.contact import (
    ContactPoint,
    constrained_forward_dynamics,
    contact_jacobian,
)
from repro.dynamics.batch import BatchStates, batch_fd_derivatives
from repro.model.library import hyq
from repro.model.robot import GRAVITY


def main() -> None:
    robot = hyq()
    feet = [
        ContactPoint(robot.link_index(f"{leg}_kfe"),
                     np.array([0.0, 0.0, -0.35]))
        for leg in ("lf", "rf", "lh", "rh")
    ]

    # A neutral standing pose, zero velocity, zero actuation.
    q = robot.neutral_q()
    qd = np.zeros(robot.nv)
    tau = np.zeros(robot.nv)

    result = constrained_forward_dynamics(robot, q, qd, tau, feet)
    total_mass = sum(link.inertia.mass for link in robot.links)
    weight = total_mass * GRAVITY

    print("=== HyQ standing on four planted feet ===")
    print(f"total mass: {total_mass:.1f} kg (weight {weight:.0f} N)")
    vertical = 0.0
    for foot, name in zip(range(4), ("LF", "RF", "LH", "RH")):
        force = result.contact_forces[3 * foot: 3 * foot + 3]
        vertical += force[2]
        print(f"  {name} foot force: "
              f"[{force[0]:7.1f} {force[1]:7.1f} {force[2]:7.1f}] N")
    print(f"sum of vertical forces: {vertical:.0f} N "
          f"(supports {vertical / weight:.0%} of the weight)")

    jac = contact_jacobian(robot, q, feet)
    accel = jac @ result.qdd
    print(f"max foot acceleration: {np.abs(accel).max():.2e} m/s^2 "
          "(constrained to ~0)")

    # The MPC's per-point workload, batched: 16 dFD linearizations.
    states = BatchStates.random(robot, 16, seed=0)
    taus = np.zeros((16, robot.nv))
    derivs = batch_fd_derivatives(robot, states, taus)
    print(f"\nbatched dFD for 16 MPC knots: dqdd_dq tensor "
          f"{derivs.dqdd_dq.shape}, finite: "
          f"{bool(np.all(np.isfinite(derivs.dqdd_dq)))}")


if __name__ == "__main__":
    main()
