#!/usr/bin/env python
"""Visualize the Round-Trip Pipelines (Fig 4d / Fig 6a).

Renders ASCII stage-occupancy timelines of the simulated pipelines:

* the RNEA RTP's round trip (forward wave down the chain, backward wave
  returning) with four tasks pipelined like a systolic array;
* the Backward-Forward Module's reversed dataflow for Minv;
* dFD's two passes through the Forward-Backward Module via the Feedback
  Module;
* HyQ's SAP branch arrays with two legs time-multiplexed per stage.
"""

from repro.core import DaduRBD
from repro.core.visualize import pipeline_timeline
from repro.dynamics.functions import RBDFunction
from repro.model.library import hyq, iiwa


def main() -> None:
    acc = DaduRBD(iiwa())
    print("=== iiwa ID: RNEA Round-Trip Pipeline (4 tasks) ===")
    print(pipeline_timeline(acc.graph(RBDFunction.ID), n_jobs=4, width=64))

    print("\n=== iiwa Minv: Backward-Forward Module (3 tasks) ===")
    print(pipeline_timeline(acc.graph(RBDFunction.MINV), n_jobs=3, width=64))

    print("\n=== iiwa dFD: double pass through the FB module (2 tasks) ===")
    print(pipeline_timeline(acc.graph(RBDFunction.DFD), n_jobs=2, width=72))

    hyq_acc = DaduRBD(hyq())
    print("\n=== HyQ ID: branch arrays, 2 legs multiplexed per stage "
          "(2 tasks) ===")
    print(pipeline_timeline(hyq_acc.graph(RBDFunction.ID), n_jobs=2, width=72))


if __name__ == "__main__":
    main()
