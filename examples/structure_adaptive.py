#!/usr/bin/env python
"""Structure-Adaptive Pipelines across robot morphologies (Fig 11).

Builds Dadu-RBD for every robot in the library and prints how the SAP
organization adapts: branch arrays, symmetric-branch multiplexing,
floating-base splitting, and the Atlas re-rooting (depth 11 -> 9) with its
resource effect.
"""

from repro.core import DaduRBD, PAPER_CONFIG
from repro.core.config import SAPConfig
from repro.dynamics.functions import RBDFunction
from repro.model.library import atlas, hyq, iiwa, quadruped_arm, spot_arm, tiago


def main() -> None:
    print("=== SAP organizations (Fig 11) ===\n")
    for builder in (tiago, spot_arm, atlas, iiwa, hyq, quadruped_arm):
        accelerator = DaduRBD(builder())
        report = accelerator.resources()
        print(accelerator.org.describe())
        print(f"  -> {report.stage_count} stages, {report.total_lanes} lanes,"
              f" DSP {report.dsp_utilization:.0%},"
              f" heavy II {accelerator.config.heavy_ii_cycles} cycles")
        print(f"  -> ID latency "
              f"{accelerator.latency_seconds(RBDFunction.ID) * 1e6:.2f} us, "
              f"dID throughput "
              f"{accelerator.throughput_tasks_per_s(RBDFunction.DID) / 1e6:.2f}"
              " Mtasks/s")
        print()

    print("=== Atlas re-rooting ablation (Fig 11c) ===\n")
    rerooted = DaduRBD(atlas())
    pelvis_config = PAPER_CONFIG.with_(sap=SAPConfig(reroot_tree=False))
    pelvis = DaduRBD(atlas(), pelvis_config)
    for name, acc in (("re-rooted at torso2", rerooted),
                      ("pelvis root", pelvis)):
        report = acc.resources()
        depth = acc.org.timing_model.max_depth()
        print(f"  {name:22s}: depth {depth:2d}, lanes {report.total_lanes}, "
              f"dID latency "
              f"{acc.latency_seconds(RBDFunction.DID) * 1e6:.2f} us")


if __name__ == "__main__":
    main()
