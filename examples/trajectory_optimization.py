#!/usr/bin/env python
"""Trajectory optimization: iLQR swing-up with accelerator-priced batches.

Optimizes a double-pendulum swing-up with iLQR built entirely on this
package's dynamics (the "LQ Approximation" workload of Fig 2c), then prices
the per-iteration dynamics batches on the Dadu-RBD model vs a CPU — the
paper's core use case for batched dFD.

The iLQR inner loops run on the batched substrate: the LQ approximation
is one batched dFD over all knots and the line search one batched
closed-loop rollout over the step-size fan (:mod:`repro.rollout`).  The
final section demonstrates the same subsystem on a Monte-Carlo
robustness sweep: the optimized control tape replayed from a slab of
perturbed initial states in one batched rollout.
"""

import numpy as np

from repro.apps.integrators import State, batch_rollout
from repro.apps.trajopt import QuadraticCost, ilqr
from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.platforms import AGX_ORIN_CPU
from repro.core import DaduRBD
from repro.dynamics.functions import RBDFunction
from repro.model.library import double_pendulum


def main() -> None:
    robot = double_pendulum()
    horizon, dt = 40, 0.04
    goal = np.array([np.pi, 0.0])
    cost = QuadraticCost.for_goal(robot, goal, position_weight=12.0)

    print(f"iLQR swing-up: {robot.name}, horizon {horizon} x {dt}s")
    result = ilqr(
        robot, cost, State(np.zeros(2), np.zeros(2)),
        horizon=horizon, dt=dt, max_iterations=30,
    )
    print(f"  iterations: {result.iterations}, converged: {result.converged}")
    print(f"  cost: {result.cost_trace[0]:.1f} -> {result.cost_trace[-1]:.2f}")
    final = result.states[-1]
    print(f"  final q = {np.round(final.q, 3)} (goal {goal[:2]})")

    # Price the LQ-approximation batch (one dFD per knot per iteration).
    accelerator = DaduRBD(robot)
    cpu = CpuDynamicsModel(AGX_ORIN_CPU, robot)
    acc_time = accelerator.batch_seconds(RBDFunction.DFD, horizon)
    cpu_time = cpu.batch_seconds(RBDFunction.DFD, horizon)
    print()
    print(f"per-iteration dFD batch ({horizon} knots):")
    print(f"  Dadu-RBD: {acc_time * 1e6:8.1f} us")
    print(f"  AGX CPU : {cpu_time * 1e6:8.1f} us  "
          f"({cpu_time / acc_time:.1f}x slower)")
    iterations_per_s_acc = 1.0 / (acc_time * result.iterations)
    print(f"  -> up to {iterations_per_s_acc:.0f} full solves/s of this "
          "problem on the accelerator's dynamics budget")

    # Monte-Carlo robustness: replay the optimized control tape from a
    # batch of perturbed initial states — one (n, T) rollout slab.
    n = 64
    rng = np.random.default_rng(0)
    q0 = 0.05 * rng.normal(size=(n, robot.nv))
    qd0 = 0.05 * rng.normal(size=(n, robot.nv))
    controls = np.asarray(result.controls)
    slab = batch_rollout(robot, q0, qd0, controls, dt, scheme="semi_implicit")
    final_err = np.linalg.norm(slab.qs[:, -1] - goal, axis=1)
    print()
    print(f"Monte-Carlo replay ({n} perturbed starts, one batched rollout):")
    print(f"  final |q - goal|: median {np.median(final_err):.3f}, "
          f"p90 {np.percentile(final_err, 90):.3f}")


if __name__ == "__main__":
    main()
