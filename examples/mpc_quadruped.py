#!/usr/bin/env python
"""End-to-end MPC on the quadruped+arm robot (the paper's Fig 2 / VI-B).

Walks through the whole Section VI-B story on the Fig 3 robot:

1. profile one MPC iteration on a multicore CPU (Fig 2c breakdown);
2. show the multithreading wall (Fig 2b);
3. offload FD / Minv / dFD to Dadu-RBD and report the task speedup and
   control-frequency gain;
4. demonstrate the Fig 13 schedule: RK4 sensitivity chains interleaved
   with independent batch tasks on the real pipeline simulator.
"""

from repro.apps.mpc import EndToEndModel, multithread_profile
from repro.baselines.platforms import AGX_ORIN_CPU
from repro.core import DaduRBD
from repro.core.scheduler import independent_batch, rk4_sensitivity_jobs
from repro.dynamics.functions import RBDFunction
from repro.model.library import quadruped_arm


def main() -> None:
    robot = quadruped_arm()
    accelerator = DaduRBD(robot)
    print(accelerator.describe())

    print("\n--- Fig 2b: multithreaded CPU scaling ---")
    for threads, rel in multithread_profile(robot, AGX_ORIN_CPU):
        bar = "#" * int(rel * 40)
        print(f"  {threads:2d} threads: {rel:5.2f} {bar}")

    e2e = EndToEndModel(robot, AGX_ORIN_CPU, accelerator, cpu_threads=4)
    print("\n--- Fig 2c: task breakdown of one MPC iteration (4 threads) ---")
    for task, share in e2e.cpu_breakdown().shares().items():
        print(f"  {task:6s}: {share:6.1%}")

    print("\n--- Section VI-B: offloading to Dadu-RBD ---")
    print(f"  offloaded-task speedup : {e2e.task_speedup():.1f}x "
          "(paper: 11.2x)")
    gain = e2e.control_frequency_gain()
    print(f"  control frequency gain : +{gain:.0%} (paper: +80%)")
    print(f"  control frequency      : "
          f"{e2e.control_frequency_hz(False):.0f} Hz -> "
          f"{e2e.control_frequency_hz(True):.0f} Hz")

    print("\n--- Fig 13: scheduling RK4 chains with batch tasks ---")
    chains = rk4_sensitivity_jobs(8)
    batch = independent_batch(32)
    to_us = 1e6 / accelerator.config.clock_hz
    alone = accelerator.profile_batch(RBDFunction.FD, 0, jobs=chains)
    mixed = accelerator.profile_batch(RBDFunction.FD, 0, jobs=chains + batch)
    only_batch = accelerator.profile_batch(RBDFunction.FD, 32)
    print(f"  8 RK4 chains alone      : {alone.makespan_cycles * to_us:7.1f} us")
    print(f"  32 independent tasks    : "
          f"{only_batch.makespan_cycles * to_us:7.1f} us")
    print(f"  interleaved (64 tasks)  : {mixed.makespan_cycles * to_us:7.1f} us")
    hidden = (alone.makespan_cycles + only_batch.makespan_cycles
              - mixed.makespan_cycles) * to_us
    print(f"  serial bubbles hidden   : {hidden:7.1f} us")


if __name__ == "__main__":
    main()
