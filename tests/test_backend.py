"""The array-backend shim and the backend-parametrized equivalence suite.

Two halves:

* unit tests for :mod:`repro.backend` — registry resolution, graceful
  not-installed probing, namespace dispatch, the op vocabulary; and
* the acceptance equivalence sweep — every Table-I function evaluated
  through a compiled plan on each *available* backend (and through the
  ``"process"`` engine) must match the ``"loop"`` reference to 1e-10
  across all library robots at batch 1 and 256, including the f_ext
  path.  Backends whose runtime is not installed (cupy/jax here) skip
  cleanly instead of erroring.
"""

import numpy as np
import pytest

from repro.backend import (
    BackendCapabilityError,
    BackendUnavailable,
    array_namespace,
    available_backends,
    backend_status,
    default_backend_name,
    get_backend,
    host_backend,
    registered_backends,
    set_default_backend,
    to_host,
)
from repro.dynamics import BatchStates, batch_evaluate, evaluate
from repro.dynamics.engine import CompiledEngine, get_engine
from repro.dynamics.functions import RBDFunction
from repro.model.library import ROBOT_REGISTRY, load_robot

TOL = dict(rtol=1e-10, atol=1e-10)
ROBOTS = sorted(ROBOT_REGISTRY)
FUNCTIONS = list(RBDFunction)


# ---------------------------------------------------------------------------
# Shim unit tests
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_registered_vs_available(self):
        assert registered_backends() == ("cupy", "jax", "numpy")
        assert "numpy" in available_backends()
        assert set(available_backends()) <= set(registered_backends())

    def test_numpy_always_resolves(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert backend is host_backend()
        assert backend.capabilities.inplace
        assert backend.capabilities.device == "cpu"

    def test_default_backend(self):
        assert default_backend_name() == "numpy"
        assert get_backend() is get_backend("numpy")
        assert get_backend(get_backend("numpy")).name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tpu9000")

    def test_uninstalled_backend_raises_backend_unavailable(self):
        for name in ("cupy", "jax"):
            if name in available_backends():
                pytest.skip(f"{name} is installed here")
            with pytest.raises(BackendUnavailable, match=name):
                get_backend(name)

    def test_probe_never_raises(self):
        status = backend_status()
        assert status["numpy"]["available"] is True
        for name in ("cupy", "jax"):
            assert "available" in status[name]
            if not status[name]["available"]:
                assert "not" in status[name]["detail"]

    def test_failed_probe_memoized(self, monkeypatch):
        """One import attempt per process: later lookups re-raise the
        memoized BackendUnavailable without re-running the factory."""
        from repro.backend import _BACKEND_FACTORIES, _BACKEND_FAILURES

        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            raise BackendUnavailable(
                "backend 'flaky_test' is not available: test stub"
            )

        monkeypatch.setitem(_BACKEND_FACTORIES, "flaky_test", factory)
        try:
            for _ in range(3):
                with pytest.raises(BackendUnavailable, match="flaky_test"):
                    get_backend("flaky_test")
            assert calls["n"] == 1
        finally:
            _BACKEND_FAILURES.pop("flaky_test", None)

    def test_set_default_backend_roundtrip(self):
        set_default_backend("numpy")
        try:
            assert default_backend_name() == "numpy"
        finally:
            set_default_backend(None)
        assert default_backend_name() == "numpy"

    def test_set_default_backend_validates(self):
        with pytest.raises((KeyError, BackendUnavailable)):
            set_default_backend("not-a-backend")


class TestNamespaceDispatch:
    def test_host_types_resolve_to_numpy(self):
        assert array_namespace(np.zeros(3)) is np
        assert array_namespace([1.0, 2.0]) is np
        assert array_namespace(1.5, np.zeros(2)) is np

    def test_to_host_passthrough(self):
        arr = np.arange(4.0)
        assert to_host(arr) is arr
        assert to_host(2.5) == 2.5


class TestOps:
    def test_einsum_matches_numpy_and_caches_paths(self):
        backend = get_backend("numpy")
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 6, 6))
        b = rng.normal(size=(5, 6))
        want = np.einsum("nij,nj->ni", a, b)
        np.testing.assert_allclose(
            backend.einsum("nij,nj->ni", a, b), want, **TOL
        )
        out = np.empty((5, 6))
        backend.einsum("nij,nj->ni", a, b, out=out)
        np.testing.assert_allclose(out, want, **TOL)
        assert "nij,nj->ni" in backend._einsum_paths

    def test_linalg_and_scatter(self):
        backend = get_backend("numpy")
        rng = np.random.default_rng(1)
        m = rng.normal(size=(4, 4))
        spd = m @ m.T + 4 * np.eye(4)
        np.testing.assert_allclose(
            backend.inv(spd) @ spd, np.eye(4), atol=1e-9
        )
        np.testing.assert_allclose(
            backend.cholesky(spd) @ backend.cholesky(spd).T, spd, atol=1e-9
        )
        np.testing.assert_allclose(
            backend.solve(spd, np.ones(4)), np.linalg.solve(spd, np.ones(4)),
            **TOL,
        )
        acc = backend.zeros((3, 2))
        backend.index_add(acc, np.array([0, 0, 2]), np.ones((3, 2)))
        np.testing.assert_allclose(acc, [[2, 2], [0, 0], [1, 1]], **TOL)
        gathered = backend.take(np.arange(10.0), np.array([3, 1]))
        np.testing.assert_allclose(gathered, [3.0, 1.0], **TOL)

    def test_functional_scatter_ops(self):
        """at_set / at_add are out-of-place; duplicate indices sum."""
        backend = get_backend("numpy")
        a = np.zeros((2, 3))
        out = backend.at_set(a, (slice(None), np.array([0, 2])), 1.0)
        assert a.sum() == 0.0                  # input untouched
        np.testing.assert_allclose(out, [[1, 0, 1], [1, 0, 1]], **TOL)
        out2 = backend.at_add(
            out, (slice(None), np.array([1, 1])), np.ones((2, 2))
        )
        np.testing.assert_allclose(out, [[1, 0, 1], [1, 0, 1]], **TOL)
        np.testing.assert_allclose(out2[:, 1], [2.0, 2.0], **TOL)

    def test_jit_identity_and_scan_fallback(self):
        """numpy's jit is the identity; scan folds with stacked outputs."""
        backend = get_backend("numpy")
        assert not backend.capabilities.jit
        assert not backend.capabilities.scan
        fn = backend.jit(lambda x: x + 1)
        assert fn(1.0) == 2.0
        carry, ys = backend.scan(
            lambda c, x: (c + x, c), 0.0, xs=np.arange(4.0)
        )
        assert carry == 6.0
        np.testing.assert_allclose(ys, [0.0, 0.0, 1.0, 3.0], **TOL)
        # tuple-structured per-step outputs stack per leaf
        carry, (a, b) = backend.scan(
            lambda c, x: (c + x, (c, 2 * x)), 0.0, xs=np.arange(3.0)
        )
        np.testing.assert_allclose(a, [0.0, 0.0, 1.0], **TOL)
        np.testing.assert_allclose(b, [0.0, 2.0, 4.0], **TOL)


# ---------------------------------------------------------------------------
# Backend-parametrized equivalence (the acceptance sweep)
# ---------------------------------------------------------------------------


@pytest.fixture(params=["numpy", "cupy", "jax"], scope="module")
def backend_name(request):
    """Each registered backend; uninstalled runtimes skip cleanly."""
    if request.param not in available_backends():
        pytest.skip(f"backend {request.param!r} is not installed")
    backend = get_backend(request.param)
    if not backend.capabilities.inplace:
        pytest.skip(
            f"backend {request.param!r} has immutable arrays; the "
            "compiled engine declines it (see test_jax_declined_cleanly)"
        )
    return request.param


def test_jax_declined_cleanly():
    """If jax *is* installed, the compiled engine must refuse it with a
    capability error, not die mid-kernel."""
    if "jax" not in available_backends():
        pytest.skip("jax is not installed")
    from repro.dynamics.plan import plan_for

    with pytest.raises(BackendCapabilityError, match="inplace"):
        plan_for(load_robot("pendulum"), "jax")


def _batch_inputs(model, function, n, seed=0):
    rng = np.random.default_rng(seed)
    states = BatchStates.random(model, n, seed=seed)
    u = rng.normal(size=(n, model.nv))
    minv = None
    if function is RBDFunction.DIFD:
        minv = np.stack([
            evaluate(model, RBDFunction.MINV, states.q[k]) for k in range(n)
        ])
    return states, u, minv


_LOOP_CACHE: dict = {}


def loop_reference(robot, function, n):
    """Memoized loop-engine results shared across backend/process cases."""
    key = (robot, function, n)
    if key not in _LOOP_CACHE:
        model = load_robot(robot)
        states, u, minv = _batch_inputs(model, function, n)
        _LOOP_CACHE[key] = batch_evaluate(
            model, function, states, u, minv=minv, engine="loop"
        )
    return _LOOP_CACHE[key]


def assert_results_match(function, got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        if hasattr(a, "dqdd_dq"):
            np.testing.assert_allclose(a.qdd, b.qdd, **TOL)
            np.testing.assert_allclose(a.dqdd_dq, b.dqdd_dq, **TOL)
            np.testing.assert_allclose(a.dqdd_dqd, b.dqdd_dqd, **TOL)
            np.testing.assert_allclose(a.dqdd_dtau, b.dqdd_dtau, **TOL)
        elif hasattr(a, "dtau_dq"):
            np.testing.assert_allclose(a.dtau_dq, b.dtau_dq, **TOL)
            np.testing.assert_allclose(a.dtau_dqd, b.dtau_dqd, **TOL)
        else:
            np.testing.assert_allclose(np.asarray(a), np.asarray(b), **TOL)


@pytest.mark.parametrize("n", [1, 256])
@pytest.mark.parametrize("robot", ROBOTS)
def test_compiled_on_backend_matches_loop(backend_name, robot, n):
    """Compiled plans on every available backend == loop, all robots,
    all seven functions, singleton and full accelerator batches."""
    model = load_robot(robot)
    engine = CompiledEngine(backend=backend_name)
    for function in FUNCTIONS:
        states, u, minv = _batch_inputs(model, function, n)
        got = batch_evaluate(model, function, states, u, minv=minv,
                             engine=engine)
        assert_results_match(function, got,
                             loop_reference(robot, function, n))


@pytest.mark.parametrize(
    "function",
    [RBDFunction.ID, RBDFunction.FD, RBDFunction.DFD],
    ids=lambda f: f.value,
)
def test_compiled_on_backend_f_ext(backend_name, function):
    """The external-force path agrees on every available backend."""
    model = load_robot("hyq")
    n = 6
    states, u, _ = _batch_inputs(model, function, n, seed=11)
    rng = np.random.default_rng(12)
    f_ext = {0: rng.normal(size=(n, 6)), model.nb - 1: rng.normal(size=6)}
    engine = CompiledEngine(backend=backend_name)
    got = batch_evaluate(model, function, states, u, f_ext=f_ext,
                         engine=engine)
    want = batch_evaluate(model, function, states, u, f_ext=f_ext,
                          engine="loop")
    assert_results_match(function, got, want)


def test_plan_memo_keyed_by_backend(backend_name):
    from repro.dynamics.plan import plan_for

    model = load_robot("pendulum")
    plan = plan_for(model, backend_name)
    assert plan is plan_for(model, backend_name)
    assert plan.backend.name == backend_name
    assert plan.describe()["backend"] == backend_name
    host_plan = plan_for(model)  # default backend
    assert host_plan is plan_for(model, "numpy")


def test_default_engine_unaffected_by_backend_param(backend_name):
    """Constructing backend engines must not leak into the default."""
    CompiledEngine(backend=backend_name)
    assert get_engine("compiled").backend_name == default_backend_name()
